//! # medusa-workload
//!
//! ShareGPT-like synthetic workload traces for the Medusa (ASPLOS'25)
//! reproduction's serving experiments (paper §7.5).
//!
//! The paper replays the ShareGPT dataset with Poisson request arrivals.
//! The evaluation consumes only two aspects of the dataset — the prompt and
//! output *length distributions* (average 161 prompt / 338 output tokens,
//! §2.2) — so this crate generates length samples from a log-normal fit to
//! those means plus a seeded Poisson arrival process.
//!
//! Beyond the single-model ramp, the crate models multi-tenant serverless
//! traffic: every [`Request`] carries a `model` id, a [`ModelMix`] draws
//! model popularity from a Zipf distribution (production serverless
//! platforms see heavily skewed per-function popularity), arrivals can
//! follow Poisson, square-wave bursty, 2-state MMPP, or diurnal processes,
//! and [`InvocationTrace`] imports Azure-Functions-style per-minute
//! invocation-count tables as replayable traces. Everything is
//! seed-deterministic: same config + seed ⇒ byte-identical trace.
//!
//! ## Example
//!
//! ```rust
//! use medusa_workload::TraceConfig;
//!
//! let trace = TraceConfig::sharegpt(2.0, 60.0).with_seed(7).generate();
//! assert!(!trace.is_empty());
//! let avg_prompt: f64 =
//!     trace.iter().map(|r| r.prompt_tokens as f64).sum::<f64>() / trace.len() as f64;
//! assert!((100.0..230.0).contains(&avg_prompt));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Mean ShareGPT prompt length in tokens (paper §2.2).
pub const SHAREGPT_MEAN_PROMPT: f64 = 161.0;
/// Mean ShareGPT output length in tokens (paper §2.2).
pub const SHAREGPT_MEAN_OUTPUT: f64 = 338.0;

/// One inference request of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Request {
    /// Monotonic request id.
    pub id: u64,
    /// Arrival time in nanoseconds since trace start.
    pub arrival_ns: u64,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens.
    pub output_tokens: u32,
    /// Tenant/model id this request targets (0 in single-tenant traces).
    pub model: u32,
}

// Hand-written so pre-multi-tenant request JSON (no `model` field) still
// decodes: a missing model id defaults to 0. The vendored serde stub has
// no `#[serde(default)]`.
impl serde::Deserialize for Request {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Request {
            id: u64::from_value(serde::field(v, "id", "Request")?)?,
            arrival_ns: u64::from_value(serde::field(v, "arrival_ns", "Request")?)?,
            prompt_tokens: u32::from_value(serde::field(v, "prompt_tokens", "Request")?)?,
            output_tokens: u32::from_value(serde::field(v, "output_tokens", "Request")?)?,
            model: match v.get("model") {
                Some(m) => u32::from_value(m)?,
                None => 0,
            },
        })
    }
}

/// Order-sensitive FNV-1a fingerprint of a trace.
///
/// Embedded in cluster reports so two runs can assert (cheaply, without
/// storing the trace) that they replayed the same request stream.
///
/// The model id is packed into the high half of the prompt word, so
/// single-tenant traces (`model == 0`) hash to exactly the value the
/// pre-multi-tenant fingerprint produced — committed baselines stay valid —
/// while any nonzero model id perturbs the digest.
pub fn fingerprint(trace: &[Request]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in trace {
        for v in [
            r.id,
            r.arrival_ns,
            r.prompt_tokens as u64 | ((r.model as u64) << 32),
            r.output_tokens as u64,
        ] {
            h ^= v;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Per-model arrival history extracted from a trace — the feed of the
/// serving layer's predictive prewarm estimators.
///
/// The history is the minimal signal a keep-alive/prewarm policy needs:
/// for every model id, the ordered arrival instants (ns). Estimators
/// derive inter-arrival distributions or windowed rates from it; the
/// export is deterministic (sorted by model id, arrivals in trace order)
/// so estimator decisions seeded from the same trace are byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArrivalHistory {
    /// Arrival instants (ns since trace start) per model id, ascending
    /// model id, arrivals in trace (time) order.
    pub per_model: std::collections::BTreeMap<u32, Vec<u64>>,
}

impl ArrivalHistory {
    /// Extracts the per-model arrival history from a request trace.
    pub fn from_requests(trace: &[Request]) -> Self {
        let mut per_model: std::collections::BTreeMap<u32, Vec<u64>> =
            std::collections::BTreeMap::new();
        for r in trace {
            per_model.entry(r.model).or_default().push(r.arrival_ns);
        }
        ArrivalHistory { per_model }
    }

    /// Number of distinct models with at least one arrival.
    pub fn models(&self) -> usize {
        self.per_model.len()
    }

    /// Consecutive inter-arrival gaps (ns) of `model`; empty when the
    /// model has fewer than two arrivals.
    pub fn inter_arrivals(&self, model: u32) -> Vec<u64> {
        self.per_model.get(&model).map_or_else(Vec::new, |a| {
            a.windows(2).map(|w| w[1].saturating_sub(w[0])).collect()
        })
    }

    /// Encodes the history as a stable `model,arrival_ns` CSV (header
    /// row included) — the on-disk export format `medusa-cli cluster
    /// --arrivals-out` writes for offline estimator studies.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("model,arrival_ns\n");
        for (model, arrivals) in &self.per_model {
            for t in arrivals {
                out.push_str(&format!("{model},{t}\n"));
            }
        }
        out
    }

    /// Parses the CSV format written by [`ArrivalHistory::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line.
    pub fn parse_csv(text: &str) -> Result<Self, String> {
        let mut per_model: std::collections::BTreeMap<u32, Vec<u64>> =
            std::collections::BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (i == 0 && line.starts_with("model")) {
                continue;
            }
            let (m, t) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: expected `model,arrival_ns`", i + 1))?;
            let model: u32 = m
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad model id `{m}`: {e}", i + 1))?;
            let t_ns: u64 = t
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad arrival `{t}`: {e}", i + 1))?;
            per_model.entry(model).or_default().push(t_ns);
        }
        Ok(ArrivalHistory { per_model })
    }
}

/// A seeded log-normal sampler for token lengths.
#[derive(Debug, Clone)]
pub struct LengthSampler {
    mu: f64,
    sigma: f64,
    min: u32,
    max: u32,
}

impl LengthSampler {
    /// A sampler whose distribution has the given arithmetic `mean`, with
    /// shape `sigma` and clamped to `[min, max]`.
    pub fn new(mean: f64, sigma: f64, min: u32, max: u32) -> Self {
        assert!(mean > 0.0 && sigma > 0.0 && min <= max);
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
        let mu = mean.ln() - sigma * sigma / 2.0;
        LengthSampler {
            mu,
            sigma,
            min,
            max,
        }
    }

    /// The ShareGPT prompt-length sampler.
    pub fn sharegpt_prompt() -> Self {
        LengthSampler::new(SHAREGPT_MEAN_PROMPT, 0.9, 4, 2048)
    }

    /// The ShareGPT output-length sampler.
    pub fn sharegpt_output() -> Self {
        LengthSampler::new(SHAREGPT_MEAN_OUTPUT, 0.8, 4, 2048)
    }

    /// Draws one length.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        // Box-Muller standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (self.mu + self.sigma * z).exp();
        (v.round() as u64).clamp(self.min as u64, self.max as u64) as u32
    }
}

/// How requests are spread across models/tenants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelMix {
    /// Every request targets the one given model id (the single-tenant
    /// default; draws no randomness, so traces are byte-identical to the
    /// pre-multi-tenant generator).
    Single(u32),
    /// Zipf-skewed popularity over models `0..models`: model `k` is drawn
    /// with probability ∝ `1 / (k + 1)^s`. Model 0 is the most popular.
    Zipf {
        /// Number of distinct models (ids `0..models`).
        models: u32,
        /// Skew exponent (`s = 0` is uniform; production serverless
        /// popularity is typically `s ≈ 1`).
        s: f64,
    },
}

impl Default for ModelMix {
    fn default() -> Self {
        ModelMix::Single(0)
    }
}

impl ModelMix {
    /// A Zipf mix over `models` models with exponent `s`.
    pub fn zipf(models: u32, s: f64) -> Self {
        assert!(models >= 1, "zipf mix needs at least one model");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        ModelMix::Zipf { models, s }
    }

    /// Number of distinct model ids this mix can emit.
    pub fn model_count(&self) -> u32 {
        match *self {
            ModelMix::Single(_) => 1,
            ModelMix::Zipf { models, .. } => models,
        }
    }

    /// Precomputed inverse-CDF table for sampling (empty for `Single`).
    fn cdf(&self) -> Vec<f64> {
        match *self {
            ModelMix::Single(_) => Vec::new(),
            ModelMix::Zipf { models, s } => {
                let mut cdf: Vec<f64> = Vec::with_capacity(models as usize);
                let mut acc = 0.0f64;
                for k in 0..models {
                    acc += 1.0 / ((k + 1) as f64).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                for c in &mut cdf {
                    *c /= total;
                }
                cdf
            }
        }
    }
}

/// The request arrival pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Homogeneous Poisson arrivals at the configured rate.
    Poisson,
    /// Bursty arrivals: a square-wave-modulated Poisson process. The paper
    /// motivates serverless serving with traffic "fluctuating by 10-20
    /// times within a 30-second window" (§1, citing Mooncake) — this
    /// pattern reproduces that shape while keeping the configured rate as
    /// the long-run average.
    Bursty {
        /// Peak-to-trough rate ratio (10–20 per the paper).
        factor: f64,
        /// Burst cycle length in seconds (~30 per the paper).
        period_s: f64,
        /// Fraction of each cycle spent at the peak rate, in `(0, 1)`.
        duty: f64,
    },
    /// 2-state Markov-modulated Poisson process: the rate alternates
    /// between a burst regime (`factor×` the idle rate) and an idle regime,
    /// with exponentially distributed sojourn times. Unlike `Bursty`, the
    /// regime changes are *random* (seeded off the trace seed), which is
    /// the classic model for serverless invocation burstiness. The
    /// long-run mean rate is normalized to the configured `rps`.
    Mmpp {
        /// Burst-to-idle rate ratio (> 1).
        factor: f64,
        /// Mean sojourn time in the burst regime, seconds.
        mean_burst_s: f64,
        /// Mean sojourn time in the idle regime, seconds.
        mean_idle_s: f64,
    },
    /// Diurnal arrivals: a sinusoidal rate
    /// `rps · (1 + amplitude · sin(2πt / period_s))`, mean-preserving.
    /// Scale runs use a compressed `period_s` so a "day" fits in a trace.
    Diurnal {
        /// Cycle length in seconds.
        period_s: f64,
        /// Relative swing in `[0, 1]` (1.0 ⇒ rate touches zero).
        amplitude: f64,
    },
}

/// Seed salt for the MMPP regime timeline, so regime switches come from an
/// RNG stream disjoint from the arrival/length stream.
const MMPP_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

impl ArrivalPattern {
    /// The paper's motivating burstiness: 15× swings on a 30 s cycle.
    pub fn sharegpt_bursty() -> Self {
        ArrivalPattern::Bursty {
            factor: 15.0,
            period_s: 30.0,
            duty: 0.2,
        }
    }

    /// A serverless-flavored MMPP default: 12× bursts averaging 5 s,
    /// separated by ~20 s idle stretches.
    pub fn serverless_mmpp() -> Self {
        ArrivalPattern::Mmpp {
            factor: 12.0,
            mean_burst_s: 5.0,
            mean_idle_s: 20.0,
        }
    }

    /// A compressed diurnal cycle: 80% swing on a 120 s "day".
    pub fn compressed_diurnal() -> Self {
        ArrivalPattern::Diurnal {
            period_s: 120.0,
            amplitude: 0.8,
        }
    }

    /// Instantaneous rate multiplier at time `t` for analytic patterns
    /// (mean 1.0 over a cycle). MMPP is not analytic — its multiplier
    /// comes from the sampled [`RegimeTimeline`].
    fn multiplier(&self, t: f64) -> f64 {
        match *self {
            ArrivalPattern::Poisson => 1.0,
            ArrivalPattern::Bursty {
                factor,
                period_s,
                duty,
            } => {
                // Peak and trough chosen so the cycle average is 1.0.
                let mean = duty * factor + (1.0 - duty);
                let phase = (t / period_s).fract();
                let raw = if phase < duty { factor } else { 1.0 };
                raw / mean
            }
            ArrivalPattern::Diurnal {
                period_s,
                amplitude,
            } => 1.0 + amplitude * (2.0 * std::f64::consts::PI * t / period_s).sin(),
            ArrivalPattern::Mmpp { .. } => {
                unreachable!("MMPP multiplier comes from the sampled regime timeline")
            }
        }
    }

    /// Peak multiplier for Lewis–Shedler thinning.
    fn peak_multiplier(&self) -> f64 {
        match *self {
            ArrivalPattern::Poisson => 1.0,
            ArrivalPattern::Bursty { factor, duty, .. } => factor / (duty * factor + (1.0 - duty)),
            ArrivalPattern::Mmpp {
                factor,
                mean_burst_s,
                mean_idle_s,
            } => {
                let pb = mean_burst_s / (mean_burst_s + mean_idle_s);
                factor / (pb * factor + (1.0 - pb))
            }
            ArrivalPattern::Diurnal { amplitude, .. } => 1.0 + amplitude,
        }
    }
}

/// Piecewise-constant rate-multiplier timeline sampled for MMPP traces.
/// `segments[k] = (start_s, multiplier)`; segments are sorted by start.
struct RegimeTimeline {
    segments: Vec<(f64, f64)>,
    cursor: usize,
}

impl RegimeTimeline {
    /// Samples the regime-switch timeline over `[0, duration_s)` with its
    /// own RNG stream so arrival thinning draws stay independent of it.
    fn sample(pattern: &ArrivalPattern, seed: u64, duration_s: f64) -> Option<Self> {
        let ArrivalPattern::Mmpp {
            factor,
            mean_burst_s,
            mean_idle_s,
        } = *pattern
        else {
            return None;
        };
        assert!(factor > 1.0, "MMPP burst factor must exceed 1");
        assert!(
            mean_burst_s > 0.0 && mean_idle_s > 0.0,
            "MMPP sojourn means must be positive"
        );
        // Normalize so the *stationary* mean multiplier is 1.0.
        let pb = mean_burst_s / (mean_burst_s + mean_idle_s);
        let mean = pb * factor + (1.0 - pb);
        let mut rng = SmallRng::seed_from_u64(seed ^ MMPP_SALT);
        let mut segments = Vec::new();
        let mut t = 0.0f64;
        let mut bursting = false; // deterministic start: idle regime
        while t < duration_s {
            let mult = if bursting { factor } else { 1.0 } / mean;
            segments.push((t, mult));
            let mean_sojourn = if bursting { mean_burst_s } else { mean_idle_s };
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() * mean_sojourn;
            bursting = !bursting;
        }
        Some(RegimeTimeline {
            segments,
            cursor: 0,
        })
    }

    /// Multiplier at `t`. Callers pass monotonically increasing `t`, so the
    /// lookup is an amortized-O(1) cursor walk.
    fn multiplier(&mut self, t: f64) -> f64 {
        while self.cursor + 1 < self.segments.len() && self.segments[self.cursor + 1].0 <= t {
            self.cursor += 1;
        }
        self.segments[self.cursor].1
    }
}

/// Configuration of a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Mean requests per second of the arrival process.
    pub rps: f64,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Arrival pattern.
    pub pattern: ArrivalPattern,
    /// Prompt-length distribution.
    pub prompt: LengthSampler,
    /// Output-length distribution.
    pub output: LengthSampler,
    /// Model/tenant popularity mix.
    pub models: ModelMix,
}

impl TraceConfig {
    /// A ShareGPT-shaped trace at `rps` requests/s for `duration_s` seconds
    /// (the paper's §7.5 setting).
    pub fn sharegpt(rps: f64, duration_s: f64) -> Self {
        TraceConfig {
            rps,
            duration_s,
            seed: 0,
            pattern: ArrivalPattern::Poisson,
            prompt: LengthSampler::sharegpt_prompt(),
            output: LengthSampler::sharegpt_output(),
            models: ModelMix::default(),
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arrival pattern (builder style).
    pub fn with_pattern(mut self, pattern: ArrivalPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the model/tenant mix (builder style).
    pub fn with_models(mut self, models: ModelMix) -> Self {
        self.models = models;
        self
    }

    /// Sets both length distributions (builder style). Large-fleet scale
    /// runs use short interactive completions so simulated hours stay
    /// dominated by arrivals rather than decode iterations.
    pub fn with_lengths(mut self, prompt: LengthSampler, output: LengthSampler) -> Self {
        self.prompt = prompt;
        self.output = output;
        self
    }

    /// An interactive chat-completion shape for scale runs: short prompts
    /// (mean 64 tokens) and short outputs (mean 8 tokens), Poisson
    /// arrivals at `rps` for `duration_s` seconds.
    pub fn interactive(rps: f64, duration_s: f64) -> Self {
        TraceConfig::sharegpt(rps, duration_s).with_lengths(
            LengthSampler::new(64.0, 0.6, 8, 256),
            LengthSampler::new(8.0, 0.5, 1, 32),
        )
    }

    /// Generates the trace: (possibly modulated) Poisson arrivals with
    /// per-request sampled lengths and model ids, sorted by arrival time.
    ///
    /// Non-homogeneous arrivals use Lewis–Shedler thinning against the
    /// pattern's peak rate. The MMPP regime timeline and the model mix
    /// draw from streams layered on the same seed, so `Single`-mix
    /// Poisson/Bursty traces are byte-identical to the pre-multi-tenant
    /// generator.
    pub fn generate(&self) -> Vec<Request> {
        assert!(self.rps > 0.0 && self.duration_s > 0.0);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xa076_1d64_78bd_642f);
        let mut regimes = RegimeTimeline::sample(&self.pattern, self.seed, self.duration_s);
        let peak_multiplier = self.pattern.peak_multiplier();
        let peak_rate = self.rps * peak_multiplier;
        let cdf = self.models.cdf();
        let fixed_model = match self.models {
            ModelMix::Single(m) => Some(m),
            ModelMix::Zipf { .. } => None,
        };
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut id = 0u64;
        loop {
            // Candidate arrival at the peak rate...
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / peak_rate;
            if t >= self.duration_s {
                break;
            }
            // ...thinned by the instantaneous rate multiplier.
            let mult = match &mut regimes {
                Some(tl) => tl.multiplier(t),
                None => self.pattern.multiplier(t),
            };
            let accept: f64 = rng.gen_range(0.0..1.0);
            if accept >= mult / peak_multiplier {
                continue;
            }
            let prompt_tokens = self.prompt.sample(&mut rng);
            let output_tokens = self.output.sample(&mut rng);
            // `Single` draws nothing: the default path consumes exactly
            // the RNG stream the pre-multi-tenant generator did.
            let model = match fixed_model {
                Some(m) => m,
                None => {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    cdf.partition_point(|&c| c <= u) as u32
                }
            };
            out.push(Request {
                id,
                arrival_ns: (t * 1e9) as u64,
                prompt_tokens,
                output_tokens,
                model,
            });
            id += 1;
        }
        out
    }
}

/// One row of an [`InvocationTrace`]: per-bin invocation counts for one
/// model/tenant (one "function" in the Azure Functions trace sense).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvocationRow {
    /// Model/tenant id.
    pub model: u32,
    /// Invocation count per time bin.
    pub counts: Vec<u32>,
}

/// An Azure-Functions-style invocation table: per-model arrival counts
/// binned at a fixed interval (per-minute in the original dataset).
///
/// The CSV wire format is self-describing and round-trips byte-identically
/// through [`InvocationTrace::to_csv`] / [`InvocationTrace::parse_csv`]:
///
/// ```text
/// # comment lines and blanks are ignored
/// bin_s,60
/// 0,5,3,0,2
/// 1,0,1,4,0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationTrace {
    /// Bin width in seconds (60 for the Azure per-minute tables).
    pub bin_s: f64,
    /// Per-model count rows.
    pub rows: Vec<InvocationRow>,
}

impl InvocationTrace {
    /// Parses the CSV wire format described on [`InvocationTrace`].
    pub fn parse_csv(text: &str) -> Result<Self, String> {
        let mut bin_s = None;
        let mut rows = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split(',');
            let head = fields.next().unwrap().trim();
            if bin_s.is_none() {
                if head != "bin_s" {
                    return Err(format!(
                        "line {}: expected `bin_s,<seconds>` header, got `{line}`",
                        lineno + 1
                    ));
                }
                let v: f64 = fields
                    .next()
                    .ok_or_else(|| format!("line {}: missing bin_s value", lineno + 1))?
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: bad bin_s: {e}", lineno + 1))?;
                if v <= 0.0 || v.is_nan() {
                    return Err(format!("line {}: bin_s must be positive", lineno + 1));
                }
                bin_s = Some(v);
                continue;
            }
            let model: u32 = head
                .parse()
                .map_err(|e| format!("line {}: bad model id `{head}`: {e}", lineno + 1))?;
            let counts: Vec<u32> = fields
                .map(|f| {
                    f.trim()
                        .parse()
                        .map_err(|e| format!("line {}: bad count `{f}`: {e}", lineno + 1))
                })
                .collect::<Result<_, _>>()?;
            rows.push(InvocationRow { model, counts });
        }
        Ok(InvocationTrace {
            bin_s: bin_s.ok_or("missing `bin_s,<seconds>` header")?,
            rows,
        })
    }

    /// Serializes back to the CSV wire format (inverse of
    /// [`InvocationTrace::parse_csv`]).
    pub fn to_csv(&self) -> String {
        let mut out = format!("bin_s,{}\n", self.bin_s);
        for row in &self.rows {
            out.push_str(&row.model.to_string());
            for c in &row.counts {
                out.push(',');
                out.push_str(&c.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Total invocations across every model and bin.
    pub fn total_invocations(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.counts.iter().map(|&c| c as u64).sum::<u64>())
            .sum()
    }

    /// Trace duration implied by the widest row, in seconds.
    pub fn duration_s(&self) -> f64 {
        let bins = self.rows.iter().map(|r| r.counts.len()).max().unwrap_or(0);
        bins as f64 * self.bin_s
    }

    /// Expands the count table into a replayable request trace: each
    /// counted invocation lands uniformly at random inside its bin, rows
    /// are merged and sorted by arrival time, ids reassigned in arrival
    /// order, and lengths drawn per request. Deterministic in `seed`.
    pub fn generate(
        &self,
        seed: u64,
        prompt: &LengthSampler,
        output: &LengthSampler,
    ) -> Vec<Request> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51ce_b00c_1e55_f00d);
        let mut out: Vec<Request> = Vec::with_capacity(self.total_invocations() as usize);
        for row in &self.rows {
            for (bin, &count) in row.counts.iter().enumerate() {
                let start = bin as f64 * self.bin_s;
                for _ in 0..count {
                    let dt: f64 = rng.gen_range(0.0..1.0) * self.bin_s;
                    out.push(Request {
                        id: 0,
                        arrival_ns: ((start + dt) * 1e9) as u64,
                        prompt_tokens: prompt.sample(&mut rng),
                        output_tokens: output.sample(&mut rng),
                        model: row.model,
                    });
                }
            }
        }
        out.sort_by_key(|r| (r.arrival_ns, r.model));
        for (i, r) in out.iter_mut().enumerate() {
            r.id = i as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = TraceConfig::sharegpt(5.0, 30.0).with_seed(1).generate();
        let b = TraceConfig::sharegpt(5.0, 30.0).with_seed(1).generate();
        let c = TraceConfig::sharegpt(5.0, 30.0).with_seed(2).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_rate_approximates_rps() {
        let trace = TraceConfig::sharegpt(10.0, 120.0).with_seed(3).generate();
        let rate = trace.len() as f64 / 120.0;
        assert!(
            (8.0..12.0).contains(&rate),
            "rate {rate} too far from 10 rps"
        );
        assert!(trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
    }

    #[test]
    fn length_means_match_sharegpt() {
        let trace = TraceConfig::sharegpt(50.0, 120.0).with_seed(4).generate();
        let n = trace.len() as f64;
        let p: f64 = trace.iter().map(|r| r.prompt_tokens as f64).sum::<f64>() / n;
        let o: f64 = trace.iter().map(|r| r.output_tokens as f64).sum::<f64>() / n;
        assert!((130.0..200.0).contains(&p), "prompt mean {p}");
        assert!((280.0..410.0).contains(&o), "output mean {o}");
    }

    #[test]
    fn arrival_history_round_trips_and_orders_models() {
        let trace = TraceConfig::sharegpt(4.0, 30.0)
            .with_seed(6)
            .with_models(ModelMix::zipf(4, 1.0))
            .generate();
        let hist = ArrivalHistory::from_requests(&trace);
        assert!(hist.models() >= 2, "zipf(4) trace should hit >=2 models");
        let total: usize = hist.per_model.values().map(Vec::len).sum();
        assert_eq!(total, trace.len());
        for arrivals in hist.per_model.values() {
            assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        }
        let parsed = ArrivalHistory::parse_csv(&hist.to_csv()).unwrap();
        assert_eq!(parsed, hist);
    }

    #[test]
    fn arrival_history_inter_arrivals_are_consecutive_gaps() {
        let reqs: Vec<Request> = [10u64, 30, 70]
            .iter()
            .enumerate()
            .map(|(i, &t)| Request {
                id: i as u64,
                arrival_ns: t,
                prompt_tokens: 1,
                output_tokens: 1,
                model: 3,
            })
            .collect();
        let hist = ArrivalHistory::from_requests(&reqs);
        assert_eq!(hist.inter_arrivals(3), vec![20, 40]);
        assert!(hist.inter_arrivals(0).is_empty());
    }

    #[test]
    fn lengths_respect_clamps() {
        let s = LengthSampler::new(100.0, 2.0, 16, 64);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((16..=64).contains(&v));
        }
    }

    #[test]
    fn higher_rps_means_more_requests() {
        let low = TraceConfig::sharegpt(2.0, 60.0).with_seed(5).generate();
        let high = TraceConfig::sharegpt(10.0, 60.0).with_seed(5).generate();
        assert!(high.len() > low.len() * 3);
    }

    #[test]
    #[should_panic]
    fn zero_rps_rejected() {
        TraceConfig::sharegpt(0.0, 1.0).generate();
    }

    #[test]
    fn bursty_pattern_preserves_mean_rate() {
        let base = TraceConfig::sharegpt(10.0, 300.0).with_seed(8);
        let poisson = base.clone().generate();
        let bursty = base
            .with_pattern(ArrivalPattern::sharegpt_bursty())
            .generate();
        let r_p = poisson.len() as f64 / 300.0;
        let r_b = bursty.len() as f64 / 300.0;
        assert!(
            (r_b / r_p - 1.0).abs() < 0.2,
            "mean rate must be preserved: {r_p} vs {r_b}"
        );
    }

    #[test]
    fn bursty_pattern_fluctuates_by_the_paper_factor() {
        let trace = TraceConfig::sharegpt(5.0, 300.0)
            .with_seed(9)
            .with_pattern(ArrivalPattern::Bursty {
                factor: 15.0,
                period_s: 30.0,
                duty: 0.2,
            })
            .generate();
        // Count arrivals per 6-second bucket; peak buckets must dwarf
        // trough buckets (paper §1: 10-20x within 30 s).
        let mut buckets = [0u32; 50];
        for r in &trace {
            buckets[(r.arrival_ns as f64 / 6e9) as usize] += 1;
        }
        let peak = *buckets.iter().max().unwrap() as f64;
        let trough_avg = buckets
            .iter()
            .filter(|&&b| b > 0)
            .map(|&b| b as f64)
            .fold(f64::INFINITY, f64::min);
        assert!(
            peak / trough_avg.max(1.0) >= 5.0,
            "peak {peak} vs trough {trough_avg}"
        );
    }

    /// Re-implementation of the pre-multi-tenant fingerprint: the live
    /// `fingerprint` must reproduce it exactly on model-0 traces so
    /// committed baseline JSONs keep their `trace_fingerprint` values.
    fn legacy_fingerprint(trace: &[Request]) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for r in trace {
            for v in [
                r.id,
                r.arrival_ns,
                r.prompt_tokens as u64,
                r.output_tokens as u64,
            ] {
                h ^= v;
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }

    #[test]
    fn fingerprint_matches_legacy_on_single_tenant_traces() {
        let trace = TraceConfig::sharegpt(8.0, 45.0).with_seed(42).generate();
        assert!(trace.iter().all(|r| r.model == 0));
        assert_eq!(fingerprint(&trace), legacy_fingerprint(&trace));
    }

    #[test]
    fn fingerprint_is_sensitive_to_model_id() {
        let base = TraceConfig::sharegpt(5.0, 20.0).with_seed(6).generate();
        let mut retagged = base.clone();
        retagged[0].model = 3;
        assert_ne!(fingerprint(&base), fingerprint(&retagged));
    }

    #[test]
    fn zipf_mix_is_deterministic_and_rank_ordered() {
        let cfg = TraceConfig::sharegpt(60.0, 120.0)
            .with_seed(11)
            .with_models(ModelMix::zipf(8, 1.0));
        let a = cfg.clone().generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        let mut counts = [0u64; 8];
        for r in &a {
            counts[r.model as usize] += 1;
        }
        // Every model appears, and popularity is (weakly) rank-ordered for
        // the head of the distribution.
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
        assert!(counts[0] > counts[2] && counts[1] > counts[4], "{counts:?}");
    }

    #[test]
    fn zipf_rank_frequency_within_tolerance() {
        // s = 1.0 over 8 models: P(model k) ∝ 1/(k+1). With ~18k samples
        // each empirical share must land within 20% of the analytic share.
        let trace = TraceConfig::sharegpt(150.0, 120.0)
            .with_seed(12)
            .with_models(ModelMix::zipf(8, 1.0))
            .generate();
        let mut counts = [0f64; 8];
        for r in &trace {
            counts[r.model as usize] += 1.0;
        }
        let n: f64 = counts.iter().sum();
        let hn: f64 = (1..=8).map(|k| 1.0 / k as f64).sum();
        for (k, &c) in counts.iter().enumerate() {
            let want = 1.0 / ((k + 1) as f64 * hn);
            let got = c / n;
            assert!(
                (got / want - 1.0).abs() < 0.2,
                "model {k}: share {got:.4} vs analytic {want:.4}"
            );
        }
    }

    #[test]
    fn single_mix_draws_no_extra_randomness() {
        // Tagging every request with a fixed nonzero model must not perturb
        // arrivals or lengths relative to the default model-0 trace.
        let base = TraceConfig::sharegpt(6.0, 30.0).with_seed(13).generate();
        let tagged = TraceConfig::sharegpt(6.0, 30.0)
            .with_seed(13)
            .with_models(ModelMix::Single(5))
            .generate();
        assert_eq!(base.len(), tagged.len());
        for (a, b) in base.iter().zip(&tagged) {
            assert_eq!(
                (a.arrival_ns, a.prompt_tokens, a.output_tokens),
                (b.arrival_ns, b.prompt_tokens, b.output_tokens)
            );
            assert_eq!(b.model, 5);
        }
    }

    #[test]
    fn mmpp_preserves_mean_rate_and_is_deterministic() {
        let cfg = TraceConfig::sharegpt(10.0, 600.0)
            .with_seed(14)
            .with_pattern(ArrivalPattern::serverless_mmpp());
        let a = cfg.clone().generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        let rate = a.len() as f64 / 600.0;
        assert!((rate / 10.0 - 1.0).abs() < 0.25, "MMPP mean rate {rate}");
    }

    #[test]
    fn mmpp_switches_between_burst_and_idle_regimes() {
        let trace = TraceConfig::sharegpt(8.0, 600.0)
            .with_seed(15)
            .with_pattern(ArrivalPattern::Mmpp {
                factor: 12.0,
                mean_burst_s: 5.0,
                mean_idle_s: 20.0,
            })
            .generate();
        // 2-second buckets: an MMPP run must show both near-idle buckets
        // and buckets far above the mean rate — and sustain each regime.
        let buckets = 300;
        let mut counts = vec![0u32; buckets];
        for r in &trace {
            counts[((r.arrival_ns as f64 / 2e9) as usize).min(buckets - 1)] += 1;
        }
        let mean = trace.len() as f64 / buckets as f64;
        let hot = counts.iter().filter(|&&c| (c as f64) > 2.5 * mean).count();
        let cold = counts.iter().filter(|&&c| (c as f64) < 0.5 * mean).count();
        assert!(hot >= 10, "no sustained burst regime (hot buckets: {hot})");
        assert!(
            cold >= 10,
            "no sustained idle regime (cold buckets: {cold})"
        );
    }

    #[test]
    fn diurnal_pattern_shows_the_configured_period() {
        let period = 120.0;
        let trace = TraceConfig::sharegpt(20.0, 600.0)
            .with_seed(16)
            .with_pattern(ArrivalPattern::Diurnal {
                period_s: period,
                amplitude: 0.8,
            })
            .generate();
        // Fold arrivals by phase: the half-cycle where sin > 0 must carry
        // (1 + 2A/π) / (1 - 2A/π) ≈ 3× the arrivals of the other half.
        let mut up = 0u64;
        let mut down = 0u64;
        for r in &trace {
            let phase = (r.arrival_ns as f64 / 1e9 / period).fract();
            if phase < 0.5 {
                up += 1;
            } else {
                down += 1;
            }
        }
        let ratio = up as f64 / down.max(1) as f64;
        assert!(
            (2.0..5.0).contains(&ratio),
            "diurnal phase ratio {ratio} (up {up} down {down})"
        );
        let rate = trace.len() as f64 / 600.0;
        assert!((rate / 20.0 - 1.0).abs() < 0.15, "diurnal mean rate {rate}");
    }

    #[test]
    fn invocation_trace_csv_round_trips() {
        let trace = InvocationTrace {
            bin_s: 60.0,
            rows: vec![
                InvocationRow {
                    model: 0,
                    counts: vec![5, 3, 0, 2],
                },
                InvocationRow {
                    model: 3,
                    counts: vec![0, 1, 4, 0],
                },
            ],
        };
        let csv = trace.to_csv();
        let parsed = InvocationTrace::parse_csv(&csv).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_csv(), csv, "CSV round-trip must be byte-stable");
        // Comments and blank lines are tolerated on the way in.
        let annotated = format!("# azure-style import\n\n{csv}");
        assert_eq!(InvocationTrace::parse_csv(&annotated).unwrap(), trace);
    }

    #[test]
    fn invocation_trace_generate_matches_binned_counts() {
        let trace = InvocationTrace {
            bin_s: 10.0,
            rows: vec![
                InvocationRow {
                    model: 0,
                    counts: vec![7, 0, 3],
                },
                InvocationRow {
                    model: 1,
                    counts: vec![2, 5, 0],
                },
            ],
        };
        let prompt = LengthSampler::sharegpt_prompt();
        let output = LengthSampler::sharegpt_output();
        let a = trace.generate(21, &prompt, &output);
        let b = trace.generate(21, &prompt, &output);
        assert_eq!(a, b, "importer must be seed-deterministic");
        assert_eq!(a.len() as u64, trace.total_invocations());
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(a.windows(2).all(|w| w[1].id == w[0].id + 1) && a[0].id == 0);
        // Re-bin the generated arrivals: counts must match the table.
        let mut rebinned = [[0u32; 3]; 2];
        for r in &a {
            let bin = ((r.arrival_ns as f64 / 1e9) / trace.bin_s) as usize;
            rebinned[r.model as usize][bin] += 1;
        }
        assert_eq!(rebinned[0], [7, 0, 3]);
        assert_eq!(rebinned[1], [2, 5, 0]);
    }

    #[test]
    fn invocation_trace_rejects_malformed_csv() {
        assert!(InvocationTrace::parse_csv("0,1,2\n").is_err(), "no header");
        assert!(InvocationTrace::parse_csv("bin_s,0\n0,1\n").is_err());
        assert!(InvocationTrace::parse_csv("bin_s,60\nx,1\n").is_err());
        assert!(InvocationTrace::parse_csv("bin_s,60\n0,1,nope\n").is_err());
    }
}
