//! # medusa-workload
//!
//! ShareGPT-like synthetic workload traces for the Medusa (ASPLOS'25)
//! reproduction's serving experiments (paper §7.5).
//!
//! The paper replays the ShareGPT dataset with Poisson request arrivals.
//! The evaluation consumes only two aspects of the dataset — the prompt and
//! output *length distributions* (average 161 prompt / 338 output tokens,
//! §2.2) — so this crate generates length samples from a log-normal fit to
//! those means plus a seeded Poisson arrival process.
//!
//! ## Example
//!
//! ```rust
//! use medusa_workload::TraceConfig;
//!
//! let trace = TraceConfig::sharegpt(2.0, 60.0).with_seed(7).generate();
//! assert!(!trace.is_empty());
//! let avg_prompt: f64 =
//!     trace.iter().map(|r| r.prompt_tokens as f64).sum::<f64>() / trace.len() as f64;
//! assert!((100.0..230.0).contains(&avg_prompt));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Mean ShareGPT prompt length in tokens (paper §2.2).
pub const SHAREGPT_MEAN_PROMPT: f64 = 161.0;
/// Mean ShareGPT output length in tokens (paper §2.2).
pub const SHAREGPT_MEAN_OUTPUT: f64 = 338.0;

/// One inference request of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Monotonic request id.
    pub id: u64,
    /// Arrival time in nanoseconds since trace start.
    pub arrival_ns: u64,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens.
    pub output_tokens: u32,
}

/// Order-sensitive FNV-1a fingerprint of a trace.
///
/// Embedded in cluster reports so two runs can assert (cheaply, without
/// storing the trace) that they replayed the same request stream.
pub fn fingerprint(trace: &[Request]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in trace {
        for v in [
            r.id,
            r.arrival_ns,
            r.prompt_tokens as u64,
            r.output_tokens as u64,
        ] {
            h ^= v;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// A seeded log-normal sampler for token lengths.
#[derive(Debug, Clone)]
pub struct LengthSampler {
    mu: f64,
    sigma: f64,
    min: u32,
    max: u32,
}

impl LengthSampler {
    /// A sampler whose distribution has the given arithmetic `mean`, with
    /// shape `sigma` and clamped to `[min, max]`.
    pub fn new(mean: f64, sigma: f64, min: u32, max: u32) -> Self {
        assert!(mean > 0.0 && sigma > 0.0 && min <= max);
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
        let mu = mean.ln() - sigma * sigma / 2.0;
        LengthSampler {
            mu,
            sigma,
            min,
            max,
        }
    }

    /// The ShareGPT prompt-length sampler.
    pub fn sharegpt_prompt() -> Self {
        LengthSampler::new(SHAREGPT_MEAN_PROMPT, 0.9, 4, 2048)
    }

    /// The ShareGPT output-length sampler.
    pub fn sharegpt_output() -> Self {
        LengthSampler::new(SHAREGPT_MEAN_OUTPUT, 0.8, 4, 2048)
    }

    /// Draws one length.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        // Box-Muller standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (self.mu + self.sigma * z).exp();
        (v.round() as u64).clamp(self.min as u64, self.max as u64) as u32
    }
}

/// The request arrival pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Homogeneous Poisson arrivals at the configured rate.
    Poisson,
    /// Bursty arrivals: a square-wave-modulated Poisson process. The paper
    /// motivates serverless serving with traffic "fluctuating by 10-20
    /// times within a 30-second window" (§1, citing Mooncake) — this
    /// pattern reproduces that shape while keeping the configured rate as
    /// the long-run average.
    Bursty {
        /// Peak-to-trough rate ratio (10–20 per the paper).
        factor: f64,
        /// Burst cycle length in seconds (~30 per the paper).
        period_s: f64,
        /// Fraction of each cycle spent at the peak rate, in `(0, 1)`.
        duty: f64,
    },
}

impl ArrivalPattern {
    /// The paper's motivating burstiness: 15× swings on a 30 s cycle.
    pub fn sharegpt_bursty() -> Self {
        ArrivalPattern::Bursty {
            factor: 15.0,
            period_s: 30.0,
            duty: 0.2,
        }
    }

    /// Instantaneous rate multiplier at time `t` (mean 1.0 over a cycle).
    fn multiplier(&self, t: f64) -> f64 {
        match *self {
            ArrivalPattern::Poisson => 1.0,
            ArrivalPattern::Bursty {
                factor,
                period_s,
                duty,
            } => {
                // Peak and trough chosen so the cycle average is 1.0.
                let mean = duty * factor + (1.0 - duty);
                let phase = (t / period_s).fract();
                let raw = if phase < duty { factor } else { 1.0 };
                raw / mean
            }
        }
    }
}

/// Configuration of a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Mean requests per second of the arrival process.
    pub rps: f64,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Arrival pattern.
    pub pattern: ArrivalPattern,
    /// Prompt-length distribution.
    pub prompt: LengthSampler,
    /// Output-length distribution.
    pub output: LengthSampler,
}

impl TraceConfig {
    /// A ShareGPT-shaped trace at `rps` requests/s for `duration_s` seconds
    /// (the paper's §7.5 setting).
    pub fn sharegpt(rps: f64, duration_s: f64) -> Self {
        TraceConfig {
            rps,
            duration_s,
            seed: 0,
            pattern: ArrivalPattern::Poisson,
            prompt: LengthSampler::sharegpt_prompt(),
            output: LengthSampler::sharegpt_output(),
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arrival pattern (builder style).
    pub fn with_pattern(mut self, pattern: ArrivalPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets both length distributions (builder style). Large-fleet scale
    /// runs use short interactive completions so simulated hours stay
    /// dominated by arrivals rather than decode iterations.
    pub fn with_lengths(mut self, prompt: LengthSampler, output: LengthSampler) -> Self {
        self.prompt = prompt;
        self.output = output;
        self
    }

    /// An interactive chat-completion shape for scale runs: short prompts
    /// (mean 64 tokens) and short outputs (mean 8 tokens), Poisson
    /// arrivals at `rps` for `duration_s` seconds.
    pub fn interactive(rps: f64, duration_s: f64) -> Self {
        TraceConfig::sharegpt(rps, duration_s).with_lengths(
            LengthSampler::new(64.0, 0.6, 8, 256),
            LengthSampler::new(8.0, 0.5, 1, 32),
        )
    }

    /// Generates the trace: (possibly modulated) Poisson arrivals with
    /// per-request sampled lengths, sorted by arrival time.
    ///
    /// Non-homogeneous arrivals use Lewis–Shedler thinning against the
    /// pattern's peak rate.
    pub fn generate(&self) -> Vec<Request> {
        assert!(self.rps > 0.0 && self.duration_s > 0.0);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xa076_1d64_78bd_642f);
        let peak_multiplier = match self.pattern {
            ArrivalPattern::Poisson => 1.0,
            ArrivalPattern::Bursty { factor, duty, .. } => factor / (duty * factor + (1.0 - duty)),
        };
        let peak_rate = self.rps * peak_multiplier;
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut id = 0u64;
        loop {
            // Candidate arrival at the peak rate...
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / peak_rate;
            if t >= self.duration_s {
                break;
            }
            // ...thinned by the instantaneous rate multiplier.
            let accept: f64 = rng.gen_range(0.0..1.0);
            if accept >= self.pattern.multiplier(t) / peak_multiplier {
                continue;
            }
            out.push(Request {
                id,
                arrival_ns: (t * 1e9) as u64,
                prompt_tokens: self.prompt.sample(&mut rng),
                output_tokens: self.output.sample(&mut rng),
            });
            id += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = TraceConfig::sharegpt(5.0, 30.0).with_seed(1).generate();
        let b = TraceConfig::sharegpt(5.0, 30.0).with_seed(1).generate();
        let c = TraceConfig::sharegpt(5.0, 30.0).with_seed(2).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_rate_approximates_rps() {
        let trace = TraceConfig::sharegpt(10.0, 120.0).with_seed(3).generate();
        let rate = trace.len() as f64 / 120.0;
        assert!(
            (8.0..12.0).contains(&rate),
            "rate {rate} too far from 10 rps"
        );
        assert!(trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
    }

    #[test]
    fn length_means_match_sharegpt() {
        let trace = TraceConfig::sharegpt(50.0, 120.0).with_seed(4).generate();
        let n = trace.len() as f64;
        let p: f64 = trace.iter().map(|r| r.prompt_tokens as f64).sum::<f64>() / n;
        let o: f64 = trace.iter().map(|r| r.output_tokens as f64).sum::<f64>() / n;
        assert!((130.0..200.0).contains(&p), "prompt mean {p}");
        assert!((280.0..410.0).contains(&o), "output mean {o}");
    }

    #[test]
    fn lengths_respect_clamps() {
        let s = LengthSampler::new(100.0, 2.0, 16, 64);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((16..=64).contains(&v));
        }
    }

    #[test]
    fn higher_rps_means_more_requests() {
        let low = TraceConfig::sharegpt(2.0, 60.0).with_seed(5).generate();
        let high = TraceConfig::sharegpt(10.0, 60.0).with_seed(5).generate();
        assert!(high.len() > low.len() * 3);
    }

    #[test]
    #[should_panic]
    fn zero_rps_rejected() {
        TraceConfig::sharegpt(0.0, 1.0).generate();
    }

    #[test]
    fn bursty_pattern_preserves_mean_rate() {
        let base = TraceConfig::sharegpt(10.0, 300.0).with_seed(8);
        let poisson = base.clone().generate();
        let bursty = base
            .with_pattern(ArrivalPattern::sharegpt_bursty())
            .generate();
        let r_p = poisson.len() as f64 / 300.0;
        let r_b = bursty.len() as f64 / 300.0;
        assert!(
            (r_b / r_p - 1.0).abs() < 0.2,
            "mean rate must be preserved: {r_p} vs {r_b}"
        );
    }

    #[test]
    fn bursty_pattern_fluctuates_by_the_paper_factor() {
        let trace = TraceConfig::sharegpt(5.0, 300.0)
            .with_seed(9)
            .with_pattern(ArrivalPattern::Bursty {
                factor: 15.0,
                period_s: 30.0,
                duty: 0.2,
            })
            .generate();
        // Count arrivals per 6-second bucket; peak buckets must dwarf
        // trough buckets (paper §1: 10-20x within 30 s).
        let mut buckets = [0u32; 50];
        for r in &trace {
            buckets[(r.arrival_ns as f64 / 6e9) as usize] += 1;
        }
        let peak = *buckets.iter().max().unwrap() as f64;
        let trough_avg = buckets
            .iter()
            .filter(|&&b| b > 0)
            .map(|&b| b as f64)
            .fold(f64::INFINITY, f64::min);
        assert!(
            peak / trough_avg.max(1.0) >= 5.0,
            "peak {peak} vs trough {trough_avg}"
        );
    }
}
