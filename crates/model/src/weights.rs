//! Model weights loading (loading-phase stage ❷, paper §2.1).
//!
//! Streams weight tensors from the simulated SSD array into the
//! pre-allocated device buffers. The duration model is pipelined
//! storage→device bandwidth; the paper's §7.3 interference (host-to-device
//! copies blocked behind a concurrently running profiling forwarding) is
//! applied through a slowdown factor chosen by the cold-start pipeline.

use crate::structure::ModelInstance;
use medusa_gpu::{DigestState, GpuResult, ProcessRuntime, SimDuration, SimStorage};

/// Pure duration of loading `spec`'s weights with `slowdown ∈ (0, 1]`
/// (1.0 = no interference).
pub fn load_duration(bytes: u64, cost: &medusa_gpu::CostModel, slowdown: f64) -> SimDuration {
    SimStorage::from_cost_model(cost).pipelined_to_device(bytes, cost.h2d_bandwidth, slowdown)
}

/// Writes every weight tensor's content digest (the side effect of loading)
/// without advancing the clock. Exposed separately so asynchronous pipelines
/// can account for time on their own lanes.
///
/// # Errors
///
/// Returns a driver error if a weight pointer is stale.
pub fn apply_weights(rt: &mut ProcessRuntime, inst: &ModelInstance) -> GpuResult<()> {
    let model = inst.spec().name().to_string();
    for t in inst.weight_tensors() {
        rt.memory_mut()
            .write_digest(t.ptr().addr(), weight_digest(&model, t.name()))?;
    }
    Ok(())
}

/// Synchronously loads all weights: advances the clock by the pipelined
/// transfer duration and fills tensor contents.
///
/// # Errors
///
/// Returns a driver error if a weight pointer is stale.
pub fn load_weights(
    rt: &mut ProcessRuntime,
    inst: &ModelInstance,
    slowdown: f64,
) -> GpuResult<SimDuration> {
    let d = load_duration(inst.weight_bytes(), rt.cost(), slowdown);
    rt.advance(d);
    apply_weights(rt, inst)?;
    Ok(d)
}

/// The canonical content digest of a weight tensor.
pub fn weight_digest(model: &str, tensor: &str) -> medusa_gpu::Digest {
    let mut s = DigestState::new("model_weights");
    s.absorb_bytes(model.as_bytes());
    s.absorb_bytes(tensor.as_bytes());
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::build_catalog;
    use crate::spec::ModelSpec;
    use medusa_gpu::{CostModel, GpuSpec};

    #[test]
    fn qwen4b_load_time_matches_figure8() {
        let spec = ModelSpec::by_name("Qwen1.5-4B").unwrap();
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            1,
        );
        let inst = ModelInstance::initialize(&mut rt, &spec).unwrap();
        let d = load_weights(&mut rt, &inst, 1.0).unwrap();
        let secs = d.as_secs_f64();
        // Paper Fig. 8a: 0.39 s.
        assert!(
            (0.30..0.50).contains(&secs),
            "weights load {secs}s out of band"
        );
        // Contents are present.
        let t = inst.layers()[0].qkv.ptr();
        assert_eq!(
            rt.memory().read_digest(t.addr()).unwrap(),
            weight_digest(spec.name(), "layers.0.qkv_proj")
        );
    }

    #[test]
    fn interference_slows_loading() {
        let cost = CostModel::default();
        let free = load_duration(1 << 30, &cost, 1.0);
        let interfered = load_duration(1 << 30, &cost, cost.h2d_interference_factor);
        assert!(interfered > free);
    }

    #[test]
    fn digests_are_per_model_and_tensor() {
        assert_ne!(weight_digest("a", "t"), weight_digest("b", "t"));
        assert_ne!(weight_digest("a", "t"), weight_digest("a", "u"));
        assert_eq!(weight_digest("a", "t"), weight_digest("a", "t"));
    }
}
