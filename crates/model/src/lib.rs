//! # medusa-model
//!
//! LLM model substrate for the Medusa (ASPLOS'25) reproduction: the ten
//! models of the paper's Table 1, their kernel libraries and per-layer
//! kernel schedules, deterministic model structure initialization, weight
//! loading from simulated storage, a working tokenizer, and the forward
//! pass in all the flavours the paper needs (eager, warm-up, capture,
//! first-layer triggering, graph replay).
//!
//! The key property this crate provides to Medusa's analysis is
//! **deterministic control flow**: for a given model, every process launch
//! performs the same allocations and kernel launches in the same order —
//! only the raw addresses differ (paper §3, "Key ideas").
//!
//! ## Example
//!
//! ```rust
//! use medusa_gpu::{CostModel, GpuSpec, ProcessRuntime};
//! use medusa_model::{build_catalog, load_weights, ModelInstance, ModelSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model");
//! let mut rt = ProcessRuntime::new(
//!     build_catalog(&spec),
//!     GpuSpec::a100_40gb(),
//!     CostModel::default(),
//!     42,
//! );
//! let inst = ModelInstance::initialize(&mut rt, &spec)?;
//! load_weights(&mut rt, &inst, 1.0)?;
//! println!("loaded {} bytes of weights at {}", inst.weight_bytes(), rt.now());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod forward;
mod kernels;
pub mod schedule;
mod spec;
mod structure;
mod tokenizer;
mod weights;

pub use forward::{
    capture_ctx_len, capture_decode_graph, capture_first_layer_graph, decode_step_with_graph,
    handwritten_triggering_kernels, input_digest, run_eager_forward, run_eager_forward_step,
    run_handwritten_triggers, warmup_decode, warmup_first_layer, write_ws_inputs, ForwardConfig,
    ForwardOutput, KvView, Phase,
};
pub use kernels::{
    batch_bucket, build_catalog, GemmFamily, KernelAddrs, KernelRole, CUBLAS_SIM_LIB, GEMM_BUCKETS,
    MODEL_KERNELS_LIB,
};
pub use spec::ModelSpec;
pub use structure::{
    magic_digest, LayerWeights, ModelInstance, WeightTensor, Workspace, LOGICAL_HEAD_TENSORS,
    LOGICAL_TENSORS_PER_LAYER,
};
pub use tokenizer::Tokenizer;
pub use weights::{apply_weights, load_duration, load_weights, weight_digest};
