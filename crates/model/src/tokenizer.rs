//! Tokenizer loading and a working greedy longest-match tokenizer
//! (loading-phase stage ❸, paper §2.1).
//!
//! Load time is dominated by parsing the vocabulary file, which is why
//! large-vocabulary models (Qwen1.5: 151 936 entries) spend visibly longer
//! in this stage (Fig. 2 / Fig. 8a: 0.21 s for Qwen1.5 4B). The tokenizer
//! itself is a real, deterministic byte-fallback greedy tokenizer: every
//! single byte is a token, plus generated multi-byte merges, so
//! `decode(encode(s)) == s` always holds.

use medusa_gpu::{CostModel, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A loaded tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab: Vec<Vec<u8>>,
    lookup: HashMap<Vec<u8>, u32>,
    max_piece: usize,
}

impl Tokenizer {
    /// Builds the tokenizer for a `vocab_size`-entry vocabulary and returns
    /// it together with the simulated load duration.
    ///
    /// The vocabulary is deterministic in `vocab_size`: 256 byte tokens plus
    /// generated multi-byte pieces over common ASCII.
    pub fn load(vocab_size: u32, cost: &CostModel) -> (Self, SimDuration) {
        let duration = SimDuration::from_nanos(
            cost.tokenizer_fixed_ns + cost.tokenizer_per_entry_ns * vocab_size as u64,
        );
        (Self::build(vocab_size), duration)
    }

    fn build(vocab_size: u32) -> Self {
        let mut vocab: Vec<Vec<u8>> = (0u16..256).map(|b| vec![b as u8]).collect();
        let mut rng = SmallRng::seed_from_u64(vocab_size as u64);
        const CHARS: &[u8] = b"etaoinshrdlucmfwypvbgkjqxz ETAOIN0123456789.,;:-_'\"";
        let mut seen: HashMap<Vec<u8>, ()> = vocab.iter().cloned().map(|v| (v, ())).collect();
        while (vocab.len() as u32) < vocab_size.max(256) {
            let len = 2 + (rng.gen::<usize>() % 7);
            let piece: Vec<u8> = (0..len)
                .map(|_| CHARS[rng.gen::<usize>() % CHARS.len()])
                .collect();
            if seen.insert(piece.clone(), ()).is_none() {
                vocab.push(piece);
            }
        }
        let lookup = vocab
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        let max_piece = vocab.iter().map(Vec::len).max().unwrap_or(1);
        Tokenizer {
            vocab,
            lookup,
            max_piece,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> u32 {
        self.vocab.len() as u32
    }

    /// Encodes text into token ids by greedy longest match with byte
    /// fallback.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let bytes = text.as_bytes();
        let mut out = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            let mut matched = None;
            let end = (i + self.max_piece).min(bytes.len());
            for j in (i + 1..=end).rev() {
                if let Some(&id) = self.lookup.get(&bytes[i..j]) {
                    matched = Some((id, j));
                    break;
                }
            }
            let (id, next) = matched.expect("single bytes always match");
            out.push(id);
            i = next;
        }
        out
    }

    /// Decodes token ids back into a byte string.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of vocabulary range.
    pub fn decode(&self, ids: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        for &id in ids {
            out.extend_from_slice(&self.vocab[id as usize]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_lossless() {
        let (t, _) = Tokenizer::load(32_000, &CostModel::default());
        for s in [
            "hello world",
            "the rain in spain",
            "",
            "ünïcödé 😀 text",
            "aaaaaa",
        ] {
            let ids = t.encode(s);
            assert_eq!(t.decode(&ids), s.as_bytes(), "roundtrip failed for {s:?}");
        }
    }

    #[test]
    fn merges_compress_common_text() {
        let (t, _) = Tokenizer::load(151_936, &CostModel::default());
        let s = "the estate reestablishes the reinstatement";
        let ids = t.encode(s);
        assert!(ids.len() < s.len(), "multi-byte pieces should compress");
    }

    #[test]
    fn vocab_size_is_respected_and_deterministic() {
        let (a, _) = Tokenizer::load(50_000, &CostModel::default());
        let (b, _) = Tokenizer::load(50_000, &CostModel::default());
        assert_eq!(a.vocab_size(), 50_000);
        assert_eq!(a.encode("determinism"), b.encode("determinism"));
    }

    #[test]
    fn load_time_scales_with_vocab() {
        let cost = CostModel::default();
        let (_, small) = Tokenizer::load(32_000, &cost);
        let (_, large) = Tokenizer::load(151_936, &cost);
        assert!(large > small);
        // Paper Fig. 8a: ~0.21 s for Qwen1.5's 151936-entry vocab.
        let secs = large.as_secs_f64();
        assert!(
            (0.15..0.30).contains(&secs),
            "tokenizer load {secs}s out of band"
        );
    }

    #[test]
    fn tiny_vocab_still_covers_all_bytes() {
        let (t, _) = Tokenizer::load(10, &CostModel::default());
        assert_eq!(t.vocab_size(), 256);
        let ids = t.encode("\u{0}\u{7f}abc");
        assert_eq!(t.decode(&ids), "\u{0}\u{7f}abc".as_bytes());
    }
}
