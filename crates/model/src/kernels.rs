//! Kernel roles and the per-model library catalog.
//!
//! A model's forward pass launches kernels from two simulated libraries:
//!
//! * `libmodel_kernels.so` — the framework's own kernels (norms, rotary
//!   embedding, paged attention, activation, sampling glue). All **exported**
//!   and restorable through `dlsym` + `cudaGetFuncBySymbol` (paper §5).
//! * `libcublas_sim.so` — closed-source GEMM kernels. **Hidden** from the
//!   symbol table and lazily initialized (first launch synchronizes), so
//!   they force warm-up before capture and triggering-kernels during
//!   restoration — the two pain points of paper §2.3/§5.
//!
//! GEMM kernels come in per-projection *families* with batch-*bucket*
//! variants (cuBLAS heuristics pick different kernels for different shapes),
//! which is why every batch size needs its own graph and its own module
//! coverage. Auxiliary split-K reduction kernels pad each graph to make
//! per-model node counts match Table 1 exactly (see [`crate::schedule`]).

use crate::schedule;
use crate::spec::ModelSpec;
use medusa_gpu::{
    CostClass, GpuResult, KernelDef, KernelSig, LibraryCatalog, ParamKind, ProcessRuntime,
};
use std::sync::Arc;

/// Name of the exported framework kernel library.
pub const MODEL_KERNELS_LIB: &str = "libmodel_kernels.so";
/// Name of the hidden GEMM kernel library.
pub const CUBLAS_SIM_LIB: &str = "libcublas_sim.so";
/// Name of the collective-communication library (tensor parallelism, §8).
pub const NCCL_SIM_LIB: &str = "libnccl_sim.so";

/// GEMM projection families. Each family lives in its own CUDA module, so
/// launching any variant of a family loads the whole family's module —
/// including its hidden split-K kernels (triggering-kernels, paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmFamily {
    /// QKV projection.
    Qkv,
    /// Attention output projection (shared by the LM head).
    Out,
    /// MLP gate+up projection.
    GateUp,
    /// MLP down projection.
    Down,
}

impl GemmFamily {
    /// All families, in module order.
    pub const ALL: [GemmFamily; 4] = [
        GemmFamily::Qkv,
        GemmFamily::Out,
        GemmFamily::GateUp,
        GemmFamily::Down,
    ];

    fn tag(self) -> &'static str {
        match self {
            GemmFamily::Qkv => "qkv",
            GemmFamily::Out => "out",
            GemmFamily::GateUp => "gateup",
            GemmFamily::Down => "down",
        }
    }

    fn index(self) -> usize {
        match self {
            GemmFamily::Qkv => 0,
            GemmFamily::Out => 1,
            GemmFamily::GateUp => 2,
            GemmFamily::Down => 3,
        }
    }
}

/// Number of batch buckets per GEMM family.
pub const GEMM_BUCKETS: usize = 4;

/// The batch bucket a decode batch size falls into (cuBLAS shape heuristic).
pub fn batch_bucket(batch: u32) -> usize {
    match batch {
        0..=4 => 0,
        5..=32 => 1,
        33..=128 => 2,
        _ => 3,
    }
}

/// Semantic kernel roles launched by the forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelRole {
    /// Pre-attention / final RMS norm.
    FusedRmsNorm,
    /// Residual-add + RMS norm.
    FusedAddRmsNorm,
    /// Rotary position embedding.
    Rotary,
    /// KV-cache scatter; reads two 4-byte permanent magic buffers (§4.3).
    ReshapeAndCache,
    /// Paged attention, small-batch variant.
    PagedAttentionV1,
    /// Paged attention, large-batch variant.
    PagedAttentionV2,
    /// SiLU activation + elementwise multiply.
    SiluAndMul,
    /// Embedding lookup.
    EmbedTokens,
    /// Greedy sampling over logits.
    GatherLogits,
    /// Input metadata bookkeeping between decode steps.
    AdvanceStep,
    /// Tensor-parallel all-reduce over a shard's partial output (§8
    /// multi-GPU support).
    AllReduce,
    /// A hidden GEMM variant (family × batch bucket).
    Gemm(GemmFamily, usize),
    /// A hidden split-K reduction auxiliary kernel (batch bucket × index).
    /// Split-K reductions accompany specific GEMM shape variants, so they
    /// are bucket-specific like the GEMMs themselves.
    SplitKAux(usize, usize),
}

impl KernelRole {
    /// The mangled kernel name for this role.
    pub fn kernel_name(self) -> String {
        match self {
            KernelRole::FusedRmsNorm => "fused_rms_norm_f16".to_string(),
            KernelRole::FusedAddRmsNorm => "fused_add_rms_norm_f16".to_string(),
            KernelRole::Rotary => "rotary_embedding_neox_f16".to_string(),
            KernelRole::ReshapeAndCache => "reshape_and_cache_f16".to_string(),
            KernelRole::PagedAttentionV1 => "paged_attention_v1_f16".to_string(),
            KernelRole::PagedAttentionV2 => "paged_attention_v2_f16".to_string(),
            KernelRole::SiluAndMul => "silu_and_mul_f16".to_string(),
            KernelRole::EmbedTokens => "embedding_lookup_f16".to_string(),
            KernelRole::GatherLogits => "greedy_sample_f16".to_string(),
            KernelRole::AdvanceStep => "advance_step_meta".to_string(),
            KernelRole::AllReduce => "nccl_all_reduce_ring_f16".to_string(),
            KernelRole::Gemm(f, b) => format!("ampere_h16816gemm_{}_b{}", f.tag(), b),
            KernelRole::SplitKAux(b, i) => format!("ampere_splitk_reduce_b{b}_{i}"),
        }
    }

    /// The library this role's kernel lives in.
    pub fn library(self) -> &'static str {
        match self {
            KernelRole::Gemm(..) | KernelRole::SplitKAux(..) => CUBLAS_SIM_LIB,
            KernelRole::AllReduce => NCCL_SIM_LIB,
            _ => MODEL_KERNELS_LIB,
        }
    }
}

fn sig(kinds: &[ParamKind]) -> KernelSig {
    KernelSig::new(kinds.to_vec())
}

fn role_sig(role: KernelRole) -> KernelSig {
    use ParamKind::*;
    match role {
        KernelRole::FusedRmsNorm => sig(&[PtrIn, PtrIn, PtrOut, Scalar4, Scalar4]),
        KernelRole::FusedAddRmsNorm => sig(&[PtrInOut, PtrIn, PtrIn, PtrOut, Scalar4]),
        KernelRole::Rotary => sig(&[PtrIn, PtrInOut, Scalar4, Scalar8]),
        KernelRole::ReshapeAndCache => {
            sig(&[PtrIn, PtrInOut, PtrInOut, PtrIn, PtrIn, PtrIn, Scalar4])
        }
        KernelRole::PagedAttentionV1 | KernelRole::PagedAttentionV2 => sig(&[
            PtrIn, PtrIn, PtrIn, PtrIn, PtrOut, Scalar8, Scalar4, Scalar4,
        ]),
        KernelRole::SiluAndMul => sig(&[PtrIn, PtrOut, Scalar4]),
        KernelRole::EmbedTokens => sig(&[PtrIn, PtrIn, PtrOut, Scalar4]),
        KernelRole::GatherLogits => sig(&[PtrIn, PtrOut, Scalar4]),
        KernelRole::AdvanceStep => sig(&[PtrInOut, PtrInOut, Scalar4]),
        KernelRole::AllReduce => sig(&[PtrInOut, Scalar4, Scalar4]),
        KernelRole::Gemm(..) => sig(&[PtrIn, PtrIn, PtrOut, Scalar4, Scalar4, Scalar4]),
        KernelRole::SplitKAux(..) => sig(&[PtrIn, PtrOut, Scalar4]),
    }
}

fn role_class(role: KernelRole) -> CostClass {
    match role {
        KernelRole::Gemm(..) | KernelRole::PagedAttentionV1 | KernelRole::PagedAttentionV2 => {
            CostClass::ComputeBound
        }
        KernelRole::AdvanceStep | KernelRole::GatherLogits | KernelRole::SplitKAux(..) => {
            CostClass::Auxiliary
        }
        _ => CostClass::MemoryBound,
    }
}

fn def(role: KernelRole, exported: bool) -> KernelDef {
    KernelDef::new(
        role.kernel_name(),
        exported,
        role_sig(role),
        role_class(role),
    )
}

/// Builds the library catalog visible to an instance serving `spec`.
///
/// The auxiliary split-K kernel count is model-specific (Table 1
/// calibration, [`schedule::aux_kernel_count`]).
pub fn build_catalog(spec: &ModelSpec) -> Arc<LibraryCatalog> {
    use medusa_gpu::{LibrarySpec, ModuleSpec};

    let framework = LibrarySpec::new(
        MODEL_KERNELS_LIB,
        false,
        vec![
            ModuleSpec::new(
                "norm_ops",
                vec![
                    def(KernelRole::FusedRmsNorm, true),
                    def(KernelRole::FusedAddRmsNorm, true),
                ],
            ),
            ModuleSpec::new(
                "pos_cache_ops",
                vec![
                    def(KernelRole::Rotary, true),
                    def(KernelRole::ReshapeAndCache, true),
                ],
            ),
            ModuleSpec::new(
                "act_ops",
                vec![
                    def(KernelRole::SiluAndMul, true),
                    def(KernelRole::EmbedTokens, true),
                ],
            ),
            ModuleSpec::new(
                "attn_ops",
                vec![
                    def(KernelRole::PagedAttentionV1, true),
                    def(KernelRole::PagedAttentionV2, true),
                ],
            ),
            ModuleSpec::new(
                "sampler_ops",
                vec![
                    def(KernelRole::GatherLogits, true),
                    def(KernelRole::AdvanceStep, true),
                ],
            ),
        ],
    );

    // cuBLAS-like module layout: one module per (family × batch bucket),
    // mirroring real cuBLAS where different shapes dispatch to different
    // cubins. This is why handwritten triggering-kernels "require finding
    // new triggering kernels given different batch sizes" (paper §5.1) and
    // why the first layer of a graph's own batch size suffices (§5.2).
    let aux_count = schedule::aux_kernel_count(spec);
    let mut modules = Vec::with_capacity(GEMM_BUCKETS * 4);
    for bucket in 0..GEMM_BUCKETS {
        for (fi, &f) in GemmFamily::ALL.iter().enumerate() {
            let mut ks = vec![def(KernelRole::Gemm(f, bucket), false)];
            // This bucket's split-K reductions, spread over the families.
            ks.extend(
                (0..aux_count)
                    .filter(|i| i % 4 == fi)
                    .map(|i| def(KernelRole::SplitKAux(bucket, i), false)),
            );
            modules.push(ModuleSpec::new(format!("gemm_{}_b{}", f.tag(), bucket), ks));
        }
    }
    let cublas = LibrarySpec::new(
        CUBLAS_SIM_LIB,
        true, // lazy init with device sync on first launch (paper §2.3)
        modules,
    );
    // NCCL-like collectives: exported, but with a synchronizing lazy init
    // (communicator setup), so tensor-parallel warm-up matters too.
    let nccl = LibrarySpec::new(
        NCCL_SIM_LIB,
        true,
        vec![ModuleSpec::new(
            "collectives",
            vec![def(KernelRole::AllReduce, true)],
        )],
    );

    LibraryCatalog::new(vec![framework, cublas, nccl])
}

/// Ground-truth per-process kernel addresses, resolved at model structure
/// initialization (the framework links these statically; `dlsym` visibility
/// only matters for Medusa's *restoration*).
#[derive(Debug, Clone)]
pub struct KernelAddrs {
    fused_rms_norm: u64,
    fused_add_rms_norm: u64,
    rotary: u64,
    reshape_and_cache: u64,
    paged_v1: u64,
    paged_v2: u64,
    silu_and_mul: u64,
    embed_tokens: u64,
    gather_logits: u64,
    advance_step: u64,
    all_reduce: u64,
    gemm: [[u64; GEMM_BUCKETS]; 4],
    aux: Vec<Vec<u64>>, // [bucket][i]
}

impl KernelAddrs {
    /// Resolves every role's address in `rt`. Both libraries must already be
    /// `dlopen`ed (structure initialization does this).
    ///
    /// # Errors
    ///
    /// Returns a driver error if a kernel is missing from the catalog.
    pub fn resolve(rt: &ProcessRuntime, spec: &ModelSpec) -> GpuResult<Self> {
        let find = |role: KernelRole| -> GpuResult<u64> {
            let kref = rt
                .catalog()
                .find_kernel(role.library(), &role.kernel_name())?;
            Ok(rt
                .kernel_address(kref)
                .expect("library opened during structure init"))
        };
        let mut gemm = [[0u64; GEMM_BUCKETS]; 4];
        for f in GemmFamily::ALL {
            for (b, slot) in gemm[f.index()].iter_mut().enumerate() {
                *slot = find(KernelRole::Gemm(f, b))?;
            }
        }
        let aux = (0..GEMM_BUCKETS)
            .map(|b| {
                (0..schedule::aux_kernel_count(spec))
                    .map(|i| find(KernelRole::SplitKAux(b, i)))
                    .collect::<GpuResult<Vec<_>>>()
            })
            .collect::<GpuResult<Vec<_>>>()?;
        Ok(KernelAddrs {
            all_reduce: find(KernelRole::AllReduce)?,
            fused_rms_norm: find(KernelRole::FusedRmsNorm)?,
            fused_add_rms_norm: find(KernelRole::FusedAddRmsNorm)?,
            rotary: find(KernelRole::Rotary)?,
            reshape_and_cache: find(KernelRole::ReshapeAndCache)?,
            paged_v1: find(KernelRole::PagedAttentionV1)?,
            paged_v2: find(KernelRole::PagedAttentionV2)?,
            silu_and_mul: find(KernelRole::SiluAndMul)?,
            embed_tokens: find(KernelRole::EmbedTokens)?,
            gather_logits: find(KernelRole::GatherLogits)?,
            advance_step: find(KernelRole::AdvanceStep)?,
            gemm,
            aux,
        })
    }

    /// Address of a role in this process.
    ///
    /// # Panics
    ///
    /// Panics if a [`KernelRole::SplitKAux`] index exceeds the model's
    /// auxiliary kernel count.
    pub fn addr(&self, role: KernelRole) -> u64 {
        match role {
            KernelRole::FusedRmsNorm => self.fused_rms_norm,
            KernelRole::FusedAddRmsNorm => self.fused_add_rms_norm,
            KernelRole::Rotary => self.rotary,
            KernelRole::ReshapeAndCache => self.reshape_and_cache,
            KernelRole::PagedAttentionV1 => self.paged_v1,
            KernelRole::PagedAttentionV2 => self.paged_v2,
            KernelRole::SiluAndMul => self.silu_and_mul,
            KernelRole::EmbedTokens => self.embed_tokens,
            KernelRole::GatherLogits => self.gather_logits,
            KernelRole::AdvanceStep => self.advance_step,
            KernelRole::AllReduce => self.all_reduce,
            KernelRole::Gemm(f, b) => self.gemm[f.index()][b],
            KernelRole::SplitKAux(b, i) => self.aux[b][i],
        }
    }

    /// Number of auxiliary split-K kernels available per bucket.
    pub fn aux_count(&self) -> usize {
        self.aux.first().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medusa_gpu::{CostModel, GpuError, GpuSpec};

    fn spec() -> ModelSpec {
        ModelSpec::by_name("Qwen1.5-4B").unwrap()
    }

    #[test]
    fn buckets_partition_batches() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(4), 0);
        assert_eq!(batch_bucket(5), 1);
        assert_eq!(batch_bucket(32), 1);
        assert_eq!(batch_bucket(33), 2);
        assert_eq!(batch_bucket(128), 2);
        assert_eq!(batch_bucket(129), 3);
        assert_eq!(batch_bucket(256), 3);
    }

    #[test]
    fn catalog_exports_framework_hides_gemms() {
        let s = spec();
        let cat = build_catalog(&s);
        let mut rt = ProcessRuntime::new(cat, GpuSpec::a100_40gb(), CostModel::default(), 1);
        let fw = rt.dlopen(MODEL_KERNELS_LIB).unwrap();
        let cb = rt.dlopen(CUBLAS_SIM_LIB).unwrap();
        assert!(rt.dlsym(fw, "fused_rms_norm_f16").is_ok());
        assert!(rt.dlsym(fw, "paged_attention_v2_f16").is_ok());
        assert!(matches!(
            rt.dlsym(cb, "ampere_h16816gemm_qkv_b0"),
            Err(GpuError::SymbolHidden { .. })
        ));
        assert!(matches!(
            rt.dlsym(cb, "ampere_splitk_reduce_b0_0"),
            Err(GpuError::SymbolHidden { .. })
        ));
    }

    #[test]
    fn aux_kernels_cover_every_family_module() {
        let s = spec();
        let cat = build_catalog(&s);
        let idx = cat.lib_index(CUBLAS_SIM_LIB).unwrap();
        let lib = cat.lib(idx);
        // One module per (family x bucket), cuBLAS-style.
        assert_eq!(lib.modules().len(), 4 * GEMM_BUCKETS);
        let aux_total: usize = lib
            .modules()
            .iter()
            .map(|m| {
                m.kernels()
                    .iter()
                    .filter(|k| k.name().contains("splitk"))
                    .count()
            })
            .sum();
        assert_eq!(aux_total, GEMM_BUCKETS * schedule::aux_kernel_count(&s));
        // With ≥4 aux kernels per bucket, each module holds at least one.
        if schedule::aux_kernel_count(&s) >= 4 {
            for m in lib.modules() {
                assert!(m.kernels().iter().any(|k| k.name().contains("splitk")));
            }
        }
    }

    #[test]
    fn kernel_addrs_resolve_all_roles() {
        let s = spec();
        let cat = build_catalog(&s);
        let mut rt = ProcessRuntime::new(cat, GpuSpec::a100_40gb(), CostModel::default(), 9);
        rt.dlopen(MODEL_KERNELS_LIB).unwrap();
        rt.dlopen(CUBLAS_SIM_LIB).unwrap();
        rt.dlopen(NCCL_SIM_LIB).unwrap();
        let addrs = KernelAddrs::resolve(&rt, &s).unwrap();
        assert_ne!(addrs.addr(KernelRole::FusedRmsNorm), 0);
        assert_ne!(addrs.addr(KernelRole::Gemm(GemmFamily::Down, 3)), 0);
        assert!(addrs.aux_count() > 0);
        assert_ne!(
            addrs.addr(KernelRole::SplitKAux(0, 0)),
            addrs.addr(KernelRole::SplitKAux(0, 1))
        );
        assert_ne!(
            addrs.addr(KernelRole::SplitKAux(0, 0)),
            addrs.addr(KernelRole::SplitKAux(1, 0))
        );
        // Addresses differ per process seed.
        let mut rt2 = ProcessRuntime::new(
            build_catalog(&s),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            10,
        );
        rt2.dlopen(MODEL_KERNELS_LIB).unwrap();
        rt2.dlopen(CUBLAS_SIM_LIB).unwrap();
        rt2.dlopen(NCCL_SIM_LIB).unwrap();
        let addrs2 = KernelAddrs::resolve(&rt2, &s).unwrap();
        assert_ne!(
            addrs.addr(KernelRole::EmbedTokens),
            addrs2.addr(KernelRole::EmbedTokens)
        );
    }

    #[test]
    fn role_names_are_stable_and_unique() {
        let roles = [
            KernelRole::FusedRmsNorm,
            KernelRole::FusedAddRmsNorm,
            KernelRole::Rotary,
            KernelRole::ReshapeAndCache,
            KernelRole::PagedAttentionV1,
            KernelRole::PagedAttentionV2,
            KernelRole::SiluAndMul,
            KernelRole::EmbedTokens,
            KernelRole::GatherLogits,
            KernelRole::AdvanceStep,
            KernelRole::Gemm(GemmFamily::Qkv, 0),
            KernelRole::Gemm(GemmFamily::Qkv, 1),
            KernelRole::SplitKAux(0, 0),
            KernelRole::SplitKAux(1, 0),
        ];
        let names: Vec<_> = roles.iter().map(|r| r.kernel_name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
