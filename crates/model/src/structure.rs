//! Model structure initialization (loading-phase stage ❶, paper §2.1).
//!
//! Instantiates the model: opens the kernel libraries, resolves kernel
//! addresses, and allocates every weight tensor on the device **in a
//! deterministic order** — the property Medusa's indirect index pointers
//! rely on ("the layers being initialized sequentially", paper §3).

use crate::kernels::{self, KernelAddrs};
use crate::spec::ModelSpec;
use medusa_gpu::{AllocTag, DevicePtr, GpuResult, ProcessRuntime, SimDuration};

/// A named weight tensor living on the device.
#[derive(Debug, Clone)]
pub struct WeightTensor {
    name: String,
    ptr: DevicePtr,
    bytes: u64,
}

impl WeightTensor {
    fn alloc(rt: &mut ProcessRuntime, name: String, bytes: u64) -> GpuResult<Self> {
        let ptr = rt.cuda_malloc(bytes, AllocTag::Weights)?;
        Ok(WeightTensor { name, ptr, bytes })
    }

    /// Tensor name (e.g. `layers.3.qkv_proj`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device pointer to the tensor data.
    pub fn ptr(&self) -> DevicePtr {
        self.ptr
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// The weight tensors of one transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Fused QKV projection weight.
    pub qkv: WeightTensor,
    /// Attention output projection weight.
    pub o: WeightTensor,
    /// Fused gate+up MLP weight.
    pub gate_up: WeightTensor,
    /// Down MLP weight.
    pub down: WeightTensor,
    /// Pre-attention norm weight.
    pub norm1: WeightTensor,
    /// Pre-MLP norm weight.
    pub norm2: WeightTensor,
    /// Rotary inverse frequencies.
    pub inv_freq: WeightTensor,
}

/// Persistent decode workspace: input/activation buffers shared by all
/// captured graphs (vLLM allocates these once, at the maximum batch size,
/// before capturing — they are never freed, so graph nodes may safely
/// reference them across replays).
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Input token ids.
    pub ids: DevicePtr,
    /// Input positions.
    pub positions: DevicePtr,
    /// KV slot mapping.
    pub slots: DevicePtr,
    /// Main hidden-state activation.
    pub hidden: DevicePtr,
    /// Residual stream.
    pub residual: DevicePtr,
    /// QKV projection output.
    pub qkv: DevicePtr,
    /// Attention output.
    pub attn_out: DevicePtr,
    /// Gate+up projection output.
    pub gate_up: DevicePtr,
    /// Activated MLP intermediate.
    pub mlp_act: DevicePtr,
    /// LM-head logits.
    pub logits: DevicePtr,
    /// Sampled next tokens.
    pub next_tokens: DevicePtr,
}

impl Workspace {
    /// `(label, pointer)` pairs for every workspace buffer, in allocation
    /// order.
    pub fn labeled(&self) -> Vec<(String, DevicePtr)> {
        [
            ("ws.ids", self.ids),
            ("ws.positions", self.positions),
            ("ws.slots", self.slots),
            ("ws.hidden", self.hidden),
            ("ws.residual", self.residual),
            ("ws.qkv", self.qkv),
            ("ws.attn_out", self.attn_out),
            ("ws.gate_up", self.gate_up),
            ("ws.mlp_act", self.mlp_act),
            ("ws.logits", self.logits),
            ("ws.next_tokens", self.next_tokens),
        ]
        .into_iter()
        .map(|(n, p)| (n.to_string(), p))
        .collect()
    }
}

/// A model instantiated in one process: resolved kernel addresses, weight
/// tensors, and (once serving begins) the persistent decode workspace and
/// per-layer permanent magic buffers.
#[derive(Debug)]
pub struct ModelInstance {
    spec: ModelSpec,
    rank: u32,
    tp: u32,
    addrs: KernelAddrs,
    embed: WeightTensor,
    layers: Vec<LayerWeights>,
    final_norm: WeightTensor,
    lm_head: WeightTensor,
    workspace: Option<Workspace>,
    /// Per-layer pairs of 4-byte permanent launch-magic buffers (paper §4.3:
    /// ~9 % of kernels need two such buffers whose contents must be
    /// restored).
    magic: Vec<(DevicePtr, DevicePtr)>,
    /// Scratch buffers allocated *during* graph capture; referenced by
    /// auxiliary nodes and only released at engine teardown.
    graph_scratch: Vec<DevicePtr>,
}

/// Logical tensor objects created by the framework during structure
/// initialization (drives CPU cost; the fused buffers below are fewer).
pub const LOGICAL_TENSORS_PER_LAYER: u64 = 10;
/// Logical non-layer tensors (embedding, final norm, LM head).
pub const LOGICAL_HEAD_TENSORS: u64 = 3;

impl ModelInstance {
    /// Runs the model structure initialization stage: opens libraries,
    /// resolves kernels, allocates all weight tensors deterministically, and
    /// charges the calibrated per-tensor framework cost.
    ///
    /// # Errors
    ///
    /// Returns driver errors (out of memory, missing kernels).
    pub fn initialize(rt: &mut ProcessRuntime, spec: &ModelSpec) -> GpuResult<Self> {
        Self::initialize_sharded(rt, spec, 0, 1)
    }

    /// Like [`ModelInstance::initialize`] for one tensor-parallel shard:
    /// rank `rank` of a `tp`-way instance (paper §8 multi-GPU support).
    /// Projection weights, KV heads and the MLP intermediate are divided
    /// across ranks; norms are replicated; the forward pass all-reduces
    /// partial outputs.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= tp` or `tp` is 0.
    ///
    /// # Errors
    ///
    /// Returns driver errors (out of memory, missing kernels).
    pub fn initialize_sharded(
        rt: &mut ProcessRuntime,
        spec: &ModelSpec,
        rank: u32,
        tp: u32,
    ) -> GpuResult<Self> {
        assert!(tp > 0 && rank < tp, "invalid shard: rank {rank} of {tp}");
        rt.dlopen(kernels::MODEL_KERNELS_LIB)?;
        rt.dlopen(kernels::CUBLAS_SIM_LIB)?;
        rt.dlopen(kernels::NCCL_SIM_LIB)?;
        let addrs = KernelAddrs::resolve(rt, spec)?;

        let tensors = LOGICAL_TENSORS_PER_LAYER * spec.layers() as u64 + LOGICAL_HEAD_TENSORS;
        rt.advance(SimDuration::from_nanos(
            rt.cost().structure_fixed_ns + rt.cost().structure_per_tensor_ns * tensors,
        ));

        let sizes = LayerByteSplit::for_shard(spec, tp);
        let embed = WeightTensor::alloc(rt, "embed_tokens".into(), sizes.embed)?;
        let mut layers = Vec::with_capacity(spec.layers() as usize);
        for l in 0..spec.layers() {
            layers.push(LayerWeights {
                qkv: WeightTensor::alloc(rt, format!("layers.{l}.qkv_proj"), sizes.qkv)?,
                o: WeightTensor::alloc(rt, format!("layers.{l}.o_proj"), sizes.o)?,
                gate_up: WeightTensor::alloc(
                    rt,
                    format!("layers.{l}.gate_up_proj"),
                    sizes.gate_up,
                )?,
                down: WeightTensor::alloc(rt, format!("layers.{l}.down_proj"), sizes.down)?,
                norm1: WeightTensor::alloc(rt, format!("layers.{l}.input_norm"), sizes.norm)?,
                norm2: WeightTensor::alloc(rt, format!("layers.{l}.post_attn_norm"), sizes.norm)?,
                inv_freq: WeightTensor::alloc(
                    rt,
                    format!("layers.{l}.rotary_inv_freq"),
                    sizes.inv_freq,
                )?,
            });
        }
        let final_norm = WeightTensor::alloc(rt, "final_norm".into(), sizes.norm)?;
        let lm_head = WeightTensor::alloc(rt, "lm_head".into(), sizes.lm_head)?;

        Ok(ModelInstance {
            spec: spec.clone(),
            rank,
            tp,
            addrs,
            embed,
            layers,
            final_norm,
            lm_head,
            workspace: None,
            magic: Vec::new(),
            graph_scratch: Vec::new(),
        })
    }

    /// The model spec.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// This shard's tensor-parallel rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The tensor-parallel degree (1 = single GPU).
    pub fn tp(&self) -> u32 {
        self.tp
    }

    /// Resolved kernel addresses.
    pub fn addrs(&self) -> &KernelAddrs {
        &self.addrs
    }

    /// Embedding table tensor.
    pub fn embed(&self) -> &WeightTensor {
        &self.embed
    }

    /// Per-layer weights.
    pub fn layers(&self) -> &[LayerWeights] {
        &self.layers
    }

    /// Final norm weight.
    pub fn final_norm(&self) -> &WeightTensor {
        &self.final_norm
    }

    /// LM-head weight.
    pub fn lm_head(&self) -> &WeightTensor {
        &self.lm_head
    }

    /// All weight tensors in allocation order.
    pub fn weight_tensors(&self) -> Vec<&WeightTensor> {
        let mut out = vec![&self.embed];
        for l in &self.layers {
            out.extend([
                &l.qkv,
                &l.o,
                &l.gate_up,
                &l.down,
                &l.norm1,
                &l.norm2,
                &l.inv_freq,
            ]);
        }
        out.push(&self.final_norm);
        out.push(&self.lm_head);
        out
    }

    /// Total bytes of allocated weight buffers.
    pub fn weight_bytes(&self) -> u64 {
        self.weight_tensors().iter().map(|t| t.bytes()).sum()
    }

    /// The persistent decode workspace, if allocated.
    pub fn workspace(&self) -> Option<&Workspace> {
        self.workspace.as_ref()
    }

    /// Allocates the persistent decode workspace at the maximum batch size.
    /// Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`medusa_gpu::GpuError::OutOfMemory`] if device memory is
    /// exhausted.
    pub fn ensure_workspace(&mut self, rt: &mut ProcessRuntime) -> GpuResult<&Workspace> {
        if self.workspace.is_none() {
            let tp = self.tp as u64;
            let mb = self.spec.max_batch() as u64;
            let h = self.spec.hidden() as u64;
            let i = (self.spec.intermediate() as u64).div_ceil(tp);
            let v = (self.spec.vocab() as u64).div_ceil(tp);
            let qkvw = crate::schedule::qkv_width(&self.spec).div_ceil(tp);
            let mut a = |bytes: u64| rt.cuda_malloc(bytes, AllocTag::Workspace);
            let ws = Workspace {
                ids: a(mb * 4)?,
                positions: a(mb * 8)?,
                slots: a(mb * 8)?,
                hidden: a(mb * h * 2)?,
                residual: a(mb * h * 2)?,
                qkv: a(mb * qkvw * 2)?,
                attn_out: a(mb * h * 2)?,
                gate_up: a(mb * 2 * i * 2)?,
                mlp_act: a(mb * i * 2)?,
                logits: a(mb * v * 2)?,
                next_tokens: a(mb * 4)?,
            };
            self.workspace = Some(ws);
        }
        Ok(self.workspace.as_ref().expect("just ensured"))
    }

    /// Per-layer permanent magic buffer pairs (may be empty before the first
    /// decode warm-up).
    pub fn magic_buffers(&self) -> &[(DevicePtr, DevicePtr)] {
        &self.magic
    }

    /// Binds a workspace restored by Medusa's allocation replay instead of
    /// allocating one (online phase). Subsequent
    /// [`ModelInstance::ensure_workspace`] calls are no-ops.
    pub fn bind_workspace(&mut self, ws: Workspace) {
        self.workspace = Some(ws);
    }

    /// Binds restored per-layer magic buffer pairs (online phase); their
    /// contents are restored separately from the artifact's permanent
    /// buffer contents.
    ///
    /// # Panics
    ///
    /// Panics if the pair count does not match the layer count.
    pub fn bind_magic(&mut self, magic: Vec<(DevicePtr, DevicePtr)>) {
        assert_eq!(
            magic.len(),
            self.spec.layers() as usize,
            "one magic pair per layer"
        );
        self.magic = magic;
    }

    /// Lazily allocates and initializes the per-layer 4-byte magic buffers
    /// (happens on the first decode warm-up, i.e. *inside* the capturing
    /// stage, making them "permanent" to Medusa's classifier). Idempotent.
    ///
    /// # Errors
    ///
    /// Returns driver errors on allocation failure.
    pub fn ensure_magic_buffers(&mut self, rt: &mut ProcessRuntime) -> GpuResult<()> {
        if self.magic.is_empty() {
            for l in 0..self.spec.layers() {
                let a = rt.cuda_malloc(4, AllocTag::Workspace)?;
                let b = rt.cuda_malloc(4, AllocTag::Workspace)?;
                rt.memcpy_h2d(a, 4, magic_digest(l, 0))?;
                rt.memcpy_h2d(b, 4, magic_digest(l, 1))?;
                self.magic.push((a, b));
            }
        }
        Ok(())
    }

    /// Registers a per-graph scratch buffer allocated during capture.
    pub fn register_graph_scratch(&mut self, ptr: DevicePtr) {
        self.graph_scratch.push(ptr);
    }

    /// Scratch buffers allocated during captures.
    pub fn graph_scratch(&self) -> &[DevicePtr] {
        &self.graph_scratch
    }

    /// Frees all capture-time scratch buffers (engine teardown; this is what
    /// marks them *temporary* to Medusa's classifier, paper §4.3).
    ///
    /// # Errors
    ///
    /// Returns [`medusa_gpu::GpuError::InvalidFree`] if a scratch pointer
    /// was already released.
    pub fn release_graph_scratch(&mut self, rt: &mut ProcessRuntime) -> GpuResult<()> {
        for ptr in std::mem::take(&mut self.graph_scratch) {
            rt.cuda_free(ptr)?;
        }
        Ok(())
    }

    /// `(label, pointer)` pairs for every semantically named persistent
    /// buffer: weights, workspace, and magic buffers. Medusa's artifact
    /// binds these labels to allocation-sequence indices so the online phase
    /// can address restored buffers.
    pub fn labeled_buffers(&self) -> Vec<(String, DevicePtr)> {
        let mut out: Vec<(String, DevicePtr)> = self
            .weight_tensors()
            .iter()
            .map(|t| (format!("w.{}", t.name()), t.ptr()))
            .collect();
        if let Some(ws) = &self.workspace {
            out.extend(ws.labeled());
        }
        for (l, (a, b)) in self.magic.iter().enumerate() {
            out.push((format!("magic.{l}.a"), *a));
            out.push((format!("magic.{l}.b"), *b));
        }
        out
    }
}

/// The 4-byte magic value of layer `l`'s buffer `which`, as a content
/// digest.
pub fn magic_digest(l: u32, which: u32) -> medusa_gpu::Digest {
    let mut s = medusa_gpu::DigestState::new("launch_magic");
    s.absorb_u64(l as u64);
    s.absorb_u64(which as u64);
    s.finish()
}

#[derive(Debug, Clone, Copy)]
struct LayerByteSplit {
    embed: u64,
    lm_head: u64,
    norm: u64,
    inv_freq: u64,
    qkv: u64,
    o: u64,
    gate_up: u64,
    down: u64,
}

impl LayerByteSplit {
    fn for_shard(spec: &ModelSpec, tp: u32) -> Self {
        let tp = tp as u64;
        let h = spec.hidden() as u64;
        let i = (spec.intermediate() as u64).div_ceil(tp);
        let v = (spec.vocab() as u64).div_ceil(tp);
        let qkvw = crate::schedule::qkv_width(spec).div_ceil(tp);
        let embed = v * h * 2;
        let lm_head = v * h * 2;
        let norm = h * 2;
        let inv_freq = (spec.head_dim() as u64 / 2) * 4;
        let fixed = embed + lm_head + spec.layers() as u64 * (2 * norm + inv_freq);
        let remaining = (spec.param_bytes() / tp).saturating_sub(fixed).max(1);
        // Split the remaining bytes across layers in proportion to each
        // projection's element count.
        let units = [h * qkvw, h * h, 2 * h * i, h * i];
        let unit_total: u64 = units.iter().sum::<u64>() * spec.layers() as u64;
        let per_unit = remaining as f64 / unit_total as f64;
        let part = |u: u64| ((u as f64 * per_unit) as u64).max(256);
        LayerByteSplit {
            embed,
            lm_head,
            norm,
            inv_freq: inv_freq.max(4),
            qkv: part(units[0]),
            o: part(units[1]),
            gate_up: part(units[2]),
            down: part(units[3]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::build_catalog;
    use medusa_gpu::{CostModel, GpuSpec};

    fn init(seed: u64) -> (ProcessRuntime, ModelInstance) {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            seed,
        );
        let inst = ModelInstance::initialize(&mut rt, &spec).unwrap();
        (rt, inst)
    }

    #[test]
    fn structure_init_allocates_all_tensors_deterministically() {
        let (rt1, inst1) = init(1);
        let (rt2, inst2) = init(2);
        // Same tensor count / names / sizes; different addresses.
        let t1 = inst1.weight_tensors();
        let t2 = inst2.weight_tensors();
        assert_eq!(t1.len(), t2.len());
        assert_eq!(t1.len(), 2 + 7 * 24 + 1);
        for (a, b) in t1.iter().zip(&t2) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.bytes(), b.bytes());
        }
        assert_ne!(
            t1[0].ptr(),
            t2[0].ptr(),
            "ASLR: different processes, different addrs"
        );
        // Allocation sequence indices are identical (determinism Medusa
        // relies on).
        let seq1: Vec<u64> = t1
            .iter()
            .map(|t| rt1.memory().containing(t.ptr().addr()).unwrap().seq())
            .collect();
        let seq2: Vec<u64> = t2
            .iter()
            .map(|t| rt2.memory().containing(t.ptr().addr()).unwrap().seq())
            .collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn weight_bytes_close_to_table1_size() {
        let (_, inst) = init(3);
        let spec = inst.spec().clone();
        let total = inst.weight_bytes();
        let target = spec.param_bytes();
        let ratio = total as f64 / target as f64;
        assert!(
            (0.95..1.05).contains(&ratio),
            "weight bytes {total} vs table {target}"
        );
    }

    #[test]
    fn structure_cost_matches_calibration() {
        let spec = ModelSpec::by_name("Qwen1.5-4B").unwrap();
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            5,
        );
        let t0 = rt.now();
        let _ = ModelInstance::initialize(&mut rt, &spec).unwrap();
        let secs = rt.now().since(t0).as_secs_f64();
        // Paper Fig. 8a: 0.85 s for Qwen1.5 4B.
        assert!(
            (0.70..1.00).contains(&secs),
            "structure init {secs}s out of band"
        );
    }

    #[test]
    fn workspace_is_idempotent_and_labeled() {
        let (mut rt, mut inst) = init(4);
        inst.ensure_workspace(&mut rt).unwrap();
        let first = inst.workspace().unwrap().ids;
        inst.ensure_workspace(&mut rt).unwrap();
        assert_eq!(inst.workspace().unwrap().ids, first);
        let labels = inst.labeled_buffers();
        assert!(labels.iter().any(|(n, _)| n == "ws.logits"));
        assert!(labels.iter().any(|(n, _)| n == "w.layers.0.qkv_proj"));
    }

    #[test]
    fn magic_buffers_allocated_once_with_contents() {
        let (mut rt, mut inst) = init(5);
        inst.ensure_magic_buffers(&mut rt).unwrap();
        assert_eq!(inst.magic_buffers().len(), 24);
        let (a, _) = inst.magic_buffers()[3];
        assert_eq!(
            rt.memory().read_digest(a.addr()).unwrap(),
            magic_digest(3, 0)
        );
        let before = rt.memory().stats().total_allocations;
        inst.ensure_magic_buffers(&mut rt).unwrap();
        assert_eq!(rt.memory().stats().total_allocations, before, "idempotent");
    }

    #[test]
    fn graph_scratch_release_frees_everything() {
        let (mut rt, mut inst) = init(6);
        let p = rt
            .cuda_malloc(512, medusa_gpu::AllocTag::Workspace)
            .unwrap();
        inst.register_graph_scratch(p);
        assert_eq!(inst.graph_scratch().len(), 1);
        let live_before = rt.memory().stats().live_allocations;
        inst.release_graph_scratch(&mut rt).unwrap();
        assert_eq!(rt.memory().stats().live_allocations, live_before - 1);
        assert!(inst.graph_scratch().is_empty());
    }
}
