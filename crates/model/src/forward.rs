//! Model forwarding: eager execution, warm-up, capture, and graph replay
//! helpers.
//!
//! Three executions of the *same* kernel schedule matter to the paper:
//!
//! * **Eager forwarding** — per-kernel CPU launches (the framework path).
//!   Used for profiling forwarding (KV-cache init, §2.1 stage ❹), warm-up
//!   forwarding (§2.3), prefills, and `w/o CUDA GRAPH` serving.
//! * **Capture forwarding** — the same launches recorded into a CUDA graph
//!   (§2.1 stage ❺). Decode graphs use the *persistent workspace* so their
//!   recorded pointers stay valid across replays.
//! * **First-layer forwarding** — Medusa's online triggering-kernel pass
//!   (§5.2): warming up and capturing only layer 0 forces the driver to load
//!   every module the full graphs need.

use crate::kernels::{batch_bucket, GemmFamily, KernelRole};
use crate::schedule;
use crate::spec::ModelSpec;
use crate::structure::{magic_digest, ModelInstance};
use medusa_gpu::{
    AllocTag, DevicePtr, Digest, DigestState, GpuResult, ProcessRuntime, SimDuration, Work,
};
use medusa_graph::{capture_graph, CudaGraph, GraphExec, GraphResult};

/// View of the KV cache the forward pass reads/writes.
#[derive(Debug, Clone, Copy)]
pub struct KvView {
    /// Key cache base pointer.
    pub kcache: DevicePtr,
    /// Value cache base pointer.
    pub vcache: DevicePtr,
    /// Block table pointer.
    pub block_table: DevicePtr,
    /// Tokens per KV block.
    pub block_size: u32,
}

/// Which kind of forwarding to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Prompt processing: `tokens_per_seq` tokens for each sequence.
    Prefill {
        /// Prompt tokens per sequence in the batch.
        tokens_per_seq: u32,
    },
    /// One decode step (one token per sequence).
    Decode,
}

/// Configuration of one forwarding.
#[derive(Debug, Clone, Copy)]
pub struct ForwardConfig {
    /// Number of sequences in the batch.
    pub batch: u32,
    /// Prefill or decode.
    pub phase: Phase,
    /// Average context length visible to attention.
    pub ctx_len: u32,
}

impl ForwardConfig {
    /// A decode step at `batch` with `ctx_len` context.
    pub fn decode(batch: u32, ctx_len: u32) -> Self {
        ForwardConfig {
            batch,
            phase: Phase::Decode,
            ctx_len,
        }
    }

    /// A prefill of `batch` sequences × `tokens_per_seq` tokens.
    pub fn prefill(batch: u32, tokens_per_seq: u32) -> Self {
        ForwardConfig {
            batch,
            phase: Phase::Prefill { tokens_per_seq },
            ctx_len: tokens_per_seq,
        }
    }

    /// Total tokens processed (`m` of the GEMMs).
    pub fn tokens(&self) -> u64 {
        match self.phase {
            Phase::Prefill { tokens_per_seq } => self.batch as u64 * tokens_per_seq as u64,
            Phase::Decode => self.batch as u64,
        }
    }
}

/// Result of one forwarding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardOutput {
    /// End-to-end duration (launch through synchronize).
    pub duration: SimDuration,
    /// Content digest of the sampled next-token buffer — the observable
    /// output compared by Medusa's validation (paper §4).
    pub output: Digest,
}

/// Deterministic content digest for a host-prepared input buffer.
pub fn input_digest(kind: &str, batch: u32, step: u64) -> Digest {
    let mut s = DigestState::new("host_input");
    s.absorb_bytes(kind.as_bytes());
    s.absorb_u64(batch as u64);
    s.absorb_u64(step);
    s.finish()
}

/// The fp32 bit pattern constants used as scalar kernel parameters.
const EPS_BITS: u64 = 0x3727_c5ac; // 1e-5f
const ROPE_BASE: u64 = 10_000;

fn scale_bits(spec: &ModelSpec) -> u64 {
    (1.0 / (spec.head_dim() as f64).sqrt()).to_bits()
}

#[derive(Debug, Clone, Copy)]
enum MagicSource<'a> {
    /// Use the instance's per-layer permanent magic buffers (warm-up and
    /// capture paths: these are the buffers graph nodes record).
    PerLayer,
    /// Use temporary per-layer pairs owned by this forwarding (eager path:
    /// the framework initializes its own workspace, so an eager forwarding
    /// is ground truth even when the persistent magic buffers were restored
    /// wrongly — which is what makes validation meaningful, §4).
    Temp(&'a [(DevicePtr, DevicePtr)]),
}

#[derive(Debug, Clone, Copy)]
struct EmitBufs<'a> {
    ids: DevicePtr,
    positions: DevicePtr,
    slots: DevicePtr,
    hidden: DevicePtr,
    residual: DevicePtr,
    qkv: DevicePtr,
    attn_out: DevicePtr,
    gate_up: DevicePtr,
    mlp_act: DevicePtr,
    logits: DevicePtr,
    next_tokens: DevicePtr,
    kv: KvView,
    magic: MagicSource<'a>,
    scratch: Option<(DevicePtr, DevicePtr)>,
}

struct EmitPlan {
    layers: std::ops::Range<usize>,
    include_head: bool,
    aux_count: u64,
}

/// Launches the forward kernel schedule on `rt` (recorded if a capture is
/// active, executed otherwise).
fn emit_forward(
    rt: &mut ProcessRuntime,
    inst: &ModelInstance,
    cfg: &ForwardConfig,
    bufs: &EmitBufs,
    plan: &EmitPlan,
) -> GpuResult<()> {
    let spec = inst.spec();
    let addrs = inst.addrs();
    let m = cfg.tokens();
    let tp = inst.tp() as u64;
    let h = spec.hidden() as u64;
    // Tensor-parallel sharding (§8): projections, KV heads and the MLP
    // intermediate are divided across ranks; partial outputs all-reduce.
    let i = (spec.intermediate() as u64).div_ceil(tp);
    let v = (spec.vocab() as u64).div_ceil(tp);
    let qkvw = schedule::qkv_width(spec).div_ceil(tp);
    let kvh = (spec.kv_heads() as u64).div_ceil(tp);
    let h_shard = h.div_ceil(tp);
    let bucket = match cfg.phase {
        Phase::Decode => batch_bucket(cfg.batch),
        Phase::Prefill { .. } => 3,
    };
    let shard_work = |w: medusa_gpu::Work| Work::new(w.flops / tp as f64, w.bytes / tp as f64);
    let attn = shard_work(match cfg.phase {
        Phase::Decode => schedule::attention_work(spec, cfg.batch as u64, cfg.ctx_len as u64),
        Phase::Prefill { tokens_per_seq } => {
            schedule::attention_work(spec, m, (tokens_per_seq as u64 / 2).max(1))
        }
    });
    let attn_role = if matches!(cfg.phase, Phase::Prefill { .. }) || cfg.batch > 64 {
        KernelRole::PagedAttentionV2
    } else {
        KernelRole::PagedAttentionV1
    };
    let stream = 0;
    let launch = |rt: &mut ProcessRuntime, role: KernelRole, vals: &[u64], work: Work| {
        rt.launch_kernel(addrs.addr(role), vals, work, stream)
    };

    if plan.include_head {
        launch(
            rt,
            KernelRole::EmbedTokens,
            &[
                bufs.ids.addr(),
                inst.embed().ptr().addr(),
                bufs.hidden.addr(),
                h,
            ],
            schedule::elementwise_work(m, h),
        )?;
    }
    for l in plan.layers.clone() {
        let lw = &inst.layers()[l];
        let (ma, mb) = match bufs.magic {
            MagicSource::PerLayer => inst.magic_buffers()[l],
            MagicSource::Temp(pairs) => pairs[l.min(pairs.len() - 1)],
        };
        launch(
            rt,
            KernelRole::FusedRmsNorm,
            &[
                bufs.hidden.addr(),
                lw.norm1.ptr().addr(),
                bufs.residual.addr(),
                h,
                EPS_BITS,
            ],
            schedule::elementwise_work(m, h),
        )?;
        launch(
            rt,
            KernelRole::Gemm(GemmFamily::Qkv, bucket),
            &[
                bufs.residual.addr(),
                lw.qkv.ptr().addr(),
                bufs.qkv.addr(),
                m,
                qkvw,
                h,
            ],
            schedule::gemm_work(m, qkvw, h),
        )?;
        launch(
            rt,
            KernelRole::Rotary,
            &[
                bufs.positions.addr(),
                bufs.qkv.addr(),
                spec.head_dim() as u64,
                ROPE_BASE,
            ],
            schedule::elementwise_work(m, qkvw),
        )?;
        launch(
            rt,
            KernelRole::ReshapeAndCache,
            &[
                bufs.qkv.addr(),
                bufs.kv.kcache.addr(),
                bufs.kv.vcache.addr(),
                bufs.slots.addr(),
                ma.addr(),
                mb.addr(),
                bufs.kv.block_size as u64,
            ],
            schedule::elementwise_work(m, 2 * kvh * spec.head_dim() as u64),
        )?;
        launch(
            rt,
            attn_role,
            &[
                bufs.qkv.addr(),
                bufs.kv.kcache.addr(),
                bufs.kv.vcache.addr(),
                bufs.kv.block_table.addr(),
                bufs.attn_out.addr(),
                scale_bits(spec),
                kvh,
                bufs.kv.block_size as u64,
            ],
            attn,
        )?;
        launch(
            rt,
            KernelRole::Gemm(GemmFamily::Out, bucket),
            &[
                bufs.attn_out.addr(),
                lw.o.ptr().addr(),
                bufs.hidden.addr(),
                m,
                h,
                h_shard,
            ],
            schedule::gemm_work(m, h, h_shard),
        )?;
        if tp > 1 {
            launch(
                rt,
                KernelRole::AllReduce,
                &[bufs.hidden.addr(), m * h * 2, tp],
                schedule::elementwise_work(m, 2 * h),
            )?;
        }
        launch(
            rt,
            KernelRole::FusedAddRmsNorm,
            &[
                bufs.hidden.addr(),
                bufs.residual.addr(),
                lw.norm2.ptr().addr(),
                bufs.residual.addr(),
                h,
            ],
            schedule::elementwise_work(m, h),
        )?;
        launch(
            rt,
            KernelRole::Gemm(GemmFamily::GateUp, bucket),
            &[
                bufs.residual.addr(),
                lw.gate_up.ptr().addr(),
                bufs.gate_up.addr(),
                m,
                2 * i,
                h,
            ],
            schedule::gemm_work(m, 2 * i, h),
        )?;
        launch(
            rt,
            KernelRole::SiluAndMul,
            &[bufs.gate_up.addr(), bufs.mlp_act.addr(), i],
            schedule::elementwise_work(m, 3 * i),
        )?;
        launch(
            rt,
            KernelRole::Gemm(GemmFamily::Down, bucket),
            &[
                bufs.mlp_act.addr(),
                lw.down.ptr().addr(),
                bufs.hidden.addr(),
                m,
                h,
                i,
            ],
            schedule::gemm_work(m, h, i),
        )?;
        if tp > 1 {
            launch(
                rt,
                KernelRole::AllReduce,
                &[bufs.hidden.addr(), m * h * 2, tp],
                schedule::elementwise_work(m, 2 * h),
            )?;
        }
    }
    if plan.include_head {
        launch(
            rt,
            KernelRole::FusedRmsNorm,
            &[
                bufs.hidden.addr(),
                inst.final_norm().ptr().addr(),
                bufs.residual.addr(),
                h,
                EPS_BITS,
            ],
            schedule::elementwise_work(m, h),
        )?;
        launch(
            rt,
            KernelRole::Gemm(GemmFamily::Out, bucket),
            &[
                bufs.residual.addr(),
                inst.lm_head().ptr().addr(),
                bufs.logits.addr(),
                cfg.batch as u64,
                v,
                h,
            ],
            schedule::gemm_work(cfg.batch as u64, v, h),
        )?;
        launch(
            rt,
            KernelRole::GatherLogits,
            &[bufs.logits.addr(), bufs.next_tokens.addr(), v],
            Work::NONE,
        )?;
        launch(
            rt,
            KernelRole::AdvanceStep,
            &[bufs.positions.addr(), bufs.slots.addr(), cfg.batch as u64],
            Work::NONE,
        )?;
    }
    if plan.aux_count > 0 {
        let (sa, sb) = bufs.scratch.expect("aux kernels need scratch buffers");
        for a in 0..plan.aux_count {
            launch(
                rt,
                KernelRole::SplitKAux(bucket, a as usize),
                &[sa.addr(), sb.addr(), a],
                Work::NONE,
            )?;
        }
    }
    Ok(())
}

struct TempBufs {
    all: Vec<DevicePtr>,
    dummy_kv: Vec<DevicePtr>,
    magic: Vec<(DevicePtr, DevicePtr)>,
    ids: DevicePtr,
    positions: DevicePtr,
    slots: DevicePtr,
    hidden: DevicePtr,
    residual: DevicePtr,
    qkv: DevicePtr,
    attn_out: DevicePtr,
    gate_up: DevicePtr,
    mlp_act: DevicePtr,
    logits: DevicePtr,
    next_tokens: DevicePtr,
    kv: KvView,
}

impl TempBufs {
    fn emit_bufs(&self) -> EmitBufs<'_> {
        EmitBufs {
            ids: self.ids,
            positions: self.positions,
            slots: self.slots,
            hidden: self.hidden,
            residual: self.residual,
            qkv: self.qkv,
            attn_out: self.attn_out,
            gate_up: self.gate_up,
            mlp_act: self.mlp_act,
            logits: self.logits,
            next_tokens: self.next_tokens,
            kv: self.kv,
            magic: MagicSource::Temp(&self.magic),
            scratch: None,
        }
    }
}

fn alloc_temp_bufs(
    rt: &mut ProcessRuntime,
    inst: &ModelInstance,
    cfg: &ForwardConfig,
    kv: Option<&KvView>,
    step: u64,
) -> GpuResult<TempBufs> {
    let spec = inst.spec();
    let m = cfg.tokens();
    let tp = inst.tp() as u64;
    let h = spec.hidden() as u64;
    let i = (spec.intermediate() as u64).div_ceil(tp);
    let v = (spec.vocab() as u64).div_ceil(tp);
    let qkvw = schedule::qkv_width(spec).div_ceil(tp);
    let mut all = Vec::new();
    let mut a = |rt: &mut ProcessRuntime, bytes: u64| -> GpuResult<DevicePtr> {
        let p = rt.cuda_malloc(bytes, AllocTag::Activation)?;
        all.push(p);
        Ok(p)
    };
    let ids = a(rt, m * 4)?;
    let positions = a(rt, m * 8)?;
    let slots = a(rt, m * 8)?;
    let hidden = a(rt, m * h * 2)?;
    let residual = a(rt, m * h * 2)?;
    let qkv = a(rt, m * qkvw * 2)?;
    let attn_out = a(rt, m * h * 2)?;
    let gate_up = a(rt, m * 2 * i * 2)?;
    let mlp_act = a(rt, m * i * 2)?;
    let logits = a(rt, cfg.batch as u64 * v * 2)?;
    let next_tokens = a(rt, cfg.batch as u64 * 4)?;

    let mut dummy_kv = Vec::new();
    let kv_view = match kv {
        Some(view) => *view,
        None => {
            // Profiling runs without a real KV cache: a dummy block.
            let per_side = 16 * spec.kv_bytes_per_token() / 2;
            let kcache = rt.cuda_malloc(per_side.max(256), AllocTag::Activation)?;
            let vcache = rt.cuda_malloc(per_side.max(256), AllocTag::Activation)?;
            let bt = rt.cuda_malloc((cfg.batch as u64 * 8).max(256), AllocTag::Activation)?;
            rt.memory_mut()
                .write_digest(kcache.addr(), input_digest("dummy_k", cfg.batch, 0))?;
            rt.memory_mut()
                .write_digest(vcache.addr(), input_digest("dummy_v", cfg.batch, 0))?;
            rt.memory_mut()
                .write_digest(bt.addr(), input_digest("dummy_bt", cfg.batch, 0))?;
            dummy_kv.extend([kcache, vcache, bt]);
            KvView {
                kcache,
                vcache,
                block_table: bt,
                block_size: 16,
            }
        }
    };

    // Host-prepared inputs.
    rt.memory_mut()
        .write_digest(ids.addr(), input_digest("ids", cfg.batch, step))?;
    rt.memory_mut()
        .write_digest(positions.addr(), input_digest("positions", cfg.batch, step))?;
    rt.memory_mut()
        .write_digest(slots.addr(), input_digest("slots", cfg.batch, step))?;

    // Eager forwardings initialize their own launch-magic workspace: one
    // correctly-written temporary pair per layer for decode (so an eager
    // decode is a ground-truth reference for validation), a single shared
    // pair for the profiling prefill.
    let magic_pairs = match cfg.phase {
        Phase::Decode => spec.layers(),
        Phase::Prefill { .. } => 1,
    };
    let mut magic = Vec::with_capacity(magic_pairs as usize);
    for l in 0..magic_pairs {
        let ma = rt.cuda_malloc(4, AllocTag::Activation)?;
        let mb = rt.cuda_malloc(4, AllocTag::Activation)?;
        rt.memory_mut()
            .write_digest(ma.addr(), magic_digest(l, 0))?;
        rt.memory_mut()
            .write_digest(mb.addr(), magic_digest(l, 1))?;
        magic.push((ma, mb));
    }

    Ok(TempBufs {
        all,
        dummy_kv,
        magic,
        ids,
        positions,
        slots,
        hidden,
        residual,
        qkv,
        attn_out,
        gate_up,
        mlp_act,
        logits,
        next_tokens,
        kv: kv_view,
    })
}

/// Runs one eager forwarding: allocates temporaries, launches every kernel
/// with per-kernel CPU overhead, synchronizes, frees temporaries.
///
/// Decode forwardings lazily create the instance's permanent magic buffers
/// (see [`ModelInstance::ensure_magic_buffers`]).
///
/// # Errors
///
/// Returns driver errors (OOM, dangling pointers, capture violations).
pub fn run_eager_forward(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    cfg: &ForwardConfig,
    kv: Option<&KvView>,
) -> GpuResult<ForwardOutput> {
    run_eager_forward_step(rt, inst, cfg, kv, 0)
}

/// Like [`run_eager_forward`] with an explicit step counter so consecutive
/// decode steps see distinct inputs.
///
/// # Errors
///
/// Returns driver errors (OOM, dangling pointers, capture violations).
pub fn run_eager_forward_step(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    cfg: &ForwardConfig,
    kv: Option<&KvView>,
    step: u64,
) -> GpuResult<ForwardOutput> {
    let start = rt.now();
    let tmp = alloc_temp_bufs(rt, inst, cfg, kv, step)?;
    let plan = EmitPlan {
        layers: 0..inst.spec().layers() as usize,
        include_head: true,
        aux_count: 0,
    };
    emit_forward(rt, inst, cfg, &tmp.emit_bufs(), &plan)?;
    rt.device_synchronize()?;
    let output = rt.memory().read_digest(tmp.next_tokens.addr())?;
    for p in tmp.all.into_iter().rev() {
        rt.cuda_free(p)?;
    }
    for (ma, mb) in tmp.magic.into_iter().rev() {
        rt.cuda_free(mb)?;
        rt.cuda_free(ma)?;
    }
    for p in tmp.dummy_kv.into_iter().rev() {
        rt.cuda_free(p)?;
    }
    Ok(ForwardOutput {
        duration: rt.now().since(start),
        output,
    })
}

/// Writes the persistent workspace's host-input digests for decode `step`.
///
/// # Errors
///
/// Returns a driver error if the workspace is missing or stale.
pub fn write_ws_inputs(
    rt: &mut ProcessRuntime,
    inst: &ModelInstance,
    batch: u32,
    step: u64,
) -> GpuResult<()> {
    let ws = inst
        .workspace()
        .expect("workspace must be allocated before graph serving");
    rt.memory_mut()
        .write_digest(ws.ids.addr(), input_digest("ids", batch, step))?;
    rt.memory_mut()
        .write_digest(ws.positions.addr(), input_digest("positions", batch, step))?;
    rt.memory_mut()
        .write_digest(ws.slots.addr(), input_digest("slots", batch, step))?;
    Ok(())
}

fn ws_bufs(
    inst: &ModelInstance,
    kv: &KvView,
    scratch: Option<(DevicePtr, DevicePtr)>,
) -> EmitBufs<'static> {
    let ws = inst.workspace().expect("workspace allocated");
    EmitBufs {
        ids: ws.ids,
        positions: ws.positions,
        slots: ws.slots,
        hidden: ws.hidden,
        residual: ws.residual,
        qkv: ws.qkv,
        attn_out: ws.attn_out,
        gate_up: ws.gate_up,
        mlp_act: ws.mlp_act,
        logits: ws.logits,
        next_tokens: ws.next_tokens,
        kv: *kv,
        magic: MagicSource::PerLayer,
        scratch,
    }
}

/// Runs a decode warm-up forwarding through the persistent workspace
/// (mandatory before capturing, paper §2.3). Initializes lazy libraries and
/// loads every module the subsequent capture will reference.
///
/// # Errors
///
/// Returns driver errors.
pub fn warmup_decode(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    batch: u32,
    kv: &KvView,
) -> GpuResult<ForwardOutput> {
    inst.ensure_workspace(rt)?;
    inst.ensure_magic_buffers(rt)?;
    let start = rt.now();
    write_ws_inputs(rt, inst, batch, 0)?;
    let cfg = ForwardConfig::decode(batch, capture_ctx_len());
    let bufs = ws_bufs(inst, kv, None);
    let plan = EmitPlan {
        layers: 0..inst.spec().layers() as usize,
        include_head: true,
        aux_count: 0,
    };
    emit_forward(rt, inst, &cfg, &bufs, &plan)?;
    rt.device_synchronize()?;
    let ws_next = inst.workspace().expect("ensured").next_tokens;
    let output = rt.memory().read_digest(ws_next.addr())?;
    Ok(ForwardOutput {
        duration: rt.now().since(start),
        output,
    })
}

/// Nominal context length baked into captured decode graphs' attention
/// work (real graphs fix the grid at capture time).
pub fn capture_ctx_len() -> u32 {
    512
}

/// Captures the decode graph for `batch` (the `graph_index`-th of the 35
/// batch sizes): allocates the per-graph scratch pair, then records the full
/// decode schedule plus this graph's auxiliary split-K kernels.
///
/// # Errors
///
/// Propagates capture violations (e.g. missing warm-up) and driver errors.
pub fn capture_decode_graph(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    batch: u32,
    kv: &KvView,
    graph_index: usize,
) -> GraphResult<CudaGraph> {
    inst.ensure_workspace(rt)?;
    inst.ensure_magic_buffers(rt)?;
    let sa = rt.cuda_malloc(256, AllocTag::Workspace)?;
    let sb = rt.cuda_malloc(256, AllocTag::Workspace)?;
    inst.register_graph_scratch(sa);
    inst.register_graph_scratch(sb);
    let aux = schedule::aux_pad_for_graph(inst.spec(), graph_index);
    let cfg = ForwardConfig::decode(batch, capture_ctx_len());
    let bufs = ws_bufs(inst, kv, Some((sa, sb)));
    let plan = EmitPlan {
        layers: 0..inst.spec().layers() as usize,
        include_head: true,
        aux_count: aux,
    };
    let inst_ref: &ModelInstance = inst;
    capture_graph(rt, 0, |rt| emit_forward(rt, inst_ref, &cfg, &bufs, &plan))
}

/// Warms up only the first layer (Medusa's online triggering-kernels,
/// paper §5.2) — enough to initialize lazy libraries and load the modules
/// the full restored graphs reference.
///
/// # Errors
///
/// Returns driver errors.
pub fn warmup_first_layer(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    batch: u32,
    kv: &KvView,
) -> GpuResult<()> {
    inst.ensure_workspace(rt)?;
    inst.ensure_magic_buffers(rt)?;
    write_ws_inputs(rt, inst, batch, 0)?;
    let cfg = ForwardConfig::decode(batch, capture_ctx_len());
    let bufs = ws_bufs(inst, kv, None);
    let plan = EmitPlan {
        layers: 0..1,
        include_head: false,
        aux_count: 0,
    };
    emit_forward(rt, inst, &cfg, &bufs, &plan)?;
    rt.device_synchronize()
}

/// The handwritten triggering-kernel list of paper §5.1: one representative
/// GEMM launch per `(family, bucket)` module. Launching each forces the
/// driver to load its whole module, making every hidden kernel in it
/// enumerable. This list is *manually maintained* — the maintenance burden
/// across batch sizes is exactly why §5.2 moved to first-layer triggering.
pub fn handwritten_triggering_kernels() -> Vec<KernelRole> {
    let mut out = Vec::with_capacity(GemmFamily::ALL.len() * crate::kernels::GEMM_BUCKETS);
    for bucket in 0..crate::kernels::GEMM_BUCKETS {
        for f in GemmFamily::ALL {
            out.push(KernelRole::Gemm(f, bucket));
        }
    }
    out
}

/// Runs the handwritten triggering-kernels (§5.1): one small eager launch
/// per hidden GEMM module, using the persistent workspace as scratch.
///
/// # Errors
///
/// Returns driver errors (including the first launch's lazy cuBLAS init).
pub fn run_handwritten_triggers(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
) -> GpuResult<()> {
    inst.ensure_workspace(rt)?;
    let ws = inst.workspace().expect("just ensured");
    rt.memory_mut()
        .write_digest(ws.hidden.addr(), input_digest("trigger", 0, 0))?;
    let addrs = inst.addrs().clone();
    for role in handwritten_triggering_kernels() {
        // Minimal 1x16x16 matrix multiplication, just enough to launch.
        rt.launch_kernel(
            addrs.addr(role),
            &[
                ws.hidden.addr(),
                ws.residual.addr(),
                ws.attn_out.addr(),
                1,
                16,
                16,
            ],
            Work::NONE,
            0,
        )?;
    }
    rt.device_synchronize()
}

/// Captures a first-layer-only graph (paper §5.2): its nodes cover every
/// hidden GEMM module of the batch's bucket, so enumerating them restores
/// the addresses of all repeated per-layer kernels.
///
/// # Errors
///
/// Propagates capture violations and driver errors.
pub fn capture_first_layer_graph(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    batch: u32,
    kv: &KvView,
) -> GraphResult<CudaGraph> {
    inst.ensure_workspace(rt)?;
    inst.ensure_magic_buffers(rt)?;
    let cfg = ForwardConfig::decode(batch, capture_ctx_len());
    let bufs = ws_bufs(inst, kv, None);
    let plan = EmitPlan {
        layers: 0..1,
        include_head: false,
        aux_count: 0,
    };
    let inst_ref: &ModelInstance = inst;
    capture_graph(rt, 0, |rt| emit_forward(rt, inst_ref, &cfg, &bufs, &plan))
}

/// Runs one decode step by replaying an instantiated decode graph.
///
/// # Errors
///
/// Returns graph/driver errors (a wrongly restored graph faults here).
pub fn decode_step_with_graph(
    rt: &mut ProcessRuntime,
    inst: &ModelInstance,
    exec: &GraphExec,
    batch: u32,
    step: u64,
) -> GraphResult<ForwardOutput> {
    let start = rt.now();
    write_ws_inputs(rt, inst, batch, step)?;
    exec.launch(rt, 0)?;
    rt.device_synchronize()?;
    let ws = inst.workspace().expect("workspace allocated");
    let output = rt.memory().read_digest(ws.next_tokens.addr())?;
    Ok(ForwardOutput {
        duration: rt.now().since(start),
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::build_catalog;
    use crate::weights;
    use medusa_gpu::{CostModel, GpuSpec};

    fn setup(model: &str, seed: u64) -> (ProcessRuntime, ModelInstance) {
        let spec = ModelSpec::by_name(model).unwrap();
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            seed,
        );
        let mut inst = ModelInstance::initialize(&mut rt, &spec).unwrap();
        weights::load_weights(&mut rt, &inst, 1.0).unwrap();
        // Allocate a small real KV cache for decode tests.
        inst.ensure_workspace(&mut rt).unwrap();
        (rt, inst)
    }

    fn kv(rt: &mut ProcessRuntime) -> KvView {
        let kcache = rt.cuda_malloc(1 << 20, AllocTag::KvCache).unwrap();
        let vcache = rt.cuda_malloc(1 << 20, AllocTag::KvCache).unwrap();
        let bt = rt.cuda_malloc(4096, AllocTag::KvCache).unwrap();
        rt.memory_mut()
            .write_digest(kcache.addr(), input_digest("k0", 0, 0))
            .unwrap();
        rt.memory_mut()
            .write_digest(vcache.addr(), input_digest("v0", 0, 0))
            .unwrap();
        rt.memory_mut()
            .write_digest(bt.addr(), input_digest("bt", 0, 0))
            .unwrap();
        KvView {
            kcache,
            vcache,
            block_table: bt,
            block_size: 16,
        }
    }

    #[test]
    fn eager_decode_is_deterministic_across_processes() {
        let (mut rt1, mut i1) = setup("Qwen1.5-0.5B", 1);
        let (mut rt2, mut i2) = setup("Qwen1.5-0.5B", 999);
        let kv1 = kv(&mut rt1);
        let kv2 = kv(&mut rt2);
        let o1 = run_eager_forward(
            &mut rt1,
            &mut i1,
            &ForwardConfig::decode(4, 512),
            Some(&kv1),
        )
        .unwrap();
        let o2 = run_eager_forward(
            &mut rt2,
            &mut i2,
            &ForwardConfig::decode(4, 512),
            Some(&kv2),
        )
        .unwrap();
        assert_eq!(o1.output, o2.output, "digests must not depend on addresses");
        assert!(o1.duration.as_nanos() > 0);
    }

    #[test]
    fn eager_forward_frees_all_temporaries() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 2);
        let kvv = kv(&mut rt);
        // Burn in the magic buffers first (they persist by design).
        run_eager_forward(
            &mut rt,
            &mut inst,
            &ForwardConfig::decode(1, 128),
            Some(&kvv),
        )
        .unwrap();
        let live = rt.memory().stats().live_allocations;
        run_eager_forward(
            &mut rt,
            &mut inst,
            &ForwardConfig::decode(1, 128),
            Some(&kvv),
        )
        .unwrap();
        assert_eq!(rt.memory().stats().live_allocations, live);
    }

    #[test]
    fn profiling_prefill_without_kv_works_and_tracks_peak() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 3);
        rt.memory_mut().reset_peak();
        let cfg = ForwardConfig::prefill(64, 128);
        let out = run_eager_forward(&mut rt, &mut inst, &cfg, None).unwrap();
        assert!(out.duration.as_nanos() > 0);
        let stats = rt.memory().stats();
        assert!(
            stats.peak > stats.in_use,
            "profiling temps must raise the peak"
        );
    }

    #[test]
    fn warmup_then_capture_yields_calibrated_node_count() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 4);
        let kvv = kv(&mut rt);
        warmup_decode(&mut rt, &mut inst, 8, &kvv).unwrap();
        let g = capture_decode_graph(&mut rt, &mut inst, 8, &kvv, 3).unwrap();
        assert_eq!(
            g.node_count() as u64,
            schedule::nodes_for_graph(inst.spec(), 3),
            "captured node count must match the Table 1 calibration"
        );
    }

    #[test]
    fn capture_without_warmup_fails_on_lazy_cublas_init() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 5);
        let kvv = kv(&mut rt);
        let err = capture_decode_graph(&mut rt, &mut inst, 8, &kvv, 0).unwrap_err();
        assert!(matches!(
            err,
            medusa_graph::GraphError::Gpu(medusa_gpu::GpuError::SyncDuringCapture { .. })
        ));
    }

    #[test]
    fn graph_replay_matches_eager_decode_output() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 6);
        let kvv = kv(&mut rt);
        warmup_decode(&mut rt, &mut inst, 4, &kvv).unwrap();
        let g = capture_decode_graph(&mut rt, &mut inst, 4, &kvv, 0).unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();

        // Reset KV state, run eager, record output.
        rt.memory_mut()
            .write_digest(kvv.kcache.addr(), input_digest("k0", 0, 0))
            .unwrap();
        rt.memory_mut()
            .write_digest(kvv.vcache.addr(), input_digest("v0", 0, 0))
            .unwrap();
        let eager = run_eager_forward_step(
            &mut rt,
            &mut inst,
            &ForwardConfig::decode(4, capture_ctx_len()),
            Some(&kvv),
            7,
        )
        .unwrap();

        // Reset KV state, replay graph with the same step inputs.
        rt.memory_mut()
            .write_digest(kvv.kcache.addr(), input_digest("k0", 0, 0))
            .unwrap();
        rt.memory_mut()
            .write_digest(kvv.vcache.addr(), input_digest("v0", 0, 0))
            .unwrap();
        let replay = decode_step_with_graph(&mut rt, &inst, &exec, 4, 7).unwrap();
        assert_eq!(
            replay.output, eager.output,
            "self-replaying graph must match eager"
        );
    }

    #[test]
    fn graph_decode_is_faster_than_eager_decode() {
        let (mut rt, mut inst) = setup("Qwen1.5-4B", 7);
        let kvv = kv(&mut rt);
        warmup_decode(&mut rt, &mut inst, 1, &kvv).unwrap();
        let g = capture_decode_graph(&mut rt, &mut inst, 1, &kvv, 0).unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        let eager = run_eager_forward(
            &mut rt,
            &mut inst,
            &ForwardConfig::decode(1, capture_ctx_len()),
            Some(&kvv),
        )
        .unwrap();
        let replay = decode_step_with_graph(&mut rt, &inst, &exec, 1, 1).unwrap();
        let speedup = eager.duration.as_secs_f64() / replay.duration.as_secs_f64();
        assert!(
            (1.5..4.0).contains(&speedup),
            "CUDA graph decode speedup {speedup:.2}× out of the paper's band (≈2.4×)"
        );
    }

    #[test]
    fn first_layer_capture_covers_all_hidden_modules() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 8);
        let kvv = kv(&mut rt);
        warmup_first_layer(&mut rt, &mut inst, 8, &kvv).unwrap();
        let g = capture_first_layer_graph(&mut rt, &mut inst, 8, &kvv).unwrap();
        assert_eq!(g.node_count() as u64, schedule::KERNELS_PER_LAYER);
        // Every cublas module must now be loaded (triggering-kernels).
        let loaded = rt.loaded_modules();
        let cublas_idx = rt
            .catalog()
            .lib_index(crate::kernels::CUBLAS_SIM_LIB)
            .unwrap() as u16;
        let cublas_loaded = loaded.iter().filter(|m| m.lib == cublas_idx).count();
        assert_eq!(
            cublas_loaded, 4,
            "first layer must trigger all four GEMM family modules"
        );
    }

    #[test]
    fn decode_without_kv_uses_dummy_and_cleans_up() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 20);
        let live = rt.memory().stats().live_allocations;
        let out =
            run_eager_forward(&mut rt, &mut inst, &ForwardConfig::decode(2, 64), None).unwrap();
        assert_ne!(out.output, [0u8; 16]);
        assert_eq!(rt.memory().stats().live_allocations, live);
    }

    #[test]
    fn handwritten_triggers_load_every_gemm_module() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 21);
        run_handwritten_triggers(&mut rt, &mut inst).unwrap();
        let cublas_idx = rt
            .catalog()
            .lib_index(crate::kernels::CUBLAS_SIM_LIB)
            .unwrap() as u16;
        let loaded = rt
            .loaded_modules()
            .iter()
            .filter(|m| m.lib == cublas_idx)
            .count();
        assert_eq!(loaded, 16, "4 families x 4 buckets must all be loaded");
    }

    #[test]
    fn sharded_instance_adds_all_reduce_to_captured_graphs() {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            22,
        );
        let mut inst = ModelInstance::initialize_sharded(&mut rt, &spec, 1, 2).unwrap();
        assert_eq!(inst.rank(), 1);
        assert_eq!(inst.tp(), 2);
        weights::load_weights(&mut rt, &inst, 1.0).unwrap();
        inst.ensure_workspace(&mut rt).unwrap();
        let kvv = kv(&mut rt);
        warmup_decode(&mut rt, &mut inst, 4, &kvv).unwrap();
        let g = capture_decode_graph(&mut rt, &mut inst, 4, &kvv, 0).unwrap();
        let expected = schedule::nodes_for_graph(&spec, 0) + 2 * spec.layers() as u64;
        assert_eq!(g.node_count() as u64, expected, "+2 all-reduces per layer");
    }

    #[test]
    fn steps_produce_distinct_outputs() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 23);
        let kvv = kv(&mut rt);
        let cfg = ForwardConfig::decode(1, 64);
        let a = run_eager_forward_step(&mut rt, &mut inst, &cfg, Some(&kvv), 1).unwrap();
        let b = run_eager_forward_step(&mut rt, &mut inst, &cfg, Some(&kvv), 2).unwrap();
        assert_ne!(
            a.output, b.output,
            "distinct step inputs must change outputs"
        );
    }

    #[test]
    fn input_digest_varies_by_all_dimensions() {
        assert_ne!(input_digest("ids", 1, 1), input_digest("ids", 1, 2));
        assert_ne!(input_digest("ids", 1, 1), input_digest("ids", 2, 1));
        assert_ne!(input_digest("ids", 1, 1), input_digest("positions", 1, 1));
    }

    #[test]
    fn prefill_scales_with_prompt_length() {
        let (mut rt, mut inst) = setup("Llama2-7B", 9);
        let kvv = kv(&mut rt);
        let short = run_eager_forward(
            &mut rt,
            &mut inst,
            &ForwardConfig::prefill(1, 64),
            Some(&kvv),
        )
        .unwrap();
        let long = run_eager_forward(
            &mut rt,
            &mut inst,
            &ForwardConfig::prefill(1, 1024),
            Some(&kvv),
        )
        .unwrap();
        assert!(long.duration > short.duration);
    }
}
