//! Node-count calibration and per-kernel work sizing.
//!
//! ## Node counts (Table 1)
//!
//! Each captured decode graph contains, structurally:
//!
//! * 10 kernels per transformer layer (norm, QKV GEMM, rotary,
//!   reshape-and-cache, paged attention, out GEMM, add+norm, gate/up GEMM,
//!   SiLU·mul, down GEMM), plus
//! * 5 head/tail kernels (embedding, final norm, LM-head GEMM, sampler,
//!   metadata advance), plus
//! * a model-specific number of hidden auxiliary split-K kernels.
//!
//! Real cuBLAS emits shape-dependent split-K reductions, so per-graph node
//! counts are not a pure function of layer count. We calibrate the auxiliary
//! count per model so the 35-graph total equals Table 1 **exactly**; the
//! remainder is assigned to the largest batch sizes (where split-K is
//! actually used).
//!
//! ## Work sizing
//!
//! GEMM FLOPs/bytes follow the standard 2·m·n·k formulas; attention work
//! scales with context length. These drive the calibrated virtual-time
//! model (see `medusa_gpu::CostModel`).

use crate::spec::ModelSpec;
use medusa_gpu::Work;

/// Kernels per transformer layer in a captured decode graph.
pub const KERNELS_PER_LAYER: u64 = 10;
/// Head/tail kernels per captured decode graph.
pub const HEAD_KERNELS: u64 = 5;
/// Number of captured batch sizes (vLLM default).
pub const NUM_GRAPHS: u64 = 35;

/// Structural (non-auxiliary) node count of one decode graph.
pub fn base_nodes_per_graph(spec: &ModelSpec) -> u64 {
    spec.layers() as u64 * KERNELS_PER_LAYER + HEAD_KERNELS
}

fn pad_total(spec: &ModelSpec) -> u64 {
    let base = NUM_GRAPHS * base_nodes_per_graph(spec);
    spec.table1_nodes().checked_sub(base).unwrap_or_else(|| {
        panic!(
            "Table 1 node count below structural minimum for {}",
            spec.name()
        )
    })
}

/// Auxiliary split-K kernels in the graph for the `graph_index`-th batch
/// size (0-based, batch sizes ascending). Larger batches get the remainder.
pub fn aux_pad_for_graph(spec: &ModelSpec, graph_index: usize) -> u64 {
    assert!(
        graph_index < NUM_GRAPHS as usize,
        "graph index out of range"
    );
    let total = pad_total(spec);
    let base = total / NUM_GRAPHS;
    let rem = (total % NUM_GRAPHS) as usize;
    base + u64::from(graph_index >= NUM_GRAPHS as usize - rem)
}

/// Number of distinct auxiliary split-K kernels a model's catalog needs
/// (the maximum per-graph pad).
pub fn aux_kernel_count(spec: &ModelSpec) -> usize {
    (0..NUM_GRAPHS as usize)
        .map(|i| aux_pad_for_graph(spec, i))
        .max()
        .unwrap_or(0) as usize
}

/// Node count of the `graph_index`-th decode graph.
pub fn nodes_for_graph(spec: &ModelSpec, graph_index: usize) -> u64 {
    base_nodes_per_graph(spec) + aux_pad_for_graph(spec, graph_index)
}

/// Total node count over all 35 graphs — equals Table 1 by construction.
pub fn total_nodes(spec: &ModelSpec) -> u64 {
    (0..NUM_GRAPHS as usize)
        .map(|i| nodes_for_graph(spec, i))
        .sum()
}

// ----------------------------------------------------------------- work

/// Work of a dense fp16 GEMM of shape `m×k · k×n`.
pub fn gemm_work(m: u64, n: u64, k: u64) -> Work {
    Work::new(
        2.0 * m as f64 * n as f64 * k as f64,
        2.0 * (m * k + k * n + m * n) as f64,
    )
}

/// Work of an elementwise/norm kernel over `m` rows of width `width`
/// (reads + writes, fp16).
pub fn elementwise_work(m: u64, width: u64) -> Work {
    Work::new(0.0, 2.0 * 2.0 * (m * width) as f64)
}

/// Work of paged attention over `batch` sequences of `ctx_len` context.
pub fn attention_work(spec: &ModelSpec, batch: u64, ctx_len: u64) -> Work {
    let hd = spec.head_dim() as u64;
    let flops = 4.0 * batch as f64 * spec.heads() as f64 * hd as f64 * ctx_len as f64;
    let bytes = 2.0 * 2.0 * batch as f64 * spec.kv_heads() as f64 * hd as f64 * ctx_len as f64;
    Work::new(flops, bytes)
}

/// QKV projection output width: `hidden + 2 · kv_heads · head_dim`.
pub fn qkv_width(spec: &ModelSpec) -> u64 {
    spec.hidden() as u64 + 2 * spec.kv_heads() as u64 * spec.head_dim() as u64
}

/// Approximate FLOPs of one full decode step at `batch` (2 · params · batch).
pub fn decode_step_flops(spec: &ModelSpec, batch: u64) -> f64 {
    2.0 * spec.param_count() as f64 * batch as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table1_for_every_model() {
        for spec in ModelSpec::catalog() {
            assert_eq!(
                total_nodes(&spec),
                spec.table1_nodes(),
                "node calibration broken for {}",
                spec.name()
            );
        }
    }

    #[test]
    fn pads_are_monotone_over_graph_index() {
        for spec in ModelSpec::catalog() {
            let pads: Vec<u64> = (0..NUM_GRAPHS as usize)
                .map(|i| aux_pad_for_graph(&spec, i))
                .collect();
            assert!(pads.windows(2).all(|w| w[0] <= w[1]));
            assert!(pads[NUM_GRAPHS as usize - 1] - pads[0] <= 1);
        }
    }

    #[test]
    fn aux_kernel_count_covers_max_pad() {
        for spec in ModelSpec::catalog() {
            let max_pad = (0..NUM_GRAPHS as usize)
                .map(|i| aux_pad_for_graph(&spec, i))
                .max()
                .unwrap();
            assert_eq!(aux_kernel_count(&spec) as u64, max_pad);
        }
    }

    #[test]
    fn base_structure_scales_with_layers() {
        let q4 = ModelSpec::by_name("Qwen1.5-4B").unwrap();
        let q05 = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        assert_eq!(base_nodes_per_graph(&q4), 405);
        assert_eq!(base_nodes_per_graph(&q05), 245);
    }

    #[test]
    fn gemm_work_formula() {
        let w = gemm_work(2, 3, 4);
        assert_eq!(w.flops, 48.0);
        assert_eq!(w.bytes, 2.0 * (8 + 12 + 6) as f64);
    }

    #[test]
    fn attention_work_scales_with_context() {
        let spec = ModelSpec::by_name("Llama2-7B").unwrap();
        let w1 = attention_work(&spec, 1, 512);
        let w2 = attention_work(&spec, 1, 1024);
        assert!((w2.flops / w1.flops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decode_step_flops_is_two_params_per_token() {
        let spec = ModelSpec::by_name("Llama2-7B").unwrap();
        let f = decode_step_flops(&spec, 1);
        let expected = 2.0 * spec.param_count() as f64;
        assert!((f - expected).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "graph index out of range")]
    fn pad_rejects_out_of_range_index() {
        let spec = ModelSpec::by_name("Llama2-7B").unwrap();
        aux_pad_for_graph(&spec, 35);
    }
}
