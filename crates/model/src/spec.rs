//! Model specifications: the ten LLMs of the paper's Table 1.
//!
//! Architectural parameters (layers, hidden size, heads, vocabulary) follow
//! the public model cards; `param_bytes` reproduces Table 1's reported
//! parameter sizes exactly. `table1_nodes` is the paper's total CUDA graph
//! node count over 35 captured batch sizes and is used by
//! [`crate::schedule`] to calibrate the number of model-specific auxiliary
//! kernels so the reproduction's node counts match Table 1 exactly.

use serde::{Deserialize, Serialize};

const GIB: u64 = 1 << 30;

/// Specification of one model served by the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    name: String,
    layers: u32,
    hidden: u32,
    heads: u32,
    kv_heads: u32,
    intermediate: u32,
    vocab: u32,
    param_bytes: u64,
    table1_nodes: u64,
    max_batch: u32,
    max_num_batched_tokens: u32,
}

impl ModelSpec {
    /// Creates a custom model spec.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        layers: u32,
        hidden: u32,
        heads: u32,
        kv_heads: u32,
        intermediate: u32,
        vocab: u32,
        param_bytes: u64,
        table1_nodes: u64,
    ) -> Self {
        let spec = ModelSpec {
            name: name.into(),
            layers,
            hidden,
            heads,
            kv_heads,
            intermediate,
            vocab,
            param_bytes,
            table1_nodes,
            max_batch: 256,
            max_num_batched_tokens: 8192,
        };
        assert!(spec.layers > 0 && spec.heads > 0 && spec.kv_heads > 0);
        assert_eq!(spec.hidden % spec.heads, 0, "hidden must divide into heads");
        spec
    }

    /// Model name as it appears in the paper.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of transformer layers.
    pub fn layers(&self) -> u32 {
        self.layers
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> u32 {
        self.hidden
    }

    /// Attention heads.
    pub fn heads(&self) -> u32 {
        self.heads
    }

    /// KV heads (MQA/GQA models have fewer than `heads`).
    pub fn kv_heads(&self) -> u32 {
        self.kv_heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> u32 {
        self.hidden / self.heads
    }

    /// MLP intermediate dimension.
    pub fn intermediate(&self) -> u32 {
        self.intermediate
    }

    /// Vocabulary size (drives tokenizer load time).
    pub fn vocab(&self) -> u32 {
        self.vocab
    }

    /// Total parameter bytes (Table 1).
    pub fn param_bytes(&self) -> u64 {
        self.param_bytes
    }

    /// The paper's total CUDA graph node count across 35 batch sizes
    /// (Table 1), used to calibrate auxiliary kernels.
    pub fn table1_nodes(&self) -> u64 {
        self.table1_nodes
    }

    /// Maximum decode batch size (vLLM default capture limit).
    pub fn max_batch(&self) -> u32 {
        self.max_batch
    }

    /// Maximum tokens per profiling forwarding (vLLM
    /// `max_num_batched_tokens`).
    pub fn max_num_batched_tokens(&self) -> u32 {
        self.max_num_batched_tokens
    }

    /// Approximate parameter count (from bytes, fp16).
    pub fn param_count(&self) -> u64 {
        self.param_bytes / 2
    }

    /// KV-cache bytes per token: K and V, all layers, fp16.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers as u64 * self.kv_heads as u64 * self.head_dim() as u64 * 2
    }

    /// The 35 decode batch sizes vLLM captures by default: 1, 2, 4, then
    /// 8..=256 step 8 (paper §2.3 / §7.1).
    pub fn capture_batch_sizes() -> Vec<u32> {
        let mut v = vec![1, 2, 4];
        v.extend((1..=32).map(|i| i * 8));
        debug_assert_eq!(v.len(), 35);
        v
    }

    /// The ten models of Table 1.
    pub fn catalog() -> Vec<ModelSpec> {
        vec![
            ModelSpec::new(
                "Falcon-7B",
                32,
                4544,
                71,
                1,
                18176,
                65024,
                gib_f(13.4),
                14406,
            ),
            ModelSpec::new(
                "Llama2-7B",
                32,
                4096,
                32,
                32,
                11008,
                32000,
                gib_f(12.6),
                12518,
            ),
            ModelSpec::new(
                "Llama2-13B",
                40,
                5120,
                40,
                40,
                13824,
                32000,
                gib_f(24.2),
                16150,
            ),
            ModelSpec::new(
                "Qwen1.5-0.5B",
                24,
                1024,
                16,
                16,
                2816,
                151936,
                gib_f(1.2),
                9118,
            ),
            ModelSpec::new(
                "Qwen1.5-1.8B",
                24,
                2048,
                16,
                16,
                5504,
                151936,
                gib_f(3.4),
                9550,
            ),
            ModelSpec::new(
                "Qwen1.5-4B",
                40,
                2560,
                20,
                20,
                6912,
                151936,
                gib_f(7.4),
                16150,
            ),
            ModelSpec::new(
                "Qwen1.5-7B",
                32,
                4096,
                32,
                32,
                11008,
                151936,
                gib_f(14.4),
                12902,
            ),
            ModelSpec::new(
                "Qwen1.5-14B",
                40,
                5120,
                40,
                40,
                13696,
                152064,
                gib_f(26.4),
                16350,
            ),
            ModelSpec::new("Yi-6B", 32, 4096, 32, 4, 11008, 64000, gib_f(11.3), 12902),
            ModelSpec::new("Yi-9B", 48, 4096, 32, 4, 11008, 64000, gib_f(16.4), 19318),
        ]
    }

    /// Looks up a catalog model by name.
    pub fn by_name(name: &str) -> Option<ModelSpec> {
        Self::catalog().into_iter().find(|m| m.name() == name)
    }
}

fn gib_f(gib: f64) -> u64 {
    (gib * GIB as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_ten_models_with_table1_sizes() {
        let cat = ModelSpec::catalog();
        assert_eq!(cat.len(), 10);
        let total_nodes: u64 = cat.iter().map(|m| m.table1_nodes()).sum();
        assert_eq!(total_nodes, 139_364, "paper: 139364 nodes across 10 models");
        let qwen4b = ModelSpec::by_name("Qwen1.5-4B").unwrap();
        assert_eq!(qwen4b.layers(), 40);
        assert_eq!(qwen4b.head_dim(), 128);
        assert!((qwen4b.param_bytes() as f64 / GIB as f64 - 7.4).abs() < 0.01);
    }

    #[test]
    fn capture_batch_sizes_match_vllm_default() {
        let b = ModelSpec::capture_batch_sizes();
        assert_eq!(b.len(), 35);
        assert_eq!(&b[..5], &[1, 2, 4, 8, 16]);
        assert_eq!(*b.last().unwrap(), 256);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn kv_bytes_per_token_respects_gqa() {
        let yi = ModelSpec::by_name("Yi-6B").unwrap();
        let llama = ModelSpec::by_name("Llama2-7B").unwrap();
        // Same geometry except Yi uses 4 KV heads vs Llama's 32.
        assert_eq!(llama.kv_bytes_per_token() / yi.kv_bytes_per_token(), 8);
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(ModelSpec::by_name("GPT-5").is_none());
    }

    #[test]
    #[should_panic(expected = "hidden must divide into heads")]
    fn invalid_geometry_rejected() {
        ModelSpec::new("bad", 1, 100, 7, 7, 1, 1, 1, 1);
    }
}
