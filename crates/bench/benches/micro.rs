//! Micro-benchmarks of the core Medusa mechanisms: what does
//! materialization/restoration itself cost in wall-clock terms, the
//! ablation of trace-based vs naive pointer matching, and the real
//! multi-core speedup of the parallel cold-start engine.
//!
//! Self-contained harness (`harness = false`, no external bench crate —
//! the build is fully offline): each benchmark runs a timed loop around a
//! closure and reports the per-iteration mean and median.
//!
//! Run with: `cargo bench --bench micro`
//!
//! `-- --smoke [--out FILE]` runs only the deterministic cold-start smoke
//! benchmark (simulated makespans, machine-independent) and writes
//! `BENCH_coldstart.json` for the CI regression gate. `--out-cluster FILE`
//! additionally runs the fleet scenario (Medusa vs vanilla cluster under a
//! burst trace) and writes `BENCH_cluster.json`; `--out-cluster-mt FILE`
//! runs the multi-tenant fleet scenario (eight Zipf-skewed models against
//! a bounded cost-aware artifact cache) and writes
//! `BENCH_cluster_multitenant.json`; `--out-artifact FILE` runs the MAF2
//! size sweep (encode / open / validate / lazy restore at 1×/10×/100×)
//! and writes `BENCH_artifact.json`; `--out-policies FILE` runs the
//! predictive-policy race (reactive vs locality vs locality+prewarm vs
//! pipeline-parallel, plus the 100×-artifact cold-start duel) and writes
//! `BENCH_policies.json`. `--emit-telemetry DIR`
//! additionally exports Chrome traces and Prometheus snapshots for every
//! cold-start mode and both fleet sides.

use std::time::{Duration, Instant};

use medusa::{
    analyze, count_naive_mismatches, materialize_offline, materialize_offline_tp_with,
    replay_allocations, restore_graph, ColdStart, ColdStartOptions, KernelResolver, Parallelism,
    Strategy,
};
use medusa_gpu::{AllocTag, CostModel, GpuSpec, ParamBuffer, ProcessRuntime};
use medusa_model::{build_catalog, ModelSpec};

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

/// Times `f` for at least `min_iters` iterations and ~200ms, returning
/// (mean, median) per-iteration durations.
fn measure<T>(min_iters: u32, mut f: impl FnMut() -> T) -> (Duration, Duration) {
    // Warm-up.
    std::hint::black_box(f());
    let mut samples = Vec::new();
    let budget = Duration::from_millis(200);
    let started = Instant::now();
    loop {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
        if samples.len() as u32 >= min_iters && started.elapsed() > budget {
            break;
        }
        if samples.len() >= 10_000 {
            break;
        }
    }
    samples.sort();
    let total: Duration = samples.iter().sum();
    (total / samples.len() as u32, samples[samples.len() / 2])
}

fn report(name: &str, (mean, median): (Duration, Duration)) {
    println!("{name:<44} mean {mean:>12.3?}   median {median:>12.3?}");
}

fn bench_allocator() {
    let mut rt = ProcessRuntime::new(
        build_catalog(&spec()),
        GpuSpec::a100_40gb(),
        CostModel::default(),
        1,
    );
    report(
        "allocator_malloc_free_pair",
        measure(1000, || {
            let p = rt.cuda_malloc(4096, AllocTag::Activation).expect("alloc");
            rt.cuda_free(p).expect("free");
        }),
    );
}

fn bench_param_buffer() {
    let parts: Vec<(u64, u32)> = (0..8)
        .map(|i| {
            (
                0x0007_2000_0000_0000 + i * 64,
                if i % 3 == 0 { 4 } else { 8 },
            )
        })
        .collect();
    report(
        "param_buffer_from_parts_8",
        measure(1000, || {
            ParamBuffer::from_parts(std::hint::black_box(&parts))
        }),
    );
}

fn bench_offline_phase() {
    let s = spec();
    let mut seed = 0u64;
    report(
        "offline/capture_stage_qwen05b_35_graphs",
        measure(3, || {
            seed += 1;
            medusa::run_offline_capture(&s, GpuSpec::a100_40gb(), CostModel::default(), seed)
                .expect("capture")
        }),
    );
    let cap = medusa::run_offline_capture(&s, GpuSpec::a100_40gb(), CostModel::default(), 7)
        .expect("capture");
    report(
        "offline/analysis_stage_qwen05b",
        measure(3, || {
            analyze(&cap, &CostModel::default()).expect("analysis")
        }),
    );
    report(
        "offline/ablation_naive_matching_scan",
        measure(3, || count_naive_mismatches(&cap)),
    );
}

fn bench_online_restore() {
    let s = spec();
    let (artifact, _) =
        materialize_offline(&s, GpuSpec::a100_40gb(), CostModel::default(), 9).expect("offline");
    report(
        "online/replay_allocation_sequence",
        measure(3, || {
            let mut rt = ProcessRuntime::new(
                build_catalog(&s),
                GpuSpec::a100_40gb(),
                CostModel::default(),
                123,
            );
            let _inst = medusa_model::ModelInstance::initialize(&mut rt, &s).expect("structure");
            replay_allocations(&mut rt, &artifact).expect("replay")
        }),
    );
    // One full restore of the largest graph (pointer patching path).
    let mut rt = ProcessRuntime::new(
        build_catalog(&s),
        GpuSpec::a100_40gb(),
        CostModel::default(),
        124,
    );
    let mut inst = medusa_model::ModelInstance::initialize(&mut rt, &s).expect("structure");
    medusa_model::load_weights(&mut rt, &inst, 1.0).expect("weights");
    let (layout, _) = replay_allocations(&mut rt, &artifact).expect("replay");
    inst.bind_workspace(layout.workspace().expect("ws"));
    inst.bind_magic(layout.magic_pairs(s.layers()).expect("magic"));
    let kv = layout.kv_view(16).expect("kv");
    let mut resolver = KernelResolver::new();
    resolver
        .resolve_exported(&mut rt, &artifact)
        .expect("dlsym path");
    for bsz in [1, 8, 64, 256] {
        medusa_model::warmup_first_layer(&mut rt, &mut inst, bsz, &kv).expect("trigger");
    }
    resolver
        .resolve_by_enumeration(&mut rt, &artifact)
        .expect("enumeration");
    let gspec = artifact.graphs.last().expect("graphs");
    report(
        "online/restore_graph_largest_batch",
        measure(10, || {
            restore_graph(gspec, &layout, resolver.addrs()).expect("restore")
        }),
    );
}

fn bench_serde() {
    let s = spec();
    let (artifact, _) =
        materialize_offline(&s, GpuSpec::a100_40gb(), CostModel::default(), 10).expect("offline");
    let json = artifact.to_json().expect("encode");
    report(
        "artifact/to_json",
        measure(3, || artifact.to_json().expect("encode")),
    );
    report(
        "artifact/from_json",
        measure(3, || {
            medusa::MaterializedState::from_json(&json).expect("decode")
        }),
    );
}

fn bench_serving_and_workload() {
    use medusa_serving::{simulate, ClusterConfig, PerfModel};
    use medusa_workload::TraceConfig;
    let mut seed = 0u64;
    report(
        "serving/workload_generate_10rps_300s",
        measure(3, || {
            seed += 1;
            TraceConfig::sharegpt(10.0, 300.0)
                .with_seed(seed)
                .generate()
        }),
    );
    let perf = PerfModel::from_tables(
        medusa::Strategy::Vanilla,
        "bench",
        medusa_gpu::SimDuration::from_millis(1500),
        vec![1, 8, 32, 128, 256],
        vec![
            medusa_gpu::SimDuration::from_millis(8),
            medusa_gpu::SimDuration::from_millis(9),
            medusa_gpu::SimDuration::from_millis(11),
            medusa_gpu::SimDuration::from_millis(14),
            medusa_gpu::SimDuration::from_millis(18),
        ],
        vec![
            (64, medusa_gpu::SimDuration::from_millis(10)),
            (2048, medusa_gpu::SimDuration::from_millis(80)),
        ],
    );
    let trace = TraceConfig::sharegpt(10.0, 300.0).with_seed(3).generate();
    report(
        "serving/cluster_sim_3000_requests",
        measure(3, || {
            simulate(
                &perf,
                &ClusterConfig::default(),
                std::hint::black_box(&trace),
            )
        }),
    );
}

fn bench_tokenizer() {
    use medusa_model::Tokenizer;
    let (tok, _) = Tokenizer::load(32_000, &CostModel::default());
    let text = "the quick brown fox jumps over the lazy dog ".repeat(32);
    report(
        "tokenizer_encode_1p4kb",
        measure(100, || tok.encode(std::hint::black_box(&text))),
    );
}

/// Real multi-core wall-clock of the parallel cold-start engine: the same
/// tp=4 offline+online pipeline, serial vs rank-parallel (ISSUE acceptance:
/// the pipelined engine must be faster on a multi-core host).
fn bench_parallel_cold_start() {
    let s = spec();
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();
    let tp = 4u32;
    let run = |mode: Parallelism| {
        let t0 = Instant::now();
        let (arts, _) = materialize_offline_tp_with(&s, tp, gpu.clone(), cost.clone(), 31, mode)
            .expect("tp offline");
        let opts = ColdStartOptions {
            seed: 32,
            warm_container: true,
            parallelism: mode,
            ..Default::default()
        };
        let cold = ColdStart::new(&s)
            .strategy(Strategy::Medusa)
            .gpu(gpu.clone())
            .cost(cost.clone())
            .options(opts)
            .artifacts(&arts)
            .run()
            .expect("tp cold start");
        (t0.elapsed(), cold.loading())
    };
    let (serial_wall, serial_sim) = run(Parallelism::Serial);
    let (par_wall, par_sim) = run(Parallelism::PipelinedTp);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel_cold_start/tp4_offline_online   serial    {serial_wall:>10.3?} (sim loading {:.3}s)",
        serial_sim.as_secs_f64()
    );
    println!(
        "parallel_cold_start/tp4_offline_online   pipelined {par_wall:>10.3?} (sim loading {:.3}s)",
        par_sim.as_secs_f64()
    );
    println!(
        "parallel_cold_start/tp4_offline_online   wall-clock speedup {:.2}x on {cores} core(s)",
        serial_wall.as_secs_f64() / par_wall.as_secs_f64()
    );
    if cores < 2 {
        println!(
            "  note: single-core host — rank threads cannot run concurrently, so only the\n  \
             simulated loading ablation is meaningful here; re-run on a multi-core host\n  \
             for the wall-clock speedup."
        );
    }
}

/// Returns the value following `key`, if present (unknown flags — e.g. the
/// `--bench` cargo injects — are tolerated and ignored).
fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Runs the deterministic smoke benchmarks, writes `BENCH_coldstart.json`
/// (and `BENCH_cluster.json` when `out_cluster` is set), and optionally
/// exports telemetry snapshots.
fn run_smoke(
    out: &str,
    out_cluster: Option<&str>,
    out_cluster_mt: Option<&str>,
    out_artifact: Option<&str>,
    out_policies: Option<&str>,
    emit_dir: Option<&str>,
) {
    use medusa_bench::smoke;
    let result = smoke::run();
    println!(
        "smoke/coldstart_tp{}_{}   serial {} us   overlapped {} us   tp-pipelined {} us",
        result.tp, result.model, result.serial_us, result.overlapped_us, result.pipelined_us
    );
    std::fs::write(out, result.to_json()).expect("write smoke result");
    println!("smoke: wrote {out}");
    if let Some(path) = out_cluster {
        let cluster = smoke::run_cluster();
        println!(
            "smoke/cluster_{}x{}   medusa {} colds / p99 {} us   vanilla {} colds / p99 {} us",
            cluster.model,
            cluster.nodes,
            cluster.medusa_cold_starts,
            cluster.medusa_ttft_p99_us,
            cluster.vanilla_cold_starts,
            cluster.vanilla_ttft_p99_us
        );
        std::fs::write(path, cluster.to_json()).expect("write cluster smoke result");
        println!("smoke: wrote {path}");
    }
    if let Some(path) = out_cluster_mt {
        let mt = smoke::run_cluster_mt();
        println!(
            "smoke/cluster_mt_{}x{}_{}models   medusa p99 {} us   vanilla p99 {} us   cache \
             {}h/{}m/{}e ({} permille)",
            mt.model,
            mt.nodes,
            mt.models,
            mt.medusa_ttft_p99_us,
            mt.vanilla_ttft_p99_us,
            mt.cache_hits,
            mt.cache_misses,
            mt.cache_evictions,
            mt.cache_hit_rate_pm
        );
        std::fs::write(path, mt.to_json()).expect("write multi-tenant smoke result");
        println!("smoke: wrote {path}");
    }
    if let Some(path) = out_artifact {
        let (sweep, timings) = smoke::run_artifact();
        for (s, t) in sweep.scales.iter().zip(&timings) {
            println!(
                "smoke/artifact_{}x   maf2 {} B (json {} B)   encode {:?}   open+validate {:?} \
                 ({} B read)   json parse+validate {:?}   rank0 restore {:?} ({} B read)",
                s.scale,
                s.maf2_bytes,
                s.json_bytes,
                t.encode,
                t.maf2_open_validate,
                s.open_read_bytes,
                t.json_parse_validate,
                t.shard_restore,
                s.shard_restore_read_bytes
            );
        }
        std::fs::write(path, sweep.to_json()).expect("write artifact sweep result");
        println!("smoke: wrote {path}");
    }
    if let Some(path) = out_policies {
        let race = smoke::run_policies();
        for r in &race.rows {
            println!(
                "smoke/policies_{}   p50 {} us   p99 {} us   {} colds   {} prewarms ({} unused)   \
                 {} sharded starts",
                r.policy,
                r.ttft_p50_us,
                r.ttft_p99_us,
                r.cold_starts,
                r.prewarms_issued,
                r.prewarms_unused,
                r.pipeline_starts
            );
        }
        println!(
            "smoke/policies_coldstart_duel_{}x   single {} us   pipelined(k={}) {} us",
            race.artifact_scale,
            race.single_coldstart_ttft_us,
            race.pipeline_k,
            race.pipeline_coldstart_ttft_us
        );
        std::fs::write(path, race.to_json()).expect("write policy race result");
        println!("smoke: wrote {path}");
    }
    if let Some(dir) = emit_dir {
        std::fs::create_dir_all(dir).expect("create telemetry dir");
        for (label, mode) in [
            ("serial", Parallelism::Serial),
            ("overlapped", Parallelism::Overlapped),
            ("pipelined", Parallelism::PipelinedTp),
        ] {
            let tele = medusa_telemetry::Registry::new();
            smoke::run_mode(mode, Some(&tele));
            let snap = tele.snapshot();
            let trace = format!("{dir}/coldstart_{label}.trace.json");
            std::fs::write(&trace, medusa_telemetry::export::chrome::render(&snap))
                .expect("write chrome trace");
            let prom = format!("{dir}/coldstart_{label}.prom");
            std::fs::write(&prom, medusa_telemetry::export::prometheus::render(&snap))
                .expect("write prometheus snapshot");
            println!("smoke: wrote {trace} and {prom}");
        }
        for (label, strategy) in [("medusa", Strategy::Medusa), ("vanilla", Strategy::Vanilla)] {
            let tele = medusa_telemetry::Registry::new();
            medusa_bench::smoke::run_cluster_side(strategy, Some(&tele));
            let snap = tele.snapshot();
            let trace = format!("{dir}/cluster_{label}.trace.json");
            std::fs::write(&trace, medusa_telemetry::export::chrome::render(&snap))
                .expect("write chrome trace");
            let prom = format!("{dir}/cluster_{label}.prom");
            std::fs::write(&prom, medusa_telemetry::export::prometheus::render(&snap))
                .expect("write prometheus snapshot");
            println!("smoke: wrote {trace} and {prom}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_coldstart.json".to_string());
    let out_cluster = flag_value(&args, "--out-cluster");
    let out_cluster_mt = flag_value(&args, "--out-cluster-mt");
    let out_artifact = flag_value(&args, "--out-artifact");
    let out_policies = flag_value(&args, "--out-policies");
    let emit = flag_value(&args, "--emit-telemetry");
    if args.iter().any(|a| a == "--smoke") {
        run_smoke(
            &out,
            out_cluster.as_deref(),
            out_cluster_mt.as_deref(),
            out_artifact.as_deref(),
            out_policies.as_deref(),
            emit.as_deref(),
        );
        return;
    }
    println!("medusa micro-benchmarks (self-contained harness)\n");
    bench_allocator();
    bench_param_buffer();
    bench_tokenizer();
    bench_offline_phase();
    bench_online_restore();
    bench_serde();
    bench_serving_and_workload();
    bench_parallel_cold_start();
    if let Some(dir) = emit {
        run_smoke(
            &out,
            out_cluster.as_deref(),
            out_cluster_mt.as_deref(),
            out_artifact.as_deref(),
            out_policies.as_deref(),
            Some(&dir),
        );
    }
}
