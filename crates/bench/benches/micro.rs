//! Criterion micro-benchmarks of the core Medusa mechanisms: what does
//! materialization/restoration itself cost in wall-clock terms, and the
//! ablation of trace-based vs naive pointer matching.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use medusa::{analyze, count_naive_mismatches, replay_allocations, restore_graph, KernelResolver};
use medusa_gpu::{AllocTag, CostModel, GpuSpec, ParamBuffer, ProcessRuntime};
use medusa_model::{build_catalog, ModelSpec};

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("allocator_malloc_free_pair", |b| {
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec()),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            1,
        );
        b.iter(|| {
            let p = rt.cuda_malloc(4096, AllocTag::Activation).expect("alloc");
            rt.cuda_free(p).expect("free");
        })
    });
}

fn bench_param_buffer(c: &mut Criterion) {
    let parts: Vec<(u64, u32)> =
        (0..8).map(|i| (0x0007_2000_0000_0000 + i * 64, if i % 3 == 0 { 4 } else { 8 })).collect();
    c.bench_function("param_buffer_from_parts_8", |b| {
        b.iter(|| ParamBuffer::from_parts(std::hint::black_box(&parts)))
    });
}

fn bench_offline_phase(c: &mut Criterion) {
    let s = spec();
    let mut g = c.benchmark_group("offline");
    g.sample_size(10);
    g.bench_function("capture_stage_qwen05b_35_graphs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            medusa::run_offline_capture(&s, GpuSpec::a100_40gb(), CostModel::default(), seed)
                .expect("capture")
        })
    });
    let cap = medusa::run_offline_capture(&s, GpuSpec::a100_40gb(), CostModel::default(), 7)
        .expect("capture");
    g.bench_function("analysis_stage_qwen05b", |b| {
        b.iter(|| analyze(&cap, &CostModel::default()).expect("analysis"))
    });
    g.bench_function("ablation_naive_matching_scan", |b| {
        b.iter(|| count_naive_mismatches(&cap))
    });
    g.finish();
}

fn bench_online_restore(c: &mut Criterion) {
    let s = spec();
    let (artifact, _) =
        medusa::materialize_offline(&s, GpuSpec::a100_40gb(), CostModel::default(), 9)
            .expect("offline");
    let mut g = c.benchmark_group("online");
    g.sample_size(10);
    g.bench_function("replay_allocation_sequence", |b| {
        b.iter_batched(
            || {
                let mut rt = ProcessRuntime::new(
                    build_catalog(&s),
                    GpuSpec::a100_40gb(),
                    CostModel::default(),
                    123,
                );
                let _inst =
                    medusa_model::ModelInstance::initialize(&mut rt, &s).expect("structure");
                rt
            },
            |mut rt| replay_allocations(&mut rt, &artifact).expect("replay"),
            BatchSize::LargeInput,
        )
    });
    // One full restore of the largest graph (pointer patching path).
    let mut rt = ProcessRuntime::new(
        build_catalog(&s),
        GpuSpec::a100_40gb(),
        CostModel::default(),
        124,
    );
    let mut inst = medusa_model::ModelInstance::initialize(&mut rt, &s).expect("structure");
    medusa_model::load_weights(&mut rt, &inst, 1.0).expect("weights");
    let (layout, _) = replay_allocations(&mut rt, &artifact).expect("replay");
    inst.bind_workspace(layout.workspace().expect("ws"));
    inst.bind_magic(layout.magic_pairs(s.layers()).expect("magic"));
    let kv = layout.kv_view(16).expect("kv");
    let mut resolver = KernelResolver::new();
    resolver.resolve_exported(&mut rt, &artifact).expect("dlsym path");
    for bsz in [1, 8, 64, 256] {
        medusa_model::warmup_first_layer(&mut rt, &mut inst, bsz, &kv).expect("trigger");
    }
    resolver.resolve_by_enumeration(&mut rt, &artifact).expect("enumeration");
    let gspec = artifact.graphs.last().expect("graphs");
    g.bench_function("restore_graph_largest_batch", |b| {
        b.iter(|| restore_graph(gspec, &layout, resolver.addrs()).expect("restore"))
    });
    g.finish();
}

fn bench_serde(c: &mut Criterion) {
    let s = spec();
    let (artifact, _) =
        medusa::materialize_offline(&s, GpuSpec::a100_40gb(), CostModel::default(), 10)
            .expect("offline");
    let json = artifact.to_json().expect("encode");
    let mut g = c.benchmark_group("artifact");
    g.sample_size(10);
    g.bench_function("artifact_to_json", |b| b.iter(|| artifact.to_json().expect("encode")));
    g.bench_function("artifact_from_json", |b| {
        b.iter(|| medusa::MaterializedState::from_json(&json).expect("decode"))
    });
    g.finish();
}

fn bench_serving_and_workload(c: &mut Criterion) {
    use medusa_serving::{simulate, ClusterConfig, PerfModel};
    use medusa_workload::TraceConfig;
    let mut g = c.benchmark_group("serving");
    g.bench_function("workload_generate_10rps_300s", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            TraceConfig::sharegpt(10.0, 300.0).with_seed(seed).generate()
        })
    });
    let perf = PerfModel::from_tables(
        medusa::Strategy::Vanilla,
        "bench",
        medusa_gpu::SimDuration::from_millis(1500),
        vec![1, 8, 32, 128, 256],
        vec![
            medusa_gpu::SimDuration::from_millis(8),
            medusa_gpu::SimDuration::from_millis(9),
            medusa_gpu::SimDuration::from_millis(11),
            medusa_gpu::SimDuration::from_millis(14),
            medusa_gpu::SimDuration::from_millis(18),
        ],
        vec![
            (64, medusa_gpu::SimDuration::from_millis(10)),
            (2048, medusa_gpu::SimDuration::from_millis(80)),
        ],
    );
    let trace = TraceConfig::sharegpt(10.0, 300.0).with_seed(3).generate();
    g.bench_function("cluster_sim_3000_requests", |b| {
        b.iter(|| simulate(&perf, &ClusterConfig::default(), std::hint::black_box(&trace)))
    });
    g.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    use medusa_model::Tokenizer;
    let (tok, _) = Tokenizer::load(32_000, &CostModel::default());
    let text = "the quick brown fox jumps over the lazy dog ".repeat(32);
    c.bench_function("tokenizer_encode_1p4kb", |b| {
        b.iter(|| tok.encode(std::hint::black_box(&text)))
    });
}

criterion_group!(
    benches,
    bench_allocator,
    bench_param_buffer,
    bench_offline_phase,
    bench_online_restore,
    bench_serde,
    bench_serving_and_workload,
    bench_tokenizer
);
criterion_main!(benches);
