//! Harnesses regenerating every figure and table of the paper's evaluation.
//!
//! Each function prints the same rows/series the paper reports, with the
//! paper's headline values quoted for comparison. Absolute values are
//! simulated seconds; the reproduction targets are the *shapes* — who wins,
//! by roughly what factor, where crossovers fall.

use crate::common::{self, for_all_models, gpu, offline, pct, run_cold, s};
use medusa::{ColdStartReport, Stage, Strategy};
use medusa_model::ModelSpec;
use medusa_serving::{simulate, ClusterConfig, PerfModel};
use medusa_workload::TraceConfig;

const LOADING_STAGES: [Stage; 5] = [
    Stage::StructureInit,
    Stage::WeightsLoad,
    Stage::TokenizerLoad,
    Stage::KvCacheInit,
    Stage::Capture,
];

/// Figure 1: cold-start timeline of Qwen1.5 4B under vanilla vLLM.
pub fn fig1() {
    println!("### Figure 1 — cold start timeline, Qwen1.5 4B (vanilla vLLM)");
    println!("paper: runtime init 22%, loading 76%, first token 2%;");
    println!("       KV init + capturing = 50% of the loading phase\n");
    let spec = ModelSpec::by_name("Qwen1.5-4B").expect("catalog");
    let (_e, r) = run_cold(Strategy::Vanilla, &spec, None, false);
    let total = r.total.as_secs_f64();
    let loading = r.loading.as_secs_f64();
    println!("{:<16} {:>9} {:>8}", "phase", "seconds", "share");
    for (name, d) in [
        ("runtime init", r.stage(Stage::RuntimeInit)),
        ("loading", r.loading),
        ("first token", r.stage(Stage::FirstToken)),
    ] {
        println!(
            "{:<16} {:>9} {:>8}",
            name,
            s(d),
            pct(d.as_secs_f64(), total)
        );
    }
    let kv = r.stage(Stage::KvCacheInit).as_secs_f64();
    let cap = r.stage(Stage::Capture).as_secs_f64();
    println!(
        "\nwithin loading: kv init {} + capturing {} = {} of the loading phase",
        pct(kv, loading),
        pct(cap, loading),
        pct(kv + cap, loading)
    );
}

/// Figure 2: loading-phase breakdown across all ten models.
pub fn fig2() {
    println!("### Figure 2 — loading phase breakdown, vanilla vLLM, 10 models");
    println!("paper: KV init ≈ 18% and capturing ≈ 32% of loading on average\n");
    let rows = for_all_models(|spec| run_cold(Strategy::Vanilla, spec, None, true).1);
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6}",
        "model", "struct", "weights", "token", "kvinit", "capture", "total", "kv%", "cap%"
    );
    let (mut kv_sum, mut cap_sum) = (0.0, 0.0);
    for (spec, r) in &rows {
        let total = r.loading.as_secs_f64();
        let by: Vec<f64> = LOADING_STAGES
            .iter()
            .map(|&st| r.stage(st).as_secs_f64())
            .collect();
        kv_sum += by[3] / total;
        cap_sum += by[4] / total;
        println!(
            "{:<14} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>6} {:>6}",
            spec.name(),
            by[0],
            by[1],
            by[2],
            by[3],
            by[4],
            total,
            pct(by[3], total),
            pct(by[4], total)
        );
    }
    let n = rows.len() as f64;
    println!(
        "\naverage: kv init {:.1}% of loading (paper 18%), capturing {:.1}% (paper 32%), combined {:.1}% (paper ~47-50%)",
        100.0 * kv_sum / n,
        100.0 * cap_sum / n,
        100.0 * (kv_sum + cap_sum) / n
    );
}

/// Figure 3: inference latency with vs. without CUDA graphs.
pub fn fig3() {
    println!("### Figure 3 — acceleration brought by the CUDA graph");
    println!("paper: prompt 161 / output 338 tokens; speedup up to 2.4x\n");
    let models = ["Llama2-7B", "Qwen1.5-4B", "Qwen1.5-7B", "Llama2-13B"];
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "model", "w/o graph(s)", "w/ graph(s)", "speedup"
    );
    let mut best: f64 = 0.0;
    for name in models {
        let spec = ModelSpec::by_name(name).expect("catalog");
        let (mut with_graph, _) = run_cold(Strategy::Vanilla, &spec, None, true);
        let (mut without, _) = run_cold(Strategy::NoCudaGraph, &spec, None, true);
        let latency = |e: &mut medusa::ReadyEngine| -> f64 {
            // Warm the batch-1 path once (first eager decode pays one-time
            // module loads); the figure reports steady-state serving.
            e.decode_step(1).expect("warm decode");
            let prefill = e.prefill(1, 161).expect("prefill").as_secs_f64();
            let step = e.decode_step(1).expect("decode").as_secs_f64();
            prefill + 337.0 * step
        };
        let lw = latency(&mut with_graph);
        let lo = latency(&mut without);
        best = best.max(lo / lw);
        println!("{:<14} {:>12.3} {:>12.3} {:>8.2}x", name, lo, lw, lo / lw);
    }
    println!("\nmax speedup {best:.2}x (paper: up to 2.4x)");
}

/// Table 1: parameter sizes and CUDA graph node counts.
pub fn table1() {
    println!("### Table 1 — models, parameter sizes, CUDA graph node counts");
    println!("paper total: 139364 nodes across 10 models x 35 batch sizes\n");
    let rows = for_all_models(|spec| {
        let (artifact, _) = offline(spec);
        artifact.total_nodes()
    });
    println!(
        "{:<14} {:>12} {:>14} {:>14}",
        "model", "params", "nodes(meas.)", "nodes(paper)"
    );
    let mut total = 0u64;
    for (spec, nodes) in &rows {
        total += nodes;
        println!(
            "{:<14} {:>10.1}GB {:>14} {:>14}",
            spec.name(),
            spec.param_bytes() as f64 / (1u64 << 30) as f64,
            nodes,
            spec.table1_nodes()
        );
    }
    println!("\ntotal measured nodes: {total} (paper: 139364)");
}

fn fig7_rows() -> Vec<(ModelSpec, [ColdStartReport; 3])> {
    for_all_models(|spec| {
        let (artifact, _) = offline(spec);
        [
            run_cold(Strategy::Vanilla, spec, None, false).1,
            run_cold(Strategy::VanillaAsync, spec, None, false).1,
            run_cold(Strategy::Medusa, spec, Some(&artifact), false).1,
        ]
    })
}

/// Figure 7: overall loading-phase time (a) and cold-start time (b).
pub fn fig7() {
    println!("### Figure 7 — loading phase (a) and cold start (b) per strategy");
    println!("paper: Medusa reduces loading by 42.5% avg vs vLLM (34.4% vs +Async)");
    println!("       and cold start by 34.9% avg; best Llama2-13B, worst Qwen1.5-0.5B\n");
    let rows = fig7_rows();
    println!(
        "{:<14} | {:>8} {:>8} {:>8} {:>7} | {:>8} {:>8} {:>8} {:>7}",
        "model", "vLLM", "+Async", "Medusa", "redu.", "vLLM", "+Async", "Medusa", "redu."
    );
    println!(
        "{:<14} | {:^34} | {:^34}",
        "", "loading phase (s)", "cold start (s)"
    );
    let (mut load_red, mut cold_red) = (0.0, 0.0);
    let mut extremes: Vec<(String, f64)> = Vec::new();
    for (spec, [v, a, m]) in &rows {
        let lred = 1.0 - m.loading.as_secs_f64() / v.loading.as_secs_f64();
        let cred = 1.0 - m.total.as_secs_f64() / v.total.as_secs_f64();
        load_red += lred;
        cold_red += cred;
        extremes.push((spec.name().to_string(), lred));
        println!(
            "{:<14} | {:>8} {:>8} {:>8} {:>6.1}% | {:>8} {:>8} {:>8} {:>6.1}%",
            spec.name(),
            s(v.loading),
            s(a.loading),
            s(m.loading),
            100.0 * lred,
            s(v.total),
            s(a.total),
            s(m.total),
            100.0 * cred
        );
    }
    let n = rows.len() as f64;
    extremes.sort_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"));
    println!(
        "\naverage loading reduction {:.1}% (paper 42.5%), cold-start reduction {:.1}% (paper 34.9%)",
        100.0 * load_red / n,
        100.0 * cold_red / n
    );
    println!(
        "least reduction: {} {:.1}% (paper: Qwen1.5-0.5B 21.1%); most: {} {:.1}% (paper: Llama2-13B 42.9%)",
        extremes[0].0,
        100.0 * extremes[0].1,
        extremes[extremes.len() - 1].0,
        100.0 * extremes[extremes.len() - 1].1
    );
}

/// Figure 8: stage-level breakdown of the three strategies for Qwen1.5 4B.
pub fn fig8() {
    println!("### Figure 8 — breakdown of strategies, Qwen1.5 4B");
    println!("paper: vLLM 2.85s -> +Async 2.48s -> Medusa 1.67s;");
    println!("       kv init 0.50->0.02s, capturing 0.90->0.57s, interference +0.08s\n");
    let spec = ModelSpec::by_name("Qwen1.5-4B").expect("catalog");
    let (artifact, _) = offline(&spec);
    for (strategy, art) in [
        (Strategy::Vanilla, None),
        (Strategy::VanillaAsync, None),
        (Strategy::Medusa, Some(&artifact)),
    ] {
        let (_e, r) = run_cold(strategy, &spec, art, true);
        println!("{} — loading {}s", strategy, s(r.loading));
        for span in &r.spans {
            if span.stage == Stage::RuntimeInit || span.stage == Stage::FirstToken {
                continue;
            }
            println!(
                "  {:<16} [{:>7} .. {:>7}]  {:>7}s",
                span.stage.to_string(),
                s(span.start - medusa_gpu::SimTime::ZERO),
                s(span.end - medusa_gpu::SimTime::ZERO),
                s(span.duration())
            );
        }
        println!();
    }
}

/// Figure 9: offline-phase overhead per model.
pub fn fig9() {
    println!("### Figure 9 — offline phase overhead");
    println!("paper: 39.2s average (capturing ~9.7s + analysis); < 1 minute\n");
    let rows = for_all_models(|spec| offline(spec).1);
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "model", "capture(s)", "analysis(s)", "total(s)"
    );
    let mut total = 0.0;
    for (spec, rep) in &rows {
        total += rep.total().as_secs_f64();
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>10.2}",
            spec.name(),
            rep.capture.as_secs_f64(),
            rep.analysis.as_secs_f64(),
            rep.total().as_secs_f64()
        );
    }
    println!(
        "\naverage offline phase: {:.1}s (paper 39.2s)",
        total / rows.len() as f64
    );
}

fn perf_models(spec: &ModelSpec) -> Vec<(Strategy, PerfModel)> {
    let (artifact, _) = offline(spec);
    Strategy::ALL
        .into_iter()
        .map(|strategy| {
            let art = (strategy == Strategy::Medusa).then_some(&artifact);
            let p = PerfModel::measure(
                strategy,
                spec,
                gpu(),
                common::cost(),
                art,
                common::online_seed(spec, strategy),
            )
            .expect("perf measurement");
            (strategy, p)
        })
        .collect()
}

/// Figure 10: p99 TTFT under the ShareGPT trace at RPS 2 and 10.
pub fn fig10() {
    println!("### Figure 10 — p99 TTFT under real-world traces (4x A100)");
    println!("paper: Medusa reduces p99 TTFT by 50.5% (Llama2-7B, rps2) and");
    println!("       53.0% (rps10) vs vLLM; also beats w/o CUDA GRAPH\n");
    for model in ["Llama2-7B", "Qwen1.5-4B"] {
        let spec = ModelSpec::by_name(model).expect("catalog");
        let perfs = perf_models(&spec);
        for rps in [2.0, 10.0] {
            let trace = TraceConfig::sharegpt(rps, 120.0).with_seed(42).generate();
            println!("{model} @ {rps} rps ({} requests):", trace.len());
            let mut p99 = Vec::new();
            for (strategy, perf) in &perfs {
                let r = simulate(perf, &ClusterConfig::default(), &trace);
                let q = r.ttft_quantile(0.99);
                p99.push((*strategy, q.as_secs_f64()));
                println!(
                    "  {:<16} p99 TTFT {:>8}s   mean {:>8}s   cold starts {}",
                    strategy.to_string(),
                    s(q),
                    s(r.ttft_mean()),
                    r.cold_starts.len()
                );
            }
            let vllm = p99
                .iter()
                .find(|(st, _)| *st == Strategy::Vanilla)
                .expect("ran")
                .1;
            let med = p99
                .iter()
                .find(|(st, _)| *st == Strategy::Medusa)
                .expect("ran")
                .1;
            println!(
                "  => Medusa p99 reduction vs vLLM: {:.1}%\n",
                100.0 * (1.0 - med / vllm)
            );
        }
    }
}

/// Figure 11: p99 TTFT versus achieved system throughput (RPS sweep).
pub fn fig11() {
    println!("### Figure 11 — p99 TTFT vs overall throughput (RPS sweep, 4x A100)");
    println!("paper: at ~4.5 QPS (Llama2-7B) Medusa is 43.0/29.9/27.0% below");
    println!("       vLLM / vLLM+Async / w-o CUDA graph\n");
    for model in ["Llama2-7B", "Qwen1.5-4B"] {
        let spec = ModelSpec::by_name(model).expect("catalog");
        let perfs = perf_models(&spec);
        println!("{model}:");
        println!(
            "{:<6} | {:>22} {:>22} {:>22} {:>22}",
            "rps", "vLLM", "vLLM+Async", "Medusa", "w/o CUDA graph"
        );
        for rps in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0] {
            let trace = TraceConfig::sharegpt(rps, 120.0).with_seed(17).generate();
            print!("{rps:<6} |");
            for target in [
                Strategy::Vanilla,
                Strategy::VanillaAsync,
                Strategy::Medusa,
                Strategy::NoCudaGraph,
            ] {
                let perf = &perfs
                    .iter()
                    .find(|(st, _)| *st == target)
                    .expect("measured")
                    .1;
                let r = simulate(perf, &ClusterConfig::default(), &trace);
                print!(
                    " {:>9.2}qps {:>8.3}s ",
                    r.throughput(),
                    r.ttft_quantile(0.99).as_secs_f64()
                );
            }
            println!();
        }
        println!();
    }
}
