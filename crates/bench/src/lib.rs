//! # medusa-bench
//!
//! Benchmark harness for the Medusa (ASPLOS'25) reproduction: the `repro`
//! binary regenerates every table and figure of the paper's evaluation
//! section on the simulated stack, and the Criterion benches measure the
//! wall-clock cost of the core mechanisms themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod common;
pub mod figures;
pub mod smoke;
