//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro <fig1|fig2|fig3|table1|fig7|fig8|fig9|fig10|fig11|all>`

use medusa_bench::{ablations, figures};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let run = |name: &str| match name {
        "fig1" => figures::fig1(),
        "fig2" => figures::fig2(),
        "fig3" => figures::fig3(),
        "table1" => figures::table1(),
        "fig7" => figures::fig7(),
        "fig8" => figures::fig8(),
        "fig9" => figures::fig9(),
        "fig10" => figures::fig10(),
        "fig11" => figures::fig11(),
        "ablations" => ablations::all(),
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: repro <fig1|fig2|fig3|table1|fig7|fig8|fig9|fig10|fig11|ablations|all>"
            );
            std::process::exit(2);
        }
    };
    if what == "all" {
        for name in [
            "fig1",
            "fig2",
            "fig3",
            "table1",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
        ] {
            run(name);
            println!("\n{}\n", "=".repeat(78));
        }
    } else {
        run(what);
    }
}
