//! `ci-check-bench` — the CI helpers around the smoke benchmark.
//!
//! ```text
//! ci-check-bench cores
//! ci-check-bench compare          <fresh.json> <baseline.json> [--tolerance-pct N]
//! ci-check-bench compare-cluster  <fresh.json> <baseline.json> [--tolerance-pct N]
//!                                 [--hit-rate-floor-pm N]
//! ci-check-bench compare-artifact <baseline.json> [--speedup-floor N]
//! ci-check-bench compare-policies <baseline.json> [--tolerance-pct N] [--out FILE]
//! ci-check-bench compare-registry <baseline.json> [--tolerance-pct N] [--out FILE]
//! ci-check-bench golden           <out-dir>
//! ci-check-bench scale-smoke      [--budget-s N] [--nodes N] [--rps N]
//! ```
//!
//! `cores` prints the host's available parallelism (CI uses it to decide
//! whether the multi-threaded stress step can mean anything). `compare`
//! diffs a fresh `BENCH_coldstart.json` against the committed baseline and
//! exits non-zero when the overlapped loading makespan regressed beyond
//! the tolerance (default 5%). `compare-cluster` does the same for
//! `BENCH_cluster.json` (Medusa-fleet TTFT p99 and makespan, plus the
//! medusa-beats-vanilla invariant). When the fresh report carries a
//! `per_tenant` field it is treated as the multi-tenant baseline
//! (`BENCH_cluster_multitenant.json`): the gate then also requires every
//! tenant's Medusa TTFT p99 to beat vanilla's and the artifact-cache hit
//! rate to stay above the floor (default 200‰, `--hit-rate-floor-pm`).
//!
//! `compare-artifact` runs the MAF2 size sweep (1×/10×/100×) fresh and
//! gates it against the committed `results/BENCH_artifact.json`: the
//! deterministic byte counts (bundle size, O(header) open cost, < 1/tp
//! lazy-restore reads) must match the baseline exactly, and MAF2
//! open+validate must beat JSON parse+validate by at least the wall-clock
//! speedup floor (default 10×) at the largest scale on this host.
//!
//! `compare-policies` runs the predictive-policy race fresh (reactive
//! cold-start-aware vs locality vs locality+prewarm vs pipeline-parallel
//! on one bursty Zipf trace, plus the 100×-artifact pipeline-vs-single
//! cold-start duel) and gates it against the committed
//! `results/BENCH_policies.json`: per-policy TTFT p50/p99 and the
//! prewarm-waste counter within the tolerance (default 5%), plus the two
//! strict ordering invariants (locality+prewarm beats coldstart-aware on
//! TTFT p99; the sharded cold start beats the single-node one). `--out`
//! writes the fresh race JSON before gating, so a failing CI run can
//! upload it as an inspectable artifact.
//!
//! `compare-registry` packs the 4-model fine-tune family into the
//! content-addressed chunk store, replays the same Zipf fleet trace
//! through the chunk registry and through a whole-artifact control
//! catalog, and gates against the committed
//! `results/BENCH_registry.json`: the deterministic byte counters must
//! match exactly, content-addressed fetch bytes must undercut the whole
//! row by ≥2×, the store's dedup ratio must stay ≥2×, and the
//! content-addressed TTFT p99 must stay within 5% of the whole row (and
//! within the tolerance of the baseline). `--out` writes the fresh JSON
//! before gating.
//!
//! `golden` writes one `ClusterReport` JSON per scenario of the
//! differential matrix ([`medusa_serving::scenarios`]) into `<out-dir>` —
//! CI regenerates them into a scratch directory and diffs against the
//! committed `results/golden/`, so any change to the fleet simulator's
//! observable semantics fails loudly with a readable report diff.
//!
//! `scale-smoke` runs the large-fleet scenario (1000 nodes, 10k rps by
//! default) on both a Medusa and a vanilla fleet, asserts the
//! medusa-beats-vanilla TTFT invariant still holds at that scale, and
//! fails when the wall-clock exceeds the budget (default 120 s) — the
//! event core's "millions of events in wall-clock seconds" contract.

use medusa_bench::smoke::{
    check_artifact_regression, check_cluster_mt_regression, check_cluster_regression,
    check_policies_regression, check_registry_regression, check_regression, check_scale,
    run_artifact, run_policies, run_registry, run_scale, BenchArtifact, BenchCluster,
    BenchClusterMultiTenant, BenchColdstart, BenchPolicies, BenchRegistry, ARTIFACT_SPEEDUP_FLOOR,
    MT_HIT_RATE_FLOOR_PM, SCALE_BUDGET_S, SCALE_NODES, SCALE_RPS,
};
use medusa_serving::scenarios::differential_matrix;
use medusa_serving::simulate_fleet;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("cores") => {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            println!("{cores}");
        }
        Some("compare") => {
            if let Err(e) = compare(&args[1..], false) {
                eprintln!("ci-check-bench: FAIL: {e}");
                exit(1);
            }
        }
        Some("compare-cluster") => {
            if let Err(e) = compare(&args[1..], true) {
                eprintln!("ci-check-bench: FAIL: {e}");
                exit(1);
            }
        }
        Some("compare-artifact") => {
            if let Err(e) = compare_artifact(&args[1..]) {
                eprintln!("ci-check-bench: FAIL: {e}");
                exit(1);
            }
        }
        Some("compare-policies") => {
            if let Err(e) = compare_policies(&args[1..]) {
                eprintln!("ci-check-bench: FAIL: {e}");
                exit(1);
            }
        }
        Some("compare-registry") => {
            if let Err(e) = compare_registry(&args[1..]) {
                eprintln!("ci-check-bench: FAIL: {e}");
                exit(1);
            }
        }
        Some("golden") => {
            if let Err(e) = golden(&args[1..]) {
                eprintln!("ci-check-bench: FAIL: {e}");
                exit(1);
            }
        }
        Some("scale-smoke") => {
            if let Err(e) = scale_smoke(&args[1..]) {
                eprintln!("ci-check-bench: FAIL: {e}");
                exit(1);
            }
        }
        _ => {
            eprintln!(
                "usage: ci-check-bench <cores|compare|compare-cluster|compare-artifact|\
                 compare-policies|compare-registry|golden|scale-smoke> [args]"
            );
            exit(2);
        }
    }
}

fn compare(args: &[String], cluster: bool) -> Result<(), String> {
    let [fresh_path, baseline_path, rest @ ..] = args else {
        return Err("compare needs <fresh.json> <baseline.json>".into());
    };
    let mut tolerance = 5.0;
    let mut hit_rate_floor_pm = MT_HIT_RATE_FLOOR_PM;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--tolerance-pct" => {
                tolerance = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance-pct `{v}`: {e}"))?;
            }
            "--hit-rate-floor-pm" => {
                hit_rate_floor_pm = v
                    .parse::<u32>()
                    .map_err(|e| format!("bad --hit-rate-floor-pm `{v}`: {e}"))?;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let read = |path: &String| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    };
    let parse_err = |path: &String, e: String| format!("cannot parse `{path}`: {e}");
    let verdict = if cluster {
        // The multi-tenant baseline is distinguished by its `per_tenant`
        // field; both shapes share the `compare-cluster` subcommand.
        let fresh_json = read(fresh_path)?;
        if fresh_json.contains("\"per_tenant\"") {
            let fresh = BenchClusterMultiTenant::from_json(&fresh_json)
                .map_err(|e| parse_err(fresh_path, e))?;
            let baseline = BenchClusterMultiTenant::from_json(&read(baseline_path)?)
                .map_err(|e| parse_err(baseline_path, e))?;
            check_cluster_mt_regression(&fresh, &baseline, tolerance, hit_rate_floor_pm)?
        } else {
            let fresh =
                BenchCluster::from_json(&fresh_json).map_err(|e| parse_err(fresh_path, e))?;
            let baseline = BenchCluster::from_json(&read(baseline_path)?)
                .map_err(|e| parse_err(baseline_path, e))?;
            check_cluster_regression(&fresh, &baseline, tolerance)?
        }
    } else {
        let fresh =
            BenchColdstart::from_json(&read(fresh_path)?).map_err(|e| parse_err(fresh_path, e))?;
        let baseline = BenchColdstart::from_json(&read(baseline_path)?)
            .map_err(|e| parse_err(baseline_path, e))?;
        check_regression(&fresh, &baseline, tolerance)?
    };
    println!("ci-check-bench: OK: {verdict}");
    Ok(())
}

/// Runs the MAF2 size sweep fresh and gates it against the committed
/// baseline (byte-exact) plus the in-run wall-clock speedup floor.
fn compare_artifact(args: &[String]) -> Result<(), String> {
    let [baseline_path, rest @ ..] = args else {
        return Err("compare-artifact needs <baseline.json>".into());
    };
    let mut speedup_floor = ARTIFACT_SPEEDUP_FLOOR;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--speedup-floor" => {
                speedup_floor = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --speedup-floor `{v}`: {e}"))?;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let baseline_json = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read `{baseline_path}`: {e}"))?;
    let baseline = BenchArtifact::from_json(&baseline_json)
        .map_err(|e| format!("cannot parse `{baseline_path}`: {e}"))?;
    let (fresh, timings) = run_artifact();
    let verdict = check_artifact_regression(&fresh, &baseline, &timings, speedup_floor)?;
    println!("ci-check-bench: OK: {verdict}");
    Ok(())
}

/// Runs the predictive-policy race fresh and gates it against the
/// committed baseline (tolerances + strict ordering invariants). `--out`
/// persists the fresh race JSON before gating so CI can upload it.
fn compare_policies(args: &[String]) -> Result<(), String> {
    let [baseline_path, rest @ ..] = args else {
        return Err("compare-policies needs <baseline.json>".into());
    };
    let mut tolerance = 5.0;
    let mut out: Option<&String> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--tolerance-pct" => {
                tolerance = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance-pct `{v}`: {e}"))?;
            }
            "--out" => out = Some(v),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let baseline_json = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read `{baseline_path}`: {e}"))?;
    let baseline = BenchPolicies::from_json(&baseline_json)
        .map_err(|e| format!("cannot parse `{baseline_path}`: {e}"))?;
    let fresh = run_policies();
    if let Some(path) = out {
        std::fs::write(path, fresh.to_json()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    let verdict = check_policies_regression(&fresh, &baseline, tolerance)?;
    println!("ci-check-bench: OK: {verdict}");
    Ok(())
}

/// Runs the content-addressed registry bench fresh and gates it against
/// the committed baseline (byte-exact counters, the ≥2× fetch-byte and
/// dedup floors, and the TTFT parity band). `--out` persists the fresh
/// JSON before gating so CI can upload it.
fn compare_registry(args: &[String]) -> Result<(), String> {
    let [baseline_path, rest @ ..] = args else {
        return Err("compare-registry needs <baseline.json>".into());
    };
    let mut tolerance = 5.0;
    let mut out: Option<&String> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--tolerance-pct" => {
                tolerance = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance-pct `{v}`: {e}"))?;
            }
            "--out" => out = Some(v),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let baseline_json = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read `{baseline_path}`: {e}"))?;
    let baseline = BenchRegistry::from_json(&baseline_json)
        .map_err(|e| format!("cannot parse `{baseline_path}`: {e}"))?;
    let fresh = run_registry();
    if let Some(path) = out {
        std::fs::write(path, fresh.to_json()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    let verdict = check_registry_regression(&fresh, &baseline, tolerance)?;
    println!("ci-check-bench: OK: {verdict}");
    Ok(())
}

/// Writes one report JSON per differential-matrix scenario into `dir`.
fn golden(args: &[String]) -> Result<(), String> {
    let [dir] = args else {
        return Err("golden needs <out-dir>".into());
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
    let matrix = differential_matrix();
    for s in &matrix {
        let out = simulate_fleet(&s.profile, &s.cluster, s.policy, &s.trace);
        let path = format!("{dir}/{}.json", s.name);
        let mut json = out.report.to_json();
        json.push('\n');
        std::fs::write(&path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    println!(
        "ci-check-bench: OK: wrote {} golden reports to {dir}",
        matrix.len()
    );
    Ok(())
}

/// Runs the large-fleet scale scenario under a wall-clock budget.
fn scale_smoke(args: &[String]) -> Result<(), String> {
    let mut budget_s = SCALE_BUDGET_S;
    let mut nodes = SCALE_NODES;
    let mut rps = SCALE_RPS;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--budget-s" => budget_s = v.parse().map_err(|e| format!("bad --budget-s: {e}"))?,
            "--nodes" => nodes = v.parse().map_err(|e| format!("bad --nodes: {e}"))?,
            "--rps" => rps = v.parse().map_err(|e| format!("bad --rps: {e}"))?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let start = std::time::Instant::now();
    let scale = run_scale(nodes, rps);
    let elapsed = start.elapsed().as_secs_f64();
    let verdict = check_scale(&scale, elapsed, budget_s)?;
    println!("ci-check-bench: OK: {verdict}");
    Ok(())
}
