//! `ci-check-bench` — the CI helpers around the smoke benchmark.
//!
//! ```text
//! ci-check-bench cores
//! ci-check-bench compare         <fresh.json> <baseline.json> [--tolerance-pct N]
//! ci-check-bench compare-cluster <fresh.json> <baseline.json> [--tolerance-pct N]
//! ```
//!
//! `cores` prints the host's available parallelism (CI uses it to decide
//! whether the multi-threaded stress step can mean anything). `compare`
//! diffs a fresh `BENCH_coldstart.json` against the committed baseline and
//! exits non-zero when the overlapped loading makespan regressed beyond
//! the tolerance (default 5%). `compare-cluster` does the same for
//! `BENCH_cluster.json` (Medusa-fleet TTFT p99 and makespan, plus the
//! medusa-beats-vanilla invariant).

use medusa_bench::smoke::{
    check_cluster_regression, check_regression, BenchCluster, BenchColdstart,
};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("cores") => {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            println!("{cores}");
        }
        Some("compare") => {
            if let Err(e) = compare(&args[1..], false) {
                eprintln!("ci-check-bench: FAIL: {e}");
                exit(1);
            }
        }
        Some("compare-cluster") => {
            if let Err(e) = compare(&args[1..], true) {
                eprintln!("ci-check-bench: FAIL: {e}");
                exit(1);
            }
        }
        _ => {
            eprintln!(
                "usage: ci-check-bench <cores|compare|compare-cluster> \
                 [<fresh.json> <baseline.json> [--tolerance-pct N]]"
            );
            exit(2);
        }
    }
}

fn compare(args: &[String], cluster: bool) -> Result<(), String> {
    let [fresh_path, baseline_path, rest @ ..] = args else {
        return Err("compare needs <fresh.json> <baseline.json>".into());
    };
    let tolerance = match rest {
        [] => 5.0,
        [flag, v] if flag == "--tolerance-pct" => v
            .parse::<f64>()
            .map_err(|e| format!("bad --tolerance-pct `{v}`: {e}"))?,
        other => return Err(format!("unexpected arguments {other:?}")),
    };
    let read = |path: &String| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    };
    let parse_err = |path: &String, e: String| format!("cannot parse `{path}`: {e}");
    let verdict = if cluster {
        let fresh =
            BenchCluster::from_json(&read(fresh_path)?).map_err(|e| parse_err(fresh_path, e))?;
        let baseline = BenchCluster::from_json(&read(baseline_path)?)
            .map_err(|e| parse_err(baseline_path, e))?;
        check_cluster_regression(&fresh, &baseline, tolerance)?
    } else {
        let fresh =
            BenchColdstart::from_json(&read(fresh_path)?).map_err(|e| parse_err(fresh_path, e))?;
        let baseline = BenchColdstart::from_json(&read(baseline_path)?)
            .map_err(|e| parse_err(baseline_path, e))?;
        check_regression(&fresh, &baseline, tolerance)?
    };
    println!("ci-check-bench: OK: {verdict}");
    Ok(())
}
