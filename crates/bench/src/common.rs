//! Shared helpers for the figure/table harnesses.

use medusa::{
    materialize_offline, ColdStart, ColdStartOptions, ColdStartReport, MaterializedState,
    OfflineReport, ReadyEngine, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;

/// The evaluation GPU (paper §7: A100-40GB SXM4).
pub fn gpu() -> GpuSpec {
    GpuSpec::a100_40gb()
}

/// The calibrated cost model.
pub fn cost() -> CostModel {
    CostModel::default()
}

/// Deterministic offline seed per model.
pub fn offline_seed(spec: &ModelSpec) -> u64 {
    0x0ff1_ce00 + spec.layers() as u64 * 131 + spec.vocab() as u64
}

/// Deterministic online seed per model/strategy.
pub fn online_seed(spec: &ModelSpec, strategy: Strategy) -> u64 {
    0xc01d_0000 + spec.hidden() as u64 * 7 + strategy as u64
}

/// Runs the offline phase for `spec`.
pub fn offline(spec: &ModelSpec) -> (MaterializedState, OfflineReport) {
    materialize_offline(spec, gpu(), cost(), offline_seed(spec)).expect("offline phase")
}

/// Runs one cold start and returns the engine + report.
pub fn run_cold(
    strategy: Strategy,
    spec: &ModelSpec,
    artifact: Option<&MaterializedState>,
    warm_container: bool,
) -> (ReadyEngine, ColdStartReport) {
    let opts = ColdStartOptions {
        seed: online_seed(spec, strategy),
        warm_container,
        ..Default::default()
    };
    let mut builder = ColdStart::new(spec)
        .strategy(strategy)
        .gpu(gpu())
        .cost(cost())
        .options(opts);
    if let Some(a) = artifact {
        builder = builder.artifact(a);
    }
    builder.run().expect("cold start").into_single()
}

/// Seconds with 3 decimals.
pub fn s(d: SimDuration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Percentage with 1 decimal.
pub fn pct(part: f64, whole: f64) -> String {
    if whole == 0.0 {
        return "-".to_string();
    }
    format!("{:.1}%", 100.0 * part / whole)
}

/// Runs `f` over all ten catalog models in parallel, preserving order.
pub fn for_all_models<T, F>(f: F) -> Vec<(ModelSpec, T)>
where
    T: Send,
    F: Fn(&ModelSpec) -> T + Sync,
{
    let specs = ModelSpec::catalog();
    let mut out: Vec<Option<(ModelSpec, T)>> = specs.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, spec) in out.iter_mut().zip(&specs) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some((spec.clone(), f(spec)));
            });
        }
    });
    out.into_iter().map(|o| o.expect("filled")).collect()
}
