//! Deterministic cold-start smoke benchmark backing the CI perf gate.
//!
//! The smoke run replays the same tp=2 Medusa offline+online pipeline under
//! each [`Parallelism`] mode and records the **simulated** loading makespan.
//! Because every number derives from the virtual clock, the result is
//! byte-identical across machines and runs — which is what lets CI diff a
//! fresh run against the committed baseline in `results/BENCH_coldstart.json`
//! and fail on a >5% regression without flakiness.

use medusa::{materialize_offline_tp_with, ColdStart, ColdStartOptions, Parallelism, Strategy};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use medusa_serving::{
    simulate_fleet, simulate_fleet_traced, CacheCapacity, CacheConfig, ClusterSpec, EvictionPolicy,
    FleetProfile, Policy,
};
use medusa_telemetry::Registry;
use medusa_workload::{ArrivalPattern, TraceConfig};
use serde::{Deserialize, Serialize};

/// Catalog model the smoke benchmark runs (smallest — CI time matters).
pub const MODEL: &str = "Qwen1.5-0.5B";
/// Tensor-parallel degree of the smoke run.
pub const TP: u32 = 2;
/// Seed of the offline (materialization) phase.
pub const SEED_OFFLINE: u64 = 31;
/// Seed of the online (cold start) phase.
pub const SEED_ONLINE: u64 = 32;

/// One smoke-benchmark result: the simulated loading makespan, in
/// microseconds, of each scheduling mode on the same model/seeds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchColdstart {
    /// Catalog model name.
    pub model: String,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Offline-phase seed.
    pub seed_offline: u64,
    /// Online-phase seed.
    pub seed_online: u64,
    /// Loading makespan under [`Parallelism::Serial`], µs.
    pub serial_us: u64,
    /// Loading makespan under [`Parallelism::Overlapped`], µs.
    pub overlapped_us: u64,
    /// Loading makespan under [`Parallelism::PipelinedTp`], µs.
    pub pipelined_us: u64,
}

impl BenchColdstart {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Runs one mode of the smoke pipeline, returning the simulated loading
/// makespan in µs and optionally filling `tele` with spans/metrics.
pub fn run_mode(mode: Parallelism, tele: Option<&Registry>) -> u64 {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();
    let (arts, _) =
        materialize_offline_tp_with(&spec, TP, gpu.clone(), cost.clone(), SEED_OFFLINE, mode)
            .expect("tp offline");
    let opts = ColdStartOptions {
        seed: SEED_ONLINE,
        warm_container: true,
        parallelism: mode,
        ..Default::default()
    };
    let mut builder = ColdStart::new(&spec)
        .strategy(Strategy::Medusa)
        .gpu(gpu)
        .cost(cost)
        .options(opts)
        .artifacts(&arts);
    if let Some(t) = tele {
        builder = builder.telemetry(t);
    }
    let cold = builder.run().expect("tp cold start");
    cold.loading().as_nanos() / 1_000
}

/// Runs the full smoke benchmark (all three modes).
pub fn run() -> BenchColdstart {
    BenchColdstart {
        model: MODEL.to_string(),
        tp: TP,
        seed_offline: SEED_OFFLINE,
        seed_online: SEED_ONLINE,
        serial_us: run_mode(Parallelism::Serial, None),
        overlapped_us: run_mode(Parallelism::Overlapped, None),
        pipelined_us: run_mode(Parallelism::PipelinedTp, None),
    }
}

/// Compares a fresh smoke run against the committed baseline. Returns a
/// human-readable verdict, or an error when the overlapped makespan
/// regressed by more than `tolerance_pct` percent (the CI gate) or the
/// baseline no longer matches the benchmark's configuration.
pub fn check_regression(
    fresh: &BenchColdstart,
    baseline: &BenchColdstart,
    tolerance_pct: f64,
) -> Result<String, String> {
    if (
        &fresh.model,
        fresh.tp,
        fresh.seed_offline,
        fresh.seed_online,
    ) != (
        &baseline.model,
        baseline.tp,
        baseline.seed_offline,
        baseline.seed_online,
    ) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {}/tp{} seeds {}/{}, baseline has {}/tp{} \
             seeds {}/{} — regenerate results/BENCH_coldstart.json",
            fresh.model,
            fresh.tp,
            fresh.seed_offline,
            fresh.seed_online,
            baseline.model,
            baseline.tp,
            baseline.seed_offline,
            baseline.seed_online,
        ));
    }
    let limit = baseline.overlapped_us as f64 * (1.0 + tolerance_pct / 100.0);
    if (fresh.overlapped_us as f64) > limit {
        return Err(format!(
            "overlapped loading makespan regressed: {} µs vs baseline {} µs (> {:.1}% tolerance)",
            fresh.overlapped_us, baseline.overlapped_us, tolerance_pct
        ));
    }
    let delta = fresh.overlapped_us as i64 - baseline.overlapped_us as i64;
    Ok(format!(
        "overlapped loading makespan {} µs vs baseline {} µs ({delta:+} µs, within {:.1}%)",
        fresh.overlapped_us, baseline.overlapped_us, tolerance_pct
    ))
}

// ---------------------------------------------------------------------
// Cluster makespan smoke scenario.

/// Fleet size of the cluster smoke scenario.
pub const CLUSTER_NODES: usize = 4;
/// Trace seed of the cluster smoke scenario.
pub const CLUSTER_SEED: u64 = 42;
/// Offered request rate, requests/second (integer to keep the committed
/// baseline `Eq`-comparable).
pub const CLUSTER_RPS: u64 = 8;
/// Trace duration, seconds.
pub const CLUSTER_DURATION_S: u64 = 45;

/// One cluster-smoke result: the same bursty trace replayed on a Medusa
/// fleet and a vanilla fleet (both [`Policy::ColdStartAware`], node-local
/// caches pre-seeded per the §6 registry model), recording fleet makespan,
/// TTFT tail, and cold-start count per side. Simulated clock only —
/// byte-identical across machines, committed as `results/BENCH_cluster.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchCluster {
    /// Catalog model name.
    pub model: String,
    /// Fleet size.
    pub nodes: u32,
    /// Trace seed.
    pub seed: u64,
    /// Offered rate, requests/second.
    pub rps: u64,
    /// Trace duration, seconds.
    pub duration_s: u64,
    /// Fingerprint of the replayed trace (config drift detector).
    pub trace_fingerprint: u64,
    /// Medusa-fleet cold starts.
    pub medusa_cold_starts: u32,
    /// Medusa-fleet makespan, µs.
    pub medusa_makespan_us: u64,
    /// Medusa-fleet TTFT p99, µs.
    pub medusa_ttft_p99_us: u64,
    /// Vanilla-fleet cold starts.
    pub vanilla_cold_starts: u32,
    /// Vanilla-fleet makespan, µs.
    pub vanilla_makespan_us: u64,
    /// Vanilla-fleet TTFT p99, µs.
    pub vanilla_ttft_p99_us: u64,
}

impl BenchCluster {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Runs one side of the cluster smoke scenario, optionally filling `tele`.
/// Returns (cold starts, makespan µs, ttft p99 µs).
pub fn run_cluster_side(strategy: Strategy, tele: Option<&Registry>) -> (u32, u64, u64) {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let profile = FleetProfile::measure(
        strategy,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        1,
        Parallelism::Overlapped,
        CLUSTER_SEED,
    )
    .expect("fleet profile");
    // §6 registry model: node-local caches are pre-seeded, so Medusa cold
    // starts are local restores (vanilla has nothing to cache either way).
    let cluster = ClusterSpec::uniform(CLUSTER_NODES).with_cached_prefix(CLUSTER_NODES);
    let trace = cluster_trace();
    let out = simulate_fleet_traced(&profile, &cluster, Policy::ColdStartAware, &trace, tele);
    (
        out.report.cold_starts,
        out.report.makespan_ns / 1_000,
        out.report.ttft_p99_us,
    )
}

fn cluster_trace() -> Vec<medusa_workload::Request> {
    TraceConfig::sharegpt(CLUSTER_RPS as f64, CLUSTER_DURATION_S as f64)
        .with_seed(CLUSTER_SEED)
        .with_pattern(ArrivalPattern::sharegpt_bursty())
        .generate()
}

/// Runs the full cluster smoke scenario (Medusa fleet vs vanilla fleet on
/// the same burst trace).
pub fn run_cluster() -> BenchCluster {
    let (medusa_cold_starts, medusa_makespan_us, medusa_ttft_p99_us) =
        run_cluster_side(Strategy::Medusa, None);
    let (vanilla_cold_starts, vanilla_makespan_us, vanilla_ttft_p99_us) =
        run_cluster_side(Strategy::Vanilla, None);
    BenchCluster {
        model: MODEL.to_string(),
        nodes: CLUSTER_NODES as u32,
        seed: CLUSTER_SEED,
        rps: CLUSTER_RPS,
        duration_s: CLUSTER_DURATION_S,
        trace_fingerprint: medusa_workload::fingerprint(&cluster_trace()),
        medusa_cold_starts,
        medusa_makespan_us,
        medusa_ttft_p99_us,
        vanilla_cold_starts,
        vanilla_makespan_us,
        vanilla_ttft_p99_us,
    }
}

/// Compares a fresh cluster smoke run against the committed baseline.
/// Returns a human-readable verdict, or an error when the Medusa fleet's
/// TTFT p99 or makespan regressed by more than `tolerance_pct` percent,
/// when the Medusa fleet no longer beats the vanilla fleet's TTFT tail, or
/// when the baseline no longer matches the benchmark's configuration.
pub fn check_cluster_regression(
    fresh: &BenchCluster,
    baseline: &BenchCluster,
    tolerance_pct: f64,
) -> Result<String, String> {
    if (
        &fresh.model,
        fresh.nodes,
        fresh.seed,
        fresh.rps,
        fresh.duration_s,
        fresh.trace_fingerprint,
    ) != (
        &baseline.model,
        baseline.nodes,
        baseline.seed,
        baseline.rps,
        baseline.duration_s,
        baseline.trace_fingerprint,
    ) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {}x{} seed {} ({} rps, {}s, trace {:#x}), \
             baseline has {}x{} seed {} ({} rps, {}s, trace {:#x}) — regenerate \
             results/BENCH_cluster.json",
            fresh.model,
            fresh.nodes,
            fresh.seed,
            fresh.rps,
            fresh.duration_s,
            fresh.trace_fingerprint,
            baseline.model,
            baseline.nodes,
            baseline.seed,
            baseline.rps,
            baseline.duration_s,
            baseline.trace_fingerprint,
        ));
    }
    let gate = |name: &str, fresh_us: u64, base_us: u64| -> Result<(), String> {
        let limit = base_us as f64 * (1.0 + tolerance_pct / 100.0);
        if (fresh_us as f64) > limit {
            return Err(format!(
                "medusa fleet {name} regressed: {fresh_us} µs vs baseline {base_us} µs \
                 (> {tolerance_pct:.1}% tolerance)"
            ));
        }
        Ok(())
    };
    gate(
        "ttft p99",
        fresh.medusa_ttft_p99_us,
        baseline.medusa_ttft_p99_us,
    )?;
    gate(
        "makespan",
        fresh.medusa_makespan_us,
        baseline.medusa_makespan_us,
    )?;
    if fresh.medusa_ttft_p99_us >= fresh.vanilla_ttft_p99_us {
        return Err(format!(
            "medusa fleet no longer beats vanilla on TTFT p99: {} µs vs {} µs",
            fresh.medusa_ttft_p99_us, fresh.vanilla_ttft_p99_us
        ));
    }
    Ok(format!(
        "medusa fleet ttft p99 {} µs vs baseline {} µs (vanilla {} µs), makespan {} µs vs \
         baseline {} µs, within {:.1}%",
        fresh.medusa_ttft_p99_us,
        baseline.medusa_ttft_p99_us,
        fresh.vanilla_ttft_p99_us,
        fresh.medusa_makespan_us,
        baseline.medusa_makespan_us,
        tolerance_pct
    ))
}

// ---------------------------------------------------------------------
// Multi-tenant cluster smoke scenario (contended artifact cache).

/// Distinct models of the multi-tenant smoke scenario.
pub const MT_MODELS: u32 = 8;
/// Zipf popularity skew, in milli-units (1000 = s of 1.0; integer so the
/// committed baseline stays `Eq`-comparable).
pub const MT_ZIPF_S_MILLI: u32 = 1000;
/// Trace seed of the multi-tenant scenario.
pub const MT_SEED: u64 = 42;
/// Offered rate, requests/second.
pub const MT_RPS: u64 = 1;
/// Trace duration, seconds.
pub const MT_DURATION_S: u64 = 120;
/// Per-node artifact-cache capacity, artifacts.
pub const MT_CACHE_ARTIFACTS: u32 = 4;
/// Fleet size of the multi-tenant scenario (one node per model, so tail
/// waits are cold-start-cost-bound rather than keep-alive-bound).
pub const MT_NODES: usize = 8;
/// Idle keep-alive of the multi-tenant fleet, seconds (short, so nodes
/// churn and the bounded cache actually evicts).
pub const MT_KEEP_ALIVE_S: u64 = 2;
/// Default cache-hit-rate floor of the CI gate, per-mille.
pub const MT_HIT_RATE_FLOOR_PM: u32 = 200;

/// One tenant's slice of the multi-tenant smoke result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchTenant {
    /// Tenant/model id.
    pub model: u32,
    /// Requests offered by this tenant.
    pub offered: u64,
    /// Medusa-fleet TTFT p99, µs.
    pub medusa_ttft_p99_us: u64,
    /// Vanilla-fleet TTFT p99, µs.
    pub vanilla_ttft_p99_us: u64,
    /// Medusa-fleet SLO attainment, per-mille.
    pub medusa_slo_attained_pm: u32,
}

/// One multi-tenant cluster-smoke result: a Zipf-skewed eight-model trace
/// replayed on a Medusa fleet and a vanilla fleet whose nodes hold a
/// bounded cost-aware artifact cache. Simulated clock only —
/// byte-identical across machines, committed as
/// `results/BENCH_cluster_multitenant.json`. The `per_tenant` field is
/// how `ci-check-bench compare-cluster` tells this baseline apart from
/// the single-tenant one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchClusterMultiTenant {
    /// Catalog model name backing the measured cost profile.
    pub model: String,
    /// Fleet size.
    pub nodes: u32,
    /// Trace seed.
    pub seed: u64,
    /// Distinct tenant models.
    pub models: u32,
    /// Zipf skew, milli-units.
    pub zipf_s_milli: u32,
    /// Offered rate, requests/second.
    pub rps: u64,
    /// Trace duration, seconds.
    pub duration_s: u64,
    /// Per-node cache capacity, artifacts.
    pub cache_artifacts: u32,
    /// Eviction policy name.
    pub eviction: String,
    /// Fingerprint of the replayed trace (config drift detector; covers
    /// the per-request model ids).
    pub trace_fingerprint: u64,
    /// Medusa-fleet cold starts.
    pub medusa_cold_starts: u32,
    /// Medusa-fleet aggregate TTFT p99, µs.
    pub medusa_ttft_p99_us: u64,
    /// Vanilla-fleet cold starts.
    pub vanilla_cold_starts: u32,
    /// Vanilla-fleet aggregate TTFT p99, µs.
    pub vanilla_ttft_p99_us: u64,
    /// Medusa-fleet artifact-cache hits.
    pub cache_hits: u64,
    /// Medusa-fleet artifact-cache misses.
    pub cache_misses: u64,
    /// Medusa-fleet artifact-cache evictions.
    pub cache_evictions: u64,
    /// Cache hit rate, per-mille of (hits + misses).
    pub cache_hit_rate_pm: u32,
    /// Per-tenant breakdown, ascending model id.
    pub per_tenant: Vec<BenchTenant>,
}

impl BenchClusterMultiTenant {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

fn mt_trace() -> Vec<medusa_workload::Request> {
    TraceConfig::sharegpt(MT_RPS as f64, MT_DURATION_S as f64)
        .with_seed(MT_SEED)
        .with_models(medusa_workload::ModelMix::Zipf {
            models: MT_MODELS,
            s: MT_ZIPF_S_MILLI as f64 / 1000.0,
        })
        .generate()
}

fn mt_cluster() -> ClusterSpec {
    ClusterSpec::uniform(MT_NODES)
        .with_cache(CacheConfig {
            capacity: CacheCapacity::Artifacts(MT_CACHE_ARTIFACTS),
            eviction: EvictionPolicy::CostAware,
        })
        .with_keep_alive(MT_KEEP_ALIVE_S as f64)
}

/// Runs one side of the multi-tenant smoke scenario.
pub fn run_cluster_mt_side(
    strategy: Strategy,
    tele: Option<&Registry>,
) -> medusa_serving::ClusterReport {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let profile = FleetProfile::measure(
        strategy,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        1,
        Parallelism::Overlapped,
        MT_SEED,
    )
    .expect("fleet profile")
    .with_scaled_models(MT_MODELS);
    let trace = mt_trace();
    simulate_fleet_traced(
        &profile,
        &mt_cluster(),
        Policy::ColdStartAware,
        &trace,
        tele,
    )
    .report
}

/// Runs the full multi-tenant cluster smoke scenario (Medusa fleet vs
/// vanilla fleet on the same Zipf-skewed trace).
pub fn run_cluster_mt() -> BenchClusterMultiTenant {
    let medusa = run_cluster_mt_side(Strategy::Medusa, None);
    let vanilla = run_cluster_mt_side(Strategy::Vanilla, None);
    let cache = medusa.cache.expect("multi-tenant run reports cache");
    let lookups = cache.hits + cache.misses;
    let per_tenant = medusa
        .tenants
        .iter()
        .map(|m| {
            let v = vanilla
                .tenants
                .iter()
                .find(|v| v.model == m.model)
                .expect("same trace, same tenants");
            BenchTenant {
                model: m.model,
                offered: m.offered as u64,
                medusa_ttft_p99_us: m.ttft_p99_us,
                vanilla_ttft_p99_us: v.ttft_p99_us,
                medusa_slo_attained_pm: m.slo_attained_pm,
            }
        })
        .collect();
    BenchClusterMultiTenant {
        model: MODEL.to_string(),
        nodes: MT_NODES as u32,
        seed: MT_SEED,
        models: MT_MODELS,
        zipf_s_milli: MT_ZIPF_S_MILLI,
        rps: MT_RPS,
        duration_s: MT_DURATION_S,
        cache_artifacts: MT_CACHE_ARTIFACTS,
        eviction: EvictionPolicy::CostAware.name().to_string(),
        trace_fingerprint: medusa_workload::fingerprint(&mt_trace()),
        medusa_cold_starts: medusa.cold_starts,
        medusa_ttft_p99_us: medusa.ttft_p99_us,
        vanilla_cold_starts: vanilla.cold_starts,
        vanilla_ttft_p99_us: vanilla.ttft_p99_us,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        cache_hit_rate_pm: (cache.hits * 1_000).checked_div(lookups).unwrap_or(0) as u32,
        per_tenant,
    }
}

/// Compares a fresh multi-tenant smoke run against the committed baseline.
/// Returns a human-readable verdict, or an error when the Medusa fleet's
/// aggregate TTFT p99 regressed beyond `tolerance_pct`, when any tenant's
/// Medusa TTFT p99 no longer beats the vanilla fleet's, when the cache hit
/// rate fell below `hit_rate_floor_pm`, or when the baseline no longer
/// matches the benchmark's configuration.
pub fn check_cluster_mt_regression(
    fresh: &BenchClusterMultiTenant,
    baseline: &BenchClusterMultiTenant,
    tolerance_pct: f64,
    hit_rate_floor_pm: u32,
) -> Result<String, String> {
    let config = |b: &BenchClusterMultiTenant| {
        (
            b.model.clone(),
            b.nodes,
            b.seed,
            b.models,
            b.zipf_s_milli,
            b.rps,
            b.duration_s,
            b.cache_artifacts,
            b.eviction.clone(),
            b.trace_fingerprint,
        )
    };
    if config(fresh) != config(baseline) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {:?}, baseline has {:?} — regenerate \
             results/BENCH_cluster_multitenant.json",
            config(fresh),
            config(baseline),
        ));
    }
    let limit = baseline.medusa_ttft_p99_us as f64 * (1.0 + tolerance_pct / 100.0);
    if (fresh.medusa_ttft_p99_us as f64) > limit {
        return Err(format!(
            "medusa multi-tenant ttft p99 regressed: {} µs vs baseline {} µs \
             (> {tolerance_pct:.1}% tolerance)",
            fresh.medusa_ttft_p99_us, baseline.medusa_ttft_p99_us
        ));
    }
    for t in &fresh.per_tenant {
        if t.medusa_ttft_p99_us >= t.vanilla_ttft_p99_us {
            return Err(format!(
                "medusa no longer beats vanilla for tenant {} on TTFT p99: {} µs vs {} µs",
                t.model, t.medusa_ttft_p99_us, t.vanilla_ttft_p99_us
            ));
        }
    }
    if fresh.cache_hit_rate_pm < hit_rate_floor_pm {
        return Err(format!(
            "artifact-cache hit rate fell below the floor: {}‰ < {}‰ ({} hits / {} misses / {} \
             evictions)",
            fresh.cache_hit_rate_pm,
            hit_rate_floor_pm,
            fresh.cache_hits,
            fresh.cache_misses,
            fresh.cache_evictions
        ));
    }
    Ok(format!(
        "medusa multi-tenant ttft p99 {} µs vs baseline {} µs (vanilla {} µs), {} tenants all \
         beat vanilla, cache hit rate {}‰ (floor {}‰), within {:.1}%",
        fresh.medusa_ttft_p99_us,
        baseline.medusa_ttft_p99_us,
        fresh.vanilla_ttft_p99_us,
        fresh.per_tenant.len(),
        fresh.cache_hit_rate_pm,
        hit_rate_floor_pm,
        tolerance_pct
    ))
}

// ---------------------------------------------------------------------
// Large-fleet scale smoke (event-core throughput gate).

/// Fleet size of the scale scenario.
pub const SCALE_NODES: usize = 1000;
/// Offered rate of the scale scenario, requests/second.
pub const SCALE_RPS: u64 = 10_000;
/// Trace duration of the scale scenario, seconds.
pub const SCALE_DURATION_S: u64 = 100;
/// Trace seed of the scale scenario.
pub const SCALE_SEED: u64 = 77;
/// Default wall-clock budget of the CI scale-smoke step, seconds.
pub const SCALE_BUDGET_S: f64 = 120.0;

/// Result of one large-fleet scale run: the same interactive trace
/// replayed on a Medusa fleet and a vanilla fleet at thousand-node scale.
/// Simulated-clock metrics are byte-deterministic; the wall-clock budget
/// is checked by the caller ([`check_scale`]), since wall time is the one
/// number that legitimately varies across hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchScale {
    /// Fleet size.
    pub nodes: usize,
    /// Offered rate, requests/second.
    pub rps: u64,
    /// Requests in the trace.
    pub offered: usize,
    /// Events processed by the Medusa-side event loop.
    pub medusa_events: u64,
    /// Medusa-fleet completions before the horizon.
    pub medusa_completed: usize,
    /// Medusa-fleet cold starts.
    pub medusa_cold_starts: u32,
    /// Medusa-fleet TTFT p99, µs.
    pub medusa_ttft_p99_us: u64,
    /// Vanilla-fleet completions before the horizon.
    pub vanilla_completed: usize,
    /// Vanilla-fleet TTFT p99, µs.
    pub vanilla_ttft_p99_us: u64,
}

/// Runs the large-fleet scale scenario: `nodes` workers under an
/// interactive trace at `rps` requests/s for [`SCALE_DURATION_S`]
/// simulated seconds, Medusa (caches pre-seeded per §6) vs vanilla.
pub fn run_scale(nodes: usize, rps: u64) -> BenchScale {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let profile = |strategy| {
        FleetProfile::measure(
            strategy,
            &spec,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            1,
            Parallelism::Overlapped,
            SCALE_SEED,
        )
        .expect("fleet profile")
    };
    let trace = TraceConfig::interactive(rps as f64, SCALE_DURATION_S as f64)
        .with_seed(SCALE_SEED)
        .generate();
    let cluster = ClusterSpec::uniform(nodes).with_cached_prefix(nodes);
    let medusa = simulate_fleet(
        &profile(Strategy::Medusa),
        &cluster,
        Policy::ColdStartAware,
        &trace,
    );
    let vanilla = simulate_fleet(
        &profile(Strategy::Vanilla),
        &cluster,
        Policy::ColdStartAware,
        &trace,
    );
    BenchScale {
        nodes,
        rps,
        offered: trace.len(),
        medusa_events: medusa.stats.events_processed,
        medusa_completed: medusa.report.completed,
        medusa_cold_starts: medusa.report.cold_starts,
        medusa_ttft_p99_us: medusa.report.ttft_p99_us,
        vanilla_completed: vanilla.report.completed,
        vanilla_ttft_p99_us: vanilla.report.ttft_p99_us,
    }
}

/// Gates one scale run: all requests served, the medusa-beats-vanilla
/// TTFT invariant at fleet scale, and the wall-clock budget.
pub fn check_scale(scale: &BenchScale, elapsed_s: f64, budget_s: f64) -> Result<String, String> {
    if scale.medusa_completed != scale.offered {
        return Err(format!(
            "medusa fleet dropped requests at scale: completed {} of {}",
            scale.medusa_completed, scale.offered
        ));
    }
    if scale.medusa_ttft_p99_us >= scale.vanilla_ttft_p99_us {
        return Err(format!(
            "medusa fleet no longer beats vanilla on TTFT p99 at {} nodes: {} µs vs {} µs",
            scale.nodes, scale.medusa_ttft_p99_us, scale.vanilla_ttft_p99_us
        ));
    }
    if elapsed_s > budget_s {
        return Err(format!(
            "scale run blew the wall-clock budget: {elapsed_s:.1} s for both fleets \
             (budget {budget_s:.1} s, {} events medusa-side)",
            scale.medusa_events
        ));
    }
    Ok(format!(
        "{} nodes, {} requests, {} medusa-side events in {elapsed_s:.1} s wall \
         ({:.0} events/s); medusa ttft p99 {} µs vs vanilla {} µs; {} cold starts",
        scale.nodes,
        scale.offered,
        scale.medusa_events,
        scale.medusa_events as f64 / elapsed_s.max(1e-9),
        scale.medusa_ttft_p99_us,
        scale.vanilla_ttft_p99_us,
        scale.medusa_cold_starts
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchColdstart {
        BenchColdstart {
            model: MODEL.to_string(),
            tp: TP,
            seed_offline: SEED_OFFLINE,
            seed_online: SEED_ONLINE,
            serial_us: 1_000_000,
            overlapped_us: 700_000,
            pipelined_us: 650_000,
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        assert_eq!(BenchColdstart::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn regression_gate_passes_within_tolerance_and_fails_beyond() {
        let base = sample();
        let mut fresh = sample();
        fresh.overlapped_us = 734_000; // +4.9%
        assert!(check_regression(&fresh, &base, 5.0).is_ok());
        fresh.overlapped_us = 736_000; // +5.1%
        assert!(check_regression(&fresh, &base, 5.0).is_err());
        // Improvements always pass.
        fresh.overlapped_us = 600_000;
        assert!(check_regression(&fresh, &base, 5.0).is_ok());
    }

    #[test]
    fn stale_baseline_config_is_rejected() {
        let base = sample();
        let mut fresh = sample();
        fresh.seed_online = 99;
        let err = check_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    fn sample_cluster() -> BenchCluster {
        BenchCluster {
            model: MODEL.to_string(),
            nodes: CLUSTER_NODES as u32,
            seed: CLUSTER_SEED,
            rps: CLUSTER_RPS,
            duration_s: CLUSTER_DURATION_S,
            trace_fingerprint: 0xabcd,
            medusa_cold_starts: 2,
            medusa_makespan_us: 45_000_000,
            medusa_ttft_p99_us: 900_000,
            vanilla_cold_starts: 3,
            vanilla_makespan_us: 46_000_000,
            vanilla_ttft_p99_us: 1_600_000,
        }
    }

    #[test]
    fn cluster_json_round_trips() {
        let b = sample_cluster();
        assert_eq!(BenchCluster::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn cluster_gate_passes_within_tolerance_and_fails_beyond() {
        let base = sample_cluster();
        let mut fresh = sample_cluster();
        fresh.medusa_ttft_p99_us = 944_000; // +4.9%
        assert!(check_cluster_regression(&fresh, &base, 5.0).is_ok());
        fresh.medusa_ttft_p99_us = 946_000; // +5.1%
        assert!(check_cluster_regression(&fresh, &base, 5.0).is_err());
        fresh.medusa_ttft_p99_us = 900_000;
        fresh.medusa_makespan_us = 48_000_000; // +6.7%
        assert!(check_cluster_regression(&fresh, &base, 5.0).is_err());
    }

    #[test]
    fn cluster_gate_requires_medusa_to_beat_vanilla() {
        let base = sample_cluster();
        let mut fresh = sample_cluster();
        fresh.medusa_ttft_p99_us = fresh.vanilla_ttft_p99_us;
        let err = check_cluster_regression(&fresh, &base, 1000.0).unwrap_err();
        assert!(err.contains("no longer beats"), "{err}");
    }

    #[test]
    fn cluster_gate_rejects_stale_config() {
        let base = sample_cluster();
        let mut fresh = sample_cluster();
        fresh.trace_fingerprint = 0xbeef;
        let err = check_cluster_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn cluster_smoke_is_deterministic_and_medusa_wins() {
        let a = run_cluster();
        let b = run_cluster();
        assert_eq!(a, b, "simulated fleet results must be run-invariant");
        assert!(
            a.medusa_ttft_p99_us < a.vanilla_ttft_p99_us,
            "medusa fleet must beat vanilla on the burst tail: {a:?}"
        );
        assert!(a.medusa_makespan_us <= a.vanilla_makespan_us, "{a:?}");
    }

    fn sample_cluster_mt() -> BenchClusterMultiTenant {
        BenchClusterMultiTenant {
            model: MODEL.to_string(),
            nodes: MT_NODES as u32,
            seed: MT_SEED,
            models: MT_MODELS,
            zipf_s_milli: MT_ZIPF_S_MILLI,
            rps: MT_RPS,
            duration_s: MT_DURATION_S,
            cache_artifacts: MT_CACHE_ARTIFACTS,
            eviction: EvictionPolicy::CostAware.name().to_string(),
            trace_fingerprint: 0xfeed,
            medusa_cold_starts: 40,
            medusa_ttft_p99_us: 2_000_000,
            vanilla_cold_starts: 38,
            vanilla_ttft_p99_us: 3_000_000,
            cache_hits: 30,
            cache_misses: 10,
            cache_evictions: 2,
            cache_hit_rate_pm: 750,
            per_tenant: vec![
                BenchTenant {
                    model: 0,
                    offered: 30,
                    medusa_ttft_p99_us: 1_000_000,
                    vanilla_ttft_p99_us: 1_500_000,
                    medusa_slo_attained_pm: 933,
                },
                BenchTenant {
                    model: 1,
                    offered: 10,
                    medusa_ttft_p99_us: 2_000_000,
                    vanilla_ttft_p99_us: 3_000_000,
                    medusa_slo_attained_pm: 800,
                },
            ],
        }
    }

    #[test]
    fn cluster_mt_json_round_trips() {
        let b = sample_cluster_mt();
        assert_eq!(BenchClusterMultiTenant::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn cluster_mt_gate_passes_within_tolerance_and_fails_beyond() {
        let base = sample_cluster_mt();
        let mut fresh = sample_cluster_mt();
        fresh.medusa_ttft_p99_us = 2_098_000; // +4.9%
        assert!(check_cluster_mt_regression(&fresh, &base, 5.0, 200).is_ok());
        fresh.medusa_ttft_p99_us = 2_102_000; // +5.1%
        assert!(check_cluster_mt_regression(&fresh, &base, 5.0, 200).is_err());
    }

    #[test]
    fn cluster_mt_gate_requires_every_tenant_to_beat_vanilla() {
        let base = sample_cluster_mt();
        let mut fresh = sample_cluster_mt();
        // One lagging tenant fails the gate even when the aggregate wins.
        fresh.per_tenant[1].medusa_ttft_p99_us = fresh.per_tenant[1].vanilla_ttft_p99_us;
        let err = check_cluster_mt_regression(&fresh, &base, 1000.0, 0).unwrap_err();
        assert!(err.contains("tenant 1"), "{err}");
    }

    #[test]
    fn cluster_mt_gate_enforces_hit_rate_floor_and_config() {
        let base = sample_cluster_mt();
        let mut fresh = sample_cluster_mt();
        fresh.cache_hit_rate_pm = 199;
        let err = check_cluster_mt_regression(&fresh, &base, 5.0, 200).unwrap_err();
        assert!(err.contains("below the floor"), "{err}");
        let mut fresh = sample_cluster_mt();
        fresh.trace_fingerprint = 0xdead;
        let err = check_cluster_mt_regression(&fresh, &base, 5.0, 200).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn cluster_mt_smoke_is_deterministic_and_every_tenant_wins() {
        let a = run_cluster_mt();
        let b = run_cluster_mt();
        assert_eq!(a, b, "simulated multi-tenant results must be run-invariant");
        assert_eq!(a.per_tenant.len(), MT_MODELS as usize, "{a:?}");
        for t in &a.per_tenant {
            assert!(
                t.medusa_ttft_p99_us < t.vanilla_ttft_p99_us,
                "medusa must beat vanilla for every tenant: {t:?}"
            );
        }
        assert!(a.cache_hit_rate_pm >= MT_HIT_RATE_FLOOR_PM, "{a:?}");
        assert!(a.cache_evictions > 0, "cache must be contended: {a:?}");
    }

    #[test]
    fn smoke_run_is_deterministic_and_ordered() {
        let a = run();
        let b = run();
        assert_eq!(a, b, "simulated makespans must be run-invariant");
        assert!(
            a.pipelined_us <= a.overlapped_us && a.overlapped_us < a.serial_us,
            "parallel modes must beat serial: {a:?}"
        );
    }
}
