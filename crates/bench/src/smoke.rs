//! Deterministic cold-start smoke benchmark backing the CI perf gate.
//!
//! The smoke run replays the same tp=2 Medusa offline+online pipeline under
//! each [`Parallelism`] mode and records the **simulated** loading makespan.
//! Because every number derives from the virtual clock, the result is
//! byte-identical across machines and runs — which is what lets CI diff a
//! fresh run against the committed baseline in `results/BENCH_coldstart.json`
//! and fail on a >5% regression without flakiness.

use medusa::{
    encode_maf2_bundle, materialize_offline, materialize_offline_tp, materialize_offline_tp_with,
    ArtifactTemplate, ArtifactValidator, ChunkStore, ColdStart, ColdStartOptions, Maf2Reader,
    MaterializedState, Parallelism, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;
use medusa_serving::{
    simulate_fleet, simulate_fleet_traced, CacheCapacity, CacheConfig, ClusterSpec, EvictionPolicy,
    FleetProfile, ModelCost, Policy, PrewarmConfig, PrewarmPolicy, RegistryCatalog, RegistryMode,
};
use medusa_telemetry::Registry;
use medusa_workload::{ArrivalPattern, TraceConfig};
use serde::{Deserialize, Serialize};

/// Catalog model the smoke benchmark runs (smallest — CI time matters).
pub const MODEL: &str = "Qwen1.5-0.5B";
/// Tensor-parallel degree of the smoke run.
pub const TP: u32 = 2;
/// Seed of the offline (materialization) phase.
pub const SEED_OFFLINE: u64 = 31;
/// Seed of the online (cold start) phase.
pub const SEED_ONLINE: u64 = 32;

/// One smoke-benchmark result: the simulated loading makespan, in
/// microseconds, of each scheduling mode on the same model/seeds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchColdstart {
    /// Catalog model name.
    pub model: String,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Offline-phase seed.
    pub seed_offline: u64,
    /// Online-phase seed.
    pub seed_online: u64,
    /// Loading makespan under [`Parallelism::Serial`], µs.
    pub serial_us: u64,
    /// Loading makespan under [`Parallelism::Overlapped`], µs.
    pub overlapped_us: u64,
    /// Loading makespan under [`Parallelism::PipelinedTp`], µs.
    pub pipelined_us: u64,
}

impl BenchColdstart {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Runs one mode of the smoke pipeline, returning the simulated loading
/// makespan in µs and optionally filling `tele` with spans/metrics.
pub fn run_mode(mode: Parallelism, tele: Option<&Registry>) -> u64 {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();
    let (arts, _) =
        materialize_offline_tp_with(&spec, TP, gpu.clone(), cost.clone(), SEED_OFFLINE, mode)
            .expect("tp offline");
    let opts = ColdStartOptions {
        seed: SEED_ONLINE,
        warm_container: true,
        parallelism: mode,
        ..Default::default()
    };
    let mut builder = ColdStart::new(&spec)
        .strategy(Strategy::Medusa)
        .gpu(gpu)
        .cost(cost)
        .options(opts)
        .artifacts(&arts);
    if let Some(t) = tele {
        builder = builder.telemetry(t);
    }
    let cold = builder.run().expect("tp cold start");
    cold.loading().as_nanos() / 1_000
}

/// Runs the full smoke benchmark (all three modes).
pub fn run() -> BenchColdstart {
    BenchColdstart {
        model: MODEL.to_string(),
        tp: TP,
        seed_offline: SEED_OFFLINE,
        seed_online: SEED_ONLINE,
        serial_us: run_mode(Parallelism::Serial, None),
        overlapped_us: run_mode(Parallelism::Overlapped, None),
        pipelined_us: run_mode(Parallelism::PipelinedTp, None),
    }
}

/// Compares a fresh smoke run against the committed baseline. Returns a
/// human-readable verdict, or an error when the overlapped makespan
/// regressed by more than `tolerance_pct` percent (the CI gate) or the
/// baseline no longer matches the benchmark's configuration.
pub fn check_regression(
    fresh: &BenchColdstart,
    baseline: &BenchColdstart,
    tolerance_pct: f64,
) -> Result<String, String> {
    if (
        &fresh.model,
        fresh.tp,
        fresh.seed_offline,
        fresh.seed_online,
    ) != (
        &baseline.model,
        baseline.tp,
        baseline.seed_offline,
        baseline.seed_online,
    ) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {}/tp{} seeds {}/{}, baseline has {}/tp{} \
             seeds {}/{} — regenerate results/BENCH_coldstart.json",
            fresh.model,
            fresh.tp,
            fresh.seed_offline,
            fresh.seed_online,
            baseline.model,
            baseline.tp,
            baseline.seed_offline,
            baseline.seed_online,
        ));
    }
    let limit = baseline.overlapped_us as f64 * (1.0 + tolerance_pct / 100.0);
    if (fresh.overlapped_us as f64) > limit {
        return Err(format!(
            "overlapped loading makespan regressed: {} µs vs baseline {} µs (> {:.1}% tolerance)",
            fresh.overlapped_us, baseline.overlapped_us, tolerance_pct
        ));
    }
    let delta = fresh.overlapped_us as i64 - baseline.overlapped_us as i64;
    Ok(format!(
        "overlapped loading makespan {} µs vs baseline {} µs ({delta:+} µs, within {:.1}%)",
        fresh.overlapped_us, baseline.overlapped_us, tolerance_pct
    ))
}

// ---------------------------------------------------------------------
// Cluster makespan smoke scenario.

/// Fleet size of the cluster smoke scenario.
pub const CLUSTER_NODES: usize = 4;
/// Trace seed of the cluster smoke scenario.
pub const CLUSTER_SEED: u64 = 42;
/// Offered request rate, requests/second (integer to keep the committed
/// baseline `Eq`-comparable).
pub const CLUSTER_RPS: u64 = 8;
/// Trace duration, seconds.
pub const CLUSTER_DURATION_S: u64 = 45;

/// One cluster-smoke result: the same bursty trace replayed on a Medusa
/// fleet and a vanilla fleet (both [`Policy::ColdStartAware`], node-local
/// caches pre-seeded per the §6 registry model), recording fleet makespan,
/// TTFT tail, and cold-start count per side. Simulated clock only —
/// byte-identical across machines, committed as `results/BENCH_cluster.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchCluster {
    /// Catalog model name.
    pub model: String,
    /// Fleet size.
    pub nodes: u32,
    /// Trace seed.
    pub seed: u64,
    /// Offered rate, requests/second.
    pub rps: u64,
    /// Trace duration, seconds.
    pub duration_s: u64,
    /// Fingerprint of the replayed trace (config drift detector).
    pub trace_fingerprint: u64,
    /// Medusa-fleet cold starts.
    pub medusa_cold_starts: u32,
    /// Medusa-fleet makespan, µs.
    pub medusa_makespan_us: u64,
    /// Medusa-fleet TTFT p99, µs.
    pub medusa_ttft_p99_us: u64,
    /// Vanilla-fleet cold starts.
    pub vanilla_cold_starts: u32,
    /// Vanilla-fleet makespan, µs.
    pub vanilla_makespan_us: u64,
    /// Vanilla-fleet TTFT p99, µs.
    pub vanilla_ttft_p99_us: u64,
}

impl BenchCluster {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Runs one side of the cluster smoke scenario, optionally filling `tele`.
/// Returns (cold starts, makespan µs, ttft p99 µs).
pub fn run_cluster_side(strategy: Strategy, tele: Option<&Registry>) -> (u32, u64, u64) {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let profile = FleetProfile::measure(
        strategy,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        1,
        Parallelism::Overlapped,
        CLUSTER_SEED,
    )
    .expect("fleet profile");
    // §6 registry model: node-local caches are pre-seeded, so Medusa cold
    // starts are local restores (vanilla has nothing to cache either way).
    let cluster = ClusterSpec::uniform(CLUSTER_NODES).with_cached_prefix(CLUSTER_NODES);
    let trace = cluster_trace();
    let out = simulate_fleet_traced(&profile, &cluster, Policy::ColdStartAware, &trace, tele);
    (
        out.report.cold_starts,
        out.report.makespan_ns / 1_000,
        out.report.ttft_p99_us,
    )
}

fn cluster_trace() -> Vec<medusa_workload::Request> {
    TraceConfig::sharegpt(CLUSTER_RPS as f64, CLUSTER_DURATION_S as f64)
        .with_seed(CLUSTER_SEED)
        .with_pattern(ArrivalPattern::sharegpt_bursty())
        .generate()
}

/// Runs the full cluster smoke scenario (Medusa fleet vs vanilla fleet on
/// the same burst trace).
pub fn run_cluster() -> BenchCluster {
    let (medusa_cold_starts, medusa_makespan_us, medusa_ttft_p99_us) =
        run_cluster_side(Strategy::Medusa, None);
    let (vanilla_cold_starts, vanilla_makespan_us, vanilla_ttft_p99_us) =
        run_cluster_side(Strategy::Vanilla, None);
    BenchCluster {
        model: MODEL.to_string(),
        nodes: CLUSTER_NODES as u32,
        seed: CLUSTER_SEED,
        rps: CLUSTER_RPS,
        duration_s: CLUSTER_DURATION_S,
        trace_fingerprint: medusa_workload::fingerprint(&cluster_trace()),
        medusa_cold_starts,
        medusa_makespan_us,
        medusa_ttft_p99_us,
        vanilla_cold_starts,
        vanilla_makespan_us,
        vanilla_ttft_p99_us,
    }
}

/// Compares a fresh cluster smoke run against the committed baseline.
/// Returns a human-readable verdict, or an error when the Medusa fleet's
/// TTFT p99 or makespan regressed by more than `tolerance_pct` percent,
/// when the Medusa fleet no longer beats the vanilla fleet's TTFT tail, or
/// when the baseline no longer matches the benchmark's configuration.
pub fn check_cluster_regression(
    fresh: &BenchCluster,
    baseline: &BenchCluster,
    tolerance_pct: f64,
) -> Result<String, String> {
    if (
        &fresh.model,
        fresh.nodes,
        fresh.seed,
        fresh.rps,
        fresh.duration_s,
        fresh.trace_fingerprint,
    ) != (
        &baseline.model,
        baseline.nodes,
        baseline.seed,
        baseline.rps,
        baseline.duration_s,
        baseline.trace_fingerprint,
    ) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {}x{} seed {} ({} rps, {}s, trace {:#x}), \
             baseline has {}x{} seed {} ({} rps, {}s, trace {:#x}) — regenerate \
             results/BENCH_cluster.json",
            fresh.model,
            fresh.nodes,
            fresh.seed,
            fresh.rps,
            fresh.duration_s,
            fresh.trace_fingerprint,
            baseline.model,
            baseline.nodes,
            baseline.seed,
            baseline.rps,
            baseline.duration_s,
            baseline.trace_fingerprint,
        ));
    }
    let gate = |name: &str, fresh_us: u64, base_us: u64| -> Result<(), String> {
        let limit = base_us as f64 * (1.0 + tolerance_pct / 100.0);
        if (fresh_us as f64) > limit {
            return Err(format!(
                "medusa fleet {name} regressed: {fresh_us} µs vs baseline {base_us} µs \
                 (> {tolerance_pct:.1}% tolerance)"
            ));
        }
        Ok(())
    };
    gate(
        "ttft p99",
        fresh.medusa_ttft_p99_us,
        baseline.medusa_ttft_p99_us,
    )?;
    gate(
        "makespan",
        fresh.medusa_makespan_us,
        baseline.medusa_makespan_us,
    )?;
    if fresh.medusa_ttft_p99_us >= fresh.vanilla_ttft_p99_us {
        return Err(format!(
            "medusa fleet no longer beats vanilla on TTFT p99: {} µs vs {} µs",
            fresh.medusa_ttft_p99_us, fresh.vanilla_ttft_p99_us
        ));
    }
    Ok(format!(
        "medusa fleet ttft p99 {} µs vs baseline {} µs (vanilla {} µs), makespan {} µs vs \
         baseline {} µs, within {:.1}%",
        fresh.medusa_ttft_p99_us,
        baseline.medusa_ttft_p99_us,
        fresh.vanilla_ttft_p99_us,
        fresh.medusa_makespan_us,
        baseline.medusa_makespan_us,
        tolerance_pct
    ))
}

// ---------------------------------------------------------------------
// Multi-tenant cluster smoke scenario (contended artifact cache).

/// Distinct models of the multi-tenant smoke scenario.
pub const MT_MODELS: u32 = 8;
/// Zipf popularity skew, in milli-units (1000 = s of 1.0; integer so the
/// committed baseline stays `Eq`-comparable).
pub const MT_ZIPF_S_MILLI: u32 = 1000;
/// Trace seed of the multi-tenant scenario.
pub const MT_SEED: u64 = 42;
/// Offered rate, requests/second.
pub const MT_RPS: u64 = 1;
/// Trace duration, seconds.
pub const MT_DURATION_S: u64 = 120;
/// Per-node artifact-cache capacity, artifacts.
pub const MT_CACHE_ARTIFACTS: u32 = 4;
/// Fleet size of the multi-tenant scenario (one node per model, so tail
/// waits are cold-start-cost-bound rather than keep-alive-bound).
pub const MT_NODES: usize = 8;
/// Idle keep-alive of the multi-tenant fleet, seconds (short, so nodes
/// churn and the bounded cache actually evicts).
pub const MT_KEEP_ALIVE_S: u64 = 2;
/// Default cache-hit-rate floor of the CI gate, per-mille.
pub const MT_HIT_RATE_FLOOR_PM: u32 = 200;

/// One tenant's slice of the multi-tenant smoke result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchTenant {
    /// Tenant/model id.
    pub model: u32,
    /// Requests offered by this tenant.
    pub offered: u64,
    /// Medusa-fleet TTFT p99, µs.
    pub medusa_ttft_p99_us: u64,
    /// Vanilla-fleet TTFT p99, µs.
    pub vanilla_ttft_p99_us: u64,
    /// Medusa-fleet SLO attainment, per-mille.
    pub medusa_slo_attained_pm: u32,
}

/// One multi-tenant cluster-smoke result: a Zipf-skewed eight-model trace
/// replayed on a Medusa fleet and a vanilla fleet whose nodes hold a
/// bounded cost-aware artifact cache. Simulated clock only —
/// byte-identical across machines, committed as
/// `results/BENCH_cluster_multitenant.json`. The `per_tenant` field is
/// how `ci-check-bench compare-cluster` tells this baseline apart from
/// the single-tenant one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchClusterMultiTenant {
    /// Catalog model name backing the measured cost profile.
    pub model: String,
    /// Fleet size.
    pub nodes: u32,
    /// Trace seed.
    pub seed: u64,
    /// Distinct tenant models.
    pub models: u32,
    /// Zipf skew, milli-units.
    pub zipf_s_milli: u32,
    /// Offered rate, requests/second.
    pub rps: u64,
    /// Trace duration, seconds.
    pub duration_s: u64,
    /// Per-node cache capacity, artifacts.
    pub cache_artifacts: u32,
    /// Eviction policy name.
    pub eviction: String,
    /// Fingerprint of the replayed trace (config drift detector; covers
    /// the per-request model ids).
    pub trace_fingerprint: u64,
    /// Medusa-fleet cold starts.
    pub medusa_cold_starts: u32,
    /// Medusa-fleet aggregate TTFT p99, µs.
    pub medusa_ttft_p99_us: u64,
    /// Vanilla-fleet cold starts.
    pub vanilla_cold_starts: u32,
    /// Vanilla-fleet aggregate TTFT p99, µs.
    pub vanilla_ttft_p99_us: u64,
    /// Medusa-fleet artifact-cache hits.
    pub cache_hits: u64,
    /// Medusa-fleet artifact-cache misses.
    pub cache_misses: u64,
    /// Medusa-fleet artifact-cache evictions.
    pub cache_evictions: u64,
    /// Cache hit rate, per-mille of (hits + misses).
    pub cache_hit_rate_pm: u32,
    /// Per-tenant breakdown, ascending model id.
    pub per_tenant: Vec<BenchTenant>,
}

impl BenchClusterMultiTenant {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

fn mt_trace() -> Vec<medusa_workload::Request> {
    TraceConfig::sharegpt(MT_RPS as f64, MT_DURATION_S as f64)
        .with_seed(MT_SEED)
        .with_models(medusa_workload::ModelMix::Zipf {
            models: MT_MODELS,
            s: MT_ZIPF_S_MILLI as f64 / 1000.0,
        })
        .generate()
}

fn mt_cluster() -> ClusterSpec {
    ClusterSpec::uniform(MT_NODES)
        .with_cache(CacheConfig {
            capacity: CacheCapacity::Artifacts(MT_CACHE_ARTIFACTS),
            eviction: EvictionPolicy::CostAware,
        })
        .with_keep_alive(MT_KEEP_ALIVE_S as f64)
}

/// Runs one side of the multi-tenant smoke scenario.
pub fn run_cluster_mt_side(
    strategy: Strategy,
    tele: Option<&Registry>,
) -> medusa_serving::ClusterReport {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let profile = FleetProfile::measure(
        strategy,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        1,
        Parallelism::Overlapped,
        MT_SEED,
    )
    .expect("fleet profile")
    .with_scaled_models(MT_MODELS);
    let trace = mt_trace();
    simulate_fleet_traced(
        &profile,
        &mt_cluster(),
        Policy::ColdStartAware,
        &trace,
        tele,
    )
    .report
}

/// Runs the full multi-tenant cluster smoke scenario (Medusa fleet vs
/// vanilla fleet on the same Zipf-skewed trace).
pub fn run_cluster_mt() -> BenchClusterMultiTenant {
    let medusa = run_cluster_mt_side(Strategy::Medusa, None);
    let vanilla = run_cluster_mt_side(Strategy::Vanilla, None);
    let cache = medusa.cache.expect("multi-tenant run reports cache");
    let lookups = cache.hits + cache.misses;
    let per_tenant = medusa
        .tenants
        .iter()
        .map(|m| {
            let v = vanilla
                .tenants
                .iter()
                .find(|v| v.model == m.model)
                .expect("same trace, same tenants");
            BenchTenant {
                model: m.model,
                offered: m.offered as u64,
                medusa_ttft_p99_us: m.ttft_p99_us,
                vanilla_ttft_p99_us: v.ttft_p99_us,
                medusa_slo_attained_pm: m.slo_attained_pm,
            }
        })
        .collect();
    BenchClusterMultiTenant {
        model: MODEL.to_string(),
        nodes: MT_NODES as u32,
        seed: MT_SEED,
        models: MT_MODELS,
        zipf_s_milli: MT_ZIPF_S_MILLI,
        rps: MT_RPS,
        duration_s: MT_DURATION_S,
        cache_artifacts: MT_CACHE_ARTIFACTS,
        eviction: EvictionPolicy::CostAware.name().to_string(),
        trace_fingerprint: medusa_workload::fingerprint(&mt_trace()),
        medusa_cold_starts: medusa.cold_starts,
        medusa_ttft_p99_us: medusa.ttft_p99_us,
        vanilla_cold_starts: vanilla.cold_starts,
        vanilla_ttft_p99_us: vanilla.ttft_p99_us,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        cache_hit_rate_pm: (cache.hits * 1_000).checked_div(lookups).unwrap_or(0) as u32,
        per_tenant,
    }
}

/// Compares a fresh multi-tenant smoke run against the committed baseline.
/// Returns a human-readable verdict, or an error when the Medusa fleet's
/// aggregate TTFT p99 regressed beyond `tolerance_pct`, when any tenant's
/// Medusa TTFT p99 no longer beats the vanilla fleet's, when the cache hit
/// rate fell below `hit_rate_floor_pm`, or when the baseline no longer
/// matches the benchmark's configuration.
pub fn check_cluster_mt_regression(
    fresh: &BenchClusterMultiTenant,
    baseline: &BenchClusterMultiTenant,
    tolerance_pct: f64,
    hit_rate_floor_pm: u32,
) -> Result<String, String> {
    let config = |b: &BenchClusterMultiTenant| {
        (
            b.model.clone(),
            b.nodes,
            b.seed,
            b.models,
            b.zipf_s_milli,
            b.rps,
            b.duration_s,
            b.cache_artifacts,
            b.eviction.clone(),
            b.trace_fingerprint,
        )
    };
    if config(fresh) != config(baseline) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {:?}, baseline has {:?} — regenerate \
             results/BENCH_cluster_multitenant.json",
            config(fresh),
            config(baseline),
        ));
    }
    let limit = baseline.medusa_ttft_p99_us as f64 * (1.0 + tolerance_pct / 100.0);
    if (fresh.medusa_ttft_p99_us as f64) > limit {
        return Err(format!(
            "medusa multi-tenant ttft p99 regressed: {} µs vs baseline {} µs \
             (> {tolerance_pct:.1}% tolerance)",
            fresh.medusa_ttft_p99_us, baseline.medusa_ttft_p99_us
        ));
    }
    for t in &fresh.per_tenant {
        if t.medusa_ttft_p99_us >= t.vanilla_ttft_p99_us {
            return Err(format!(
                "medusa no longer beats vanilla for tenant {} on TTFT p99: {} µs vs {} µs",
                t.model, t.medusa_ttft_p99_us, t.vanilla_ttft_p99_us
            ));
        }
    }
    if fresh.cache_hit_rate_pm < hit_rate_floor_pm {
        return Err(format!(
            "artifact-cache hit rate fell below the floor: {}‰ < {}‰ ({} hits / {} misses / {} \
             evictions)",
            fresh.cache_hit_rate_pm,
            hit_rate_floor_pm,
            fresh.cache_hits,
            fresh.cache_misses,
            fresh.cache_evictions
        ));
    }
    Ok(format!(
        "medusa multi-tenant ttft p99 {} µs vs baseline {} µs (vanilla {} µs), {} tenants all \
         beat vanilla, cache hit rate {}‰ (floor {}‰), within {:.1}%",
        fresh.medusa_ttft_p99_us,
        baseline.medusa_ttft_p99_us,
        fresh.vanilla_ttft_p99_us,
        fresh.per_tenant.len(),
        fresh.cache_hit_rate_pm,
        hit_rate_floor_pm,
        tolerance_pct
    ))
}

// ---------------------------------------------------------------------
// MAF2 artifact size sweep (encode / open / validate / lazy restore).

/// Tensor-parallel degree of the artifact sweep's bundle.
pub const ARTIFACT_TP: u32 = 2;
/// Offline seed of the artifact sweep's base materialization.
pub const ARTIFACT_SEED: u64 = 33;
/// Graphs kept per shard in the 1× base artifact (the sweep multiplies
/// the graph section, so a small base keeps the 100× point CI-sized).
pub const ARTIFACT_BASE_GRAPHS: u32 = 2;
/// Size multipliers of the sweep.
pub const ARTIFACT_SCALES: [u32; 3] = [1, 10, 100];
/// CI floor on (JSON parse+validate) / (MAF2 open+validate) wall time at
/// the largest scale. The observed gap is orders of magnitude larger —
/// O(file) vs O(header) — but wall-clock ratios vary by host, so the
/// gate keeps a wide margin.
pub const ARTIFACT_SPEEDUP_FLOOR: f64 = 10.0;

/// One scale point of the artifact sweep. Every field derives from the
/// canonical encodings of a seed-fixed materialization, so the committed
/// baseline is compared **exactly**: any drift means the on-disk format
/// changed and `results/BENCH_artifact.json` must be regenerated
/// deliberately.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchArtifactScale {
    /// Size multiplier over the base artifact.
    pub scale: u32,
    /// MAF2 bundle size, bytes.
    pub maf2_bytes: u64,
    /// Total JSON size of the same shards, bytes.
    pub json_bytes: u64,
    /// Bytes the zero-copy reader touches to open **and** header-validate
    /// every shard: header + key + section index + per-shard ShardMeta.
    /// Constant across scales — the O(header) contract.
    pub open_read_bytes: u64,
    /// Additional bytes read to lazily materialize rank 0 (< 1/tp of the
    /// file — single-shard restore does not pay for the other ranks).
    pub shard_restore_read_bytes: u64,
}

/// The artifact size sweep committed as `results/BENCH_artifact.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchArtifact {
    /// Catalog model name of the base materialization.
    pub model: String,
    /// Tensor-parallel degree of the bundle.
    pub tp: u32,
    /// Offline seed.
    pub seed: u64,
    /// Graphs kept per shard in the 1× base.
    pub base_graphs: u32,
    /// One entry per sweep scale, ascending.
    pub scales: Vec<BenchArtifactScale>,
}

impl BenchArtifact {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Wall-clock timings of one sweep scale. Host-dependent, so never
/// committed — the CI gate only checks the JSON-vs-MAF2 **ratio** within
/// one run on one host.
#[derive(Debug, Clone)]
pub struct ArtifactTiming {
    /// Size multiplier over the base artifact.
    pub scale: u32,
    /// Encoding the bundle to MAF2.
    pub encode: std::time::Duration,
    /// MAF2 open + O(header) validation of every shard.
    pub maf2_open_validate: std::time::Duration,
    /// JSON parse + full validation of every shard.
    pub json_parse_validate: std::time::Duration,
    /// Lazy materialization of rank 0 from an opened reader.
    pub shard_restore: std::time::Duration,
}

/// The trimmed tp-bundle the sweep scales: a seed-fixed materialization
/// with each shard's graph list cut to [`ARTIFACT_BASE_GRAPHS`], re-sealed.
fn artifact_base() -> Vec<MaterializedState> {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let (arts, _) = materialize_offline_tp(
        &spec,
        ARTIFACT_TP,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        ARTIFACT_SEED,
    )
    .expect("offline tp phase");
    arts.iter()
        .map(|shard| {
            let mut s = shard.clone();
            s.graphs.truncate(ARTIFACT_BASE_GRAPHS as usize);
            s.seal();
            s
        })
        .collect()
}

/// Multiplies each shard's graph section `scale`× (fresh batch ids keep
/// the captured-batch key unique) and re-seals. Replay, labels, and
/// pointer tables are untouched, so the scaled shard still validates.
fn scaled_shards(base: &[MaterializedState], scale: u32) -> Vec<MaterializedState> {
    base.iter()
        .map(|shard| {
            let mut s = shard.clone();
            let stride = shard.graphs.iter().map(|g| g.batch).max().unwrap_or(0) + 1;
            for round in 1..scale {
                for g in &shard.graphs {
                    let mut g = g.clone();
                    g.batch += round * stride;
                    s.graphs.push(g);
                }
            }
            s.seal();
            s
        })
        .collect()
}

fn time_op<T>(iters: u32, mut f: impl FnMut() -> T) -> std::time::Duration {
    std::hint::black_box(f()); // warm-up
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed() / iters
}

/// Runs the artifact size sweep: for each scale, encode the bundle, open
/// and header-validate it, parse and fully validate the JSON twin, and
/// lazily restore one shard — recording deterministic byte counts (the
/// committed baseline) and host wall-clock timings (the in-run ratio
/// gate).
pub fn run_artifact() -> (BenchArtifact, Vec<ArtifactTiming>) {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let validator = ArtifactValidator::for_target(&spec, &gpu);
    let base = artifact_base();
    let mut scales = Vec::new();
    let mut timings = Vec::new();
    for scale in ARTIFACT_SCALES {
        let shards = scaled_shards(&base, scale);
        let refs: Vec<&MaterializedState> = shards.iter().collect();
        let encode = time_op(3, || encode_maf2_bundle(&refs).expect("encode bundle"));
        let maf2 = encode_maf2_bundle(&refs).expect("encode bundle");
        let jsons: Vec<String> = shards
            .iter()
            .map(|s| s.to_json().expect("to_json"))
            .collect();
        let json_bytes: u64 = jsons.iter().map(|j| j.len() as u64).sum();

        // O(file): parse every shard and run the full deep validation.
        let json_parse_validate = time_op(3, || {
            for json in &jsons {
                let s = MaterializedState::from_json(json).expect("from_json");
                let report = validator.clone().shard(s.rank, s.tp).validate(&s);
                assert!(report.ok().is_ok(), "scaled JSON shard must validate");
            }
        });

        // O(header): open once, header-validate every shard off the shared
        // section index.
        let maf2_open_validate = time_op(10, || {
            let reader = Maf2Reader::open(&maf2).expect("open");
            for rank in reader.shard_ranks() {
                let v = validator.clone().shard(rank, reader.tp());
                let report = v.validate_maf2_header(&reader);
                assert!(report.ok().is_ok(), "scaled MAF2 shard must validate");
            }
            reader.bytes_read()
        });
        let reader = Maf2Reader::open(&maf2).expect("open");
        for rank in reader.shard_ranks() {
            let v = validator.clone().shard(rank, reader.tp());
            assert!(v.validate_maf2_header(&reader).ok().is_ok());
        }
        let open_read_bytes = reader.bytes_read();

        // Lazy single-shard restore: only rank 0's sections leave the file.
        let shard_restore = time_op(3, || {
            let r = Maf2Reader::open(&maf2).expect("open");
            r.shard(0).expect("lazy shard").total_nodes()
        });
        let restored = reader.shard(0).expect("lazy shard");
        assert_eq!(restored, &shards[0], "lazy restore must equal eager state");
        let shard_restore_read_bytes = reader.bytes_read() - open_read_bytes;

        scales.push(BenchArtifactScale {
            scale,
            maf2_bytes: maf2.len() as u64,
            json_bytes,
            open_read_bytes,
            shard_restore_read_bytes,
        });
        timings.push(ArtifactTiming {
            scale,
            encode,
            maf2_open_validate,
            json_parse_validate,
            shard_restore,
        });
    }
    (
        BenchArtifact {
            model: MODEL.to_string(),
            tp: ARTIFACT_TP,
            seed: ARTIFACT_SEED,
            base_graphs: ARTIFACT_BASE_GRAPHS,
            scales,
        },
        timings,
    )
}

/// Gates the artifact sweep. The deterministic byte counts must match the
/// committed baseline **exactly** (they are a pure function of the seed
/// and the canonical encoding — drift means the on-disk format changed);
/// the fresh run must uphold the O(header) open and < 1/tp lazy-restore
/// contracts at every scale; and when timings are supplied, JSON
/// parse+validate must be at least `speedup_floor`× slower than MAF2
/// open+validate at the largest scale.
pub fn check_artifact_regression(
    fresh: &BenchArtifact,
    baseline: &BenchArtifact,
    timings: &[ArtifactTiming],
    speedup_floor: f64,
) -> Result<String, String> {
    let config = |b: &BenchArtifact| (b.model.clone(), b.tp, b.seed, b.base_graphs);
    if config(fresh) != config(baseline) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {:?}, baseline has {:?} — regenerate \
             results/BENCH_artifact.json",
            config(fresh),
            config(baseline)
        ));
    }
    if fresh.scales != baseline.scales {
        return Err(format!(
            "artifact encoding drifted from the committed baseline:\n  fresh    {:?}\n  \
             baseline {:?}\nMAF2 bytes are canonical — if the format change is intentional, \
             regenerate results/BENCH_artifact.json",
            fresh.scales, baseline.scales
        ));
    }
    let first = fresh.scales.first().ok_or("empty sweep")?;
    let last = fresh.scales.last().ok_or("empty sweep")?;
    for s in &fresh.scales {
        if s.open_read_bytes != first.open_read_bytes {
            return Err(format!(
                "open+validate is not O(header): reads {} bytes at {}x vs {} bytes at {}x",
                s.open_read_bytes, s.scale, first.open_read_bytes, first.scale
            ));
        }
        if s.shard_restore_read_bytes > s.maf2_bytes / fresh.tp as u64 {
            return Err(format!(
                "lazy restore at {}x read {} of {} bytes — not < 1/{} of the file",
                s.scale, s.shard_restore_read_bytes, s.maf2_bytes, fresh.tp
            ));
        }
    }
    let speedup = match timings.iter().find(|t| t.scale == last.scale) {
        Some(t) => {
            let ratio =
                t.json_parse_validate.as_secs_f64() / t.maf2_open_validate.as_secs_f64().max(1e-12);
            if ratio < speedup_floor {
                return Err(format!(
                    "MAF2 open+validate is only {ratio:.1}x faster than JSON parse+validate at \
                     {}x (floor {speedup_floor:.0}x): {:?} vs {:?}",
                    last.scale, t.maf2_open_validate, t.json_parse_validate
                ));
            }
            format!("{ratio:.0}x faster than JSON parse+validate")
        }
        None => "timings not measured".to_string(),
    };
    Ok(format!(
        "byte-exact vs baseline at {:?}x; open+validate touches {} bytes of a {} byte file at \
         {}x ({speedup}); rank-0 restore reads {} bytes (1/tp floor {})",
        fresh.scales.iter().map(|s| s.scale).collect::<Vec<_>>(),
        last.open_read_bytes,
        last.maf2_bytes,
        last.scale,
        last.shard_restore_read_bytes,
        last.maf2_bytes / fresh.tp as u64
    ))
}

// ---------------------------------------------------------------------
// Large-fleet scale smoke (event-core throughput gate).

/// Fleet size of the scale scenario.
pub const SCALE_NODES: usize = 1000;
/// Offered rate of the scale scenario, requests/second.
pub const SCALE_RPS: u64 = 10_000;
/// Trace duration of the scale scenario, seconds.
pub const SCALE_DURATION_S: u64 = 100;
/// Trace seed of the scale scenario.
pub const SCALE_SEED: u64 = 77;
/// Default wall-clock budget of the CI scale-smoke step, seconds.
pub const SCALE_BUDGET_S: f64 = 120.0;

/// Result of one large-fleet scale run: the same interactive trace
/// replayed on a Medusa fleet and a vanilla fleet at thousand-node scale.
/// Simulated-clock metrics are byte-deterministic; the wall-clock budget
/// is checked by the caller ([`check_scale`]), since wall time is the one
/// number that legitimately varies across hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchScale {
    /// Fleet size.
    pub nodes: usize,
    /// Offered rate, requests/second.
    pub rps: u64,
    /// Requests in the trace.
    pub offered: usize,
    /// Events processed by the Medusa-side event loop.
    pub medusa_events: u64,
    /// Medusa-fleet completions before the horizon.
    pub medusa_completed: usize,
    /// Medusa-fleet cold starts.
    pub medusa_cold_starts: u32,
    /// Medusa-fleet TTFT p99, µs.
    pub medusa_ttft_p99_us: u64,
    /// Vanilla-fleet completions before the horizon.
    pub vanilla_completed: usize,
    /// Vanilla-fleet TTFT p99, µs.
    pub vanilla_ttft_p99_us: u64,
}

/// Runs the large-fleet scale scenario: `nodes` workers under an
/// interactive trace at `rps` requests/s for [`SCALE_DURATION_S`]
/// simulated seconds, Medusa (caches pre-seeded per §6) vs vanilla.
pub fn run_scale(nodes: usize, rps: u64) -> BenchScale {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let profile = |strategy| {
        FleetProfile::measure(
            strategy,
            &spec,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            1,
            Parallelism::Overlapped,
            SCALE_SEED,
        )
        .expect("fleet profile")
    };
    let trace = TraceConfig::interactive(rps as f64, SCALE_DURATION_S as f64)
        .with_seed(SCALE_SEED)
        .generate();
    let cluster = ClusterSpec::uniform(nodes).with_cached_prefix(nodes);
    let medusa = simulate_fleet(
        &profile(Strategy::Medusa),
        &cluster,
        Policy::ColdStartAware,
        &trace,
    );
    let vanilla = simulate_fleet(
        &profile(Strategy::Vanilla),
        &cluster,
        Policy::ColdStartAware,
        &trace,
    );
    BenchScale {
        nodes,
        rps,
        offered: trace.len(),
        medusa_events: medusa.stats.events_processed,
        medusa_completed: medusa.report.completed,
        medusa_cold_starts: medusa.report.cold_starts,
        medusa_ttft_p99_us: medusa.report.ttft_p99_us,
        vanilla_completed: vanilla.report.completed,
        vanilla_ttft_p99_us: vanilla.report.ttft_p99_us,
    }
}

/// Gates one scale run: all requests served, the medusa-beats-vanilla
/// TTFT invariant at fleet scale, and the wall-clock budget.
pub fn check_scale(scale: &BenchScale, elapsed_s: f64, budget_s: f64) -> Result<String, String> {
    if scale.medusa_completed != scale.offered {
        return Err(format!(
            "medusa fleet dropped requests at scale: completed {} of {}",
            scale.medusa_completed, scale.offered
        ));
    }
    if scale.medusa_ttft_p99_us >= scale.vanilla_ttft_p99_us {
        return Err(format!(
            "medusa fleet no longer beats vanilla on TTFT p99 at {} nodes: {} µs vs {} µs",
            scale.nodes, scale.medusa_ttft_p99_us, scale.vanilla_ttft_p99_us
        ));
    }
    if elapsed_s > budget_s {
        return Err(format!(
            "scale run blew the wall-clock budget: {elapsed_s:.1} s for both fleets \
             (budget {budget_s:.1} s, {} events medusa-side)",
            scale.medusa_events
        ));
    }
    Ok(format!(
        "{} nodes, {} requests, {} medusa-side events in {elapsed_s:.1} s wall \
         ({:.0} events/s); medusa ttft p99 {} µs vs vanilla {} µs; {} cold starts",
        scale.nodes,
        scale.offered,
        scale.medusa_events,
        scale.medusa_events as f64 / elapsed_s.max(1e-9),
        scale.medusa_ttft_p99_us,
        scale.vanilla_ttft_p99_us,
        scale.medusa_cold_starts
    ))
}

// ---------------------------------------------------------------------
// Predictive-policy race (policy-matrix CI gate).

/// Distinct models of the policy-race scenario.
pub const POLICY_MODELS: u32 = 4;
/// Trace seed of the policy-race scenario.
pub const POLICY_SEED: u64 = 42;
/// Offered rate of the policy-race trace, requests/second.
pub const POLICY_RPS: u64 = 4;
/// Trace duration of the policy-race scenario, seconds.
pub const POLICY_DURATION_S: u64 = 120;
/// Fleet size of the policy-race scenario.
pub const POLICY_NODES: usize = 6;
/// Idle keep-alive, seconds — short, so bursts separated by longer gaps
/// pay a cold start unless a prewarm beat them to it.
pub const POLICY_KEEP_ALIVE_S: u64 = 4;
/// Per-node artifact-cache capacity, artifacts — bounded, so the locality
/// scheduler's cache-hit scoring has a real signal.
pub const POLICY_CACHE_ARTIFACTS: u32 = 2;
/// Histogram-estimator prediction percentile, per-mille. High, so the
/// estimator targets the *inter-burst* gap of the bursty trace rather
/// than the dense intra-burst gaps (a prewarm predicted from those fires
/// while the model is still live and is a no-op).
pub const POLICY_PREWARM_PERCENTILE_PM: u32 = 950;
/// Prewarm lead, seconds — roughly the measured cold-start makespan.
pub const POLICY_PREWARM_LEAD_S: f64 = 1.0;
/// Pipeline-parallel degree of the cold-start sub-race.
pub const POLICY_PIPELINE_K: u32 = 2;
/// Artifact-size multiplier of the cold-start sub-race: a 100× artifact
/// is where sharding one start across nodes pays (small artifacts are
/// dominated by the per-start constant costs).
pub const POLICY_ARTIFACT_SCALE: u64 = 100;

/// One scheduler policy's row of the race: the same bursty multi-tenant
/// trace replayed under one (policy, prewarm) combination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchPolicyRow {
    /// Row name: the scheduler policy, `+prewarm` when the estimator ran.
    pub policy: String,
    /// Requests fully completed before the drain horizon.
    pub completed: u64,
    /// Fleet-wide cold starts.
    pub cold_starts: u32,
    /// TTFT p50, µs.
    pub ttft_p50_us: u64,
    /// TTFT p99, µs.
    pub ttft_p99_us: u64,
    /// Predictive prewarms issued (0 when the estimator was off).
    pub prewarms_issued: u64,
    /// Prewarms whose node scaled back to zero unused — pure waste.
    pub prewarms_unused: u64,
    /// Cold starts that actually sharded across ≥ 2 nodes.
    pub pipeline_starts: u64,
}

/// The policy-race result: every predictive scheduling feature raced
/// head-to-head against the reactive baseline on one bursty Zipf trace,
/// plus a single-request pipeline-vs-single cold-start duel on a 100×
/// artifact. Simulated clock only — byte-identical across machines,
/// committed as `results/BENCH_policies.json` and gated by
/// `ci-check-bench compare-policies`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchPolicies {
    /// Catalog model name backing the measured cost profile.
    pub model: String,
    /// Fleet size.
    pub nodes: u32,
    /// Trace seed.
    pub seed: u64,
    /// Distinct tenant models.
    pub models: u32,
    /// Offered rate, requests/second.
    pub rps: u64,
    /// Trace duration, seconds.
    pub duration_s: u64,
    /// Idle keep-alive, seconds.
    pub keep_alive_s: u64,
    /// Histogram percentile, per-mille.
    pub prewarm_percentile_pm: u32,
    /// Pipeline degree of the sub-race.
    pub pipeline_k: u32,
    /// Artifact multiplier of the sub-race.
    pub artifact_scale: u64,
    /// Fingerprint of the replayed trace (config-drift detector).
    pub trace_fingerprint: u64,
    /// One row per raced policy, race order.
    pub rows: Vec<BenchPolicyRow>,
    /// Single-node cold-start TTFT on the 100× artifact, µs.
    pub single_coldstart_ttft_us: u64,
    /// Pipeline-parallel (k-sharded) cold-start TTFT on the same
    /// artifact, µs.
    pub pipeline_coldstart_ttft_us: u64,
}

impl BenchPolicies {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// The bursty Zipf-skewed trace every raced policy replays.
fn policy_trace() -> Vec<medusa_workload::Request> {
    TraceConfig::sharegpt(POLICY_RPS as f64, POLICY_DURATION_S as f64)
        .with_seed(POLICY_SEED)
        .with_pattern(ArrivalPattern::sharegpt_bursty())
        .with_models(medusa_workload::ModelMix::Zipf {
            models: POLICY_MODELS,
            s: 1.0,
        })
        .generate()
}

/// The measured multi-tenant Medusa profile of the race.
fn policy_profile() -> FleetProfile {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    FleetProfile::measure(
        Strategy::Medusa,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        1,
        Parallelism::Overlapped,
        POLICY_SEED,
    )
    .expect("fleet profile")
    .with_scaled_models(POLICY_MODELS)
}

/// The shared fleet shape: short keep-alive, bounded cost-aware cache.
fn policy_cluster() -> ClusterSpec {
    ClusterSpec::uniform(POLICY_NODES)
        .with_cache(CacheConfig {
            capacity: CacheCapacity::Artifacts(POLICY_CACHE_ARTIFACTS),
            eviction: EvictionPolicy::CostAware,
        })
        .with_keep_alive(POLICY_KEEP_ALIVE_S as f64)
}

/// The estimator configuration of the `+prewarm` row.
fn policy_prewarm() -> PrewarmConfig {
    PrewarmConfig {
        policy: PrewarmPolicy::Histogram {
            percentile_pm: POLICY_PREWARM_PERCENTILE_PM,
        },
        lead_s: POLICY_PREWARM_LEAD_S,
    }
}

/// Runs one raced row and flattens its report.
fn policy_row(
    name: &str,
    policy: Policy,
    cluster: &ClusterSpec,
    profile: &FleetProfile,
) -> BenchPolicyRow {
    let trace = policy_trace();
    let r = simulate_fleet_traced(profile, cluster, policy, &trace, None).report;
    BenchPolicyRow {
        policy: name.to_string(),
        completed: r.completed as u64,
        cold_starts: r.cold_starts,
        ttft_p50_us: r.ttft_p50_us,
        ttft_p99_us: r.ttft_p99_us,
        prewarms_issued: r.prewarm.map_or(0, |p| p.issued),
        prewarms_unused: r.prewarm.map_or(0, |p| p.unused),
        pipeline_starts: r.pipeline_starts.unwrap_or(0),
    }
}

/// Runs the full policy race: four (policy, prewarm) rows on the bursty
/// trace, then the pipeline-vs-single cold-start duel on a
/// [`POLICY_ARTIFACT_SCALE`]× artifact.
pub fn run_policies() -> BenchPolicies {
    let profile = policy_profile();
    let base = policy_cluster();
    let rows = vec![
        policy_row("coldstart-aware", Policy::ColdStartAware, &base, &profile),
        policy_row("locality", Policy::Locality, &base, &profile),
        policy_row(
            "locality+prewarm",
            Policy::Locality,
            &base.clone().with_prewarm(policy_prewarm()),
            &profile,
        ),
        policy_row(
            "pipeline",
            Policy::Pipeline,
            &base.clone().with_pipeline(POLICY_PIPELINE_K),
            &profile,
        ),
    ];
    // Sub-race: one request against an empty fleet paying a 100× artifact
    // cold start, single-node vs pipeline-parallel. TTFT p50 of a
    // one-request trace *is* that request's TTFT.
    let scale = |d: SimDuration| SimDuration::from_nanos(d.as_nanos() * POLICY_ARTIFACT_SCALE);
    let big = {
        let mut p = policy_profile();
        p.model_costs = vec![ModelCost {
            fetch: scale(p.fetch),
            loading: scale(p.perf.loading),
            artifact_bytes: p.artifact_bytes_for(0) * POLICY_ARTIFACT_SCALE,
        }];
        p
    };
    let solo_trace = vec![medusa_workload::Request {
        id: 0,
        arrival_ns: 0,
        prompt_tokens: 128,
        output_tokens: 32,
        model: 0,
    }];
    let duel_cluster = ClusterSpec::uniform(POLICY_PIPELINE_K as usize);
    let single = simulate_fleet_traced(
        &big,
        &duel_cluster,
        Policy::ColdStartAware,
        &solo_trace,
        None,
    )
    .report;
    let piped = simulate_fleet_traced(
        &big,
        &duel_cluster.clone().with_pipeline(POLICY_PIPELINE_K),
        Policy::Pipeline,
        &solo_trace,
        None,
    )
    .report;
    BenchPolicies {
        model: MODEL.to_string(),
        nodes: POLICY_NODES as u32,
        seed: POLICY_SEED,
        models: POLICY_MODELS,
        rps: POLICY_RPS,
        duration_s: POLICY_DURATION_S,
        keep_alive_s: POLICY_KEEP_ALIVE_S,
        prewarm_percentile_pm: POLICY_PREWARM_PERCENTILE_PM,
        pipeline_k: POLICY_PIPELINE_K,
        artifact_scale: POLICY_ARTIFACT_SCALE,
        trace_fingerprint: medusa_workload::fingerprint(&policy_trace()),
        rows,
        single_coldstart_ttft_us: single.ttft_p50_us,
        pipeline_coldstart_ttft_us: piped.ttft_p50_us,
    }
}

/// Compares a fresh policy race against the committed baseline. Errors
/// when any row's TTFT p50/p99 regressed beyond `tolerance_pct`, when the
/// prewarm-waste counter grew beyond the same tolerance (+1 absolute
/// slack — the counts are small integers), when a row dropped requests,
/// when either strict ordering invariant broke (`locality+prewarm` must
/// beat `coldstart-aware` on TTFT p99; the pipeline-parallel cold start
/// must beat the single-node one), or when the baseline no longer matches
/// the benchmark's configuration.
pub fn check_policies_regression(
    fresh: &BenchPolicies,
    baseline: &BenchPolicies,
    tolerance_pct: f64,
) -> Result<String, String> {
    let config = |b: &BenchPolicies| {
        (
            b.model.clone(),
            b.nodes,
            b.seed,
            b.models,
            b.rps,
            b.duration_s,
            b.keep_alive_s,
            b.prewarm_percentile_pm,
            b.pipeline_k,
            b.artifact_scale,
            b.trace_fingerprint,
        )
    };
    if config(fresh) != config(baseline) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {:?}, baseline has {:?} — regenerate \
             results/BENCH_policies.json",
            config(fresh),
            config(baseline),
        ));
    }
    let names = |b: &BenchPolicies| b.rows.iter().map(|r| r.policy.clone()).collect::<Vec<_>>();
    if names(fresh) != names(baseline) {
        return Err(format!(
            "raced policies changed: fresh has {:?}, baseline has {:?} — regenerate \
             results/BENCH_policies.json",
            names(fresh),
            names(baseline),
        ));
    }
    let over =
        |fresh_v: u64, base_v: u64| fresh_v as f64 > base_v as f64 * (1.0 + tolerance_pct / 100.0);
    for (f, b) in fresh.rows.iter().zip(&baseline.rows) {
        if f.completed != b.completed {
            return Err(format!(
                "policy {} dropped requests: completed {} vs baseline {}",
                f.policy, f.completed, b.completed
            ));
        }
        if over(f.ttft_p50_us, b.ttft_p50_us) {
            return Err(format!(
                "policy {} ttft p50 regressed: {} µs vs baseline {} µs (> {tolerance_pct:.1}%)",
                f.policy, f.ttft_p50_us, b.ttft_p50_us
            ));
        }
        if over(f.ttft_p99_us, b.ttft_p99_us) {
            return Err(format!(
                "policy {} ttft p99 regressed: {} µs vs baseline {} µs (> {tolerance_pct:.1}%)",
                f.policy, f.ttft_p99_us, b.ttft_p99_us
            ));
        }
        if over(f.prewarms_unused, b.prewarms_unused + 1) {
            return Err(format!(
                "policy {} prewarm waste grew: {} unused of {} issued vs baseline {} of {}",
                f.policy,
                f.prewarms_unused,
                f.prewarms_issued,
                b.prewarms_unused,
                b.prewarms_issued
            ));
        }
    }
    let row = |b: &BenchPolicies, name: &str| -> Result<BenchPolicyRow, String> {
        b.rows
            .iter()
            .find(|r| r.policy == name)
            .cloned()
            .ok_or_else(|| format!("policy race is missing the {name} row"))
    };
    let reactive = row(fresh, "coldstart-aware")?;
    let predictive = row(fresh, "locality+prewarm")?;
    if predictive.ttft_p99_us >= reactive.ttft_p99_us {
        return Err(format!(
            "locality+prewarm no longer beats coldstart-aware on TTFT p99: {} µs vs {} µs \
             ({} prewarms issued, {} unused)",
            predictive.ttft_p99_us,
            reactive.ttft_p99_us,
            predictive.prewarms_issued,
            predictive.prewarms_unused
        ));
    }
    if fresh.pipeline_coldstart_ttft_us >= fresh.single_coldstart_ttft_us {
        return Err(format!(
            "pipeline-parallel cold start (k = {}) no longer beats single-node on the {}× \
             artifact: {} µs vs {} µs",
            fresh.pipeline_k,
            fresh.artifact_scale,
            fresh.pipeline_coldstart_ttft_us,
            fresh.single_coldstart_ttft_us
        ));
    }
    Ok(format!(
        "policy race within {:.1}%: coldstart-aware p99 {} µs, locality {} µs, locality+prewarm \
         {} µs ({} prewarms, {} unused), pipeline p99 {} µs ({} sharded starts); {}× artifact \
         cold start {} µs single vs {} µs pipelined (k = {})",
        tolerance_pct,
        reactive.ttft_p99_us,
        row(fresh, "locality")?.ttft_p99_us,
        predictive.ttft_p99_us,
        predictive.prewarms_issued,
        predictive.prewarms_unused,
        row(fresh, "pipeline")?.ttft_p99_us,
        row(fresh, "pipeline")?.pipeline_starts,
        fresh.artifact_scale,
        fresh.single_coldstart_ttft_us,
        fresh.pipeline_coldstart_ttft_us,
        fresh.pipeline_k
    ))
}

// ---------------------------------------------------------------------
// Content-addressed registry bench (chunk dedup vs whole-artifact fetch).

/// Family members of the registry scenario (the base capture plus
/// `REG_MODELS - 1` derived fine-tune variants).
pub const REG_MODELS: u32 = 4;
/// Fleet size of the registry scenario. Deliberately smaller than the
/// family, so models must share nodes and evictions force re-fetches —
/// the case where chunk-level residency pays.
pub const REG_NODES: usize = 2;
/// Trace seed.
pub const REG_SEED: u64 = 42;
/// Offered rate, requests/second.
pub const REG_RPS: u64 = 1;
/// Trace duration, seconds.
pub const REG_DURATION_S: u64 = 120;
/// Zipf popularity skew over the family, milli-units.
pub const REG_ZIPF_S_MILLI: u32 = 1000;
/// Idle keep-alive, seconds (short, so nodes churn through scale-to-zero
/// and chunk residency — not warm pools — carries the savings).
pub const REG_KEEP_ALIVE_S: u64 = 2;
/// Per-node artifact-cache capacity, artifacts (one, so every model
/// switch evicts and re-fetches — which the chunk store answers
/// incrementally from the evicted sibling's still-resident template
/// chunks, while the whole-artifact control pays full price each time).
pub const REG_CACHE_ARTIFACTS: u32 = 1;
/// Family name stamped into the factored template.
pub const REG_FAMILY: &str = "qwen-0.5b-family";
/// Offline seed of the base capture.
pub const REG_SEED_OFFLINE: u64 = 35;
/// The gate's fetch-byte reduction floor, milli-ratio: the
/// content-addressed fleet must move at most 1/2 the bytes of the
/// whole-artifact fleet (whole / cas ≥ 2.0).
pub const REG_BYTE_REDUCTION_FLOOR_MILLI: u64 = 2000;

/// One registry-bench result: the same Zipf family trace replayed through
/// a content-addressed registry (chunk-level residency, delta-only
/// transfers) and a whole-artifact control row (one monolithic unit per
/// model over the same byte totals). Simulated clock only — byte-identical
/// across machines, committed as `results/BENCH_registry.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchRegistry {
    /// Catalog model name backing the family capture and cost profile.
    pub model: String,
    /// Family name of the factored template.
    pub family: String,
    /// Fleet size.
    pub nodes: u32,
    /// Trace seed.
    pub seed: u64,
    /// Family members.
    pub models: u32,
    /// Zipf skew, milli-units.
    pub zipf_s_milli: u32,
    /// Offered rate, requests/second.
    pub rps: u64,
    /// Trace duration, seconds.
    pub duration_s: u64,
    /// Per-node cache capacity, artifacts.
    pub cache_artifacts: u32,
    /// Fingerprint of the replayed trace (config drift detector).
    pub trace_fingerprint: u64,
    /// Fold of the packed manifests' canonical digests (catalog drift
    /// detector: any change to chunking, encoding, or the derived family
    /// shows up here).
    pub catalog_fingerprint: u64,
    /// Store accounting: sum of manifest bytes (what a whole-artifact
    /// registry stores).
    pub store_logical_bytes: u64,
    /// Store accounting: bytes after chunk dedup.
    pub store_stored_bytes: u64,
    /// Distinct chunks in the store.
    pub store_unique_chunks: u64,
    /// Storage dedup ratio, milli (logical × 1000 / stored).
    pub store_dedup_ratio_milli: u64,
    /// Whole-artifact row: bytes fetched from the registry.
    pub whole_bytes_fetched: u64,
    /// Whole-artifact row: TTFT p99, µs.
    pub whole_ttft_p99_us: u64,
    /// Whole-artifact row: cold starts.
    pub whole_cold_starts: u32,
    /// Content-addressed row: bytes fetched from the registry.
    pub cas_bytes_fetched: u64,
    /// Content-addressed row: bytes resolved from resident chunks.
    pub cas_bytes_resolved: u64,
    /// Content-addressed row: chunk residency hits.
    pub cas_chunk_hits: u64,
    /// Content-addressed row: chunks transferred.
    pub cas_chunk_misses: u64,
    /// Content-addressed row: TTFT p99, µs.
    pub cas_ttft_p99_us: u64,
    /// Content-addressed row: cold starts.
    pub cas_cold_starts: u32,
}

impl BenchRegistry {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Builds the registry scenario's chunk store: materialize the base model
/// once, factor it into a family template, instantiate `REG_MODELS`
/// members (the base plus seed-derived fine-tune variants), pack each
/// member's MAF2 bytes, and factor the shared chunks into a template
/// manifest. Deterministic per seed.
pub fn registry_store() -> ChunkStore {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let (base, _) = materialize_offline(
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        REG_SEED_OFFLINE,
    )
    .expect("offline materialization");
    let (template, base_delta) = ArtifactTemplate::extract(std::slice::from_ref(&base), REG_FAMILY)
        .expect("family extraction");
    let mut store = ChunkStore::new();
    for m in 0..REG_MODELS {
        let delta = if m == 0 {
            base_delta.clone()
        } else {
            base_delta.derive_variant(&format!("{MODEL}-v{m}"), REG_SEED_OFFLINE ^ u64::from(m))
        };
        for shard in template.instantiate(&delta).expect("member instantiation") {
            let bytes = shard.to_maf2().expect("member encoding");
            store.pack(&bytes).expect("member packing");
        }
    }
    store.factor_family(REG_FAMILY).expect("family factoring");
    store
}

/// Catalog drift detector: a rotate-xor fold of the manifests' canonical
/// digests, order-sensitive (manifest index is the fleet's model id).
pub fn registry_catalog_fingerprint(store: &ChunkStore) -> u64 {
    store
        .manifests()
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |acc, m| {
            acc.rotate_left(5) ^ m.digest()
        })
}

fn reg_trace() -> Vec<medusa_workload::Request> {
    TraceConfig::sharegpt(REG_RPS as f64, REG_DURATION_S as f64)
        .with_seed(REG_SEED)
        .with_models(medusa_workload::ModelMix::Zipf {
            models: REG_MODELS,
            s: REG_ZIPF_S_MILLI as f64 / 1000.0,
        })
        .generate()
}

fn reg_cluster(mode: RegistryMode) -> ClusterSpec {
    ClusterSpec::uniform(REG_NODES)
        .with_cache(CacheConfig {
            capacity: CacheCapacity::Artifacts(REG_CACHE_ARTIFACTS),
            eviction: EvictionPolicy::CostAware,
        })
        .with_keep_alive(REG_KEEP_ALIVE_S as f64)
        .with_registry_mode(mode)
}

/// Replays the registry scenario's trace through one registry backend.
pub fn run_registry_side(
    mode: RegistryMode,
    tele: Option<&Registry>,
) -> medusa_serving::ClusterReport {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let profile = FleetProfile::measure(
        Strategy::Medusa,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        1,
        Parallelism::Overlapped,
        REG_SEED,
    )
    .expect("fleet profile")
    .with_scaled_models(REG_MODELS);
    simulate_fleet_traced(
        &profile,
        &reg_cluster(mode),
        Policy::ColdStartAware,
        &reg_trace(),
        tele,
    )
    .report
}

/// Runs the full registry bench: build the family store, then replay the
/// same trace through the content-addressed catalog and through a
/// monolithic control catalog (one unit per model over the same byte
/// totals, so both rows carry comparable registry counters).
pub fn run_registry() -> BenchRegistry {
    let store = registry_store();
    let stats = store.dedup_stats();
    let catalog = RegistryCatalog::from_store(&store);
    let totals: Vec<u64> = catalog.models.iter().map(|m| m.total_bytes()).collect();
    let cas = run_registry_side(RegistryMode::ContentAddressed(catalog), None);
    let whole = run_registry_side(
        RegistryMode::ContentAddressed(RegistryCatalog::monolithic(&totals)),
        None,
    );
    let cas_reg = cas.registry.expect("cas row reports registry counters");
    let whole_reg = whole
        .registry
        .expect("control row reports registry counters");
    BenchRegistry {
        model: MODEL.to_string(),
        family: REG_FAMILY.to_string(),
        nodes: REG_NODES as u32,
        seed: REG_SEED,
        models: REG_MODELS,
        zipf_s_milli: REG_ZIPF_S_MILLI,
        rps: REG_RPS,
        duration_s: REG_DURATION_S,
        cache_artifacts: REG_CACHE_ARTIFACTS,
        trace_fingerprint: medusa_workload::fingerprint(&reg_trace()),
        catalog_fingerprint: registry_catalog_fingerprint(&store),
        store_logical_bytes: stats.logical_bytes,
        store_stored_bytes: stats.stored_bytes,
        store_unique_chunks: stats.unique_chunks as u64,
        store_dedup_ratio_milli: stats
            .logical_bytes
            .saturating_mul(1000)
            .checked_div(stats.stored_bytes)
            .unwrap_or(1000),
        whole_bytes_fetched: whole_reg.bytes_fetched,
        whole_ttft_p99_us: whole.ttft_p99_us,
        whole_cold_starts: whole.cold_starts,
        cas_bytes_fetched: cas_reg.bytes_fetched,
        cas_bytes_resolved: cas_reg.bytes_resolved,
        cas_chunk_hits: cas_reg.chunk_hits,
        cas_chunk_misses: cas_reg.chunk_misses,
        cas_ttft_p99_us: cas.ttft_p99_us,
        cas_cold_starts: cas.cold_starts,
    }
}

/// Compares a fresh registry bench against the committed baseline.
/// Returns a human-readable verdict, or an error when the baseline no
/// longer matches the benchmark's configuration (including the catalog
/// fingerprint), when the content-addressed fleet's fetch bytes no longer
/// undercut the whole-artifact row by [`REG_BYTE_REDUCTION_FLOOR_MILLI`],
/// when the family store's dedup ratio falls below 2×, when the
/// content-addressed TTFT p99 exceeds the whole row's by more than 5%, or
/// when the deterministic byte counters drift from the baseline.
pub fn check_registry_regression(
    fresh: &BenchRegistry,
    baseline: &BenchRegistry,
    tolerance_pct: f64,
) -> Result<String, String> {
    let config = |b: &BenchRegistry| {
        (
            b.model.clone(),
            b.family.clone(),
            b.nodes,
            b.seed,
            b.models,
            b.zipf_s_milli,
            b.rps,
            b.duration_s,
            b.cache_artifacts,
            b.trace_fingerprint,
            b.catalog_fingerprint,
        )
    };
    if config(fresh) != config(baseline) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {:?}, baseline has {:?} — regenerate \
             results/BENCH_registry.json",
            config(fresh),
            config(baseline),
        ));
    }
    let bytes = |b: &BenchRegistry| {
        (
            b.whole_bytes_fetched,
            b.cas_bytes_fetched,
            b.cas_bytes_resolved,
            b.cas_chunk_hits,
            b.cas_chunk_misses,
            b.store_logical_bytes,
            b.store_stored_bytes,
            b.store_unique_chunks,
        )
    };
    if bytes(fresh) != bytes(baseline) {
        return Err(format!(
            "registry byte accounting diverged from the committed baseline (simulated counters \
             are machine-independent): fresh {:?}, baseline {:?}",
            bytes(fresh),
            bytes(baseline),
        ));
    }
    let reduction_milli = fresh
        .whole_bytes_fetched
        .saturating_mul(1000)
        .checked_div(fresh.cas_bytes_fetched)
        .unwrap_or(u64::MAX);
    if reduction_milli < REG_BYTE_REDUCTION_FLOOR_MILLI {
        return Err(format!(
            "content-addressed fetches no longer undercut whole-artifact transfers: {} vs {} \
             bytes ({:.2}x < {:.1}x floor)",
            fresh.cas_bytes_fetched,
            fresh.whole_bytes_fetched,
            reduction_milli as f64 / 1000.0,
            REG_BYTE_REDUCTION_FLOOR_MILLI as f64 / 1000.0
        ));
    }
    if fresh.store_dedup_ratio_milli < 2000 {
        return Err(format!(
            "family store dedup fell below 2x: {} logical -> {} stored bytes ({:.2}x)",
            fresh.store_logical_bytes,
            fresh.store_stored_bytes,
            fresh.store_dedup_ratio_milli as f64 / 1000.0
        ));
    }
    if fresh.cas_ttft_p99_us as f64 > fresh.whole_ttft_p99_us as f64 * 1.05 {
        return Err(format!(
            "content-addressed TTFT p99 strays beyond 5% of the whole-artifact row: {} µs vs \
             {} µs",
            fresh.cas_ttft_p99_us, fresh.whole_ttft_p99_us
        ));
    }
    let limit = baseline.cas_ttft_p99_us as f64 * (1.0 + tolerance_pct / 100.0);
    if (fresh.cas_ttft_p99_us as f64) > limit {
        return Err(format!(
            "content-addressed TTFT p99 regressed: {} µs vs baseline {} µs \
             (> {tolerance_pct:.1}% tolerance)",
            fresh.cas_ttft_p99_us, baseline.cas_ttft_p99_us
        ));
    }
    Ok(format!(
        "registry fetch bytes {} cas vs {} whole ({:.2}x reduction), store dedup {:.2}x over {} \
         members, cas ttft p99 {} µs vs whole {} µs, within {:.1}%",
        fresh.cas_bytes_fetched,
        fresh.whole_bytes_fetched,
        reduction_milli as f64 / 1000.0,
        fresh.store_dedup_ratio_milli as f64 / 1000.0,
        fresh.models,
        fresh.cas_ttft_p99_us,
        fresh.whole_ttft_p99_us,
        tolerance_pct
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchColdstart {
        BenchColdstart {
            model: MODEL.to_string(),
            tp: TP,
            seed_offline: SEED_OFFLINE,
            seed_online: SEED_ONLINE,
            serial_us: 1_000_000,
            overlapped_us: 700_000,
            pipelined_us: 650_000,
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        assert_eq!(BenchColdstart::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn regression_gate_passes_within_tolerance_and_fails_beyond() {
        let base = sample();
        let mut fresh = sample();
        fresh.overlapped_us = 734_000; // +4.9%
        assert!(check_regression(&fresh, &base, 5.0).is_ok());
        fresh.overlapped_us = 736_000; // +5.1%
        assert!(check_regression(&fresh, &base, 5.0).is_err());
        // Improvements always pass.
        fresh.overlapped_us = 600_000;
        assert!(check_regression(&fresh, &base, 5.0).is_ok());
    }

    #[test]
    fn stale_baseline_config_is_rejected() {
        let base = sample();
        let mut fresh = sample();
        fresh.seed_online = 99;
        let err = check_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    fn sample_cluster() -> BenchCluster {
        BenchCluster {
            model: MODEL.to_string(),
            nodes: CLUSTER_NODES as u32,
            seed: CLUSTER_SEED,
            rps: CLUSTER_RPS,
            duration_s: CLUSTER_DURATION_S,
            trace_fingerprint: 0xabcd,
            medusa_cold_starts: 2,
            medusa_makespan_us: 45_000_000,
            medusa_ttft_p99_us: 900_000,
            vanilla_cold_starts: 3,
            vanilla_makespan_us: 46_000_000,
            vanilla_ttft_p99_us: 1_600_000,
        }
    }

    #[test]
    fn cluster_json_round_trips() {
        let b = sample_cluster();
        assert_eq!(BenchCluster::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn cluster_gate_passes_within_tolerance_and_fails_beyond() {
        let base = sample_cluster();
        let mut fresh = sample_cluster();
        fresh.medusa_ttft_p99_us = 944_000; // +4.9%
        assert!(check_cluster_regression(&fresh, &base, 5.0).is_ok());
        fresh.medusa_ttft_p99_us = 946_000; // +5.1%
        assert!(check_cluster_regression(&fresh, &base, 5.0).is_err());
        fresh.medusa_ttft_p99_us = 900_000;
        fresh.medusa_makespan_us = 48_000_000; // +6.7%
        assert!(check_cluster_regression(&fresh, &base, 5.0).is_err());
    }

    #[test]
    fn cluster_gate_requires_medusa_to_beat_vanilla() {
        let base = sample_cluster();
        let mut fresh = sample_cluster();
        fresh.medusa_ttft_p99_us = fresh.vanilla_ttft_p99_us;
        let err = check_cluster_regression(&fresh, &base, 1000.0).unwrap_err();
        assert!(err.contains("no longer beats"), "{err}");
    }

    #[test]
    fn cluster_gate_rejects_stale_config() {
        let base = sample_cluster();
        let mut fresh = sample_cluster();
        fresh.trace_fingerprint = 0xbeef;
        let err = check_cluster_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn cluster_smoke_is_deterministic_and_medusa_wins() {
        let a = run_cluster();
        let b = run_cluster();
        assert_eq!(a, b, "simulated fleet results must be run-invariant");
        assert!(
            a.medusa_ttft_p99_us < a.vanilla_ttft_p99_us,
            "medusa fleet must beat vanilla on the burst tail: {a:?}"
        );
        assert!(a.medusa_makespan_us <= a.vanilla_makespan_us, "{a:?}");
    }

    fn sample_cluster_mt() -> BenchClusterMultiTenant {
        BenchClusterMultiTenant {
            model: MODEL.to_string(),
            nodes: MT_NODES as u32,
            seed: MT_SEED,
            models: MT_MODELS,
            zipf_s_milli: MT_ZIPF_S_MILLI,
            rps: MT_RPS,
            duration_s: MT_DURATION_S,
            cache_artifacts: MT_CACHE_ARTIFACTS,
            eviction: EvictionPolicy::CostAware.name().to_string(),
            trace_fingerprint: 0xfeed,
            medusa_cold_starts: 40,
            medusa_ttft_p99_us: 2_000_000,
            vanilla_cold_starts: 38,
            vanilla_ttft_p99_us: 3_000_000,
            cache_hits: 30,
            cache_misses: 10,
            cache_evictions: 2,
            cache_hit_rate_pm: 750,
            per_tenant: vec![
                BenchTenant {
                    model: 0,
                    offered: 30,
                    medusa_ttft_p99_us: 1_000_000,
                    vanilla_ttft_p99_us: 1_500_000,
                    medusa_slo_attained_pm: 933,
                },
                BenchTenant {
                    model: 1,
                    offered: 10,
                    medusa_ttft_p99_us: 2_000_000,
                    vanilla_ttft_p99_us: 3_000_000,
                    medusa_slo_attained_pm: 800,
                },
            ],
        }
    }

    #[test]
    fn cluster_mt_json_round_trips() {
        let b = sample_cluster_mt();
        assert_eq!(BenchClusterMultiTenant::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn cluster_mt_gate_passes_within_tolerance_and_fails_beyond() {
        let base = sample_cluster_mt();
        let mut fresh = sample_cluster_mt();
        fresh.medusa_ttft_p99_us = 2_098_000; // +4.9%
        assert!(check_cluster_mt_regression(&fresh, &base, 5.0, 200).is_ok());
        fresh.medusa_ttft_p99_us = 2_102_000; // +5.1%
        assert!(check_cluster_mt_regression(&fresh, &base, 5.0, 200).is_err());
    }

    #[test]
    fn cluster_mt_gate_requires_every_tenant_to_beat_vanilla() {
        let base = sample_cluster_mt();
        let mut fresh = sample_cluster_mt();
        // One lagging tenant fails the gate even when the aggregate wins.
        fresh.per_tenant[1].medusa_ttft_p99_us = fresh.per_tenant[1].vanilla_ttft_p99_us;
        let err = check_cluster_mt_regression(&fresh, &base, 1000.0, 0).unwrap_err();
        assert!(err.contains("tenant 1"), "{err}");
    }

    #[test]
    fn cluster_mt_gate_enforces_hit_rate_floor_and_config() {
        let base = sample_cluster_mt();
        let mut fresh = sample_cluster_mt();
        fresh.cache_hit_rate_pm = 199;
        let err = check_cluster_mt_regression(&fresh, &base, 5.0, 200).unwrap_err();
        assert!(err.contains("below the floor"), "{err}");
        let mut fresh = sample_cluster_mt();
        fresh.trace_fingerprint = 0xdead;
        let err = check_cluster_mt_regression(&fresh, &base, 5.0, 200).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn cluster_mt_smoke_is_deterministic_and_every_tenant_wins() {
        let a = run_cluster_mt();
        let b = run_cluster_mt();
        assert_eq!(a, b, "simulated multi-tenant results must be run-invariant");
        assert_eq!(a.per_tenant.len(), MT_MODELS as usize, "{a:?}");
        for t in &a.per_tenant {
            assert!(
                t.medusa_ttft_p99_us < t.vanilla_ttft_p99_us,
                "medusa must beat vanilla for every tenant: {t:?}"
            );
        }
        assert!(a.cache_hit_rate_pm >= MT_HIT_RATE_FLOOR_PM, "{a:?}");
        assert!(a.cache_evictions > 0, "cache must be contended: {a:?}");
    }

    fn sample_artifact() -> BenchArtifact {
        BenchArtifact {
            model: MODEL.to_string(),
            tp: ARTIFACT_TP,
            seed: ARTIFACT_SEED,
            base_graphs: ARTIFACT_BASE_GRAPHS,
            scales: vec![
                BenchArtifactScale {
                    scale: 1,
                    maf2_bytes: 100_000,
                    json_bytes: 220_000,
                    open_read_bytes: 800,
                    shard_restore_read_bytes: 45_000,
                },
                BenchArtifactScale {
                    scale: 100,
                    maf2_bytes: 10_000_000,
                    json_bytes: 22_000_000,
                    open_read_bytes: 800,
                    shard_restore_read_bytes: 4_500_000,
                },
            ],
        }
    }

    #[test]
    fn artifact_json_round_trips() {
        let b = sample_artifact();
        assert_eq!(BenchArtifact::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn artifact_gate_rejects_byte_drift_and_stale_config() {
        let base = sample_artifact();
        assert!(check_artifact_regression(&base, &base, &[], 10.0).is_ok());
        let mut fresh = sample_artifact();
        fresh.scales[1].maf2_bytes += 1;
        let err = check_artifact_regression(&fresh, &base, &[], 10.0).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
        let mut fresh = sample_artifact();
        fresh.seed = 99;
        let err = check_artifact_regression(&fresh, &base, &[], 10.0).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn artifact_gate_enforces_o_header_open_and_lazy_fraction() {
        // Open cost growing with file size fails the O(header) clause.
        let mut grown = sample_artifact();
        grown.scales[1].open_read_bytes = 80_000;
        let err = check_artifact_regression(&grown, &grown.clone(), &[], 10.0).unwrap_err();
        assert!(err.contains("not O(header)"), "{err}");
        // A shard restore that reads half the tp=2 file fails the 1/tp clause.
        let mut fat = sample_artifact();
        fat.scales[1].shard_restore_read_bytes = fat.scales[1].maf2_bytes / 2 + 1;
        let err = check_artifact_regression(&fat, &fat.clone(), &[], 10.0).unwrap_err();
        assert!(err.contains("1/2 of the file"), "{err}");
    }

    #[test]
    fn artifact_gate_enforces_the_speedup_floor() {
        let base = sample_artifact();
        let slow = vec![ArtifactTiming {
            scale: 100,
            encode: std::time::Duration::from_millis(50),
            maf2_open_validate: std::time::Duration::from_micros(200),
            json_parse_validate: std::time::Duration::from_micros(900),
            shard_restore: std::time::Duration::from_millis(5),
        }];
        let err = check_artifact_regression(&base, &base, &slow, 10.0).unwrap_err();
        assert!(err.contains("only 4.5x faster"), "{err}");
        let fast = vec![ArtifactTiming {
            json_parse_validate: std::time::Duration::from_millis(90),
            ..slow[0].clone()
        }];
        assert!(check_artifact_regression(&base, &base, &fast, 10.0).is_ok());
    }

    #[test]
    fn artifact_sweep_meets_its_own_contracts() {
        let (fresh, timings) = run_artifact();
        assert_eq!(fresh.scales.len(), ARTIFACT_SCALES.len());
        // Self-comparison exercises every live clause: O(header) open,
        // lazy-restore fraction, and the wall-clock speedup floor.
        let verdict =
            check_artifact_regression(&fresh, &fresh, &timings, ARTIFACT_SPEEDUP_FLOOR).unwrap();
        assert!(verdict.contains("byte-exact"), "{verdict}");
        for s in &fresh.scales {
            assert!(
                s.maf2_bytes < s.json_bytes,
                "binary encoding must be smaller: {s:?}"
            );
        }
        // The graph section dominates, so size grows near-linearly.
        let (first, last) = (&fresh.scales[0], &fresh.scales[fresh.scales.len() - 1]);
        assert!(
            last.maf2_bytes > first.maf2_bytes * (last.scale as u64 / 2),
            "sweep did not scale the artifact: {first:?} -> {last:?}"
        );
    }

    #[test]
    fn smoke_run_is_deterministic_and_ordered() {
        let a = run();
        let b = run();
        assert_eq!(a, b, "simulated makespans must be run-invariant");
        assert!(
            a.pipelined_us <= a.overlapped_us && a.overlapped_us < a.serial_us,
            "parallel modes must beat serial: {a:?}"
        );
    }

    fn sample_policy_row(policy: &str, p99: u64) -> BenchPolicyRow {
        BenchPolicyRow {
            policy: policy.to_string(),
            completed: 488,
            cold_starts: 40,
            ttft_p50_us: 12_000,
            ttft_p99_us: p99,
            prewarms_issued: 0,
            prewarms_unused: 0,
            pipeline_starts: 0,
        }
    }

    fn sample_policies() -> BenchPolicies {
        BenchPolicies {
            model: MODEL.to_string(),
            nodes: POLICY_NODES as u32,
            seed: POLICY_SEED,
            models: POLICY_MODELS,
            rps: POLICY_RPS,
            duration_s: POLICY_DURATION_S,
            keep_alive_s: POLICY_KEEP_ALIVE_S,
            prewarm_percentile_pm: POLICY_PREWARM_PERCENTILE_PM,
            pipeline_k: POLICY_PIPELINE_K,
            artifact_scale: POLICY_ARTIFACT_SCALE,
            trace_fingerprint: 0xfeed,
            rows: vec![
                sample_policy_row("coldstart-aware", 1_600_000),
                sample_policy_row("locality", 1_600_000),
                {
                    let mut r = sample_policy_row("locality+prewarm", 1_400_000);
                    r.prewarms_issued = 11;
                    r.prewarms_unused = 7;
                    r
                },
                {
                    let mut r = sample_policy_row("pipeline", 1_100_000);
                    r.pipeline_starts = 22;
                    r
                },
            ],
            single_coldstart_ttft_us: 100_000_000,
            pipeline_coldstart_ttft_us: 50_000_000,
        }
    }

    #[test]
    fn policies_json_round_trips() {
        let b = sample_policies();
        assert_eq!(BenchPolicies::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn policies_gate_passes_within_tolerance_and_fails_beyond() {
        let base = sample_policies();
        let mut fresh = sample_policies();
        fresh.rows[0].ttft_p99_us = 1_678_000; // +4.9%
        assert!(check_policies_regression(&fresh, &base, 5.0).is_ok());
        fresh.rows[0].ttft_p99_us = 1_681_000; // +5.1%
        let err = check_policies_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("coldstart-aware ttft p99"), "{err}");
        // Prewarm waste growing past tolerance (+1 slack) fails.
        let mut fresh = sample_policies();
        fresh.rows[2].prewarms_unused = 10;
        let err = check_policies_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("prewarm waste"), "{err}");
        // Dropped requests fail regardless of tolerance.
        let mut fresh = sample_policies();
        fresh.rows[1].completed -= 1;
        let err = check_policies_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("dropped requests"), "{err}");
    }

    #[test]
    fn policies_gate_enforces_ordering_invariants() {
        let base = sample_policies();
        // The predictive row must strictly beat the reactive one...
        let mut tied = sample_policies();
        tied.rows[2].ttft_p99_us = tied.rows[0].ttft_p99_us;
        let err = check_policies_regression(&tied, &tied, 5.0).unwrap_err();
        assert!(err.contains("no longer beats coldstart-aware"), "{err}");
        // ...and the sharded cold start must strictly beat the single one.
        let mut slow = sample_policies();
        slow.pipeline_coldstart_ttft_us = slow.single_coldstart_ttft_us;
        let err = check_policies_regression(&slow, &slow, 5.0).unwrap_err();
        assert!(err.contains("no longer beats single-node"), "{err}");
        assert!(check_policies_regression(&base, &base, 5.0).is_ok());
    }

    #[test]
    fn stale_policies_baseline_is_rejected() {
        let base = sample_policies();
        let mut fresh = sample_policies();
        fresh.trace_fingerprint = 1;
        let err = check_policies_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
        // A renamed/reordered row set is config drift too.
        let mut fresh = sample_policies();
        fresh.rows.swap(0, 1);
        let err = check_policies_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("raced policies changed"), "{err}");
    }

    #[test]
    fn policy_race_meets_its_own_contracts() {
        // One live run through every raced policy: self-comparison
        // exercises the tolerance clauses and both strict ordering
        // invariants (prewarm beats reactive, pipeline halves the 100×
        // cold start) against real simulator output.
        let fresh = run_policies();
        let verdict = check_policies_regression(&fresh, &fresh, 5.0).unwrap();
        assert!(verdict.contains("policy race"), "{verdict}");
        let prewarm = &fresh.rows[2];
        assert!(
            prewarm.prewarms_issued > prewarm.prewarms_unused,
            "estimator must land more prewarms than it wastes: {prewarm:?}"
        );
        let pipeline = &fresh.rows[3];
        assert!(
            pipeline.pipeline_starts > 0,
            "pipeline row never sharded a start: {pipeline:?}"
        );
    }

    fn sample_registry() -> BenchRegistry {
        BenchRegistry {
            model: MODEL.to_string(),
            family: REG_FAMILY.to_string(),
            nodes: REG_NODES as u32,
            seed: REG_SEED,
            models: REG_MODELS,
            zipf_s_milli: REG_ZIPF_S_MILLI,
            rps: REG_RPS,
            duration_s: REG_DURATION_S,
            cache_artifacts: REG_CACHE_ARTIFACTS,
            trace_fingerprint: 0xfeed,
            catalog_fingerprint: 0xcafe,
            store_logical_bytes: 8_000_000,
            store_stored_bytes: 2_000_000,
            store_unique_chunks: 87,
            store_dedup_ratio_milli: 4_000,
            whole_bytes_fetched: 60_000_000,
            whole_ttft_p99_us: 8_300_000,
            whole_cold_starts: 38,
            cas_bytes_fetched: 4_000_000,
            cas_bytes_resolved: 56_000_000,
            cas_chunk_hits: 2_000,
            cas_chunk_misses: 260,
            cas_ttft_p99_us: 8_200_000,
            cas_cold_starts: 39,
        }
    }

    #[test]
    fn registry_json_round_trips() {
        let b = sample_registry();
        assert_eq!(BenchRegistry::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn registry_gate_passes_within_tolerance_and_fails_beyond() {
        let base = sample_registry();
        assert!(check_registry_regression(&base, &base, 5.0).is_ok());
        // The 5%-of-whole parity band is absolute, not baseline-relative.
        let mut fresh = sample_registry();
        fresh.cas_ttft_p99_us = fresh.whole_ttft_p99_us * 106 / 100;
        let err = check_registry_regression(&fresh, &base, 50.0).unwrap_err();
        assert!(err.contains("strays beyond 5%"), "{err}");
        // Baseline-relative TTFT drift past the tolerance fails too.
        let mut fresh = sample_registry();
        fresh.cas_ttft_p99_us = base.cas_ttft_p99_us * 106 / 100;
        let err = check_registry_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn registry_gate_enforces_byte_reduction_and_dedup_floors() {
        // Shrinking the whole row below 2× the cas bytes breaks the
        // reduction floor (counters must agree on both sides to reach it).
        let mut weak = sample_registry();
        weak.whole_bytes_fetched = weak.cas_bytes_fetched * 2 - 1;
        let err = check_registry_regression(&weak, &weak, 5.0).unwrap_err();
        assert!(err.contains("no longer undercut"), "{err}");
        // A store that stopped deduplicating fails the 2× storage floor.
        let mut flat = sample_registry();
        flat.store_dedup_ratio_milli = 1_999;
        let err = check_registry_regression(&flat, &flat, 5.0).unwrap_err();
        assert!(err.contains("dedup fell below 2x"), "{err}");
    }

    #[test]
    fn stale_registry_baseline_is_rejected() {
        let base = sample_registry();
        // Catalog drift (chunking, encoding, family membership) is config
        // drift: the baseline must be regenerated, not tolerated.
        let mut fresh = sample_registry();
        fresh.catalog_fingerprint = 1;
        let err = check_registry_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("configuration mismatch"), "{err}");
        // Simulated byte counters are machine-independent — any divergence
        // from the committed baseline is a real semantic change.
        let mut fresh = sample_registry();
        fresh.cas_chunk_hits += 1;
        let err = check_registry_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn registry_bench_meets_its_own_contracts() {
        // One live run through both registry backends: self-comparison
        // exercises the byte-reduction, dedup, and TTFT-parity clauses
        // against real simulator output, and the chunk counters must show
        // actual cross-model sharing (hits from sibling templates).
        let fresh = run_registry();
        let verdict = check_registry_regression(&fresh, &fresh, 5.0).unwrap();
        assert!(verdict.contains("reduction"), "{verdict}");
        assert!(
            fresh.cas_chunk_hits > 0 && fresh.cas_bytes_resolved > 0,
            "content-addressed run never resolved a resident chunk: {fresh:?}"
        );
        assert!(
            fresh.whole_bytes_fetched > fresh.store_logical_bytes,
            "scenario produced no re-fetch churn (whole row fetched each \
             artifact at most once): {fresh:?}"
        );
    }
}
