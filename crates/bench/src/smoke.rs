//! Deterministic cold-start smoke benchmark backing the CI perf gate.
//!
//! The smoke run replays the same tp=2 Medusa offline+online pipeline under
//! each [`Parallelism`] mode and records the **simulated** loading makespan.
//! Because every number derives from the virtual clock, the result is
//! byte-identical across machines and runs — which is what lets CI diff a
//! fresh run against the committed baseline in `results/BENCH_coldstart.json`
//! and fail on a >5% regression without flakiness.

use medusa::{
    cold_start_tp_traced, materialize_offline_tp_with, ColdStartOptions, Parallelism, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use medusa_telemetry::Registry;
use serde::{Deserialize, Serialize};

/// Catalog model the smoke benchmark runs (smallest — CI time matters).
pub const MODEL: &str = "Qwen1.5-0.5B";
/// Tensor-parallel degree of the smoke run.
pub const TP: u32 = 2;
/// Seed of the offline (materialization) phase.
pub const SEED_OFFLINE: u64 = 31;
/// Seed of the online (cold start) phase.
pub const SEED_ONLINE: u64 = 32;

/// One smoke-benchmark result: the simulated loading makespan, in
/// microseconds, of each scheduling mode on the same model/seeds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchColdstart {
    /// Catalog model name.
    pub model: String,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Offline-phase seed.
    pub seed_offline: u64,
    /// Online-phase seed.
    pub seed_online: u64,
    /// Loading makespan under [`Parallelism::Serial`], µs.
    pub serial_us: u64,
    /// Loading makespan under [`Parallelism::Overlapped`], µs.
    pub overlapped_us: u64,
    /// Loading makespan under [`Parallelism::PipelinedTp`], µs.
    pub pipelined_us: u64,
}

impl BenchColdstart {
    /// Encodes as JSON (one stable line — committed as the CI baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Runs one mode of the smoke pipeline, returning the simulated loading
/// makespan in µs and optionally filling `tele` with spans/metrics.
pub fn run_mode(mode: Parallelism, tele: Option<&Registry>) -> u64 {
    let spec = ModelSpec::by_name(MODEL).expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();
    let (arts, _) =
        materialize_offline_tp_with(&spec, TP, gpu.clone(), cost.clone(), SEED_OFFLINE, mode)
            .expect("tp offline");
    let opts = ColdStartOptions {
        seed: SEED_ONLINE,
        warm_container: true,
        parallelism: mode,
        ..Default::default()
    };
    let cold = cold_start_tp_traced(
        Strategy::Medusa,
        &spec,
        TP,
        gpu,
        cost,
        Some(&arts),
        opts,
        tele,
    )
    .expect("tp cold start");
    cold.loading().as_nanos() / 1_000
}

/// Runs the full smoke benchmark (all three modes).
pub fn run() -> BenchColdstart {
    BenchColdstart {
        model: MODEL.to_string(),
        tp: TP,
        seed_offline: SEED_OFFLINE,
        seed_online: SEED_ONLINE,
        serial_us: run_mode(Parallelism::Serial, None),
        overlapped_us: run_mode(Parallelism::Overlapped, None),
        pipelined_us: run_mode(Parallelism::PipelinedTp, None),
    }
}

/// Compares a fresh smoke run against the committed baseline. Returns a
/// human-readable verdict, or an error when the overlapped makespan
/// regressed by more than `tolerance_pct` percent (the CI gate) or the
/// baseline no longer matches the benchmark's configuration.
pub fn check_regression(
    fresh: &BenchColdstart,
    baseline: &BenchColdstart,
    tolerance_pct: f64,
) -> Result<String, String> {
    if (
        &fresh.model,
        fresh.tp,
        fresh.seed_offline,
        fresh.seed_online,
    ) != (
        &baseline.model,
        baseline.tp,
        baseline.seed_offline,
        baseline.seed_online,
    ) {
        return Err(format!(
            "baseline configuration mismatch: fresh ran {}/tp{} seeds {}/{}, baseline has {}/tp{} \
             seeds {}/{} — regenerate results/BENCH_coldstart.json",
            fresh.model,
            fresh.tp,
            fresh.seed_offline,
            fresh.seed_online,
            baseline.model,
            baseline.tp,
            baseline.seed_offline,
            baseline.seed_online,
        ));
    }
    let limit = baseline.overlapped_us as f64 * (1.0 + tolerance_pct / 100.0);
    if (fresh.overlapped_us as f64) > limit {
        return Err(format!(
            "overlapped loading makespan regressed: {} µs vs baseline {} µs (> {:.1}% tolerance)",
            fresh.overlapped_us, baseline.overlapped_us, tolerance_pct
        ));
    }
    let delta = fresh.overlapped_us as i64 - baseline.overlapped_us as i64;
    Ok(format!(
        "overlapped loading makespan {} µs vs baseline {} µs ({delta:+} µs, within {:.1}%)",
        fresh.overlapped_us, baseline.overlapped_us, tolerance_pct
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchColdstart {
        BenchColdstart {
            model: MODEL.to_string(),
            tp: TP,
            seed_offline: SEED_OFFLINE,
            seed_online: SEED_ONLINE,
            serial_us: 1_000_000,
            overlapped_us: 700_000,
            pipelined_us: 650_000,
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        assert_eq!(BenchColdstart::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn regression_gate_passes_within_tolerance_and_fails_beyond() {
        let base = sample();
        let mut fresh = sample();
        fresh.overlapped_us = 734_000; // +4.9%
        assert!(check_regression(&fresh, &base, 5.0).is_ok());
        fresh.overlapped_us = 736_000; // +5.1%
        assert!(check_regression(&fresh, &base, 5.0).is_err());
        // Improvements always pass.
        fresh.overlapped_us = 600_000;
        assert!(check_regression(&fresh, &base, 5.0).is_ok());
    }

    #[test]
    fn stale_baseline_config_is_rejected() {
        let base = sample();
        let mut fresh = sample();
        fresh.seed_online = 99;
        let err = check_regression(&fresh, &base, 5.0).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn smoke_run_is_deterministic_and_ordered() {
        let a = run();
        let b = run();
        assert_eq!(a, b, "simulated makespans must be run-invariant");
        assert!(
            a.pipelined_us <= a.overlapped_us && a.overlapped_us < a.serial_us,
            "parallel modes must beat serial: {a:?}"
        );
    }
}
