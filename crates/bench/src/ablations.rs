//! Ablations of Medusa's design choices (DESIGN.md §6).
//!
//! Each ablation isolates one mechanism and quantifies what the paper's
//! design buys over the strawman it replaced:
//!
//! 1. **Trace-based vs naive pointer matching** (§4.1, Fig. 6): how many
//!    graph pointer parameters a whole-history matcher would resolve to the
//!    wrong allocation — each one a latent data corruption.
//! 2. **Copy-free vs full-dump contents restoration** (§4.3): bytes that
//!    would have to be saved and transferred if every referenced buffer's
//!    contents were dumped, vs Medusa's permanent-only policy.
//! 3. **First-layer vs handwritten triggering-kernels** (§5.1/§5.2): the
//!    restore-stage latency of the two module-loading strategies.
//! 4. **Validation cost** (§4/§8): what the optional validation forwarding
//!    adds to a Medusa cold start.

use crate::common::{self, gpu, offline, run_cold, s};
use medusa::{
    analyze, count_naive_mismatches, run_offline_capture, ColdStart, ColdStartOptions, ParamSpec,
    Stage, Strategy, TriggeringMode,
};
use medusa_gpu::{SimStorage, TraceEvent};
use medusa_model::ModelSpec;
use std::collections::HashMap;

const ABLATION_MODELS: [&str; 2] = ["Qwen1.5-0.5B", "Qwen1.5-4B"];

/// Ablation 1: naive whole-history pointer matching vs trace-based (§4.1).
pub fn pointer_matching() {
    println!("### Ablation — trace-based vs naive pointer matching (paper §4.1, Fig. 6)\n");
    println!(
        "{:<14} {:>12} {:>14} {:>16}",
        "model", "ptr params", "reuse hazards", "naive mismatches"
    );
    for name in ABLATION_MODELS {
        let spec = ModelSpec::by_name(name).expect("catalog");
        let cap = run_offline_capture(&spec, gpu(), common::cost(), common::offline_seed(&spec))
            .expect("capture");
        let out = analyze(&cap, &common::cost()).expect("analysis");
        let naive = count_naive_mismatches(&cap);
        println!(
            "{:<14} {:>12} {:>14} {:>16}",
            name, out.state.stats.pointer_params, out.state.stats.multi_match_pointers, naive
        );
    }
    println!("\nevery naive mismatch is a pointer restored to the wrong buffer — a");
    println!("silent data corruption the trace-based matcher avoids.");
}

/// Ablation 2: copy-free vs full-dump buffer contents (§4.3).
pub fn copy_free() {
    println!("### Ablation — copy-free vs full-dump contents restoration (paper §4.3)\n");
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>14}",
        "model", "full dump", "copy-free", "ratio", "restore time"
    );
    for name in ABLATION_MODELS {
        let spec = ModelSpec::by_name(name).expect("catalog");
        let cap = run_offline_capture(&spec, gpu(), common::cost(), common::offline_seed(&spec))
            .expect("capture");
        let out = analyze(&cap, &common::cost()).expect("analysis");
        // Sizes of every allocation, from the trace.
        let mut sizes: HashMap<u64, u64> = HashMap::new();
        for ev in &cap.trace {
            if let TraceEvent::Alloc { seq, size, .. } | TraceEvent::DeviceAlloc { seq, size, .. } =
                ev
            {
                sizes.insert(*seq, *size);
            }
        }
        // Full dump: every buffer referenced by any graph parameter.
        let mut referenced: HashMap<u64, u64> = HashMap::new();
        for g in &out.state.graphs {
            for n in &g.nodes {
                for p in &n.params {
                    if let ParamSpec::IndirectPtr { alloc_seq, .. } = p {
                        referenced.insert(*alloc_seq, sizes[alloc_seq]);
                    }
                }
            }
        }
        let full_dump: u64 = referenced.values().sum();
        let copy_free: u64 = out
            .state
            .permanent_contents
            .iter()
            .map(|(seq, _)| sizes[seq])
            .sum();
        let cost = common::cost();
        let storage = SimStorage::from_cost_model(&cost);
        let restore_full = storage.pipelined_to_device(full_dump, cost.h2d_bandwidth, 1.0);
        println!(
            "{:<14} {:>11.2}GiB {:>11.1}KiB {:>11.0}x {:>13}s",
            name,
            full_dump as f64 / (1u64 << 30) as f64,
            copy_free as f64 / 1024.0,
            full_dump as f64 / copy_free.max(1) as f64,
            s(restore_full)
        );
    }
    println!("\ncopy-free skips model weights (reloaded anyway) and temporaries");
    println!("(self-managed by replay); only the 4-byte launch-magic pairs remain.");
}

/// Ablation 3: first-layer vs handwritten triggering-kernels (§5.1/§5.2).
pub fn triggering() {
    println!("### Ablation — first-layer vs handwritten triggering-kernels (paper §5)\n");
    println!(
        "{:<14} {:>16} {:>16}",
        "model", "first-layer", "handwritten"
    );
    for name in ABLATION_MODELS {
        let spec = ModelSpec::by_name(name).expect("catalog");
        let (artifact, _) = offline(&spec);
        let stage = |mode: TriggeringMode| {
            let opts = ColdStartOptions {
                seed: common::online_seed(&spec, Strategy::Medusa),
                warm_container: true,
                triggering: mode,
                ..Default::default()
            };
            let (_e, r) = ColdStart::new(&spec)
                .strategy(Strategy::Medusa)
                .gpu(gpu())
                .cost(common::cost())
                .options(opts)
                .artifact(&artifact)
                .run()
                .expect("cold start")
                .into_single();
            r.stage(Stage::Capture)
        };
        println!(
            "{:<14} {:>15}s {:>15}s",
            name,
            s(stage(TriggeringMode::FirstLayer)),
            s(stage(TriggeringMode::Handwritten))
        );
    }
    println!("\nthe handwritten list is faster (one launch per hidden module) but is");
    println!("manual maintenance per batch-size bucketing — why §5.2 adopted the");
    println!("first-layer strategy despite its extra per-batch warm-up/capture.");
}

/// Ablation 4: the cost of the validation forwarding (§4/§8).
pub fn validation_cost() {
    println!("### Ablation — validation forwarding cost (paper §4/§8)\n");
    println!(
        "{:<14} {:>14} {:>16} {:>10}",
        "model", "no validation", "with validation", "overhead"
    );
    for name in ABLATION_MODELS {
        let spec = ModelSpec::by_name(name).expect("catalog");
        let (artifact, _) = offline(&spec);
        let loading = |validate: bool| {
            let opts = ColdStartOptions {
                seed: common::online_seed(&spec, Strategy::Medusa) + u64::from(validate),
                warm_container: true,
                validate,
                ..Default::default()
            };
            let (_e, r) = ColdStart::new(&spec)
                .strategy(Strategy::Medusa)
                .gpu(gpu())
                .cost(common::cost())
                .options(opts)
                .artifact(&artifact)
                .run()
                .expect("cold start")
                .into_single();
            r.loading
        };
        let without = loading(false);
        let with = loading(true);
        println!(
            "{:<14} {:>13}s {:>15}s {:>9.2}x",
            name,
            s(without),
            s(with),
            with.as_secs_f64() / without.as_secs_f64()
        );
    }
    println!("\nvalidation replays every restored graph against an eager reference —");
    println!("worth paying on first deployment of an artifact, skippable after.");
}

/// Ablation 5: what a Medusa cold start costs per mechanism — restore the
/// same artifact with progressively fewer materialized pieces (KV only vs
/// full Medusa vs vanilla).
pub fn mechanism_breakdown() {
    println!("### Ablation — per-mechanism contribution to the loading-phase win\n");
    let spec = ModelSpec::by_name("Qwen1.5-4B").expect("catalog");
    let (artifact, _) = offline(&spec);
    let (_e, vanilla) = run_cold(Strategy::Vanilla, &spec, None, true);
    let (_e, asynch) = run_cold(Strategy::VanillaAsync, &spec, None, true);
    let (_e, medusa) = run_cold(Strategy::Medusa, &spec, Some(&artifact), true);
    println!("{:<44} {:>9}", "configuration", "loading");
    println!(
        "{:<44} {:>8}s",
        "vanilla vLLM (nothing materialized)",
        s(vanilla.loading)
    );
    println!(
        "{:<44} {:>8}s",
        "+ async weight loading only",
        s(asynch.loading)
    );
    println!(
        "{:<44} {:>8}s",
        "+ KV init + CUDA graph materialization (Medusa)",
        s(medusa.loading)
    );
    let kv_gain = vanilla.stage(Stage::KvCacheInit) - medusa.stage(Stage::KvCacheInit);
    let cap_gain = vanilla.stage(Stage::Capture) - medusa.stage(Stage::Capture);
    println!(
        "\nstage-level gains: kv init −{}s, capturing −{}s, overlap covers the rest",
        s(kv_gain),
        s(cap_gain)
    );
}

/// Extension experiment: bursty arrivals (the paper's §1 motivation: rates
/// "fluctuating by 10-20 times within a 30-second window") with serverless
/// keep-alive scale-down — cold starts recur at every burst front, so the
/// cold-start strategy shows up directly in the p99 TTFT.
pub fn bursty() {
    use medusa_serving::{simulate, ClusterConfig, PerfModel};
    use medusa_workload::{ArrivalPattern, TraceConfig};
    println!(
        "### Extension — bursty arrivals + keep-alive scale-down (paper §1 motivation)
"
    );
    let spec = ModelSpec::by_name("Qwen1.5-4B").expect("catalog");
    let (artifact, _) = offline(&spec);
    let cfg = ClusterConfig {
        keep_alive_s: 15.0,
        ..ClusterConfig::default()
    };
    let trace = TraceConfig::sharegpt(4.0, 300.0)
        .with_seed(7)
        .with_pattern(ArrivalPattern::sharegpt_bursty())
        .generate();
    println!(
        "trace: {} requests over 300s, 15x bursts on a 30s cycle, 15s keep-alive
",
        trace.len()
    );
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "strategy", "p99 TTFT", "mean TTFT", "cold starts"
    );
    for strategy in Strategy::ALL {
        let art = (strategy == Strategy::Medusa).then_some(&artifact);
        let perf = PerfModel::measure(
            strategy,
            &spec,
            gpu(),
            common::cost(),
            art,
            common::online_seed(&spec, strategy),
        )
        .expect("measure");
        let r = simulate(&perf, &cfg, &trace);
        println!(
            "{:<16} {:>9}s {:>9}s {:>12}",
            strategy.to_string(),
            s(r.ttft_quantile(0.99)),
            s(r.ttft_mean()),
            r.cold_starts.len()
        );
    }
    println!(
        "
with scale-down, every burst front pays a cold start — Medusa's faster"
    );
    println!("loading compounds across the whole trace, not just the first request.");
}

/// Related-work baseline (paper §9): full checkpoint/restore. A checkpoint
/// of a ready instance must persist the whole device state — weights,
/// workspace and crucially the multi-GB KV cache reservation — while Medusa
/// materializes only graphs + one profiled number.
pub fn checkpoint_baseline() {
    use medusa_gpu::SimStorage;
    println!(
        "### Baseline — full checkpoint/restore vs Medusa (paper §9)
"
    );
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>12}",
        "model", "ckpt size", "ckpt restore", "Medusa load", "artifact"
    );
    for name in ABLATION_MODELS {
        let spec = ModelSpec::by_name(name).expect("catalog");
        let (artifact, _) = offline(&spec);
        // A ready vanilla instance's device footprint = checkpoint size.
        let (engine, _) = run_cold(Strategy::Vanilla, &spec, None, true);
        let ckpt_bytes = engine.rt.memory().in_use();
        let cost = common::cost();
        let storage = SimStorage::from_cost_model(&cost);
        let restore = storage.pipelined_to_device(ckpt_bytes, cost.h2d_bandwidth, 1.0);
        let (_m, medusa) = run_cold(Strategy::Medusa, &spec, Some(&artifact), true);
        let artifact_kib = artifact.to_json().expect("encode").len() as f64 / 1024.0;
        println!(
            "{:<14} {:>11.1}GiB {:>13}s {:>13}s {:>9.0}KiB",
            name,
            ckpt_bytes as f64 / (1u64 << 30) as f64,
            s(restore),
            s(medusa.loading),
            artifact_kib
        );
    }
    println!(
        "
checkpoints must carry the KV cache reservation (most of the GPU), so"
    );
    println!("restore is storage-bound; Medusa's artifact is a few MiB of metadata and");
    println!("composes with weight loading instead of duplicating it (paper §9).");
}

/// Runs every ablation.
pub fn all() {
    pointer_matching();
    println!("\n{}\n", "-".repeat(72));
    copy_free();
    println!("\n{}\n", "-".repeat(72));
    triggering();
    println!("\n{}\n", "-".repeat(72));
    validation_cost();
    println!("\n{}\n", "-".repeat(72));
    mechanism_breakdown();
    println!("\n{}\n", "-".repeat(72));
    bursty();
    println!("\n{}\n", "-".repeat(72));
    checkpoint_baseline();
}
