//! # medusa-serving
//!
//! Discrete-event serverless serving cluster simulator for the Medusa
//! (ASPLOS'25) reproduction — the substrate behind the paper's application
//! trace experiments (Figures 10 and 11).
//!
//! Performance numbers come from *measured* runs of the real pipelines and
//! forward passes ([`PerfModel::measure`]); the simulator replays them at
//! queueing scale: Poisson arrivals, a global queue, reactive scale-up with
//! cold starts, iteration-level batched serving, and TTFT tail metrics.
//!
//! Above the per-instance simulator sits the fleet layer ([`cluster`]):
//! `N` simulated GPU workers, a pluggable [`Scheduler`] (round-robin,
//! least-loaded, cold-start-aware with §6 artifact-cache locality, and a
//! ServerlessLLM-style start-cost locality policy), and an autoscaler with
//! keep-alive, scale-to-zero, and backlog-triggered scale-up. The
//! [`predict`] module adds the proactive side: keep-alive/prewarm
//! estimators fed by per-model arrival history that start nodes *before*
//! a forecast burst, and [`ClusterSpec::pipeline_k`] shards one cold
//! start across several nodes pipeline-parallel (HydraServe/ParaServe
//! style), serving the first token when the first stage is live.
//!
//! ## Example
//!
//! ```rust,no_run
//! use medusa::Strategy;
//! use medusa_gpu::{CostModel, GpuSpec};
//! use medusa_model::ModelSpec;
//! use medusa_serving::{simulate, ClusterConfig, PerfModel};
//! use medusa_workload::TraceConfig;
//!
//! # fn main() -> Result<(), medusa::MedusaError> {
//! let spec = ModelSpec::by_name("Qwen1.5-4B").expect("catalog model");
//! let perf = PerfModel::measure(
//!     Strategy::Vanilla,
//!     &spec,
//!     GpuSpec::a100_40gb(),
//!     CostModel::default(),
//!     None,
//!     1,
//! )?;
//! let trace = TraceConfig::sharegpt(2.0, 60.0).with_seed(1).generate();
//! let result = simulate(&perf, &ClusterConfig::default(), &trace);
//! println!("p99 TTFT: {}", result.ttft_quantile(0.99));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod cluster;
pub mod event;
mod params;
pub mod predict;
pub mod scenarios;
mod sim;

pub use cluster::{
    simulate_fleet, simulate_fleet_traced, AutoscalerConfig, CacheCapacity, CacheConfig,
    CacheReport, ClusterFaults, ClusterReport, ClusterSpec, ColdStartAware, ContentAddressed,
    Decision, EvictionPolicy, FetchPlan, FetchPolicy, FetchUnit, FleetOutcome, FleetProfile,
    FleetStats, LeastLoaded, ModelCost, ModelManifest, NodeReport, NodeSpec, NodeState, NodeView,
    Policy, PrewarmReport, Registry, RegistryCatalog, RegistryMode, RegistryReport, RoundRobin,
    Scheduler, ServerlessLlmLocality, TenantReport, WholeArtifact,
};
// The pre-trait policy name stays re-exported for one release so
// downstream callers migrate on their own schedule.
#[allow(deprecated)]
pub use cluster::RegistryPolicy;
pub use event::{EventQueue, EventToken, FleetEvent};
pub use params::PerfModel;
pub use predict::{PrewarmConfig, PrewarmDecision, PrewarmEstimator, PrewarmPolicy};
pub use sim::{simulate, simulate_traced, ClusterConfig, SimResult};
