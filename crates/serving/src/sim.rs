//! Discrete-event serverless serving cluster simulator (paper §7.5).
//!
//! Models the paper's testbed: a pool of GPUs hosting serving instances of
//! one model, a warm container pool (runtime init eliminated — launching an
//! instance costs exactly the loading phase), a global request queue, and
//! reactive scale-up. Requests arrive per the workload trace; each instance
//! serves with iteration-level scheduling (one prefill or one batched
//! decode step per iteration) using the measured [`PerfModel`] durations.
//!
//! The metric of interest is the **time to first token** (TTFT): queueing
//! delay + any cold start the request waits behind + its prefill.

use crate::params::PerfModel;
use medusa_gpu::SimDuration;
use medusa_workload::Request;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of GPUs (each hosts at most one instance).
    pub gpus: usize,
    /// Maximum concurrently running sequences per instance.
    pub max_running: u32,
    /// Horizon after the last arrival at which the simulation stops, in
    /// seconds (drains stragglers).
    pub drain_s: f64,
    /// Keep-alive: an instance idle for this long is torn down, freeing its
    /// GPU (serverless scale-down — the reason cold starts recur under
    /// bursty load).
    pub keep_alive_s: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        // The paper's trace experiments use 4 × A100.
        ClusterConfig {
            gpus: 4,
            max_running: 32,
            drain_s: 600.0,
            keep_alive_s: 60.0,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-request TTFT, in arrival order of completion of the first token.
    pub ttfts: Vec<SimDuration>,
    /// Fully completed requests.
    pub completed: usize,
    /// Total requests in the trace.
    pub offered: usize,
    /// Instants instances finished cold starts.
    pub cold_starts: Vec<u64>,
    /// Time of the last completion (ns).
    pub makespan_ns: u64,
}

impl SimResult {
    /// The `q`-quantile of TTFT (e.g. 0.99), or zero when empty.
    pub fn ttft_quantile(&self, q: f64) -> SimDuration {
        if self.ttfts.is_empty() {
            return SimDuration::ZERO;
        }
        let mut v = self.ttfts.clone();
        v.sort_unstable();
        let idx = ((v.len() as f64 - 1.0) * q).round() as usize;
        v[idx]
    }

    /// Mean TTFT.
    pub fn ttft_mean(&self) -> SimDuration {
        if self.ttfts.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u64 = self.ttfts.iter().map(|d| d.as_nanos()).sum();
        SimDuration::from_nanos(sum / self.ttfts.len() as u64)
    }

    /// Achieved throughput in completed requests per second.
    pub fn throughput(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.makespan_ns as f64 / 1e9)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Arrival(usize),
    InstanceReady(usize),
    /// Kick an idle instance; ignored when it is mid-iteration.
    TryStart(usize),
    /// The instance's current iteration finished.
    IterationEnd(usize),
    /// Keep-alive expiry check.
    IdleCheck(usize),
}

#[derive(Debug)]
struct RunningSeq {
    remaining: u32,
    kv_reserved: u64,
}

#[derive(Debug, Default)]
struct Instance {
    ready: bool,
    busy: bool,
    retired: bool,
    pending: VecDeque<usize>,
    running: Vec<RunningSeq>,
    kv_tokens: u64,
    idle_since: Option<u64>,
}

impl Instance {
    fn load(&self) -> usize {
        self.pending.len() + self.running.len()
    }

    fn accepts(&self, max_running: u32) -> bool {
        self.ready && !self.retired && self.load() < max_running as usize
    }
}

/// Worst-case KV reservation of a request (prompt + all output tokens).
fn kv_need(r: &Request) -> u64 {
    r.prompt_tokens as u64 + r.output_tokens as u64
}

/// Simulates `trace` against a cluster serving with `perf`.
pub fn simulate(perf: &PerfModel, cluster: &ClusterConfig, trace: &[Request]) -> SimResult {
    simulate_traced(perf, cluster, trace, None)
}

/// [`simulate`] with an optional telemetry registry: per-request TTFT and
/// queueing-delay histograms (`serving_ttft_us`, `serving_queue_delay_us`),
/// plus cold-start / completion counters. All values are simulated event
/// times, so same-trace runs record identically.
pub fn simulate_traced(
    perf: &PerfModel,
    cluster: &ClusterConfig,
    trace: &[Request],
    tele: Option<&medusa_telemetry::Registry>,
) -> SimResult {
    let mut events: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |events: &mut BinaryHeap<Reverse<(u64, u64, Event)>>, t: u64, e: Event| {
        events.push(Reverse((t, seq, e)));
        seq += 1;
    };
    for (i, r) in trace.iter().enumerate() {
        push(&mut events, r.arrival_ns, Event::Arrival(i));
    }

    let horizon = trace.last().map_or(0, |r| r.arrival_ns) + (cluster.drain_s * 1e9) as u64;
    let mut instances: Vec<Instance> = Vec::new();
    let mut cold_starting = 0usize;
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut result = SimResult {
        ttfts: Vec::new(),
        completed: 0,
        offered: trace.len(),
        cold_starts: Vec::new(),
        makespan_ns: 0,
    };

    while let Some(Reverse((t, _, ev))) = events.pop() {
        if t > horizon {
            break;
        }
        match ev {
            Event::Arrival(r) => {
                queue.push_back(r);
                dispatch(
                    t,
                    perf,
                    cluster,
                    trace,
                    &mut instances,
                    &mut cold_starting,
                    &mut queue,
                    &mut events,
                    &mut seq,
                );
            }
            Event::InstanceReady(i) => {
                instances[i].ready = true;
                cold_starting -= 1;
                result.cold_starts.push(t);
                if let Some(tl) = tele {
                    tl.inc("serving_cold_starts_total", 1);
                }
                dispatch(
                    t,
                    perf,
                    cluster,
                    trace,
                    &mut instances,
                    &mut cold_starting,
                    &mut queue,
                    &mut events,
                    &mut seq,
                );
            }
            Event::TryStart(i) => {
                if instances[i].busy {
                    continue;
                }
                pull_queue(&mut instances[i], perf, cluster, trace, &mut queue);
                run_iteration(
                    t,
                    i,
                    perf,
                    trace,
                    cluster,
                    &mut instances,
                    &mut result,
                    &mut events,
                    &mut seq,
                    tele,
                );
            }
            Event::IterationEnd(i) => {
                instances[i].busy = false;
                pull_queue(&mut instances[i], perf, cluster, trace, &mut queue);
                run_iteration(
                    t,
                    i,
                    perf,
                    trace,
                    cluster,
                    &mut instances,
                    &mut result,
                    &mut events,
                    &mut seq,
                    tele,
                );
            }
            Event::IdleCheck(i) => {
                let inst = &mut instances[i];
                if !inst.retired
                    && !inst.busy
                    && inst.pending.is_empty()
                    && inst.running.is_empty()
                    && inst.idle_since.is_some_and(|since| {
                        t.saturating_sub(since) >= (cluster.keep_alive_s * 1e9) as u64
                    })
                {
                    // Keep-alive expired: tear the instance down, freeing
                    // its GPU for a future (cold-started) replacement.
                    inst.retired = true;
                    inst.ready = false;
                }
            }
        }
    }
    if let Some(tl) = tele {
        tl.inc("serving_requests_offered_total", result.offered as u64);
        tl.inc("serving_requests_completed_total", result.completed as u64);
        tl.gauge_max("serving_makespan_us", result.makespan_ns / 1_000);
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    t: u64,
    perf: &PerfModel,
    cluster: &ClusterConfig,
    trace: &[Request],
    instances: &mut Vec<Instance>,
    cold_starting: &mut usize,
    queue: &mut VecDeque<usize>,
    events: &mut BinaryHeap<Reverse<(u64, u64, Event)>>,
    seq: &mut u64,
) {
    // Hand queued requests to ready instances with spare capacity (both
    // batch slots and KV blocks).
    while let Some(&r) = queue.front() {
        let need = kv_need(&trace[r]);
        let target = instances
            .iter_mut()
            .enumerate()
            .filter(|(_, inst)| {
                inst.accepts(cluster.max_running)
                    && inst.kv_tokens + need <= perf.kv_capacity_tokens
            })
            .min_by_key(|(_, inst)| inst.load());
        match target {
            Some((i, inst)) => {
                inst.kv_tokens += need;
                inst.idle_since = None;
                inst.pending
                    .push_back(queue.pop_front().expect("checked front"));
                if !inst.busy {
                    events.push(Reverse((t, *seq, Event::TryStart(i))));
                    *seq += 1;
                }
            }
            None => break,
        }
    }
    // Reactive scale-up: unplaced work beyond what already-launching
    // instances will absorb, and spare GPUs → launch an instance (its cold
    // start is the loading phase; warm container pool, §7.5).
    let live = instances.iter().filter(|i| !i.retired).count();
    let mut live_now = live;
    while live_now < cluster.gpus && queue.len() > *cold_starting * cluster.max_running as usize {
        instances.push(Instance {
            ready: false,
            ..Instance::default()
        });
        *cold_starting += 1;
        live_now += 1;
        let ready_at = t + perf.loading.as_nanos();
        events.push(Reverse((
            ready_at,
            *seq,
            Event::InstanceReady(instances.len() - 1),
        )));
        *seq += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn run_iteration(
    t: u64,
    i: usize,
    perf: &PerfModel,
    trace: &[Request],
    cluster: &ClusterConfig,
    instances: &mut [Instance],
    result: &mut SimResult,
    events: &mut BinaryHeap<Reverse<(u64, u64, Event)>>,
    seq: &mut u64,
    tele: Option<&medusa_telemetry::Registry>,
) {
    let inst = &mut instances[i];
    if let Some(r) = inst.pending.pop_front() {
        // Prefill iteration: produces the request's first token.
        let dur = perf.prefill_duration(trace[r].prompt_tokens).as_nanos();
        let end = t + dur;
        result
            .ttfts
            .push(SimDuration::from_nanos(end - trace[r].arrival_ns));
        if let Some(tl) = tele {
            tl.observe_us("serving_ttft_us", (end - trace[r].arrival_ns) / 1_000);
            tl.observe_us("serving_queue_delay_us", (t - trace[r].arrival_ns) / 1_000);
        }
        if trace[r].output_tokens > 1 {
            inst.running.push(RunningSeq {
                remaining: trace[r].output_tokens - 1,
                kv_reserved: kv_need(&trace[r]),
            });
        } else {
            inst.kv_tokens = inst.kv_tokens.saturating_sub(kv_need(&trace[r]));
            result.completed += 1;
            result.makespan_ns = result.makespan_ns.max(end);
        }
        inst.busy = true;
        events.push(Reverse((end, *seq, Event::IterationEnd(i))));
        *seq += 1;
    } else if !inst.running.is_empty() {
        // Batched decode iteration.
        let dur = perf.decode_duration(inst.running.len() as u32).as_nanos();
        let end = t + dur;
        for s in &mut inst.running {
            s.remaining -= 1;
        }
        let before = inst.running.len();
        let released: u64 = inst
            .running
            .iter()
            .filter(|s| s.remaining == 0)
            .map(|s| s.kv_reserved)
            .sum();
        inst.running.retain(|s| s.remaining > 0);
        let finished = before - inst.running.len();
        if finished > 0 {
            inst.kv_tokens = inst.kv_tokens.saturating_sub(released);
            result.completed += finished;
            result.makespan_ns = result.makespan_ns.max(end);
        }
        inst.busy = true;
        events.push(Reverse((end, *seq, Event::IterationEnd(i))));
        *seq += 1;
    } else if inst.ready && !inst.retired {
        // Idle: start the keep-alive countdown.
        inst.idle_since = Some(t);
        let check_at = t + (cluster.keep_alive_s * 1e9) as u64;
        events.push(Reverse((check_at, *seq, Event::IdleCheck(i))));
        *seq += 1;
    }
}

fn pull_queue(
    inst: &mut Instance,
    perf: &PerfModel,
    cluster: &ClusterConfig,
    trace: &[Request],
    queue: &mut VecDeque<usize>,
) {
    if inst.retired {
        return;
    }
    while inst.load() < cluster.max_running as usize {
        match queue.front() {
            Some(&r) if inst.kv_tokens + kv_need(&trace[r]) <= perf.kv_capacity_tokens => {
                inst.kv_tokens += kv_need(&trace[r]);
                inst.idle_since = None;
                inst.pending
                    .push_back(queue.pop_front().expect("checked front"));
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medusa::Strategy;

    fn perf(loading_ms: u64) -> PerfModel {
        PerfModel::from_tables(
            Strategy::Vanilla,
            "toy",
            SimDuration::from_millis(loading_ms),
            vec![1, 8, 32],
            vec![
                SimDuration::from_millis(5),
                SimDuration::from_millis(6),
                SimDuration::from_millis(8),
            ],
            vec![
                (100, SimDuration::from_millis(20)),
                (200, SimDuration::from_millis(40)),
            ],
        )
    }

    fn req(id: u64, arrival_ms: u64, prompt: u32, output: u32) -> Request {
        Request {
            id,
            arrival_ns: arrival_ms * 1_000_000,
            prompt_tokens: prompt,
            output_tokens: output,
            model: 0,
        }
    }

    #[test]
    fn single_request_ttft_is_coldstart_plus_prefill() {
        let trace = vec![req(0, 0, 100, 3)];
        let r = simulate(&perf(1000), &ClusterConfig::default(), &trace);
        assert_eq!(r.ttfts.len(), 1);
        // 1000 ms cold start + 20 ms prefill.
        assert_eq!(r.ttfts[0], SimDuration::from_millis(1020));
        assert_eq!(r.completed, 1);
        // 2 more tokens → two decode steps of 5 ms.
        assert_eq!(r.makespan_ns, (1020 + 10) * 1_000_000);
        assert_eq!(r.cold_starts.len(), 1);
    }

    #[test]
    fn warm_instance_serves_second_request_without_cold_start() {
        let trace = vec![req(0, 0, 100, 1), req(1, 5000, 100, 1)];
        let r = simulate(&perf(1000), &ClusterConfig::default(), &trace);
        assert_eq!(r.ttfts.len(), 2);
        assert_eq!(r.ttfts[0], SimDuration::from_millis(1020));
        // Second arrives at 5 s: instance is warm and idle → just prefill.
        assert_eq!(r.ttfts[1], SimDuration::from_millis(20));
    }

    #[test]
    fn burst_triggers_scale_up_to_gpu_limit() {
        // 200 simultaneous long requests with capacity 32/instance.
        let trace: Vec<Request> = (0..200).map(|i| req(i, 0, 100, 50)).collect();
        let cfg = ClusterConfig {
            gpus: 4,
            max_running: 32,
            drain_s: 600.0,
            keep_alive_s: 60.0,
        };
        let r = simulate(&perf(500), &cfg, &trace);
        assert_eq!(
            r.cold_starts.len(),
            4,
            "scale-up must stop at the GPU count"
        );
        assert_eq!(r.completed, 200);
    }

    #[test]
    fn faster_cold_start_lowers_tail_ttft() {
        let trace: Vec<Request> = (0..120).map(|i| req(i, i * 30, 150, 40)).collect();
        let cfg = ClusterConfig::default();
        let slow = simulate(&perf(3000), &cfg, &trace);
        let fast = simulate(&perf(800), &cfg, &trace);
        assert!(
            fast.ttft_quantile(0.99) < slow.ttft_quantile(0.99),
            "p99 {} !< {}",
            fast.ttft_quantile(0.99),
            slow.ttft_quantile(0.99)
        );
        assert!(fast.ttft_mean() <= slow.ttft_mean());
    }

    #[test]
    fn decode_batching_shares_iterations() {
        // Two requests prefilled back to back then decoded as a batch.
        let trace = vec![req(0, 0, 100, 10), req(1, 0, 100, 10)];
        let r = simulate(&perf(100), &ClusterConfig::default(), &trace);
        assert_eq!(r.completed, 2);
        // Both decode in the same batch: 9 steps of batch-2 decode (6 ms)
        // after the second prefill. If decode were serialized per request
        // the makespan would be ~45 ms later.
        let expected_end = 100 + 20 + 20 + 9 * 6;
        assert_eq!(r.makespan_ns, expected_end * 1_000_000);
    }

    #[test]
    fn quantiles_are_monotone() {
        let trace: Vec<Request> = (0..50).map(|i| req(i, i * 100, 100, 5)).collect();
        let r = simulate(&perf(1000), &ClusterConfig::default(), &trace);
        assert!(r.ttft_quantile(0.5) <= r.ttft_quantile(0.9));
        assert!(r.ttft_quantile(0.9) <= r.ttft_quantile(0.99));
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn keep_alive_expiry_forces_a_second_cold_start() {
        // Two requests 30 s apart with a 10 s keep-alive: the instance
        // retires between them and the second pays a fresh cold start.
        let trace = vec![req(0, 0, 100, 1), req(1, 30_000, 100, 1)];
        let cfg = ClusterConfig {
            keep_alive_s: 10.0,
            ..ClusterConfig::default()
        };
        let r = simulate(&perf(1000), &cfg, &trace);
        assert_eq!(
            r.cold_starts.len(),
            2,
            "scale-down must force a second cold start"
        );
        assert_eq!(
            r.ttfts[1],
            SimDuration::from_millis(1020),
            "second request pays cold start"
        );
        // With a long keep-alive the instance survives the gap.
        let warm = simulate(&perf(1000), &ClusterConfig::default(), &trace);
        assert_eq!(warm.cold_starts.len(), 1);
        assert_eq!(warm.ttfts[1], SimDuration::from_millis(20));
    }

    #[test]
    fn kv_capacity_bounds_concurrent_admission() {
        // Each request needs 150 KV tokens; capacity 300 → two at a time
        // per instance, the rest queue or scale out.
        let p = perf(100).with_kv_capacity(300);
        let trace: Vec<Request> = (0..8).map(|i| req(i, 0, 100, 50)).collect();
        let cfg = ClusterConfig {
            gpus: 1,
            max_running: 32,
            drain_s: 600.0,
            keep_alive_s: 60.0,
        };
        let r = simulate(&p, &cfg, &trace);
        assert_eq!(r.completed, 8, "everything eventually completes");
        // With only 2 concurrent, the last admissions wait for releases:
        // TTFTs must spread out instead of all being ~cold+prefill.
        let spread =
            r.ttfts.iter().max().unwrap().as_nanos() - r.ttfts.iter().min().unwrap().as_nanos();
        assert!(
            spread > SimDuration::from_millis(200).as_nanos(),
            "admission must serialize"
        );
        // Unlimited capacity: everything admitted at once.
        let r2 = simulate(&perf(100), &cfg, &trace);
        assert!(
            r2.ttfts.iter().max().unwrap() < r.ttfts.iter().max().unwrap(),
            "kv pressure must raise tail TTFT"
        );
    }

    #[test]
    fn traced_simulation_records_ttft_and_cold_start_metrics() {
        let trace = vec![req(0, 0, 100, 3), req(1, 5000, 100, 1)];
        let tele = medusa_telemetry::Registry::new();
        let r = simulate_traced(&perf(1000), &ClusterConfig::default(), &trace, Some(&tele));
        let snap = tele.snapshot();
        assert_eq!(snap.counter("serving_cold_starts_total"), Some(1));
        assert_eq!(snap.counter("serving_requests_offered_total"), Some(2));
        assert_eq!(snap.counter("serving_requests_completed_total"), Some(2));
        let ttft = snap.histogram("serving_ttft_us").expect("ttft histogram");
        assert_eq!(ttft.count, 2);
        let expected_sum: u64 = r.ttfts.iter().map(|d| d.as_nanos() / 1_000).sum();
        assert_eq!(ttft.sum, expected_sum);
        let queue = snap
            .histogram("serving_queue_delay_us")
            .expect("queue histogram");
        // Request 0 waits out the cold start; request 1 hits a warm instance.
        assert_eq!(queue.count, 2);
        assert_eq!(queue.sum, 1_000_000);
    }

    #[test]
    fn empty_trace_is_handled() {
        let r = simulate(&perf(1000), &ClusterConfig::default(), &[]);
        assert_eq!(r.ttfts.len(), 0);
        assert_eq!(r.ttft_quantile(0.99), SimDuration::ZERO);
        assert_eq!(r.throughput(), 0.0);
    }
}
