//! The discrete-event core of the fleet simulator.
//!
//! [`EventQueue`] is a binary-heap priority queue keyed by
//! `(sim_time, seq)`: `sim_time` is the simulated nanosecond the event
//! fires at, `seq` is a monotonically increasing insertion ordinal. The
//! composite key gives the two determinism rules every simulation built on
//! this queue inherits:
//!
//! 1. **Events pop in non-decreasing timestamp order** — simulated time
//!    never runs backwards.
//! 2. **Same-timestamp events pop in insertion order** (FIFO) — ties are
//!    broken by `seq`, never by payload contents or heap internals, so a
//!    run's event interleaving is a pure function of *when things were
//!    scheduled*, not of how the heap happened to rebalance.
//!
//! Together these make same-seed runs byte-identical: the handlers see the
//! exact same event sequence every time.
//!
//! [`EventQueue::schedule`] returns an [`EventToken`] that
//! [`EventQueue::cancel`] consumes; a cancelled event **never fires** —
//! its payload is dropped immediately and its heap entry is skipped on
//! pop. This is how the fleet retracts keep-alive expiries when work
//! lands on an idle node, and retracts a crashed cold start's pending
//! stage completions.
//!
//! [`FleetEvent`] is the typed event taxonomy of the fleet layer
//! ([`crate::cluster`]): nodes, the scheduler, and the registry interact
//! *only* by scheduling these events against the shared queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for the queue's `u64` seq keys. Seqs are dense
/// monotone counters, so a single Fibonacci multiply mixes them plenty —
/// and at millions of events per run, SipHash on every schedule/pop is
/// measurable wall-clock.
#[derive(Debug, Default)]
pub struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; this path exists for trait
        // completeness.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type SeqMap<E> = HashMap<u64, E, BuildHasherDefault<SeqHasher>>;

/// Handle to one scheduled event, used to cancel it before it fires.
///
/// Tokens are unique per [`EventQueue`] for its whole lifetime (they wrap
/// the event's insertion `seq`), so a stale token can never cancel a
/// different, later event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

/// Deterministic discrete-event priority queue keyed by `(sim_time, seq)`.
///
/// See the [module docs](self) for the two ordering rules. `E` is the
/// event payload type; the queue imposes no trait bounds on it beyond the
/// implicit `Sized`.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Min-heap over `(fire_time_ns, seq)`.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Payloads of *pending* events by `seq`; cancellation removes the
    /// payload, leaving a tombstone key in the heap that `pop` skips.
    payloads: SeqMap<E>,
    next_seq: u64,
    scheduled: u64,
    cancelled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: SeqMap::default(),
            next_seq: 0,
            scheduled: 0,
            cancelled: 0,
        }
    }

    /// Schedules `event` to fire at simulated nanosecond `t_ns` and
    /// returns its cancellation token. Events scheduled at the same
    /// `t_ns` fire in the order they were scheduled.
    pub fn schedule(&mut self, t_ns: u64, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse((t_ns, seq)));
        self.payloads.insert(seq, event);
        EventToken(seq)
    }

    /// Cancels a pending event so it never fires. Returns `true` if the
    /// event was still pending (and is now retracted), `false` if it had
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let retracted = self.payloads.remove(&token.0).is_some();
        if retracted {
            self.cancelled += 1;
        }
        retracted
    }

    /// Pops the next event as `(fire_time_ns, event)`, skipping cancelled
    /// entries. Returns `None` when no pending events remain.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        while let Some(Reverse((t, seq))) = self.heap.pop() {
            if let Some(event) = self.payloads.remove(&seq) {
                return Some((t, event));
            }
            // Tombstone of a cancelled event: skip.
        }
        None
    }

    /// Fire time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<u64> {
        while let Some(&Reverse((t, seq))) = self.heap.peek() {
            if self.payloads.contains_key(&seq) {
                return Some(t);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (scheduled, not yet fired or cancelled) events.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled
    }

    /// Total events cancelled before firing.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled
    }
}

/// The fleet simulator's typed event taxonomy. Every state transition in
/// [`crate::cluster`] is driven by exactly one of these firing; handlers
/// communicate only by scheduling further events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// Request `req` (a trace index) arrives at the global queue.
    Arrival {
        /// Trace index of the arriving request.
        req: usize,
    },
    /// Node `node` should re-examine its run queue and start an iteration
    /// if it is warm and not already iterating.
    Route {
        /// Node index.
        node: usize,
    },
    /// The registry fetch stage of node `node`'s in-flight cold start
    /// completed (Medusa cache-miss starts only); the restore stage is
    /// already on the queue. Carries the start's epoch: a crash bumps the
    /// node epoch, making this event stale.
    RegistryFetchDone {
        /// Node index.
        node: usize,
        /// Cold-start epoch the fetch belongs to.
        epoch: u32,
    },
    /// The final (restore) stage of node `node`'s cold start completed —
    /// the node is ready to serve. Same epoch staleness guard as
    /// [`FleetEvent::RegistryFetchDone`].
    ColdStartStageDone {
        /// Node index.
        node: usize,
        /// Cold-start epoch the stage belongs to.
        epoch: u32,
    },
    /// Node `node`'s keep-alive countdown ran out; if still armed (the
    /// token is cancelled whenever work lands on the node) the node scales
    /// to zero.
    KeepAliveExpiry {
        /// Node index.
        node: usize,
    },
    /// Node `node` crashes mid-cold-start (same epoch guard as the stage
    /// events).
    NodeCrash {
        /// Node index.
        node: usize,
        /// Cold-start epoch the crash belongs to.
        epoch: u32,
    },
    /// Autoscaler evaluation: either the periodic backlog tick (only
    /// scheduled when [`crate::AutoscalerConfig::eval_interval_s`] is
    /// set) or a predictive prewarm the estimator scheduled ahead of a
    /// forecast arrival (only when [`crate::ClusterSpec::prewarm`] is
    /// set — both knobs default off, keeping the event schedule
    /// byte-identical).
    ScaleDecision {
        /// `Some(model)`: prewarm that model's cold start if it has no
        /// live node. `None`: the plain periodic backlog re-evaluation.
        prewarm: Option<u32>,
    },
    /// A helper node of a pipeline-parallel cold start finished restoring
    /// its contiguous MAF2 shard range and hands its output to the head;
    /// the helper then releases back to cold. Same epoch staleness guard
    /// as [`FleetEvent::ColdStartStageDone`] (a crash of any pipeline
    /// participant bumps epochs and retracts these via their tokens).
    PipelineShardDone {
        /// Helper node index.
        node: usize,
        /// Head node the shard streams to.
        head: usize,
        /// Cold-start epoch (of the helper) the shard belongs to.
        epoch: u32,
    },
    /// Node `node` finished a serving iteration (prefill or batched decode
    /// step).
    IterationDone {
        /// Node index.
        node: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_timestamp_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_timestamp_pops_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(7, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut q = EventQueue::new();
        let keep = q.schedule(10, "keep");
        let drop_ = q.schedule(10, "drop");
        assert!(q.cancel(drop_));
        assert!(!q.cancel(drop_), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((10, "keep")));
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(keep), "already fired");
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
    }

    #[test]
    fn peek_time_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let head = q.schedule(5, "head");
        q.schedule(9, "tail");
        q.cancel(head);
        assert_eq!(q.peek_time(), Some(9));
        assert_eq!(q.pop(), Some((9, "tail")));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn distinct_time_insertion_order_is_irrelevant() {
        // Two schedules of the same (time, payload) set in different
        // insertion orders pop identically when all times are distinct.
        let times = [40u64, 10, 30, 20, 50];
        let mut fwd = EventQueue::new();
        for &t in &times {
            fwd.schedule(t, t);
        }
        let mut rev = EventQueue::new();
        for &t in times.iter().rev() {
            rev.schedule(t, t);
        }
        let drain = |q: &mut EventQueue<u64>| {
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push(e);
            }
            out
        };
        assert_eq!(drain(&mut fwd), drain(&mut rev));
    }
}
