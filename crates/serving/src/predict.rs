//! Predictive keep-alive / prewarm estimation.
//!
//! Medusa (§6) shrinks each cold start; this module goes after the cold
//! starts that need not happen at all. A [`PrewarmEstimator`] watches the
//! per-model arrival stream and predicts when the *next* request of a
//! model will land, so the fleet can begin that model's cold start
//! **before** the burst arrives — the dslab-faas family of keep-alive
//! policies, rebuilt on this repo's deterministic event core:
//!
//! * [`PrewarmPolicy::Histogram`] — a log₂-bucketed histogram of observed
//!   inter-arrival gaps per model. The predicted next gap is a configured
//!   percentile of that distribution; a high percentile (the default
//!   800‰) targets the *inter-burst* gap of bursty traffic, which is
//!   exactly the gap across which keep-alive expires and reactive fleets
//!   pay a cold start.
//! * [`PrewarmPolicy::WindowedRate`] — the mean arrival rate over a
//!   sliding window; the predicted next gap is its reciprocal. Cheaper,
//!   memoryless, good for smooth traffic.
//!
//! A decision fires `lead_s` before the predicted arrival (the lead should
//! roughly cover the cold-start makespan) and is **clamped to now** —
//! [`PrewarmEstimator::observe`] never returns an instant in the past, a
//! property the proptest suite pins. All state is integer arithmetic over
//! simulated nanoseconds plus a `splitmix64`-derived deterministic jitter,
//! so the same seed and the same arrival stream produce byte-identical
//! decision logs.
//!
//! The estimator is deliberately simulator-agnostic: the fleet layer
//! ([`crate::cluster`]) feeds it from `Arrival` events and turns its
//! decisions into prewarm-tagged `ScaleDecision` events, while offline
//! studies can replay a [`medusa_workload::ArrivalHistory`] export into
//! [`PrewarmEstimator::seed_history`] and inspect the decisions directly.

use medusa_workload::ArrivalHistory;
use serde::Serialize;
use std::collections::BTreeMap;

/// Inter-arrival histogram bucket count: log₂ of the gap in nanoseconds
/// saturates at `2^63` ns (~292 years), far beyond any simulated horizon.
const HIST_BUCKETS: usize = 64;

/// Default prediction percentile, per-mille (the 80th percentile of the
/// observed inter-arrival distribution).
pub const DEFAULT_PERCENTILE_PM: u32 = 800;

/// Default sliding-window width for [`PrewarmPolicy::WindowedRate`].
pub const DEFAULT_WINDOW_S: f64 = 60.0;

/// Which estimator drives prewarm decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrewarmPolicy {
    /// Per-model log₂ histogram of inter-arrival gaps; predicts the next
    /// gap as the `percentile_pm` per-mille percentile of the observed
    /// distribution (the matched bucket's largest *observed* gap, so the
    /// prediction never overshoots the data — overshooting would fire the
    /// prewarm after the arrival it was meant to beat, while undershooting
    /// only costs a little extra keep-alive).
    Histogram {
        /// Prediction percentile, per-mille (0..=1000).
        percentile_pm: u32,
    },
    /// Mean arrival rate over a sliding window of `window_s` seconds;
    /// predicts the next gap as `window / arrivals_in_window`.
    WindowedRate {
        /// Sliding-window width, seconds.
        window_s: f64,
    },
}

impl PrewarmPolicy {
    /// Stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            PrewarmPolicy::Histogram { .. } => "histogram",
            PrewarmPolicy::WindowedRate { .. } => "windowed-rate",
        }
    }

    /// Parses a CLI policy name with default knobs.
    pub fn parse(s: &str) -> Option<PrewarmPolicy> {
        match s {
            "histogram" => Some(PrewarmPolicy::Histogram {
                percentile_pm: DEFAULT_PERCENTILE_PM,
            }),
            "windowed-rate" => Some(PrewarmPolicy::WindowedRate {
                window_s: DEFAULT_WINDOW_S,
            }),
            _ => None,
        }
    }
}

/// Prewarm estimator configuration, embedded (opt-in) in
/// [`crate::ClusterSpec::prewarm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrewarmConfig {
    /// The estimator policy.
    pub policy: PrewarmPolicy,
    /// Lead subtracted from the predicted arrival, seconds — set it to
    /// roughly the cold-start makespan so the node is warm when the
    /// predicted request lands.
    pub lead_s: f64,
}

impl Default for PrewarmConfig {
    fn default() -> Self {
        PrewarmConfig {
            policy: PrewarmPolicy::Histogram {
                percentile_pm: DEFAULT_PERCENTILE_PM,
            },
            lead_s: 1.0,
        }
    }
}

/// One prewarm decision: begin `model`'s cold start at simulated
/// nanosecond `t_ns` (always ≥ the observation instant that produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PrewarmDecision {
    /// Fire instant, simulated ns.
    pub t_ns: u64,
    /// Model to prewarm.
    pub model: u32,
}

/// Per-model estimator state.
#[derive(Debug, Clone)]
struct ModelState {
    /// Last observed arrival, ns.
    last_arrival: Option<u64>,
    /// log₂-bucketed inter-arrival histogram (Histogram policy).
    hist: [u64; HIST_BUCKETS],
    /// Largest observed gap per bucket — the value a percentile match
    /// predicts (exact for periodic traffic, never above the data).
    hist_max: [u64; HIST_BUCKETS],
    /// Total gaps recorded in `hist`.
    samples: u64,
    /// Recent arrivals inside the sliding window (WindowedRate policy).
    window: std::collections::VecDeque<u64>,
}

impl ModelState {
    fn new() -> Self {
        ModelState {
            last_arrival: None,
            hist: [0; HIST_BUCKETS],
            hist_max: [0; HIST_BUCKETS],
            samples: 0,
            window: std::collections::VecDeque::new(),
        }
    }
}

/// splitmix64 — the estimator's deterministic jitter hash (same mixer the
/// fleet's fault injection uses).
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The keep-alive/prewarm estimator: per-model arrival statistics plus a
/// deterministic decision rule. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct PrewarmEstimator {
    config: PrewarmConfig,
    seed: u64,
    models: BTreeMap<u32, ModelState>,
}

impl PrewarmEstimator {
    /// Builds an estimator. `seed` only drives the sub-millisecond
    /// decision jitter (which de-synchronizes fleets that share a trace),
    /// never the statistics.
    pub fn new(config: PrewarmConfig, seed: u64) -> Self {
        PrewarmEstimator {
            config,
            seed,
            models: BTreeMap::new(),
        }
    }

    /// The estimator's configuration.
    pub fn config(&self) -> PrewarmConfig {
        self.config
    }

    /// Warm-starts the per-model statistics from an exported arrival
    /// history **without** emitting decisions — offline replay of a prior
    /// trace so the first live arrivals already predict well.
    pub fn seed_history(&mut self, history: &ArrivalHistory) {
        for (&model, arrivals) in &history.per_model {
            for &t in arrivals {
                self.record(t, model);
            }
        }
    }

    /// Records one arrival into `model`'s statistics (no decision).
    fn record(&mut self, now_ns: u64, model: u32) {
        let window_ns = match self.config.policy {
            PrewarmPolicy::WindowedRate { window_s } => (window_s * 1e9) as u64,
            PrewarmPolicy::Histogram { .. } => 0,
        };
        let state = self.models.entry(model).or_insert_with(ModelState::new);
        if let Some(prev) = state.last_arrival {
            let gap = now_ns.saturating_sub(prev);
            let bucket = (64 - gap.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
            state.hist[bucket] += 1;
            state.hist_max[bucket] = state.hist_max[bucket].max(gap.max(1));
            state.samples += 1;
        }
        state.last_arrival = Some(now_ns);
        if window_ns > 0 {
            state.window.push_back(now_ns);
            while state
                .window
                .front()
                .is_some_and(|&t| now_ns.saturating_sub(t) > window_ns)
            {
                state.window.pop_front();
            }
        }
    }

    /// Predicted gap to `model`'s next arrival, ns; `None` until the
    /// statistics carry at least one full gap.
    fn predict_gap(&self, now_ns: u64, model: u32) -> Option<u64> {
        let state = self.models.get(&model)?;
        match self.config.policy {
            PrewarmPolicy::Histogram { percentile_pm } => {
                if state.samples == 0 {
                    return None;
                }
                // Nearest-rank percentile over the bucketed distribution;
                // the predicted gap is the matched bucket's largest
                // *observed* gap — exact for periodic traffic, and never
                // later than the data (a prewarm that fires after the
                // arrival it targets is pure waste, while firing early
                // only costs a slice of keep-alive).
                let rank = (state.samples * percentile_pm.min(1000) as u64).div_ceil(1000);
                let mut seen = 0u64;
                for (bucket, &count) in state.hist.iter().enumerate() {
                    seen += count;
                    if count > 0 && seen >= rank.max(1) {
                        return Some(state.hist_max[bucket]);
                    }
                }
                None
            }
            PrewarmPolicy::WindowedRate { window_s } => {
                let in_window = state
                    .window
                    .iter()
                    .filter(|&&t| now_ns.saturating_sub(t) <= (window_s * 1e9) as u64)
                    .count() as u64;
                if in_window < 2 {
                    return None;
                }
                Some(((window_s * 1e9) as u64) / in_window)
            }
        }
    }

    /// Feeds one arrival and returns the prewarm decision it triggers, if
    /// any (none until the statistics carry at least one gap). Every
    /// decision re-anchors on the newest arrival — stale predictions from
    /// before a burst are simply superseded, and a decision that fires
    /// while the model is already live is a no-op on the consumer side.
    /// The returned fire instant is **never earlier than `now_ns`**:
    /// predictions that would already have fired clamp to now.
    pub fn observe(&mut self, now_ns: u64, model: u32) -> Option<PrewarmDecision> {
        self.record(now_ns, model);
        let gap = self.predict_gap(now_ns, model)?;
        let lead_ns = (self.config.lead_s * 1e9) as u64;
        // Deterministic sub-millisecond jitter keyed by (seed, model,
        // arrival): de-synchronizes same-trace fleets without host
        // randomness.
        let jitter = mix(self.seed ^ ((model as u64) << 32) ^ now_ns) % 1_000_000;
        let fire = now_ns
            .saturating_add(gap)
            .saturating_sub(lead_ns)
            .max(now_ns)
            + jitter;
        Some(PrewarmDecision { t_ns: fire, model })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_cfg(percentile_pm: u32, lead_s: f64) -> PrewarmConfig {
        PrewarmConfig {
            policy: PrewarmPolicy::Histogram { percentile_pm },
            lead_s,
        }
    }

    #[test]
    fn no_decision_before_two_arrivals() {
        let mut est = PrewarmEstimator::new(hist_cfg(800, 0.0), 1);
        assert_eq!(est.observe(1_000, 0), None, "one arrival carries no gap");
        assert!(est.observe(2_000, 0).is_some());
    }

    #[test]
    fn histogram_targets_the_large_gap_of_bursty_arrivals() {
        // Bursts of 5 requests 1 ms apart, bursts 10 s apart: the 80th
        // percentile gap is the within-burst millisecond until the first
        // inter-burst gap lands, then a high percentile spans the burst
        // period.
        let mut est = PrewarmEstimator::new(hist_cfg(900, 0.0), 7);
        let mut last = None;
        for burst in 0..3u64 {
            for i in 0..5u64 {
                let t = burst * 10_000_000_000 + i * 1_000_000;
                last = est.observe(t, 0);
            }
        }
        let d = last.expect("statistics are warm");
        // The predicted gap must be in the inter-burst decade (2^33 ns
        // ≈ 8.6 s ≤ gap < 2^34 ns ≈ 17.2 s), not the within-burst one.
        let now = 2 * 10_000_000_000 + 4 * 1_000_000;
        assert!(
            d.t_ns - now >= (1u64 << 33),
            "predicted gap {} ns is within-burst",
            d.t_ns - now
        );
    }

    #[test]
    fn decisions_never_fire_in_the_past() {
        let mut est = PrewarmEstimator::new(hist_cfg(100, 1_000.0), 3);
        // A huge lead would push the fire time far before now; it must
        // clamp.
        for t in [0u64, 5_000, 10_000, 15_000] {
            if let Some(d) = est.observe(t, 2) {
                assert!(d.t_ns >= t);
            }
        }
    }

    #[test]
    fn decisions_re_anchor_on_the_newest_arrival() {
        // Steady 10 s gaps: each decision predicts from its own arrival,
        // so fire instants advance monotonically with the stream and a
        // pre-burst prediction can never pin the estimator to the past.
        let mut est = PrewarmEstimator::new(hist_cfg(900, 0.0), 9);
        let mut prev_fire = 0u64;
        for i in 0..5u64 {
            if let Some(d) = est.observe(i * 10_000_000_000, 0) {
                assert!(d.t_ns > prev_fire);
                prev_fire = d.t_ns;
            }
        }
        assert!(prev_fire > 0, "steady stream must decide");
    }

    #[test]
    fn windowed_rate_predicts_reciprocal_rate() {
        let cfg = PrewarmConfig {
            policy: PrewarmPolicy::WindowedRate { window_s: 10.0 },
            lead_s: 0.0,
        };
        let mut est = PrewarmEstimator::new(cfg, 4);
        // 5 arrivals inside the 10 s window => gap ~ 2 s.
        let mut last = None;
        for i in 0..5u64 {
            last = est.observe(i * 1_000_000_000, 1);
        }
        let d = last.expect("window is warm");
        let now = 4 * 1_000_000_000u64;
        let gap = d.t_ns - now;
        assert!(
            (1_900_000_000..=2_101_000_000).contains(&gap),
            "gap {gap} ns should be ~2 s"
        );
    }

    #[test]
    fn same_seed_same_stream_is_byte_identical() {
        let run = || {
            let mut est = PrewarmEstimator::new(hist_cfg(800, 0.5), 42);
            let mut log = Vec::new();
            for i in 0..50u64 {
                let t = i * 777_000_000 + (i % 7) * 13_000_000;
                if let Some(d) = est.observe(t, (i % 3) as u32) {
                    log.push(d);
                }
            }
            serde_json::to_string(&log).expect("plain structs encode")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seeded_history_predicts_from_the_first_live_arrival() {
        let mut hist = ArrivalHistory::default();
        hist.per_model
            .insert(5, (0..10).map(|i| i * 2_000_000_000).collect());
        let mut cold = PrewarmEstimator::new(hist_cfg(800, 0.0), 11);
        let mut warm = PrewarmEstimator::new(hist_cfg(800, 0.0), 11);
        warm.seed_history(&hist);
        assert!(cold.observe(100_000_000_000, 5).is_none());
        assert!(warm.observe(100_000_000_000, 5).is_some());
    }

    #[test]
    fn parse_names_round_trip() {
        for name in ["histogram", "windowed-rate"] {
            assert_eq!(PrewarmPolicy::parse(name).unwrap().name(), name);
        }
        assert_eq!(PrewarmPolicy::parse("nope"), None);
    }
}
