//! Measured per-strategy performance models.
//!
//! The cluster simulator needs three numbers per `<model, strategy>`:
//! cold-start loading duration, decode-step duration per batch size, and
//! prefill duration per prompt length. All three are **measured** by
//! running the real pipelines and forward passes on the simulated stack —
//! the simulator then replays them at queueing scale without re-executing
//! tens of millions of kernel digests.

use medusa::{ColdStart, ColdStartOptions, MaterializedState, MedusaResult, Strategy};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;
use serde::{Deserialize, Serialize};

/// Prompt lengths at which prefill is measured; queries interpolate.
const PREFILL_POINTS: [u32; 9] = [16, 32, 64, 128, 161, 256, 512, 1024, 2048];

/// The measured serving performance of one `<model, strategy>` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Strategy the measurements belong to.
    pub strategy: Strategy,
    /// Model name.
    pub model: String,
    /// Loading-phase duration of a (warm-container) cold start.
    pub loading: SimDuration,
    /// Batch sizes of the decode table, ascending.
    pub decode_batches: Vec<u32>,
    /// Decode-step duration per table batch size.
    pub decode: Vec<SimDuration>,
    /// `(tokens, duration)` prefill measurements, ascending tokens.
    pub prefill: Vec<(u32, SimDuration)>,
    /// KV cache capacity in tokens (bounds concurrent context).
    pub kv_capacity_tokens: u64,
}

impl PerfModel {
    /// Builds a performance model from explicit tables (tests/analysis).
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched tables.
    pub fn from_tables(
        strategy: Strategy,
        model: impl Into<String>,
        loading: SimDuration,
        decode_batches: Vec<u32>,
        decode: Vec<SimDuration>,
        prefill: Vec<(u32, SimDuration)>,
    ) -> Self {
        assert!(!decode_batches.is_empty() && decode_batches.len() == decode.len());
        assert!(!prefill.is_empty());
        assert!(decode_batches.windows(2).all(|w| w[0] < w[1]));
        assert!(prefill.windows(2).all(|w| w[0].0 < w[1].0));
        PerfModel {
            strategy,
            model: model.into(),
            loading,
            decode_batches,
            decode,
            prefill,
            kv_capacity_tokens: u64::MAX,
        }
    }

    /// Sets the KV capacity (builder style; tests).
    pub fn with_kv_capacity(mut self, tokens: u64) -> Self {
        self.kv_capacity_tokens = tokens;
        self
    }

    /// Measures a performance model by running a real cold start and timing
    /// real forward passes on the resulting engine.
    ///
    /// Cold starts run with the default [`ColdStartOptions`], i.e. the
    /// overlapped parallel cold-start engine — the cluster simulator
    /// automatically sees the faster (dependency-graph-scheduled) loading
    /// times rather than the serial linear sum.
    ///
    /// # Errors
    ///
    /// Propagates cold-start and forwarding errors.
    pub fn measure(
        strategy: Strategy,
        spec: &ModelSpec,
        gpu: GpuSpec,
        cost: CostModel,
        artifact: Option<&MaterializedState>,
        seed: u64,
    ) -> MedusaResult<Self> {
        let opts = ColdStartOptions {
            seed,
            warm_container: true,
            ..Default::default()
        };
        let mut builder = ColdStart::new(spec)
            .strategy(strategy)
            .gpu(gpu)
            .cost(cost)
            .options(opts);
        if let Some(a) = artifact {
            builder = builder.artifact(a);
        }
        let (mut engine, report) = builder.run()?.into_single();
        let decode_batches = ModelSpec::capture_batch_sizes();
        // Warm each batch bucket once: the first eager decode of a bucket
        // pays one-time GEMM module loads, and the table should reflect
        // steady-state serving.
        for b in [1, 8, 64, 256] {
            engine.decode_step(b)?;
        }
        let mut decode = Vec::with_capacity(decode_batches.len());
        for &b in &decode_batches {
            decode.push(engine.decode_step(b)?);
        }
        let mut prefill = Vec::with_capacity(PREFILL_POINTS.len());
        for &tokens in &PREFILL_POINTS {
            prefill.push((tokens, engine.prefill(1, tokens)?));
        }
        Ok(PerfModel {
            strategy,
            model: spec.name().to_string(),
            loading: report.loading,
            decode_batches,
            decode,
            prefill,
            kv_capacity_tokens: engine.kv.capacity_tokens(),
        })
    }

    /// Decode-step duration at `batch` (rounded up to the next table entry;
    /// clamped to the largest).
    pub fn decode_duration(&self, batch: u32) -> SimDuration {
        let idx = self
            .decode_batches
            .iter()
            .position(|&b| b >= batch)
            .unwrap_or(self.decode_batches.len() - 1);
        self.decode[idx]
    }

    /// Prefill duration for a `tokens`-token prompt (piecewise-linear
    /// interpolation; linear extrapolation past the last point).
    pub fn prefill_duration(&self, tokens: u32) -> SimDuration {
        let pts = &self.prefill;
        if tokens <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if tokens <= x1 {
                let f = (tokens - x0) as f64 / (x1 - x0) as f64;
                let ns = y0.as_nanos() as f64 + f * (y1.as_nanos() as f64 - y0.as_nanos() as f64);
                return SimDuration::from_nanos(ns as u64);
            }
        }
        // Extrapolate from the last segment's slope.
        let (&(x0, y0), &(x1, y1)) = (&pts[pts.len() - 2], &pts[pts.len() - 1]);
        let slope = (y1.as_nanos() as f64 - y0.as_nanos() as f64) / (x1 - x0) as f64;
        SimDuration::from_nanos((y1.as_nanos() as f64 + slope * (tokens - x1) as f64) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> PerfModel {
        PerfModel::from_tables(
            Strategy::Vanilla,
            "toy",
            SimDuration::from_millis(1000),
            vec![1, 2, 4, 8],
            vec![
                SimDuration::from_millis(3),
                SimDuration::from_millis(4),
                SimDuration::from_millis(5),
                SimDuration::from_millis(6),
            ],
            vec![
                (100, SimDuration::from_millis(10)),
                (200, SimDuration::from_millis(20)),
            ],
        )
    }

    #[test]
    fn measure_uses_the_overlapped_cold_start_engine() {
        use medusa::Parallelism;
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model");
        let perf = PerfModel::measure(
            Strategy::VanillaAsync,
            &spec,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            77,
        )
        .expect("measure");
        let loading_with = |parallelism| {
            let opts = ColdStartOptions {
                seed: 77,
                warm_container: true,
                parallelism,
                ..Default::default()
            };
            let outcome = medusa::ColdStart::new(&spec)
                .strategy(Strategy::VanillaAsync)
                .options(opts)
                .run()
                .expect("cold start");
            outcome.report().loading
        };
        // The default options run the overlapped engine, so the simulator's
        // loading time is the scheduled makespan, not the serial sum.
        assert_eq!(perf.loading, loading_with(Parallelism::Overlapped));
        assert!(perf.loading < loading_with(Parallelism::Serial));
    }

    #[test]
    fn decode_rounds_up_and_clamps() {
        let p = synthetic();
        assert_eq!(p.decode_duration(1), SimDuration::from_millis(3));
        assert_eq!(p.decode_duration(3), SimDuration::from_millis(5));
        assert_eq!(p.decode_duration(8), SimDuration::from_millis(6));
        assert_eq!(
            p.decode_duration(99),
            SimDuration::from_millis(6),
            "clamped"
        );
    }

    #[test]
    fn prefill_interpolates_and_extrapolates() {
        let p = synthetic();
        assert_eq!(p.prefill_duration(50), SimDuration::from_millis(10));
        assert_eq!(p.prefill_duration(150), SimDuration::from_millis(15));
        assert_eq!(p.prefill_duration(300), SimDuration::from_millis(30));
    }

    #[test]
    fn measured_models_preserve_strategy_ordering() {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let (artifact, _) =
            medusa::materialize_offline(&spec, GpuSpec::a100_40gb(), CostModel::default(), 61)
                .unwrap();
        let measure = |s: Strategy, art: Option<&MaterializedState>| {
            PerfModel::measure(
                s,
                &spec,
                GpuSpec::a100_40gb(),
                CostModel::default(),
                art,
                62,
            )
            .unwrap()
        };
        let vanilla = measure(Strategy::Vanilla, None);
        let nograph = measure(Strategy::NoCudaGraph, None);
        let medusa = measure(Strategy::Medusa, Some(&artifact));
        // Loading: Medusa and NoCudaGraph both beat vanilla (Fig. 7 / §7.5).
        // (For this smallest model NoCudaGraph's loading can undercut
        // Medusa's — its penalty is eager serving, covered below; on the
        // trace-experiment models Medusa also wins end-to-end, see the
        // fig10 harness.)
        assert!(medusa.loading < vanilla.loading);
        assert!(nograph.loading < vanilla.loading);
        // Decoding: graph strategies beat eager (Fig. 3).
        assert!(medusa.decode_duration(1) < nograph.decode_duration(1));
        assert_eq!(vanilla.decode_duration(1), vanilla.decode[0]);
        // Medusa's restored graphs decode exactly as fast as vanilla's.
        let ratio =
            medusa.decode_duration(1).as_secs_f64() / vanilla.decode_duration(1).as_secs_f64();
        assert!(
            (0.95..1.05).contains(&ratio),
            "restored graph decode ratio {ratio}"
        );
        // Prefill grows with prompt length.
        assert!(vanilla.prefill_duration(1024) > vanilla.prefill_duration(64));
    }
}
