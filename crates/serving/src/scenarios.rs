//! Canonical fleet scenarios for the event-core differential gate.
//!
//! The cluster simulator's regression oracle is byte-identical
//! [`ClusterReport`](crate::ClusterReport) JSON per seed. This module pins
//! down a seed × scheduler × fault matrix of small, fast, fully synthetic
//! fleet runs whose reports are committed under `results/golden/` — any
//! change to the simulator's observable semantics (event ordering,
//! autoscaler decisions, fault derivation, metric accounting) shows up as
//! a golden diff. Three consumers share this matrix:
//!
//! * `ci-check-bench golden <dir>` regenerates the reports (used to write
//!   `results/golden/` in the first place, and by CI to diff against it);
//! * `tests/event_core.rs` replays every scenario through the event core
//!   and asserts byte-identity against both the committed goldens and a
//!   test-local reimplementation of the pre-refactor stepping semantics;
//! * humans bisecting a divergence, one scenario at a time.
//!
//! Profiles are synthetic ([`FleetProfile::from_perf`]) rather than
//! measured, so the matrix exercises only the fleet layer and runs in
//! milliseconds.

use crate::cluster::{
    CacheCapacity, CacheConfig, ClusterFaults, ClusterSpec, EvictionPolicy, FetchPolicy,
    FleetProfile, Policy,
};
use crate::params::PerfModel;
use medusa::Strategy;
use medusa_gpu::SimDuration;
use medusa_workload::{ArrivalPattern, ModelMix, Request, TraceConfig};

/// One pinned differential scenario: everything needed to reproduce one
/// fleet run whose report is committed as a golden.
pub struct Scenario {
    /// Stable scenario name (doubles as the golden file stem).
    pub name: String,
    /// Synthetic fleet cost profile.
    pub profile: FleetProfile,
    /// Fleet shape, autoscaler, registry policy, and fault plan.
    pub cluster: ClusterSpec,
    /// Scheduler policy under test.
    pub policy: Policy,
    /// The replayed request stream.
    pub trace: Vec<Request>,
}

/// Synthetic perf tables shared by every scenario profile.
fn perf(strategy: Strategy, loading_ms: u64) -> PerfModel {
    PerfModel::from_tables(
        strategy,
        "golden-toy",
        SimDuration::from_millis(loading_ms),
        vec![1, 8, 32],
        vec![
            SimDuration::from_millis(5),
            SimDuration::from_millis(6),
            SimDuration::from_millis(8),
        ],
        vec![
            (100, SimDuration::from_millis(20)),
            (400, SimDuration::from_millis(45)),
            (2048, SimDuration::from_millis(90)),
        ],
    )
}

/// The Medusa-side synthetic profile: fast local restore, a registry fetch
/// on cache miss, and a distinctly slower degraded (vanilla-path) load.
fn medusa_profile() -> FleetProfile {
    FleetProfile::from_perf(Strategy::Medusa, perf(Strategy::Medusa, 450))
        .with_fetch(SimDuration::from_millis(250))
        .with_degraded_loading(SimDuration::from_millis(1400))
}

/// The vanilla-side synthetic profile: slow reload, nothing to fetch.
fn vanilla_profile() -> FleetProfile {
    FleetProfile::from_perf(Strategy::Vanilla, perf(Strategy::Vanilla, 1400))
}

/// The fault plans the matrix crosses with seeds and policies.
fn fault_plans() -> Vec<(&'static str, ClusterFaults)> {
    vec![
        ("clean", ClusterFaults::default()),
        (
            "flaky",
            ClusterFaults {
                seed: 5,
                registry_fail_per_mille: 350,
                node_crash_per_mille: 0,
            },
        ),
        (
            "crashy",
            ClusterFaults {
                seed: 5,
                registry_fail_per_mille: 250,
                node_crash_per_mille: 120,
            },
        ),
    ]
}

/// Base fleet shape of the matrix: four nodes, one pre-seeded cache, a
/// short keep-alive (so bursty traces exercise scale-to-zero churn), and a
/// bounded flaky-registry policy.
fn base_cluster(faults: ClusterFaults) -> ClusterSpec {
    let mut c = ClusterSpec::uniform(4)
        .with_cached_prefix(1)
        .with_fetch_policy(FetchPolicy {
            timeout_s: 0.4,
            retry_budget: 2,
            backoff_base_s: 0.1,
            backoff_max_s: 0.8,
        })
        .with_faults(faults);
    c.autoscaler.keep_alive_s = 6.0;
    c.autoscaler.target_queue_depth = 3;
    c.max_running = 8;
    c
}

/// A bursty ShareGPT-shaped trace for one matrix seed.
fn trace(seed: u64) -> Vec<Request> {
    TraceConfig::sharegpt(6.0, 25.0)
        .with_seed(seed)
        .with_pattern(ArrivalPattern::sharegpt_bursty())
        .generate()
}

/// The pinned differential matrix: seeds × schedulers × fault plans on the
/// Medusa profile, plus vanilla-fleet and tp=2 spot checks.
pub fn differential_matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    for seed in [11u64, 42] {
        for policy in Policy::ALL {
            for (fault_name, faults) in fault_plans() {
                let policy_name = match policy {
                    Policy::RoundRobin => "round-robin",
                    Policy::LeastLoaded => "least-loaded",
                    Policy::ColdStartAware => "coldstart-aware",
                    // `Policy::ALL` never yields the predictive policies
                    // (the golden matrix is pinned); see its docs.
                    Policy::Locality | Policy::Pipeline => unreachable!("not in Policy::ALL"),
                };
                out.push(Scenario {
                    name: format!("s{seed}-{policy_name}-{fault_name}"),
                    profile: medusa_profile(),
                    cluster: base_cluster(faults),
                    policy,
                    trace: trace(seed),
                });
            }
        }
        // Vanilla fleet: no fetches, no cache, slow reloads.
        out.push(Scenario {
            name: format!("s{seed}-coldstart-aware-vanilla"),
            profile: vanilla_profile(),
            cluster: base_cluster(ClusterFaults::default()),
            policy: Policy::ColdStartAware,
            trace: trace(seed),
        });
    }
    // tp=2 workers: aggregate rank-work accounting.
    out.push(Scenario {
        name: "s42-least-loaded-tp2".to_string(),
        profile: medusa_profile().with_coldstart_work(SimDuration::from_millis(900)),
        cluster: {
            let mut c = base_cluster(ClusterFaults::default()).with_tp(2);
            c.max_running = 4;
            c
        },
        policy: Policy::LeastLoaded,
        trace: trace(42),
    });
    // Scale-to-zero churn: sparse arrivals against a 2 s keep-alive.
    out.push(Scenario {
        name: "s7-coldstart-aware-churn".to_string(),
        profile: medusa_profile(),
        cluster: {
            let mut c = base_cluster(ClusterFaults::default());
            c.autoscaler.keep_alive_s = 2.0;
            c
        },
        policy: Policy::ColdStartAware,
        trace: TraceConfig::sharegpt(0.8, 40.0).with_seed(7).generate(),
    });
    // Multi-tenant contention: Zipf-skewed traffic over six models against
    // a 2-artifact per-node cache, crossed seeds × eviction policies. The
    // reports carry per-tenant TTFT quantiles and cache counters, so any
    // drift in eviction order, model-affinity routing, or per-tenant
    // accounting shows up as a golden diff.
    for seed in [11u64, 42] {
        for eviction in [EvictionPolicy::Lru, EvictionPolicy::CostAware] {
            out.push(Scenario {
                name: format!("s{seed}-mt-zipf6-{}", eviction.name()),
                profile: medusa_profile().with_scaled_models(6),
                cluster: base_cluster(ClusterFaults::default())
                    .with_cache(CacheConfig {
                        capacity: CacheCapacity::Artifacts(2),
                        eviction,
                    })
                    .with_keep_alive(1.5),
                policy: Policy::ColdStartAware,
                trace: trace_mt(seed),
            });
        }
    }
    out
}

/// A Zipf-skewed six-model trace for the multi-tenant scenarios: sparse
/// enough that nodes churn through scale-to-zero (so the bounded cache
/// actually evicts), long enough that every tenant recurs.
fn trace_mt(seed: u64) -> Vec<Request> {
    TraceConfig::sharegpt(1.5, 60.0)
        .with_seed(seed)
        .with_models(ModelMix::Zipf { models: 6, s: 1.0 })
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::simulate_fleet;

    #[test]
    fn matrix_names_are_unique_and_runs_deterministic() {
        let matrix = differential_matrix();
        let mut names: Vec<&str> = matrix.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), matrix.len(), "duplicate scenario names");
        let s = &matrix[0];
        let a = simulate_fleet(&s.profile, &s.cluster, s.policy, &s.trace);
        let b = simulate_fleet(&s.profile, &s.cluster, s.policy, &s.trace);
        assert_eq!(a.report.to_json(), b.report.to_json());
    }
}
