//! Closed-form estimates of serving-step durations.
//!
//! [`PerfModel`](crate::PerfModel) *measures* durations by driving the real
//! simulated stack; this module derives the same quantities analytically
//! from the cost model, making the performance structure inspectable:
//!
//! * eager decode is CPU-launch-bound
//!   (`kernels × eager_launch_cpu_ns`, the overhead CUDA graphs remove);
//! * graph decode is GPU-bound: streaming the weights once per token
//!   (`param_bytes / mem_bandwidth`), the attention KV reads, and the
//!   fixed per-kernel cost;
//! * prefill is bound by GEMM FLOPs (`2 · params · tokens`) plus the
//!   prompt-attention reads.
//!
//! Unit tests cross-validate every estimate against the measured stack
//! within a tolerance band — if the substrate's timing semantics drift,
//! these tests catch it.

use medusa_gpu::{CostModel, SimDuration};
use medusa_model::{schedule, ModelSpec};

/// Nodes in the decode graph serving `batch` (batch rounded up to the next
/// captured size).
fn graph_nodes(spec: &ModelSpec, batch: u32) -> u64 {
    let sizes = ModelSpec::capture_batch_sizes();
    let gi = sizes
        .iter()
        .position(|&b| b >= batch)
        .unwrap_or(sizes.len() - 1);
    schedule::nodes_for_graph(spec, gi)
}

/// GPU time of one decode step: weights streamed once (or the GEMM FLOPs
/// when batch amortizes them), the paged-attention KV reads (which scale
/// with batch × context), and the fixed per-kernel cost.
fn decode_gpu_time(spec: &ModelSpec, cost: &CostModel, batch: u32, nodes: u64) -> f64 {
    let weights = spec.param_bytes() as f64 / cost.mem_bandwidth;
    let flops = schedule::decode_step_flops(spec, batch as u64) / cost.effective_flops;
    let attn_bytes = spec.layers() as f64
        * schedule::attention_work(spec, batch as u64, medusa_model::capture_ctx_len() as u64)
            .bytes;
    let attn = attn_bytes / cost.mem_bandwidth;
    let fixed = nodes as f64 * cost.kernel_fixed_gpu_ns as f64 / 1e9;
    weights.max(flops) + attn + fixed
}

/// Estimated duration of one **graph-replayed** decode step at `batch`.
pub fn graph_decode_estimate(spec: &ModelSpec, cost: &CostModel, batch: u32) -> SimDuration {
    let nodes = graph_nodes(spec, batch);
    let gpu = decode_gpu_time(spec, cost, batch, nodes);
    let cpu = (cost.graph_launch_cpu_ns + cost.sync_ns) as f64 / 1e9;
    SimDuration::from_secs_f64(gpu + cpu)
}

/// Estimated duration of one **eager** decode step at `batch` (the
/// `w/o CUDA GRAPH` serving path; also vLLM warm-up forwarding).
pub fn eager_decode_estimate(spec: &ModelSpec, cost: &CostModel, batch: u32) -> SimDuration {
    // Eager forwarding launches the structural schedule (no split-K
    // auxiliaries) and allocates/frees its temporaries each step.
    let kernels = schedule::base_nodes_per_graph(spec);
    let cpu_launch = kernels as f64 * cost.eager_launch_cpu_ns as f64 / 1e9;
    let temps = 16 + 2 * spec.layers() as u64; // activations + magic pairs
    let alloc = temps as f64 * (cost.malloc_ns + cost.free_ns) as f64 / 1e9;
    let gpu = decode_gpu_time(spec, cost, batch, kernels);
    let sync = cost.sync_ns as f64 / 1e9;
    SimDuration::from_secs_f64(cpu_launch.max(gpu) + alloc + sync)
}

/// Estimated duration of an eager prefill of `batch × tokens_per_seq`.
pub fn prefill_estimate(
    spec: &ModelSpec,
    cost: &CostModel,
    batch: u32,
    tokens_per_seq: u32,
) -> SimDuration {
    let kernels = schedule::base_nodes_per_graph(spec);
    let cpu_launch = kernels as f64 * cost.eager_launch_cpu_ns as f64 / 1e9;
    let tokens = batch as u64 * tokens_per_seq as u64;
    let flops = 2.0 * spec.param_count() as f64 * tokens as f64 / cost.effective_flops;
    let weights = spec.param_bytes() as f64 / cost.mem_bandwidth;
    // Prompt attention reads grow with tokens × context — the dominant
    // term for long prompts on small models.
    let attn_bytes = spec.layers() as f64
        * schedule::attention_work(spec, tokens, (tokens_per_seq as u64 / 2).max(1)).bytes;
    let attn = attn_bytes / cost.mem_bandwidth;
    let fixed = kernels as f64 * cost.kernel_fixed_gpu_ns as f64 / 1e9;
    let gpu = flops.max(weights) + attn + fixed;
    SimDuration::from_secs_f64(cpu_launch.max(gpu) + cost.sync_ns as f64 / 1e9)
}

/// The analytic CUDA-graph decode speedup at `batch` (Figure 3's quantity).
pub fn graph_speedup_estimate(spec: &ModelSpec, cost: &CostModel, batch: u32) -> f64 {
    eager_decode_estimate(spec, cost, batch).as_secs_f64()
        / graph_decode_estimate(spec, cost, batch).as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerfModel;
    use medusa::Strategy;
    use medusa_gpu::GpuSpec;

    fn within(measured: SimDuration, estimate: SimDuration, tol: f64) -> bool {
        let m = measured.as_secs_f64();
        let e = estimate.as_secs_f64();
        (e / m - 1.0).abs() <= tol
    }

    #[test]
    fn estimates_track_measurements() {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let cost = CostModel::default();
        let vanilla = PerfModel::measure(
            Strategy::Vanilla,
            &spec,
            GpuSpec::a100_40gb(),
            cost.clone(),
            None,
            81,
        )
        .unwrap();
        let nograph = PerfModel::measure(
            Strategy::NoCudaGraph,
            &spec,
            GpuSpec::a100_40gb(),
            cost.clone(),
            None,
            82,
        )
        .unwrap();
        for batch in [1u32, 8, 64, 256] {
            let g_est = graph_decode_estimate(&spec, &cost, batch);
            let g_meas = vanilla.decode_duration(batch);
            assert!(
                within(g_meas, g_est, 0.20),
                "graph decode b={batch}: est {g_est} vs meas {g_meas}"
            );
            let e_est = eager_decode_estimate(&spec, &cost, batch);
            let e_meas = nograph.decode_duration(batch);
            assert!(
                within(e_meas, e_est, 0.20),
                "eager decode b={batch}: est {e_est} vs meas {e_meas}"
            );
        }
        for tokens in [64u32, 161, 1024] {
            let p_est = prefill_estimate(&spec, &cost, 1, tokens);
            let p_meas = vanilla.prefill_duration(tokens);
            assert!(
                within(p_meas, p_est, 0.25),
                "prefill t={tokens}: est {p_est} vs meas {p_meas}"
            );
        }
    }

    #[test]
    fn speedup_estimate_reproduces_figure3_shape() {
        let cost = CostModel::default();
        let q4 = ModelSpec::by_name("Qwen1.5-4B").unwrap();
        let l13 = ModelSpec::by_name("Llama2-13B").unwrap();
        let s_q4 = graph_speedup_estimate(&q4, &cost, 1);
        let s_l13 = graph_speedup_estimate(&l13, &cost, 1);
        assert!((1.8..3.2).contains(&s_q4), "Qwen4B analytic speedup {s_q4}");
        assert!(
            s_l13 < s_q4,
            "bigger models are memory-bound: {s_l13} !< {s_q4}"
        );
    }

    #[test]
    fn graph_decode_grows_with_batch_via_flops() {
        let cost = CostModel::default();
        let spec = ModelSpec::by_name("Llama2-7B").unwrap();
        let d1 = graph_decode_estimate(&spec, &cost, 1);
        let d256 = graph_decode_estimate(&spec, &cost, 256);
        assert!(d256 > d1);
    }
}
