//! Multi-node serverless cluster simulator with cold-start-aware
//! scheduling — the fleet layer above the per-instance simulator in
//! [`crate::simulate`].
//!
//! The paper evaluates Medusa per GPU, but its payoff is fleet-level:
//! materialization makes cold starts cheap enough that a serverless
//! scheduler can scale instances up and down aggressively. This module
//! models that layer: `N` simulated GPU workers serve one shared request
//! stream; each worker's cold start replays the measured cost of the
//! *real* per-instance pipeline (see [`FleetProfile::measure`], which runs
//! the [`medusa::ColdStart`] builder under the configured
//! [`Parallelism`] knob), and on top sits a pluggable
//! [`Scheduler`] plus an autoscaler with keep-alive and scale-to-zero.
//!
//! The fleet also models the paper's §7 degradation story at registry
//! scale: fetches run under a [`RegistryPolicy`] (timeout, bounded
//! exponential backoff, retry budget), an exhausted budget degrades that
//! cold start to the vanilla path instead of failing it, and nodes can
//! crash mid-cold-start ([`ClusterFaults`]) with their queued requests
//! re-routed by the scheduler. All fault decisions are seed-derived from
//! the simulated state, so faulty runs are as deterministic as clean ones.
//!
//! Artifact locality follows the paper's §6 sharing model: materialized
//! state is keyed by `<GPU type, model type>` and lives in a registry; a
//! node whose **local cache** already holds the entry cold-starts at the
//! Medusa loading cost, while a cache miss additionally pays the registry
//! fetch before restoring (the fetch then populates the cache, so
//! scale-to-zero followed by re-warm is cheap). Vanilla fleets never pay a
//! fetch — they have nothing materialized to fetch — but reload from
//! scratch every time.
//!
//! The whole layer runs on the discrete-event core in [`crate::event`]:
//! one [`EventQueue`] keyed by `(sim_time, seq)` drives every state
//! transition through a typed [`FleetEvent`], same-timestamp events fire
//! in insertion order, and retractable futures (keep-alive expiries,
//! crashed starts' stage completions) are cancelled instead of firing
//! stale. The deterministic event order makes same-trace runs produce
//! **byte-identical** reports and telemetry exports — which is what lets
//! CI gate this layer — and the handler structure keeps the per-event
//! cost flat, so thousand-node, multi-million-event fleets simulate in
//! wall-clock seconds.

use crate::event::{EventQueue, EventToken, FleetEvent};
use crate::params::PerfModel;
use medusa::{
    materialize_offline, ColdStart, ColdStartOptions, MedusaResult, Parallelism, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;
use medusa_telemetry::Registry;
use medusa_workload::{fingerprint, Request};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Modeled fabric bandwidth for registry fetches, bytes/second (10 Gb/s —
/// the materialized `<GPU type, model type>` entry streams weights plus
/// graph state to the node's local cache on a miss).
const FETCH_BANDWIDTH_BPS: f64 = 1.25e9;

// ---------------------------------------------------------------------
// Cluster shape.

/// One simulated GPU worker of the fleet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// GPU type — one half of the paper's §6 artifact cache key.
    pub gpu: String,
    /// Tensor-parallel degree of the instance this worker hosts. Serving
    /// iterations and cold starts consume `tp`× their wall-clock in
    /// aggregate rank *work* (every rank executes every iteration).
    pub tp: u32,
    /// Whether the node-local artifact cache holds the
    /// `<GPU type, model type>` materialized state at `t = 0`.
    pub cached: bool,
}

/// Autoscaler knobs: when to start nodes beyond explicit routing, and when
/// to scale idle ones back to zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// A warm node idle for this long is scaled to zero (its instance is
    /// torn down; the local artifact cache survives, so re-warming costs
    /// only the loading phase).
    pub keep_alive_s: f64,
    /// Whether keep-alive expiry actually tears instances down. `false`
    /// pins warm nodes forever (a reserved-capacity fleet).
    pub scale_to_zero: bool,
    /// Unplaced backlog per live node above which the autoscaler starts
    /// the cheapest cold node.
    pub target_queue_depth: usize,
    /// Optional periodic autoscaler cadence, seconds: when set, a
    /// recurring [`FleetEvent::ScaleDecision`] re-evaluates the backlog on
    /// this interval, decoupling scale-up from arrival events. `None`
    /// (the default) keeps the purely reactive behavior — the event
    /// schedule, and therefore the report, is byte-identical to the
    /// pre-event-core simulator.
    pub eval_interval_s: Option<f64>,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            keep_alive_s: 60.0,
            scale_to_zero: true,
            target_queue_depth: 4,
            eval_interval_s: None,
        }
    }
}

/// Resilience knobs for registry fetches (§6): a fetch attempt that the
/// registry fails costs a timeout, retries back off exponentially (bounded),
/// and an exhausted retry budget **degrades** that cold start to the
/// vanilla path (§7) instead of failing it — the node still comes up, just
/// without the materialized artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryPolicy {
    /// Wall-clock charged per failed fetch attempt, seconds.
    pub timeout_s: f64,
    /// Retries after the initial attempt before degrading.
    pub retry_budget: u32,
    /// First retry's backoff, seconds; doubles per retry.
    pub backoff_base_s: f64,
    /// Backoff ceiling, seconds.
    pub backoff_max_s: f64,
}

impl Default for RegistryPolicy {
    fn default() -> Self {
        RegistryPolicy {
            timeout_s: 2.0,
            retry_budget: 3,
            backoff_base_s: 0.25,
            backoff_max_s: 4.0,
        }
    }
}

/// Deterministic fleet-level fault injection. All-zero (the default)
/// injects nothing and leaves the simulation byte-identical to a fault-free
/// build; every decision is derived from `seed` plus simulated state, never
/// from host randomness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterFaults {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Per-mille probability that one registry fetch attempt fails.
    pub registry_fail_per_mille: u32,
    /// Per-mille probability that a cold start crashes its node midway.
    pub node_crash_per_mille: u32,
}

/// Shape of the simulated fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// The fleet's workers.
    pub nodes: Vec<NodeSpec>,
    /// Maximum concurrently admitted sequences per node.
    pub max_running: u32,
    /// Horizon after the last arrival at which the simulation stops
    /// (drains stragglers), in seconds.
    pub drain_s: f64,
    /// Autoscaler configuration.
    pub autoscaler: AutoscalerConfig,
    /// Registry-fetch resilience policy.
    pub registry: RegistryPolicy,
    /// Fault injection (defaults to none).
    pub faults: ClusterFaults,
}

impl ClusterSpec {
    /// A fleet of `n` identical single-GPU A100 workers with cold local
    /// artifact caches.
    pub fn uniform(n: usize) -> Self {
        ClusterSpec {
            nodes: (0..n)
                .map(|_| NodeSpec {
                    gpu: "A100-40GB".to_string(),
                    tp: 1,
                    cached: false,
                })
                .collect(),
            max_running: 32,
            drain_s: 600.0,
            autoscaler: AutoscalerConfig::default(),
            registry: RegistryPolicy::default(),
            faults: ClusterFaults::default(),
        }
    }

    /// Marks the first `k` nodes' local caches as pre-populated (builder
    /// style).
    pub fn with_cached_prefix(mut self, k: usize) -> Self {
        for node in self.nodes.iter_mut().take(k) {
            node.cached = true;
        }
        self
    }

    /// Sets every node's tensor-parallel degree (builder style).
    pub fn with_tp(mut self, tp: u32) -> Self {
        for node in &mut self.nodes {
            node.tp = tp;
        }
        self
    }

    /// Sets the autoscaler configuration (builder style).
    pub fn with_autoscaler(mut self, autoscaler: AutoscalerConfig) -> Self {
        self.autoscaler = autoscaler;
        self
    }

    /// Sets the registry-fetch resilience policy (builder style).
    pub fn with_registry(mut self, registry: RegistryPolicy) -> Self {
        self.registry = registry;
        self
    }

    /// Arms fleet-level fault injection (builder style).
    pub fn with_faults(mut self, faults: ClusterFaults) -> Self {
        self.faults = faults;
        self
    }
}

// ---------------------------------------------------------------------
// Fleet cost profile.

/// The measured cost model every node of a fleet replays: serving tables
/// plus the cold-start costs of the per-instance pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetProfile {
    /// Strategy each node's cold start runs.
    pub strategy: Strategy,
    /// Serving tables; `perf.loading` is the **cache-hit** cold-start
    /// makespan (for Medusa: restoring a locally cached artifact).
    pub perf: PerfModel,
    /// Aggregate loading-phase work across ranks of one cold start (equal
    /// to `perf.loading` at `tp = 1`; the sum of per-rank stage durations
    /// at `tp > 1`).
    pub coldstart_work: SimDuration,
    /// Registry-fetch penalty a Medusa cold start pays when the node-local
    /// cache misses. Zero for non-materialized strategies.
    pub fetch: SimDuration,
    /// Loading makespan of the **degraded** (vanilla-path) cold start a
    /// node falls back to when its registry fetch budget is exhausted
    /// (§7). Equal to `perf.loading` for non-materialized strategies.
    pub degraded_loading: SimDuration,
}

impl FleetProfile {
    /// Builds a profile from an explicit [`PerfModel`] (tests/analysis).
    /// `coldstart_work` and `degraded_loading` default to the loading
    /// makespan (a `tp = 1` instance); `fetch` defaults to zero.
    pub fn from_perf(strategy: Strategy, perf: PerfModel) -> Self {
        FleetProfile {
            strategy,
            coldstart_work: perf.loading,
            degraded_loading: perf.loading,
            perf,
            fetch: SimDuration::ZERO,
        }
    }

    /// Sets the cache-miss fetch penalty (builder style).
    pub fn with_fetch(mut self, fetch: SimDuration) -> Self {
        self.fetch = fetch;
        self
    }

    /// Sets the aggregate per-rank cold-start work (builder style).
    pub fn with_coldstart_work(mut self, work: SimDuration) -> Self {
        self.coldstart_work = work;
        self
    }

    /// Sets the degraded (vanilla-path) loading makespan (builder style).
    pub fn with_degraded_loading(mut self, loading: SimDuration) -> Self {
        self.degraded_loading = loading;
        self
    }

    /// Measures a fleet profile by running the **real** per-instance
    /// pipelines: serving tables via [`PerfModel::measure`] and the
    /// cold-start makespan/work via a `tp`-way [`medusa::ColdStart`] run
    /// under the requested [`Parallelism`] knob — the fleet simulator then
    /// replays those numbers at queueing scale. For Medusa the degraded
    /// (vanilla-path) loading makespan is measured alongside, so the
    /// simulator can price registry-budget-exhausted cold starts.
    ///
    /// The cache-miss fetch penalty models streaming the materialized
    /// `<GPU type, model type>` entry (dominated by the weights) over a
    /// 10 Gb/s fabric; non-Medusa strategies fetch nothing.
    ///
    /// # Errors
    ///
    /// Propagates materialization and cold-start errors.
    pub fn measure(
        strategy: Strategy,
        spec: &ModelSpec,
        gpu: GpuSpec,
        cost: CostModel,
        tp: u32,
        parallelism: Parallelism,
        seed: u64,
    ) -> MedusaResult<Self> {
        // Serving tables are per-GPU; measure them on a single-GPU
        // instance (with its own tp=1 artifact for Medusa).
        let serving_artifact = match strategy {
            Strategy::Medusa => Some(materialize_offline(spec, gpu.clone(), cost.clone(), seed)?.0),
            _ => None,
        };
        let mut perf = PerfModel::measure(
            strategy,
            spec,
            gpu.clone(),
            cost.clone(),
            serving_artifact.as_ref(),
            seed,
        )?;
        // Loading replays the real tp-way pipeline under the knob.
        let opts = ColdStartOptions {
            seed: seed ^ 0x5eed,
            warm_container: true,
            parallelism,
            ..Default::default()
        };
        let builder = || {
            ColdStart::new(spec)
                .gpu(gpu.clone())
                .cost(cost.clone())
                .options(opts)
                .tp(tp)
        };
        let tp_artifacts = match strategy {
            Strategy::Medusa => Some(
                ColdStart::new(spec)
                    .gpu(gpu.clone())
                    .cost(cost.clone())
                    .parallelism(parallelism)
                    .tp(tp)
                    .materialize(seed)?
                    .0,
            ),
            _ => None,
        };
        let cold = match &tp_artifacts {
            Some(arts) => builder().strategy(strategy).artifacts(arts).run()?,
            None => builder().strategy(strategy).run()?,
        };
        perf.loading = cold.loading();
        let (fetch, degraded_loading) = match strategy {
            Strategy::Medusa => (
                SimDuration::from_secs_f64(spec.param_bytes() as f64 / FETCH_BANDWIDTH_BPS),
                builder().strategy(Strategy::Vanilla).run()?.loading(),
            ),
            _ => (SimDuration::ZERO, perf.loading),
        };
        Ok(FleetProfile {
            strategy,
            perf,
            coldstart_work: cold.aggregate_work(),
            fetch,
            degraded_loading,
        })
    }

    /// Cold-start makespan for a node whose local cache state is `cached`.
    fn coldstart_makespan(&self, cached: bool) -> SimDuration {
        if cached || self.strategy != Strategy::Medusa {
            self.perf.loading
        } else {
            self.perf.loading + self.fetch
        }
    }
}

// ---------------------------------------------------------------------
// Scheduler policies.

/// Lifecycle state of one node — the state machine is
/// `Cold → Starting → Warm → (keep-alive expiry) → Cold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Scaled to zero: no instance. Routing here triggers a cold start.
    Cold,
    /// Cold start in flight; queued requests wait for readiness.
    Starting,
    /// Instance live and serving.
    Warm,
}

/// Read-only view of one node, handed to [`Scheduler`] policies for one
/// routing decision.
#[derive(Debug, Clone, Copy)]
pub struct NodeView {
    /// Lifecycle state.
    pub state: NodeState,
    /// Pending + running sequences on the node.
    pub load: usize,
    /// Whether the local artifact cache holds the materialized state (so
    /// a cold start here skips the registry fetch).
    pub cached: bool,
    /// Whether admitting *this* request respects the node's batch-slot
    /// and KV-capacity limits (always `true` for cold nodes — they start
    /// empty).
    pub accepts: bool,
}

/// A routing decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Route to node `i`, cold-starting it first when necessary.
    Node(usize),
    /// No placement — leave the request in the global queue.
    Queue,
}

/// A pluggable routing policy.
///
/// [`Scheduler::route`] places one request; [`Scheduler::pick_cold`] is
/// consulted by the autoscaler whenever backlog (or an empty fleet) calls
/// for waking a scaled-to-zero node — this is where a policy accounts the
/// Medusa vs vanilla cold-start cost difference.
pub trait Scheduler {
    /// Policy name (embedded in reports and telemetry).
    fn name(&self) -> &'static str;

    /// Routes one request.
    fn route(&mut self, nodes: &[NodeView]) -> Decision;

    /// Picks which cold node the autoscaler should start. The default is
    /// cold-start-cost-oblivious: the first cold node by index.
    fn pick_cold(&mut self, nodes: &[NodeView]) -> Option<usize> {
        nodes.iter().position(|n| n.state == NodeState::Cold)
    }
}

/// Rotates over nodes, skipping ones that cannot accept; wakes cold nodes
/// as the rotation reaches them.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, nodes: &[NodeView]) -> Decision {
        if nodes.is_empty() {
            return Decision::Queue;
        }
        for off in 0..nodes.len() {
            let i = (self.next + off) % nodes.len();
            if nodes[i].accepts {
                self.next = (i + 1) % nodes.len();
                return Decision::Node(i);
            }
        }
        Decision::Queue
    }
}

/// Routes to the least-loaded node that can accept, **oblivious to
/// cold-start cost**: a cold node counts as load zero, so bursts fan out
/// across the fleet and wake every worker — the classic serverless
/// anti-pattern Medusa's cheap cold starts paper over.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl Scheduler for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, nodes: &[NodeView]) -> Decision {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.accepts)
            .min_by_key(|(i, n)| (n.load, *i))
            .map_or(Decision::Queue, |(i, _)| Decision::Node(i))
    }
}

/// Cold-start-aware routing (§6-informed): warm instances first (packed by
/// load), then instances whose cold start is already in flight; it never
/// wakes a cold node just to spread load — scale-out is left to the
/// autoscaler's backlog threshold, and when the fleet *must* start a node
/// this policy picks the one whose local artifact cache already holds the
/// `<GPU type, model type>` entry, i.e. the cheapest Medusa cold start
/// (no registry fetch).
#[derive(Debug, Default)]
pub struct ColdStartAware;

impl Scheduler for ColdStartAware {
    fn name(&self) -> &'static str {
        "coldstart-aware"
    }

    fn route(&mut self, nodes: &[NodeView]) -> Decision {
        let pick = |state: NodeState| {
            nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.state == state && n.accepts)
                .min_by_key(|(i, n)| (n.load, *i))
                .map(|(i, _)| i)
        };
        if let Some(i) = pick(NodeState::Warm) {
            return Decision::Node(i);
        }
        if let Some(i) = pick(NodeState::Starting) {
            return Decision::Node(i);
        }
        Decision::Queue
    }

    fn pick_cold(&mut self, nodes: &[NodeView]) -> Option<usize> {
        // Cheapest start first: a cached node skips the registry fetch.
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.state == NodeState::Cold)
            .min_by_key(|(i, n)| (!n.cached, *i))
            .map(|(i, _)| i)
    }
}

/// The built-in policies, nameable from the CLI and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`ColdStartAware`].
    ColdStartAware,
}

impl Policy {
    /// All built-in policies.
    pub const ALL: [Policy; 3] = [
        Policy::RoundRobin,
        Policy::LeastLoaded,
        Policy::ColdStartAware,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            Policy::RoundRobin => Box::new(RoundRobin::default()),
            Policy::LeastLoaded => Box::new(LeastLoaded),
            Policy::ColdStartAware => Box::new(ColdStartAware),
        }
    }

    /// Parses a CLI policy name.
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "round-robin" => Some(Policy::RoundRobin),
            "least-loaded" => Some(Policy::LeastLoaded),
            "coldstart-aware" => Some(Policy::ColdStartAware),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Reports.

/// Per-node accounting of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeReport {
    /// GPU type.
    pub gpu: String,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Cold starts this node paid.
    pub cold_starts: u32,
    /// Simulated time spent cold-starting, ns.
    pub cold_ns: u64,
    /// First tokens produced (requests prefilled here).
    pub served: u32,
    /// Busy (iterating) wall-clock, ns.
    pub busy_ns: u64,
    /// Aggregate per-rank work, ns: cold-start work plus `tp`× the busy
    /// wall-clock (every rank executes every serving iteration).
    pub work_ns: u64,
    /// Whether the local artifact cache holds the entry after the run.
    pub cached_at_end: bool,
}

/// Deterministic summary of one fleet simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Scheduler policy name.
    pub policy: String,
    /// Fleet-wide cold-start strategy.
    pub strategy: Strategy,
    /// Requests in the trace.
    pub offered: usize,
    /// Requests fully completed before the drain horizon.
    pub completed: usize,
    /// Total cold starts across the fleet.
    pub cold_starts: u32,
    /// Scale-to-zero (keep-alive expiry) events.
    pub scale_to_zero_events: u32,
    /// Registry-fetch retries across the fleet (failed attempts that were
    /// re-tried within the budget).
    pub fetch_retries: u32,
    /// Cold starts degraded to the vanilla path after exhausting the
    /// registry retry budget (§7 at fleet scale).
    pub degraded_cold_starts: u32,
    /// Nodes crashed mid-cold-start.
    pub node_failures: u32,
    /// Requests re-routed off a crashed node back through the scheduler.
    pub reroutes: u32,
    /// Time of the last completion, ns.
    pub makespan_ns: u64,
    /// Median time-to-first-token, µs.
    pub ttft_p50_us: u64,
    /// 99th-percentile time-to-first-token, µs.
    pub ttft_p99_us: u64,
    /// Mean time-to-first-token, µs.
    pub ttft_mean_us: u64,
    /// Order-sensitive fingerprint of the replayed trace
    /// ([`medusa_workload::fingerprint`]).
    pub trace_fingerprint: u64,
    /// Per-node accounting, node order.
    pub nodes: Vec<NodeReport>,
}

impl ClusterReport {
    /// Encodes the report as one stable JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Execution statistics of one fleet simulation — *not* part of the
/// serialized [`ClusterReport`] (so the byte-identity contract is
/// unaffected), but useful for throughput gates and conservation checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Events the simulation loop processed.
    pub events_processed: u64,
    /// Events retracted before firing (cancelled keep-alives, crashed
    /// starts' stage completions).
    pub events_cancelled: u64,
    /// Arrival events handled before the horizon (≤ `offered`).
    pub arrived: usize,
    /// Requests still in the global queue when the simulation stopped.
    pub queued_at_end: usize,
    /// Requests pending or running on nodes when the simulation stopped.
    pub in_flight_at_end: usize,
    /// Nodes still mid-cold-start when the simulation stopped.
    pub starting_nodes_at_end: usize,
    /// Whether the run stopped at the drain horizon with events still
    /// pending (as opposed to draining the queue dry).
    pub horizon_truncated: bool,
}

/// Full outcome of one fleet simulation: the serializable report plus the
/// raw per-request TTFT samples (completion order) for analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The deterministic summary.
    pub report: ClusterReport,
    /// Per-request TTFT samples.
    pub ttfts: Vec<SimDuration>,
    /// Execution statistics (event counts etc.).
    pub stats: FleetStats,
}

impl FleetOutcome {
    /// Request-conservation residual: arrivals minus completions minus
    /// everything still queued or in flight at the end. Zero iff no
    /// request was lost or double-counted — the fuzz harness asserts this
    /// over adversarial workloads.
    pub fn conservation_residual(&self) -> i64 {
        self.stats.arrived as i64
            - self.report.completed as i64
            - self.stats.queued_at_end as i64
            - self.stats.in_flight_at_end as i64
    }
}

// ---------------------------------------------------------------------
// The simulator.

/// splitmix64 — the fleet's deterministic fault-decision hash.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-mille roll for one fault decision, keyed by the fleet fault seed
/// plus simulated state (node, start ordinal, attempt).
fn roll_per_mille(seed: u64, node: usize, start: u32, attempt: u32) -> u32 {
    let key = seed ^ ((node as u64) << 48) ^ ((start as u64) << 16) ^ (attempt as u64);
    (mix(key) % 1000) as u32
}

#[derive(Debug)]
struct RunningSeq {
    remaining: u32,
    kv_reserved: u64,
}

struct Node {
    spec: NodeSpec,
    state: NodeState,
    busy: bool,
    pending: VecDeque<usize>,
    running: Vec<RunningSeq>,
    kv_tokens: u64,
    idle_since: Option<u64>,
    cold_starts: u32,
    cold_ns: u64,
    served: u32,
    busy_ns: u64,
    work_ns: u64,
    /// Bumped on every crash; stale stage events are ignored (and
    /// retracted via their tokens, so they normally never even fire).
    epoch: u32,
    /// Whether the in-flight cold start degraded to the vanilla path
    /// (registry budget exhausted) — a degraded start populates no cache.
    degraded_start: bool,
    /// Pending [`FleetEvent::KeepAliveExpiry`]; retracted the moment work
    /// lands on the node, so a cancelled expiry never fires.
    keep_alive: Option<EventToken>,
    /// Pending [`FleetEvent::RegistryFetchDone`] of the in-flight cold
    /// start (Medusa cache-miss starts only); retracted on crash.
    stage_fetch: Option<EventToken>,
    /// Pending [`FleetEvent::ColdStartStageDone`] of the in-flight cold
    /// start; retracted on crash.
    stage_ready: Option<EventToken>,
}

impl Node {
    fn new(spec: NodeSpec) -> Self {
        Node {
            spec,
            state: NodeState::Cold,
            busy: false,
            pending: VecDeque::new(),
            running: Vec::new(),
            kv_tokens: 0,
            idle_since: None,
            cold_starts: 0,
            cold_ns: 0,
            served: 0,
            busy_ns: 0,
            work_ns: 0,
            epoch: 0,
            degraded_start: false,
            keep_alive: None,
            stage_fetch: None,
            stage_ready: None,
        }
    }

    fn load(&self) -> usize {
        self.pending.len() + self.running.len()
    }

    fn view(&self, need: u64, max_running: u32, kv_capacity: u64) -> NodeView {
        let live_accepts =
            self.load() < max_running as usize && self.kv_tokens + need <= kv_capacity;
        NodeView {
            state: self.state,
            load: self.load(),
            cached: self.spec.cached,
            accepts: match self.state {
                NodeState::Cold => true,
                NodeState::Starting | NodeState::Warm => live_accepts,
            },
        }
    }
}

/// Worst-case KV reservation of a request (prompt + all output tokens).
fn kv_need(r: &Request) -> u64 {
    r.prompt_tokens as u64 + r.output_tokens as u64
}

/// The fleet simulator's mutable state. Every transition happens inside
/// the handler of exactly one [`FleetEvent`]; handlers communicate only
/// by scheduling further events on `events`.
struct FleetSim<'a> {
    profile: &'a FleetProfile,
    cluster: &'a ClusterSpec,
    trace: &'a [Request],
    tele: Option<&'a Registry>,
    nodes: Vec<Node>,
    queue: VecDeque<usize>,
    events: EventQueue<FleetEvent>,
    /// Nodes not `Cold`, maintained incrementally so the autoscaler's
    /// backlog check is O(1) per drained request instead of O(nodes).
    live: usize,
    /// Scratch buffer for [`NodeView`]s, reused across routing decisions
    /// so a thousand-node fleet doesn't allocate per request.
    views_buf: Vec<NodeView>,
    keep_alive_ns: u64,
    arrived: usize,
    ttfts: Vec<SimDuration>,
    completed: usize,
    makespan_ns: u64,
    cold_starts: u32,
    scale_to_zero_events: u32,
    fetch_retries: u32,
    degraded_cold_starts: u32,
    node_failures: u32,
    reroutes: u32,
}

impl FleetSim<'_> {
    /// Fills the scratch view buffer for one routing decision; the caller
    /// hands the buffer back by assigning to `views_buf`.
    fn fill_views(&mut self, need: u64) -> Vec<NodeView> {
        let mut views = std::mem::take(&mut self.views_buf);
        views.clear();
        views.extend(self.nodes.iter().map(|n| {
            n.view(
                need,
                self.cluster.max_running,
                self.profile.perf.kv_capacity_tokens,
            )
        }));
        views
    }

    /// Begins a cold start on node `i` at time `t`.
    fn start_cold(&mut self, t: u64, i: usize) {
        let faults = self.cluster.faults;
        let reg = self.cluster.registry;
        let node = &mut self.nodes[i];
        debug_assert_eq!(node.state, NodeState::Cold);
        let needs_fetch = self.profile.strategy == Strategy::Medusa && !node.spec.cached;
        node.state = NodeState::Starting;
        node.cold_starts += 1;
        self.cold_starts += 1;
        self.live += 1;
        let node = &mut self.nodes[i];

        // Registry fetch under the resilience policy: each failed attempt
        // costs a timeout, retries back off exponentially (bounded), and an
        // exhausted budget degrades this start to the vanilla path (§7).
        let mut retry_ns: u64 = 0;
        let mut retries: u32 = 0;
        let mut degraded = false;
        if needs_fetch && faults.registry_fail_per_mille > 0 {
            let mut failures: u32 = 0;
            loop {
                let roll = roll_per_mille(faults.seed, i, node.cold_starts, failures);
                if roll >= faults.registry_fail_per_mille {
                    break;
                }
                failures += 1;
                retry_ns += (reg.timeout_s * 1e9) as u64;
                if failures > reg.retry_budget {
                    degraded = true;
                    break;
                }
                let backoff =
                    (reg.backoff_base_s * 2f64.powi(failures as i32 - 1)).min(reg.backoff_max_s);
                retry_ns += (backoff * 1e9) as u64;
                retries += 1;
            }
        }
        node.degraded_start = degraded;

        let (makespan, fetch_ns) = if degraded {
            // No artifact to restore: vanilla-path loading, cache stays
            // cold so the next start tries the registry again.
            (self.profile.degraded_loading, 0)
        } else {
            (
                self.profile.coldstart_makespan(node.spec.cached),
                if needs_fetch {
                    self.profile.fetch.as_nanos()
                } else {
                    0
                },
            )
        };
        node.cold_ns += retry_ns + makespan.as_nanos();
        // Aggregate rank work: every rank restores; fetch attempts and the
        // fetch itself occupy the node once (the cache is shared across
        // local ranks).
        let restore_work = if degraded {
            self.profile.degraded_loading.as_nanos() * node.spec.tp as u64
        } else {
            self.profile.coldstart_work.as_nanos()
        };
        node.work_ns += restore_work + retry_ns + fetch_ns;
        self.fetch_retries += retries;
        if degraded {
            self.degraded_cold_starts += 1;
        }
        let epoch = node.epoch;
        let ready = t + retry_ns + makespan.as_nanos();
        if let Some(tl) = self.tele {
            tl.inc("cluster_cold_starts_total", 1);
            tl.inc(&format!("cluster_node{i}_cold_starts_total"), 1);
            if retries > 0 {
                tl.inc("cluster_fetch_retries_total", retries as u64);
            }
            if degraded {
                tl.inc("cluster_degraded_coldstarts_total", 1);
            }
            tl.span(
                format!("coldstart/n{i}"),
                format!("node{i}"),
                t / 1_000,
                ready / 1_000,
            );
        }
        // A crashing start schedules its crash midway; the crash bumps the
        // epoch and retracts the stage events below.
        if faults.node_crash_per_mille > 0 {
            let roll = roll_per_mille(faults.seed ^ 0xc7a5_11fe, i, self.nodes[i].cold_starts, 0);
            if roll < faults.node_crash_per_mille {
                let crash_at = t + (retry_ns + makespan.as_nanos()) / 2;
                self.events
                    .schedule(crash_at, FleetEvent::NodeCrash { node: i, epoch });
            }
        }
        // The start's whole stage timeline is determined here (every fault
        // roll happens at start time), so both stages go on the queue now:
        // the registry fetch (cache-miss Medusa starts only), then the
        // restore whose completion makes the node ready.
        let fetch_tok = (needs_fetch && !degraded).then(|| {
            self.events.schedule(
                t + retry_ns + self.profile.fetch.as_nanos(),
                FleetEvent::RegistryFetchDone { node: i, epoch },
            )
        });
        let ready_tok = self
            .events
            .schedule(ready, FleetEvent::ColdStartStageDone { node: i, epoch });
        let node = &mut self.nodes[i];
        node.stage_fetch = fetch_tok;
        node.stage_ready = Some(ready_tok);
    }

    /// Places request `r` on node `i` at time `t` (cold-starting first
    /// when needed), retracts the node's keep-alive countdown, and records
    /// the scheduler-decision span.
    fn place(&mut self, t: u64, r: usize, i: usize) {
        if self.nodes[i].state == NodeState::Cold {
            self.start_cold(t, i);
        }
        let need = kv_need(&self.trace[r]);
        let node = &mut self.nodes[i];
        node.kv_tokens += need;
        node.idle_since = None;
        node.pending.push_back(r);
        // Work landed: the pending keep-alive expiry (if any) must never
        // fire.
        if let Some(tok) = node.keep_alive.take() {
            self.events.cancel(tok);
        }
        if let Some(tl) = self.tele {
            tl.span(
                format!("route/r{}->n{i}", self.trace[r].id),
                "scheduler".to_string(),
                self.trace[r].arrival_ns / 1_000,
                t / 1_000,
            );
        }
        let node = &self.nodes[i];
        if node.state == NodeState::Warm && !node.busy {
            self.events.schedule(t, FleetEvent::Route { node: i });
        }
    }

    /// Routes as much of the global queue as the policy will place, then
    /// lets the autoscaler start nodes for any remaining backlog.
    fn drain(&mut self, t: u64, sched: &mut dyn Scheduler) {
        while let Some(&r) = self.queue.front() {
            let views = self.fill_views(kv_need(&self.trace[r]));
            let decision = sched.route(&views);
            self.views_buf = views;
            match decision {
                Decision::Node(i) => {
                    self.queue.pop_front();
                    self.place(t, r, i);
                }
                Decision::Queue => break,
            }
        }
        // Autoscaler scale-up: an empty fleet, or backlog beyond the
        // per-live-node target, wakes a cold node — the *policy* picks
        // which one (ColdStartAware prefers artifact-cached nodes).
        loop {
            if self.queue.is_empty() {
                break;
            }
            let limit = self.cluster.autoscaler.target_queue_depth * self.live.max(1);
            if self.live > 0 && self.queue.len() <= limit {
                break;
            }
            let need = self.queue.front().map_or(0, |&r| kv_need(&self.trace[r]));
            let views = self.fill_views(need);
            let pick = sched.pick_cold(&views);
            self.views_buf = views;
            match pick {
                Some(i) => self.start_cold(t, i),
                None => break,
            }
        }
    }

    // -----------------------------------------------------------------
    // Event handlers. One per [`FleetEvent`] variant; the dispatch loop in
    // [`simulate_fleet_traced`] is the only caller.

    /// [`FleetEvent::Arrival`]: the request joins the global queue and the
    /// scheduler immediately tries to drain it.
    fn on_arrival(&mut self, t: u64, r: usize, sched: &mut dyn Scheduler) {
        self.arrived += 1;
        self.queue.push_back(r);
        self.drain(t, sched);
    }

    /// [`FleetEvent::RegistryFetchDone`]: the fetch stage of the in-flight
    /// cold start finished; the restore stage is already on the queue, so
    /// this only closes out the stage bookkeeping.
    fn on_fetch_done(&mut self, i: usize, epoch: u32) {
        let node = &mut self.nodes[i];
        if node.epoch != epoch {
            // A crash retracted this start; the token was cancelled, so a
            // stale fetch normally never fires.
            return;
        }
        node.stage_fetch = None;
        debug_assert!(
            node.state == NodeState::Starting && node.stage_ready.is_some(),
            "the fetch stage completes mid-start, before the restore stage"
        );
    }

    /// [`FleetEvent::ColdStartStageDone`]: the restore (terminal) stage
    /// finished — the node is warm and may populate its artifact cache.
    fn on_stage_done(&mut self, t: u64, i: usize, epoch: u32, sched: &mut dyn Scheduler) {
        let node = &mut self.nodes[i];
        if node.epoch != epoch {
            // This start crashed before finishing; the event is stale.
            return;
        }
        node.stage_ready = None;
        node.state = NodeState::Warm;
        // The cold start populated the local cache (Medusa fetch or
        // in-place materialization reuse) — unless it degraded to the
        // vanilla path, which materializes nothing.
        if self.profile.strategy == Strategy::Medusa && !node.degraded_start {
            node.spec.cached = true;
        }
        self.events.schedule(t, FleetEvent::Route { node: i });
        self.drain(t, sched);
    }

    /// [`FleetEvent::NodeCrash`]: crash mid-cold-start — the node scales
    /// back to cold, its pending stage events are retracted, and its
    /// queued requests go back through the scheduler.
    fn on_crash(&mut self, t: u64, i: usize, epoch: u32, sched: &mut dyn Scheduler) {
        {
            let node = &self.nodes[i];
            if node.epoch != epoch || node.state != NodeState::Starting {
                return;
            }
        }
        let (fetch_tok, ready_tok, rerouted) = {
            let node = &mut self.nodes[i];
            node.epoch += 1;
            node.state = NodeState::Cold;
            node.idle_since = None;
            node.kv_tokens = 0;
            let rerouted: Vec<usize> = node.pending.drain(..).collect();
            (node.stage_fetch.take(), node.stage_ready.take(), rerouted)
        };
        self.live -= 1;
        if let Some(tok) = fetch_tok {
            self.events.cancel(tok);
        }
        if let Some(tok) = ready_tok {
            self.events.cancel(tok);
        }
        self.node_failures += 1;
        self.reroutes += rerouted.len() as u32;
        if let Some(tl) = self.tele {
            tl.inc("cluster_node_failures_total", 1);
            if !rerouted.is_empty() {
                tl.inc("cluster_reroutes_total", rerouted.len() as u64);
            }
            tl.span(
                format!("nodefail/n{i}"),
                format!("node{i}"),
                t / 1_000,
                t / 1_000,
            );
        }
        // Front of the queue, original order: the crashed node's requests
        // have been waiting longest.
        for r in rerouted.into_iter().rev() {
            self.queue.push_front(r);
        }
        self.drain(t, sched);
    }

    /// [`FleetEvent::KeepAliveExpiry`]: the keep-alive countdown ran out
    /// without being retracted — scale the node to zero. The local
    /// artifact cache survives, so re-warming is cheap.
    fn on_keep_alive_expiry(&mut self, t: u64, i: usize) {
        let scale = self.cluster.autoscaler.scale_to_zero;
        let keep_alive_ns = self.keep_alive_ns;
        let node = &mut self.nodes[i];
        node.keep_alive = None;
        // An un-retracted expiry implies the node sat idle the whole
        // countdown; the full predicate stays as a guard so the report is
        // exactly what the predicate says even if retraction ever missed a
        // path.
        if scale
            && node.state == NodeState::Warm
            && !node.busy
            && node.pending.is_empty()
            && node.running.is_empty()
            && node
                .idle_since
                .is_some_and(|since| t.saturating_sub(since) >= keep_alive_ns)
        {
            node.state = NodeState::Cold;
            node.idle_since = None;
            self.live -= 1;
            self.scale_to_zero_events += 1;
            if let Some(tl) = self.tele {
                tl.inc("cluster_scale_to_zero_total", 1);
            }
        }
    }

    /// [`FleetEvent::ScaleDecision`]: periodic autoscaler tick — re-run
    /// the drain (which evaluates the backlog threshold) and re-arm the
    /// next tick.
    fn on_scale_decision(&mut self, t: u64, sched: &mut dyn Scheduler) {
        self.drain(t, sched);
        if let Some(interval_s) = self.cluster.autoscaler.eval_interval_s {
            let step = (interval_s * 1e9) as u64;
            if step > 0 {
                self.events.schedule(t + step, FleetEvent::ScaleDecision);
            }
        }
    }

    /// [`FleetEvent::Route`]: the node re-examines its run queue and
    /// starts an iteration unless one is already in flight.
    fn on_route(&mut self, t: u64, i: usize) {
        if !self.nodes[i].busy {
            self.iteration(t, i);
        }
    }

    /// [`FleetEvent::IterationDone`]: the iteration's time elapsed; give
    /// the scheduler a chance to top the node up, then iterate again.
    fn on_iteration_done(&mut self, t: u64, i: usize, sched: &mut dyn Scheduler) {
        self.nodes[i].busy = false;
        self.drain(t, sched);
        self.iteration(t, i);
    }

    /// One serving iteration on node `i` at time `t`: prefill one pending
    /// request, else run one batched decode step, else go idle and arm the
    /// keep-alive countdown.
    fn iteration(&mut self, t: u64, i: usize) {
        let profile = self.profile;
        let trace = self.trace;
        let tele = self.tele;
        let perf = &profile.perf;
        let node = &mut self.nodes[i];
        if node.state != NodeState::Warm {
            return;
        }
        if let Some(r) = node.pending.pop_front() {
            // Prefill: produces the request's first token.
            let req = &trace[r];
            let dur = perf.prefill_duration(req.prompt_tokens).as_nanos();
            let end = t + dur;
            self.ttfts
                .push(SimDuration::from_nanos(end - req.arrival_ns));
            node.served += 1;
            if let Some(tl) = tele {
                tl.observe_us("cluster_ttft_us", (end - req.arrival_ns) / 1_000);
                tl.observe_us(
                    &format!("cluster_node{i}_ttft_us"),
                    (end - req.arrival_ns) / 1_000,
                );
                tl.observe_us(
                    &format!("cluster_node{i}_queue_delay_us"),
                    (t - req.arrival_ns) / 1_000,
                );
            }
            if req.output_tokens > 1 {
                node.running.push(RunningSeq {
                    remaining: req.output_tokens - 1,
                    kv_reserved: kv_need(req),
                });
            } else {
                node.kv_tokens = node.kv_tokens.saturating_sub(kv_need(req));
                self.completed += 1;
                self.makespan_ns = self.makespan_ns.max(end);
            }
            node.busy = true;
            node.busy_ns += dur;
            node.work_ns += dur * node.spec.tp as u64;
            self.events
                .schedule(end, FleetEvent::IterationDone { node: i });
        } else if !node.running.is_empty() {
            // Batched decode step.
            let dur = perf.decode_duration(node.running.len() as u32).as_nanos();
            let end = t + dur;
            for s in &mut node.running {
                s.remaining -= 1;
            }
            let released: u64 = node
                .running
                .iter()
                .filter(|s| s.remaining == 0)
                .map(|s| s.kv_reserved)
                .sum();
            let before = node.running.len();
            node.running.retain(|s| s.remaining > 0);
            let finished = before - node.running.len();
            if finished > 0 {
                node.kv_tokens = node.kv_tokens.saturating_sub(released);
                self.completed += finished;
                self.makespan_ns = self.makespan_ns.max(end);
            }
            node.busy = true;
            node.busy_ns += dur;
            node.work_ns += dur * node.spec.tp as u64;
            self.events
                .schedule(end, FleetEvent::IterationDone { node: i });
        } else {
            // Idle: arm the keep-alive countdown. When scale-to-zero is
            // off the expiry could never fire anyway, so don't schedule
            // one at all.
            node.idle_since = Some(t);
            if self.cluster.autoscaler.scale_to_zero {
                let tok = self.events.schedule(
                    t + self.keep_alive_ns,
                    FleetEvent::KeepAliveExpiry { node: i },
                );
                self.nodes[i].keep_alive = Some(tok);
            }
        }
    }
}

/// Runs `trace` through a fleet shaped by `cluster` whose nodes replay
/// `profile`, routed by `policy`.
pub fn simulate_fleet(
    profile: &FleetProfile,
    cluster: &ClusterSpec,
    policy: Policy,
    trace: &[Request],
) -> FleetOutcome {
    simulate_fleet_traced(profile, cluster, policy, trace, None)
}

/// [`simulate_fleet`] with telemetry: per-node TTFT/queue-delay
/// histograms, fleet and per-node cold-start counters, scale-to-zero
/// counters, and scheduler-decision + cold-start spans. All values derive
/// from the simulated clock, so same-trace runs export byte-identically.
pub fn simulate_fleet_traced(
    profile: &FleetProfile,
    cluster: &ClusterSpec,
    policy: Policy,
    trace: &[Request],
    tele: Option<&Registry>,
) -> FleetOutcome {
    let mut sched = policy.build();
    let mut sim = FleetSim {
        profile,
        cluster,
        trace,
        tele,
        nodes: cluster.nodes.iter().cloned().map(Node::new).collect(),
        queue: VecDeque::new(),
        events: EventQueue::new(),
        live: 0,
        views_buf: Vec::with_capacity(cluster.nodes.len()),
        keep_alive_ns: (cluster.autoscaler.keep_alive_s * 1e9) as u64,
        arrived: 0,
        ttfts: Vec::new(),
        completed: 0,
        makespan_ns: 0,
        cold_starts: 0,
        scale_to_zero_events: 0,
        fetch_retries: 0,
        degraded_cold_starts: 0,
        node_failures: 0,
        reroutes: 0,
    };
    for (i, r) in trace.iter().enumerate() {
        sim.events
            .schedule(r.arrival_ns, FleetEvent::Arrival { req: i });
    }
    if let Some(interval_s) = cluster.autoscaler.eval_interval_s {
        let step = (interval_s * 1e9) as u64;
        if step > 0 {
            sim.events.schedule(step, FleetEvent::ScaleDecision);
        }
    }
    let horizon = trace.last().map_or(0, |r| r.arrival_ns) + (cluster.drain_s * 1e9) as u64;

    let mut events_processed: u64 = 0;
    let mut truncated = false;
    while let Some((t, ev)) = sim.events.pop() {
        if t > horizon {
            truncated = true;
            break;
        }
        events_processed += 1;
        match ev {
            FleetEvent::Arrival { req } => sim.on_arrival(t, req, sched.as_mut()),
            FleetEvent::Route { node } => sim.on_route(t, node),
            FleetEvent::RegistryFetchDone { node, epoch } => sim.on_fetch_done(node, epoch),
            FleetEvent::ColdStartStageDone { node, epoch } => {
                sim.on_stage_done(t, node, epoch, sched.as_mut());
            }
            FleetEvent::KeepAliveExpiry { node } => sim.on_keep_alive_expiry(t, node),
            FleetEvent::NodeCrash { node, epoch } => sim.on_crash(t, node, epoch, sched.as_mut()),
            FleetEvent::ScaleDecision => sim.on_scale_decision(t, sched.as_mut()),
            FleetEvent::IterationDone { node } => sim.on_iteration_done(t, node, sched.as_mut()),
        }
    }
    let truncated = truncated || !sim.events.is_empty();

    let mut sorted: Vec<u64> = sim.ttfts.iter().map(|d| d.as_nanos() / 1_000).collect();
    sorted.sort_unstable();
    let q = |f: f64| -> u64 {
        if sorted.is_empty() {
            0
        } else {
            sorted[((sorted.len() as f64 - 1.0) * f).round() as usize]
        }
    };
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().sum::<u64>() / sorted.len() as u64
    };
    if let Some(tl) = tele {
        tl.inc("cluster_requests_offered_total", trace.len() as u64);
        tl.inc("cluster_requests_completed_total", sim.completed as u64);
        tl.gauge_max("cluster_makespan_us", sim.makespan_ns / 1_000);
    }
    let report = ClusterReport {
        policy: sched.name().to_string(),
        strategy: profile.strategy,
        offered: trace.len(),
        completed: sim.completed,
        cold_starts: sim.cold_starts,
        scale_to_zero_events: sim.scale_to_zero_events,
        fetch_retries: sim.fetch_retries,
        degraded_cold_starts: sim.degraded_cold_starts,
        node_failures: sim.node_failures,
        reroutes: sim.reroutes,
        makespan_ns: sim.makespan_ns,
        ttft_p50_us: q(0.5),
        ttft_p99_us: q(0.99),
        ttft_mean_us: mean,
        trace_fingerprint: fingerprint(trace),
        nodes: sim
            .nodes
            .iter()
            .map(|n| NodeReport {
                gpu: n.spec.gpu.clone(),
                tp: n.spec.tp,
                cold_starts: n.cold_starts,
                cold_ns: n.cold_ns,
                served: n.served,
                busy_ns: n.busy_ns,
                work_ns: n.work_ns,
                cached_at_end: n.spec.cached,
            })
            .collect(),
    };
    let in_flight_at_end: usize = sim.nodes.iter().map(Node::load).sum();
    let starting_nodes_at_end = sim
        .nodes
        .iter()
        .filter(|n| n.state == NodeState::Starting)
        .count();
    FleetOutcome {
        report,
        stats: FleetStats {
            events_processed,
            events_cancelled: sim.events.cancelled_total(),
            arrived: sim.arrived,
            queued_at_end: sim.queue.len(),
            in_flight_at_end,
            starting_nodes_at_end,
            horizon_truncated: truncated,
        },
        ttfts: sim.ttfts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medusa_workload::{ArrivalPattern, TraceConfig};

    fn perf(loading_ms: u64) -> PerfModel {
        PerfModel::from_tables(
            Strategy::Vanilla,
            "toy",
            SimDuration::from_millis(loading_ms),
            vec![1, 8, 32],
            vec![
                SimDuration::from_millis(5),
                SimDuration::from_millis(6),
                SimDuration::from_millis(8),
            ],
            vec![
                (100, SimDuration::from_millis(20)),
                (200, SimDuration::from_millis(40)),
            ],
        )
    }

    fn medusa_profile(loading_ms: u64, fetch_ms: u64) -> FleetProfile {
        let mut p = perf(loading_ms);
        p.strategy = Strategy::Medusa;
        FleetProfile::from_perf(Strategy::Medusa, p).with_fetch(SimDuration::from_millis(fetch_ms))
    }

    fn req(id: u64, arrival_ms: u64, prompt: u32, output: u32) -> Request {
        Request {
            id,
            arrival_ns: arrival_ms * 1_000_000,
            prompt_tokens: prompt,
            output_tokens: output,
        }
    }

    #[test]
    fn single_request_pays_fetch_plus_loading_plus_prefill_on_cache_miss() {
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(2);
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        assert_eq!(out.ttfts.len(), 1);
        // fetch 300 + loading 500 + prefill 20.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(820));
        assert_eq!(out.report.cold_starts, 1);
        assert!(out.report.nodes[0].cached_at_end);
        assert!(!out.report.nodes[1].cached_at_end, "only node 0 started");
    }

    #[test]
    fn cached_node_skips_the_fetch() {
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(2).with_cached_prefix(1);
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        assert_eq!(out.ttfts[0], SimDuration::from_millis(520));
    }

    #[test]
    fn coldstart_aware_prefers_the_cached_cold_node() {
        let profile = medusa_profile(500, 300);
        // Node 1 (not 0) holds the artifact: the policy must pick it.
        let mut spec = ClusterSpec::uniform(3);
        spec.nodes[1].cached = true;
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        assert_eq!(out.report.nodes[1].cold_starts, 1);
        assert_eq!(out.report.nodes[0].cold_starts, 0);
        assert_eq!(out.ttfts[0], SimDuration::from_millis(520));
    }

    #[test]
    fn vanilla_fleet_never_fetches() {
        let profile = FleetProfile::from_perf(Strategy::Vanilla, perf(800))
            .with_fetch(SimDuration::from_millis(300));
        let spec = ClusterSpec::uniform(1);
        let out = simulate_fleet(&profile, &spec, Policy::LeastLoaded, &[req(0, 0, 100, 1)]);
        assert_eq!(out.ttfts[0], SimDuration::from_millis(820));
        assert!(
            !out.report.nodes[0].cached_at_end,
            "vanilla materializes nothing"
        );
    }

    #[test]
    fn round_robin_rotates_over_the_fleet() {
        let profile = medusa_profile(100, 0);
        let spec = ClusterSpec::uniform(3);
        let trace: Vec<Request> = (0..3).map(|i| req(i, 0, 100, 1)).collect();
        let out = simulate_fleet(&profile, &spec, Policy::RoundRobin, &trace);
        assert_eq!(out.report.cold_starts, 3, "rotation wakes each node once");
        for n in &out.report.nodes {
            assert_eq!(n.served, 1);
        }
    }

    #[test]
    fn least_loaded_wakes_the_fleet_on_a_burst_but_coldstart_aware_packs() {
        let profile = medusa_profile(500, 200);
        let spec = ClusterSpec::uniform(4);
        // 8 simultaneous short requests fit comfortably on one node.
        let trace: Vec<Request> = (0..8).map(|i| req(i, 0, 100, 2)).collect();
        let ll = simulate_fleet(&profile, &spec, Policy::LeastLoaded, &trace);
        let ca = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(ll.report.cold_starts, 4, "least-loaded fans out");
        assert_eq!(ca.report.cold_starts, 1, "coldstart-aware packs");
        assert_eq!(ll.report.completed, 8);
        assert_eq!(ca.report.completed, 8);
    }

    #[test]
    fn autoscaler_starts_nodes_when_backlog_exceeds_target_depth() {
        let profile = medusa_profile(500, 0);
        let mut spec = ClusterSpec::uniform(4);
        spec.autoscaler.target_queue_depth = 2;
        spec.max_running = 2; // routing saturates fast → global backlog
        let trace: Vec<Request> = (0..24).map(|i| req(i, 0, 100, 5)).collect();
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert!(
            out.report.cold_starts >= 2,
            "backlog must wake extra nodes: {:?}",
            out.report
        );
        assert_eq!(out.report.completed, 24);
    }

    #[test]
    fn keep_alive_expiry_scales_to_zero_and_rewarm_skips_the_fetch() {
        let profile = medusa_profile(500, 300);
        let mut spec = ClusterSpec::uniform(1);
        spec.autoscaler.keep_alive_s = 5.0;
        let trace = vec![req(0, 0, 100, 1), req(1, 30_000, 100, 1)];
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(out.report.cold_starts, 2, "node retired between requests");
        // One expiry between the requests, one after the second completes.
        assert_eq!(out.report.scale_to_zero_events, 2);
        // First start: fetch 300 + load 500 + prefill 20. Re-warm: the
        // cache survived scale-to-zero, so only load 500 + prefill 20.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(820));
        assert_eq!(out.ttfts[1], SimDuration::from_millis(520));
    }

    #[test]
    fn scale_to_zero_disabled_pins_warm_nodes() {
        let profile = medusa_profile(500, 300);
        let mut spec = ClusterSpec::uniform(1);
        spec.autoscaler.keep_alive_s = 5.0;
        spec.autoscaler.scale_to_zero = false;
        let trace = vec![req(0, 0, 100, 1), req(1, 30_000, 100, 1)];
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(out.report.cold_starts, 1);
        assert_eq!(out.ttfts[1], SimDuration::from_millis(20), "warm hit");
    }

    #[test]
    fn tp_nodes_aggregate_per_rank_work() {
        let base = medusa_profile(500, 0);
        let tp2 = base
            .clone()
            .with_coldstart_work(SimDuration::from_millis(1000)); // 2 ranks × 500ms
        let trace = vec![req(0, 0, 100, 3)];
        let out1 = simulate_fleet(
            &base,
            &ClusterSpec::uniform(1),
            Policy::ColdStartAware,
            &trace,
        );
        let out2 = simulate_fleet(
            &tp2,
            &ClusterSpec::uniform(1).with_tp(2),
            Policy::ColdStartAware,
            &trace,
        );
        let n1 = &out1.report.nodes[0];
        let n2 = &out2.report.nodes[0];
        assert_eq!(n1.cold_ns, n2.cold_ns, "same wall-clock makespan");
        assert_eq!(
            n2.work_ns,
            2 * n1.work_ns,
            "tp=2 consumes twice the rank work"
        );
        assert_eq!(out1.ttfts, out2.ttfts, "wall-clock TTFT is tp-invariant");
    }

    #[test]
    fn reports_and_telemetry_are_deterministic_per_trace() {
        let profile = medusa_profile(400, 150);
        let spec = ClusterSpec::uniform(4).with_cached_prefix(2);
        let trace = TraceConfig::sharegpt(6.0, 40.0)
            .with_seed(42)
            .with_pattern(ArrivalPattern::sharegpt_bursty())
            .generate();
        let run = || {
            let tele = Registry::new();
            let out =
                simulate_fleet_traced(&profile, &spec, Policy::ColdStartAware, &trace, Some(&tele));
            (
                out.report.to_json(),
                medusa_telemetry::export::prometheus::render(&tele.snapshot()),
            )
        };
        assert_eq!(run(), run(), "same trace must export byte-identically");
    }

    #[test]
    fn report_json_round_trips() {
        let profile = medusa_profile(400, 150);
        let spec = ClusterSpec::uniform(2);
        let trace: Vec<Request> = (0..5).map(|i| req(i, i * 100, 100, 3)).collect();
        let out = simulate_fleet(&profile, &spec, Policy::LeastLoaded, &trace);
        let back = ClusterReport::from_json(&out.report.to_json()).expect("parse");
        assert_eq!(back, out.report);
        assert_eq!(back.trace_fingerprint, fingerprint(&trace));
    }

    #[test]
    fn telemetry_records_decisions_and_per_node_histograms() {
        let profile = medusa_profile(400, 0);
        let spec = ClusterSpec::uniform(2);
        let trace: Vec<Request> = (0..4).map(|i| req(i, 0, 100, 1)).collect();
        let tele = Registry::new();
        let out =
            simulate_fleet_traced(&profile, &spec, Policy::ColdStartAware, &trace, Some(&tele));
        let snap = tele.snapshot();
        assert_eq!(
            snap.counter("cluster_cold_starts_total"),
            Some(out.report.cold_starts as u64)
        );
        assert_eq!(snap.counter("cluster_requests_offered_total"), Some(4));
        let routes = snap
            .spans
            .iter()
            .filter(|s| s.name.starts_with("route/"))
            .count();
        assert_eq!(routes, 4, "one scheduler-decision span per request");
        assert!(snap.histogram("cluster_node0_ttft_us").is_some());
        assert!(snap.histogram("cluster_node0_queue_delay_us").is_some());
    }

    #[test]
    fn empty_trace_is_handled() {
        let profile = medusa_profile(400, 0);
        let out = simulate_fleet(&profile, &ClusterSpec::uniform(2), Policy::LeastLoaded, &[]);
        assert_eq!(out.report.offered, 0);
        assert_eq!(out.report.ttft_p99_us, 0);
        assert_eq!(out.report.cold_starts, 0);
    }

    fn flaky_registry() -> RegistryPolicy {
        RegistryPolicy {
            timeout_s: 1.0,
            retry_budget: 3,
            backoff_base_s: 0.5,
            backoff_max_s: 2.0,
        }
    }

    #[test]
    fn exhausted_registry_budget_degrades_to_vanilla_without_caching() {
        let profile = medusa_profile(500, 300).with_degraded_loading(SimDuration::from_millis(800));
        let spec = ClusterSpec::uniform(1)
            .with_registry(flaky_registry())
            .with_faults(ClusterFaults {
                seed: 1,
                registry_fail_per_mille: 1000,
                node_crash_per_mille: 0,
            });
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        // 4 failed attempts × 1 s timeout, backoffs 0.5 + 1 + 2 s, then the
        // degraded vanilla load 800 ms + prefill 20 ms.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(8320));
        assert_eq!(out.report.degraded_cold_starts, 1);
        assert_eq!(out.report.fetch_retries, 3);
        assert!(
            !out.report.nodes[0].cached_at_end,
            "a degraded start materializes nothing"
        );
    }

    #[test]
    fn transient_registry_failure_retries_with_backoff_and_still_fetches() {
        // A seed whose first attempt fails and whose retry succeeds.
        let seed = (0..1000u64)
            .find(|&s| roll_per_mille(s, 0, 1, 0) < 500 && roll_per_mille(s, 0, 1, 1) >= 500)
            .expect("such a seed exists");
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(1)
            .with_registry(flaky_registry())
            .with_faults(ClusterFaults {
                seed,
                registry_fail_per_mille: 500,
                node_crash_per_mille: 0,
            });
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        // Timeout 1 s + backoff 0.5 s, then fetch 300 + load 500 + prefill
        // 20 ms as usual.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(2320));
        assert_eq!(out.report.fetch_retries, 1);
        assert_eq!(out.report.degraded_cold_starts, 0);
        assert!(out.report.nodes[0].cached_at_end);
    }

    #[test]
    fn node_crash_mid_cold_start_reroutes_and_restarts() {
        // A seed whose first start crashes and whose second survives.
        let crash = |s: u64, start: u32| roll_per_mille(s ^ 0xc7a5_11fe, 0, start, 0);
        let seed = (0..1000u64)
            .find(|&s| crash(s, 1) < 500 && crash(s, 2) >= 500)
            .expect("such a seed exists");
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(1).with_faults(ClusterFaults {
            seed,
            registry_fail_per_mille: 0,
            node_crash_per_mille: 500,
        });
        // LeastLoaded places the request on the starting node (ColdStartAware
        // would hold it in the global queue), so the crash must re-route it.
        let out = simulate_fleet(&profile, &spec, Policy::LeastLoaded, &[req(0, 0, 100, 1)]);
        assert_eq!(out.report.node_failures, 1);
        assert_eq!(out.report.reroutes, 1);
        assert_eq!(out.report.cold_starts, 2, "crashed start plus the retry");
        assert_eq!(out.report.completed, 1);
        // Crash at 400 ms (half of fetch 300 + load 500), restart pays the
        // full 800 ms again (the crashed fetch cached nothing), prefill 20.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(1220));
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let profile = medusa_profile(400, 150).with_degraded_loading(SimDuration::from_millis(700));
        let spec = ClusterSpec::uniform(4)
            .with_registry(flaky_registry())
            .with_faults(ClusterFaults {
                seed: 9,
                registry_fail_per_mille: 400,
                node_crash_per_mille: 100,
            });
        let trace = TraceConfig::sharegpt(6.0, 40.0)
            .with_seed(42)
            .with_pattern(ArrivalPattern::sharegpt_bursty())
            .generate();
        let run = || {
            let tele = Registry::new();
            let out =
                simulate_fleet_traced(&profile, &spec, Policy::ColdStartAware, &trace, Some(&tele));
            (
                out.report.to_json(),
                medusa_telemetry::export::prometheus::render(&tele.snapshot()),
            )
        };
        let (report, prom) = run();
        assert_eq!((report.clone(), prom.clone()), run());
        let parsed = ClusterReport::from_json(&report).expect("parse");
        assert_eq!(parsed.offered, trace.len());
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in Policy::ALL {
            let name = p.build().name();
            assert_eq!(Policy::parse(name), Some(p));
        }
        assert_eq!(Policy::parse("nope"), None);
    }
}
