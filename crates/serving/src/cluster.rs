//! Multi-node serverless cluster simulator with cold-start-aware
//! scheduling — the fleet layer above the per-instance simulator in
//! [`crate::simulate`].
//!
//! The paper evaluates Medusa per GPU, but its payoff is fleet-level:
//! materialization makes cold starts cheap enough that a serverless
//! scheduler can scale instances up and down aggressively. This module
//! models that layer: `N` simulated GPU workers serve one shared request
//! stream; each worker's cold start replays the measured cost of the
//! *real* per-instance pipeline (see [`FleetProfile::measure`], which runs
//! the [`medusa::ColdStart`] builder under the configured
//! [`Parallelism`] knob), and on top sits a pluggable
//! [`Scheduler`] plus an autoscaler with keep-alive and scale-to-zero.
//!
//! The fleet also models the paper's §7 degradation story at registry
//! scale: fetches run under a [`FetchPolicy`] (timeout, bounded
//! exponential backoff, retry budget), an exhausted budget degrades that
//! cold start to the vanilla path instead of failing it, and nodes can
//! crash mid-cold-start ([`ClusterFaults`]) with their queued requests
//! re-routed by the scheduler. All fault decisions are seed-derived from
//! the simulated state, so faulty runs are as deterministic as clean ones.
//!
//! *What* a fetch moves is decided by the [`Registry`] backend behind
//! [`RegistryMode`]: the default [`WholeArtifact`] transfers the entire
//! `<GPU type, model type>` entry (the legacy behavior — committed golden
//! reports are byte-identical), while [`ContentAddressed`] resolves the
//! per-model chunk manifest of a [`RegistryCatalog`] against the node's
//! chunk-level residency and transfers only the missing chunks — family
//! models sharing template chunks fetch only their deltas, and the
//! [`RegistryReport`] counters expose the byte savings.
//!
//! Artifact locality follows the paper's §6 sharing model: materialized
//! state is keyed by `<GPU type, model type>` and lives in a registry; a
//! node whose **local cache** already holds the entry cold-starts at the
//! Medusa loading cost, while a cache miss additionally pays the registry
//! fetch before restoring (the fetch then populates the cache, so
//! scale-to-zero followed by re-warm is cheap). Vanilla fleets never pay a
//! fetch — they have nothing materialized to fetch — but reload from
//! scratch every time.
//!
//! The whole layer runs on the discrete-event core in [`crate::event`]:
//! one [`EventQueue`] keyed by `(sim_time, seq)` drives every state
//! transition through a typed [`FleetEvent`], same-timestamp events fire
//! in insertion order, and retractable futures (keep-alive expiries,
//! crashed starts' stage completions) are cancelled instead of firing
//! stale. The deterministic event order makes same-trace runs produce
//! **byte-identical** reports and telemetry exports — which is what lets
//! CI gate this layer — and the handler structure keeps the per-event
//! cost flat, so thousand-node, multi-million-event fleets simulate in
//! wall-clock seconds.

use crate::event::{EventQueue, EventToken, FleetEvent};
use crate::params::PerfModel;
use crate::predict::{PrewarmConfig, PrewarmEstimator};
use medusa::{
    materialize_offline, ColdStart, ColdStartOptions, MedusaResult, Parallelism, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;
use medusa_telemetry::Registry as TelemetryRegistry;
use medusa_workload::{fingerprint, Request};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Modeled fabric bandwidth for registry fetches, bytes/second (100 Gb/s,
/// a stock ML-cluster NIC — the materialized `<GPU type, model type>`
/// entry streams weights plus graph state to the node's local cache on a
/// miss, so a miss costs a fetch on top of the restore but still undercuts
/// a vanilla from-scratch load).
const FETCH_BANDWIDTH_BPS: f64 = 1.25e10;

// ---------------------------------------------------------------------
// Cluster shape.

/// One simulated GPU worker of the fleet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// GPU type — one half of the paper's §6 artifact cache key.
    pub gpu: String,
    /// Tensor-parallel degree of the instance this worker hosts. Serving
    /// iterations and cold starts consume `tp`× their wall-clock in
    /// aggregate rank *work* (every rank executes every iteration).
    pub tp: u32,
    /// Whether the node-local artifact cache holds the
    /// `<GPU type, model type>` materialized state at `t = 0`.
    pub cached: bool,
}

/// Autoscaler knobs: when to start nodes beyond explicit routing, and when
/// to scale idle ones back to zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// A warm node idle for this long is scaled to zero (its instance is
    /// torn down; the local artifact cache survives, so re-warming costs
    /// only the loading phase).
    pub keep_alive_s: f64,
    /// Whether keep-alive expiry actually tears instances down. `false`
    /// pins warm nodes forever (a reserved-capacity fleet).
    pub scale_to_zero: bool,
    /// Unplaced backlog per live node above which the autoscaler starts
    /// the cheapest cold node.
    pub target_queue_depth: usize,
    /// Optional periodic autoscaler cadence, seconds: when set, a
    /// recurring [`FleetEvent::ScaleDecision`] re-evaluates the backlog on
    /// this interval, decoupling scale-up from arrival events. `None`
    /// (the default) keeps the purely reactive behavior — the event
    /// schedule, and therefore the report, is byte-identical to the
    /// pre-event-core simulator.
    pub eval_interval_s: Option<f64>,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            keep_alive_s: 60.0,
            scale_to_zero: true,
            target_queue_depth: 4,
            eval_interval_s: None,
        }
    }
}

/// Resilience knobs for registry fetches (§6): a fetch attempt that the
/// registry fails costs a timeout, retries back off exponentially (bounded),
/// and an exhausted retry budget **degrades** that cold start to the
/// vanilla path (§7) instead of failing it — the node still comes up, just
/// without the materialized artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchPolicy {
    /// Wall-clock charged per failed fetch attempt, seconds.
    pub timeout_s: f64,
    /// Retries after the initial attempt before degrading.
    pub retry_budget: u32,
    /// First retry's backoff, seconds; doubles per retry.
    pub backoff_base_s: f64,
    /// Backoff ceiling, seconds.
    pub backoff_max_s: f64,
}

impl Default for FetchPolicy {
    fn default() -> Self {
        FetchPolicy {
            timeout_s: 2.0,
            retry_budget: 3,
            backoff_base_s: 0.25,
            backoff_max_s: 4.0,
        }
    }
}

/// Former name of [`FetchPolicy`].
#[deprecated(note = "renamed to FetchPolicy; the registry *backend* is now picked by RegistryMode")]
pub type RegistryPolicy = FetchPolicy;

// ---------------------------------------------------------------------
// Registry backends: what a cache-miss fetch actually moves.

/// One transfer unit of a registry fetch: a content-addressed chunk for
/// [`ContentAddressed`], the entire artifact for [`WholeArtifact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchUnit {
    /// Content digest (FNV-1a over the chunk bytes for real manifests).
    pub digest: u64,
    /// Unit size, bytes.
    pub bytes: u64,
}

/// The resolved fetch plan of one cold start: which units must move given
/// the node's chunk-level residency, and the byte accounting behind them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FetchPlan {
    /// Units that must transfer (missing from the node).
    pub missing: Vec<FetchUnit>,
    /// Bytes the missing units total.
    pub bytes_needed: u64,
    /// Bytes already resident on the node (resolved without a transfer).
    pub bytes_resolved: u64,
    /// Resident unit count — the chunk hits of this resolution.
    pub chunk_hits: u64,
}

/// A registry backend: resolves what a cold start of `model` must fetch
/// and prices the transfer. The fleet consults the backend selected by
/// [`ClusterSpec::registry_mode`] on every cache-miss cold start; retry
/// and degradation behavior stays with [`FetchPolicy`] regardless of the
/// backend.
pub trait Registry {
    /// Backend name (reports and telemetry).
    fn name(&self) -> &'static str;

    /// Resolves the fetch plan of `model` against the chunk digests
    /// already resident on the fetching node.
    fn resolve(
        &self,
        model: u32,
        resident: &std::collections::BTreeSet<u64>,
        profile: &FleetProfile,
    ) -> FetchPlan;

    /// Simulated transfer duration of `plan`'s missing units. Backends
    /// scale the profile's measured per-model fetch cost by the fraction
    /// of bytes that actually move.
    fn fetch(&self, model: u32, plan: &FetchPlan, profile: &FleetProfile) -> SimDuration;
}

/// Legacy whole-artifact registry: every cache miss transfers the entire
/// `<GPU type, model type>` entry at exactly the profile's measured fetch
/// cost. This is the default backend; fleets running it produce reports
/// byte-identical to the pre-registry-trait simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WholeArtifact;

impl Registry for WholeArtifact {
    fn name(&self) -> &'static str {
        "whole"
    }

    fn resolve(
        &self,
        model: u32,
        _resident: &std::collections::BTreeSet<u64>,
        profile: &FleetProfile,
    ) -> FetchPlan {
        let bytes = profile.artifact_bytes_for(model);
        FetchPlan {
            missing: vec![FetchUnit {
                digest: mix(0x4a01_e0a7 ^ u64::from(model)),
                bytes,
            }],
            bytes_needed: bytes,
            bytes_resolved: 0,
            chunk_hits: 0,
        }
    }

    fn fetch(&self, model: u32, _plan: &FetchPlan, profile: &FleetProfile) -> SimDuration {
        profile.fetch_for(model)
    }
}

/// Per-model chunk list of a [`RegistryCatalog`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelManifest {
    /// Ordered transfer units (chunk digest + length) of this model's
    /// artifact.
    pub units: Vec<FetchUnit>,
}

impl ModelManifest {
    /// Total artifact bytes across the manifest's units.
    pub fn total_bytes(&self) -> u64 {
        self.units.iter().map(|u| u.bytes).sum()
    }
}

/// Chunk manifests of every model the fleet serves, indexed by model id —
/// the content-addressed registry's view of the artifact store. Models
/// beyond the catalog (or with an empty manifest) fall back to a single
/// synthetic whole-artifact unit so partially-cataloged fleets still run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistryCatalog {
    /// Per-model manifests, model id order.
    pub models: Vec<ModelManifest>,
}

impl RegistryCatalog {
    /// Builds a catalog from a packed [`medusa::ChunkStore`]: manifest `m`
    /// becomes model `m`'s chunk list.
    pub fn from_store(store: &medusa::ChunkStore) -> Self {
        RegistryCatalog {
            models: store
                .manifests()
                .iter()
                .map(|m| ModelManifest {
                    units: m
                        .chunks
                        .iter()
                        .map(|c| FetchUnit {
                            digest: c.digest,
                            bytes: u64::from(c.len),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// A catalog where each model is one monolithic unit of the given
    /// size — chunk-granularity accounting with whole-artifact transfer
    /// behavior (the control row of registry benchmarks).
    pub fn monolithic(bytes_per_model: &[u64]) -> Self {
        RegistryCatalog {
            models: bytes_per_model
                .iter()
                .enumerate()
                .map(|(m, &bytes)| ModelManifest {
                    units: vec![FetchUnit {
                        digest: mix(0x6d01_0f1c ^ m as u64),
                        bytes,
                    }],
                })
                .collect(),
        }
    }

    /// The transfer units of `model`: its cataloged manifest, or the
    /// synthetic whole-artifact fallback for out-of-catalog models.
    pub fn units_for(&self, model: u32, profile: &FleetProfile) -> Vec<FetchUnit> {
        match self.models.get(model as usize) {
            Some(m) if !m.units.is_empty() => m.units.clone(),
            _ => vec![FetchUnit {
                digest: mix(0xca7a_1070 ^ u64::from(model)),
                bytes: profile.artifact_bytes_for(model),
            }],
        }
    }
}

/// Content-addressed registry: resolves each fetch against the node's
/// resident chunk set and transfers only the missing chunks, priced as the
/// missing fraction of the model's measured whole-artifact fetch cost.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContentAddressed {
    /// Per-model chunk manifests.
    pub catalog: RegistryCatalog,
}

impl Registry for ContentAddressed {
    fn name(&self) -> &'static str {
        "cas"
    }

    fn resolve(
        &self,
        model: u32,
        resident: &std::collections::BTreeSet<u64>,
        profile: &FleetProfile,
    ) -> FetchPlan {
        let mut plan = FetchPlan::default();
        for u in self.catalog.units_for(model, profile) {
            if resident.contains(&u.digest) {
                plan.bytes_resolved += u.bytes;
                plan.chunk_hits += 1;
            } else {
                plan.bytes_needed += u.bytes;
                plan.missing.push(u);
            }
        }
        plan
    }

    fn fetch(&self, model: u32, plan: &FetchPlan, profile: &FleetProfile) -> SimDuration {
        let total = plan.bytes_needed + plan.bytes_resolved;
        if plan.bytes_needed == 0 || total == 0 {
            return SimDuration::ZERO;
        }
        let base = profile.fetch_for(model).as_nanos() as u128;
        SimDuration::from_nanos((base * plan.bytes_needed as u128 / total as u128) as u64)
    }
}

/// Which [`Registry`] backend the fleet fetches through.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RegistryMode {
    /// [`WholeArtifact`] — the legacy, golden-pinned default.
    #[default]
    Whole,
    /// [`ContentAddressed`] over the given catalog: chunk-level residency,
    /// delta-only transfers, and [`RegistryReport`] counters.
    ContentAddressed(RegistryCatalog),
}

impl RegistryMode {
    /// Instantiates the backend.
    pub fn build(&self) -> Box<dyn Registry> {
        match self {
            RegistryMode::Whole => Box::new(WholeArtifact),
            RegistryMode::ContentAddressed(catalog) => Box::new(ContentAddressed {
                catalog: catalog.clone(),
            }),
        }
    }
}

/// Chunk-level registry counters of one content-addressed fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RegistryReport {
    /// Bytes actually transferred from the registry.
    pub bytes_fetched: u64,
    /// Bytes resolved from chunks already resident (never transferred).
    pub bytes_resolved: u64,
    /// Chunk-level residency hits across all fetch resolutions.
    pub chunk_hits: u64,
    /// Chunks that had to transfer.
    pub chunk_misses: u64,
}

impl RegistryReport {
    /// Dedup ratio of the run's fetch traffic: logical bytes resolved per
    /// byte actually transferred (1.0 when nothing deduplicated).
    pub fn dedup_ratio(&self) -> f64 {
        if self.bytes_fetched == 0 {
            1.0
        } else {
            (self.bytes_fetched + self.bytes_resolved) as f64 / self.bytes_fetched as f64
        }
    }
}

/// Deterministic fleet-level fault injection. All-zero (the default)
/// injects nothing and leaves the simulation byte-identical to a fault-free
/// build; every decision is derived from `seed` plus simulated state, never
/// from host randomness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterFaults {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Per-mille probability that one registry fetch attempt fails.
    pub registry_fail_per_mille: u32,
    /// Per-mille probability that a cold start crashes its node midway.
    pub node_crash_per_mille: u32,
}

/// Eviction policy of the bounded node-local artifact cache (§6). All
/// tie-breaks are deterministic (by model id), so cache churn is as
/// reproducible as everything else in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used artifact.
    Lru,
    /// Evict the least-frequently-used artifact (ties by recency).
    Lfu,
    /// Evict the artifact that is cheapest to re-materialize — the one
    /// with the smallest fetch + restore cost — keeping expensive (large)
    /// artifacts resident even when they are touched rarely.
    CostAware,
}

impl EvictionPolicy {
    /// All built-in eviction policies.
    pub const ALL: [EvictionPolicy; 3] = [
        EvictionPolicy::Lru,
        EvictionPolicy::Lfu,
        EvictionPolicy::CostAware,
    ];

    /// Stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::CostAware => "cost-aware",
        }
    }

    /// Parses a CLI eviction-policy name.
    pub fn parse(s: &str) -> Option<EvictionPolicy> {
        match s {
            "lru" => Some(EvictionPolicy::Lru),
            "lfu" => Some(EvictionPolicy::Lfu),
            "cost-aware" => Some(EvictionPolicy::CostAware),
            _ => None,
        }
    }
}

/// Capacity bound of the node-local artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCapacity {
    /// No bound — the pre-multi-tenant behavior (nothing is ever evicted).
    Unlimited,
    /// At most this many materialized artifacts per node.
    Artifacts(u32),
    /// At most this many artifact bytes per node.
    Bytes(u64),
}

/// Node-local artifact cache configuration: capacity bound plus eviction
/// policy. The default (unlimited, LRU) never evicts, which reproduces the
/// single-model fleet byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Capacity bound.
    pub capacity: CacheCapacity,
    /// Eviction policy applied when an insert exceeds the bound.
    pub eviction: EvictionPolicy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: CacheCapacity::Unlimited,
            eviction: EvictionPolicy::Lru,
        }
    }
}

/// Shape of the simulated fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// The fleet's workers.
    pub nodes: Vec<NodeSpec>,
    /// Maximum concurrently admitted sequences per node.
    pub max_running: u32,
    /// Horizon after the last arrival at which the simulation stops
    /// (drains stragglers), in seconds.
    pub drain_s: f64,
    /// Autoscaler configuration.
    pub autoscaler: AutoscalerConfig,
    /// Registry-fetch resilience policy (timeout/retry/backoff).
    pub fetch_policy: FetchPolicy,
    /// Registry backend: what a cache-miss fetch actually moves. The
    /// default [`RegistryMode::Whole`] reproduces the legacy whole-artifact
    /// transfers byte-identically.
    pub registry_mode: RegistryMode,
    /// Fault injection (defaults to none).
    pub faults: ClusterFaults,
    /// Node-local artifact cache bound + eviction policy.
    pub cache: CacheConfig,
    /// Per-tenant TTFT SLO threshold, seconds: a request whose TTFT lands
    /// at or under this counts toward its tenant's SLO attainment.
    pub slo_ttft_s: f64,
    /// Optional predictive prewarming: when set, every arrival feeds a
    /// [`PrewarmEstimator`] whose decisions schedule prewarm-tagged
    /// [`FleetEvent::ScaleDecision`] events ahead of forecast bursts.
    /// `None` (the default) keeps the purely reactive fleet and a
    /// byte-identical event schedule.
    pub prewarm: Option<PrewarmConfig>,
    /// Optional pipeline-parallel cold starts: shard one model's restore
    /// across up to `k` nodes, each restoring a contiguous MAF2 shard
    /// range, serving the first token when the first stage is live.
    /// `None` (the default) keeps single-node cold starts; it also
    /// defaults to 2 when the [`Policy::Pipeline`] scheduler is selected.
    pub pipeline_k: Option<u32>,
}

impl ClusterSpec {
    /// A fleet of `n` identical single-GPU A100 workers with cold local
    /// artifact caches.
    pub fn uniform(n: usize) -> Self {
        ClusterSpec {
            nodes: (0..n)
                .map(|_| NodeSpec {
                    gpu: "A100-40GB".to_string(),
                    tp: 1,
                    cached: false,
                })
                .collect(),
            max_running: 32,
            drain_s: 600.0,
            autoscaler: AutoscalerConfig::default(),
            fetch_policy: FetchPolicy::default(),
            registry_mode: RegistryMode::Whole,
            faults: ClusterFaults::default(),
            cache: CacheConfig::default(),
            slo_ttft_s: 2.5,
            prewarm: None,
            pipeline_k: None,
        }
    }

    /// Marks the first `k` nodes' local caches as pre-populated (builder
    /// style).
    pub fn with_cached_prefix(mut self, k: usize) -> Self {
        for node in self.nodes.iter_mut().take(k) {
            node.cached = true;
        }
        self
    }

    /// Sets every node's tensor-parallel degree (builder style).
    pub fn with_tp(mut self, tp: u32) -> Self {
        for node in &mut self.nodes {
            node.tp = tp;
        }
        self
    }

    /// Sets the autoscaler configuration (builder style).
    pub fn with_autoscaler(mut self, autoscaler: AutoscalerConfig) -> Self {
        self.autoscaler = autoscaler;
        self
    }

    /// Sets the registry-fetch resilience policy (builder style).
    pub fn with_fetch_policy(mut self, fetch_policy: FetchPolicy) -> Self {
        self.fetch_policy = fetch_policy;
        self
    }

    /// Selects the registry backend (builder style).
    pub fn with_registry_mode(mut self, mode: RegistryMode) -> Self {
        self.registry_mode = mode;
        self
    }

    /// Former name of [`ClusterSpec::with_fetch_policy`].
    #[deprecated(note = "renamed to with_fetch_policy; with_registry_mode picks the backend")]
    pub fn with_registry(self, registry: FetchPolicy) -> Self {
        self.with_fetch_policy(registry)
    }

    /// Arms fleet-level fault injection (builder style).
    pub fn with_faults(mut self, faults: ClusterFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Bounds the node-local artifact caches (builder style).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the per-tenant TTFT SLO threshold (builder style).
    pub fn with_slo_ttft(mut self, slo_ttft_s: f64) -> Self {
        self.slo_ttft_s = slo_ttft_s;
        self
    }

    /// Sets the idle keep-alive window (builder style).
    pub fn with_keep_alive(mut self, keep_alive_s: f64) -> Self {
        self.autoscaler.keep_alive_s = keep_alive_s;
        self
    }

    /// Arms predictive prewarming (builder style).
    pub fn with_prewarm(mut self, prewarm: PrewarmConfig) -> Self {
        self.prewarm = Some(prewarm);
        self
    }

    /// Shards cold starts pipeline-parallel across up to `k` nodes
    /// (builder style). `k < 2` keeps single-node starts.
    pub fn with_pipeline(mut self, k: u32) -> Self {
        self.pipeline_k = Some(k);
        self
    }
}

// ---------------------------------------------------------------------
// Fleet cost profile.

/// The measured cost model every node of a fleet replays: serving tables
/// plus the cold-start costs of the per-instance pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetProfile {
    /// Strategy each node's cold start runs.
    pub strategy: Strategy,
    /// Serving tables; `perf.loading` is the **cache-hit** cold-start
    /// makespan (for Medusa: restoring a locally cached artifact).
    pub perf: PerfModel,
    /// Aggregate loading-phase work across ranks of one cold start (equal
    /// to `perf.loading` at `tp = 1`; the sum of per-rank stage durations
    /// at `tp > 1`).
    pub coldstart_work: SimDuration,
    /// Registry-fetch penalty a Medusa cold start pays when the node-local
    /// cache misses. Zero for non-materialized strategies.
    pub fetch: SimDuration,
    /// Loading makespan of the **degraded** (vanilla-path) cold start a
    /// node falls back to when its registry fetch budget is exhausted
    /// (§7). Equal to `perf.loading` for non-materialized strategies.
    pub degraded_loading: SimDuration,
    /// Per-model cold-start cost overrides, indexed by model id. Empty
    /// (the default) makes every model cost the base `perf.loading` /
    /// `fetch` — the single-model fleet. Multi-tenant fleets populate
    /// this so artifacts differ in fetch and restore cost, which is what
    /// gives eviction policy a signal to weigh.
    pub model_costs: Vec<ModelCost>,
    /// Measured registry-entry size in bytes: the MAF2-encoded artifact
    /// bundle plus the weight payload it restores. Zero for profiles built
    /// without measurement ([`FleetProfile::from_perf`]), in which case
    /// byte-bounded caches fall back to a fetch-derived estimate — see
    /// [`FleetProfile::artifact_bytes_for`].
    pub artifact_bytes: u64,
}

/// Cold-start costs of one model's materialized artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelCost {
    /// Registry-fetch penalty on a node-local cache miss.
    pub fetch: SimDuration,
    /// Cache-hit cold-start (restore) makespan.
    pub loading: SimDuration,
    /// Artifact size, for byte-bounded caches.
    pub artifact_bytes: u64,
}

impl FleetProfile {
    /// Builds a profile from an explicit [`PerfModel`] (tests/analysis).
    /// `coldstart_work` and `degraded_loading` default to the loading
    /// makespan (a `tp = 1` instance); `fetch` defaults to zero.
    pub fn from_perf(strategy: Strategy, perf: PerfModel) -> Self {
        FleetProfile {
            strategy,
            coldstart_work: perf.loading,
            degraded_loading: perf.loading,
            perf,
            fetch: SimDuration::ZERO,
            model_costs: Vec::new(),
            artifact_bytes: 0,
        }
    }

    /// Sets the measured registry-entry byte size (builder style); byte-
    /// bounded caches and fetch accounting use it instead of the
    /// fetch-derived estimate.
    pub fn with_artifact_bytes(mut self, bytes: u64) -> Self {
        self.artifact_bytes = bytes;
        self
    }

    /// Sets the cache-miss fetch penalty (builder style).
    pub fn with_fetch(mut self, fetch: SimDuration) -> Self {
        self.fetch = fetch;
        self
    }

    /// Sets the aggregate per-rank cold-start work (builder style).
    pub fn with_coldstart_work(mut self, work: SimDuration) -> Self {
        self.coldstart_work = work;
        self
    }

    /// Sets the degraded (vanilla-path) loading makespan (builder style).
    pub fn with_degraded_loading(mut self, loading: SimDuration) -> Self {
        self.degraded_loading = loading;
        self
    }

    /// Sets explicit per-model cold-start costs (builder style).
    pub fn with_model_costs(mut self, model_costs: Vec<ModelCost>) -> Self {
        self.model_costs = model_costs;
        self
    }

    /// Derives a heterogeneous `models`-way cost table from the base
    /// profile (builder style): model `m` scales the base fetch, loading,
    /// and artifact size by `(4 + m) / 4`, so model 0 costs exactly the
    /// base profile and each higher id is 25% larger — rare tail models
    /// are the expensive ones, the shape that makes cost-aware eviction
    /// diverge from pure recency.
    pub fn with_scaled_models(mut self, models: u32) -> Self {
        // Real measured bytes when available, fetch-derived estimate
        // otherwise (identical to the historical derivation for synthetic
        // profiles, so committed goldens are unaffected).
        let base_bytes = if self.artifact_bytes > 0 {
            self.artifact_bytes
        } else {
            self.fetch.as_nanos().saturating_mul(5) / 4
        };
        let base_fetch = self.fetch.as_nanos();
        let base_loading = self.perf.loading.as_nanos();
        self.model_costs = (0..models)
            .map(|m| {
                let num = 4 + m as u64;
                ModelCost {
                    fetch: SimDuration::from_nanos(base_fetch * num / 4),
                    loading: SimDuration::from_nanos(base_loading * num / 4),
                    artifact_bytes: base_bytes * num / 4,
                }
            })
            .collect();
        self
    }

    /// Cache-miss fetch penalty of `model` (base `fetch` when no per-model
    /// cost is configured).
    pub fn fetch_for(&self, model: u32) -> SimDuration {
        self.model_costs
            .get(model as usize)
            .map_or(self.fetch, |c| c.fetch)
    }

    /// Cache-hit loading makespan of `model`.
    pub fn loading_for(&self, model: u32) -> SimDuration {
        self.model_costs
            .get(model as usize)
            .map_or(self.perf.loading, |c| c.loading)
    }

    /// Artifact size of `model`, bytes: the per-model override when one is
    /// configured, else the measured registry-entry size
    /// ([`FleetProfile::artifact_bytes`]), else — for synthetic profiles
    /// that never measured a real artifact — an estimate derived from the
    /// fetch penalty at the modeled fabric bandwidth.
    pub fn artifact_bytes_for(&self, model: u32) -> u64 {
        let base = if self.artifact_bytes > 0 {
            self.artifact_bytes
        } else {
            self.fetch.as_nanos().saturating_mul(5) / 4
        };
        self.model_costs
            .get(model as usize)
            .map_or(base, |c| c.artifact_bytes)
    }

    /// Aggregate per-rank cold-start work of `model`: the base work scaled
    /// by the model's loading ratio.
    fn coldstart_work_for(&self, model: u32) -> SimDuration {
        match self.model_costs.get(model as usize) {
            None => self.coldstart_work,
            Some(c) => {
                // u128 intermediate: work × loading both in nanoseconds
                // overflows u64 for 100×-scale artifact profiles.
                let base = self.perf.loading.as_nanos().max(1) as u128;
                let scaled =
                    self.coldstart_work.as_nanos() as u128 * c.loading.as_nanos() as u128 / base;
                SimDuration::from_nanos(scaled.min(u64::MAX as u128) as u64)
            }
        }
    }

    /// Measures a fleet profile by running the **real** per-instance
    /// pipelines: serving tables via [`PerfModel::measure`] and the
    /// cold-start makespan/work via a `tp`-way [`medusa::ColdStart`] run
    /// under the requested [`Parallelism`] knob — the fleet simulator then
    /// replays those numbers at queueing scale. For Medusa the degraded
    /// (vanilla-path) loading makespan is measured alongside, so the
    /// simulator can price registry-budget-exhausted cold starts.
    ///
    /// The cache-miss fetch penalty models streaming the materialized
    /// `<GPU type, model type>` entry (dominated by the weights) over a
    /// 100 Gb/s fabric; non-Medusa strategies fetch nothing.
    ///
    /// # Errors
    ///
    /// Propagates materialization and cold-start errors.
    pub fn measure(
        strategy: Strategy,
        spec: &ModelSpec,
        gpu: GpuSpec,
        cost: CostModel,
        tp: u32,
        parallelism: Parallelism,
        seed: u64,
    ) -> MedusaResult<Self> {
        // Serving tables are per-GPU; measure them on a single-GPU
        // instance (with its own tp=1 artifact for Medusa).
        let serving_artifact = match strategy {
            Strategy::Medusa => Some(materialize_offline(spec, gpu.clone(), cost.clone(), seed)?.0),
            _ => None,
        };
        let mut perf = PerfModel::measure(
            strategy,
            spec,
            gpu.clone(),
            cost.clone(),
            serving_artifact.as_ref(),
            seed,
        )?;
        // Loading replays the real tp-way pipeline under the knob.
        let opts = ColdStartOptions {
            seed: seed ^ 0x5eed,
            warm_container: true,
            parallelism,
            ..Default::default()
        };
        let builder = || {
            ColdStart::new(spec)
                .gpu(gpu.clone())
                .cost(cost.clone())
                .options(opts)
                .tp(tp)
        };
        let tp_artifacts = match strategy {
            Strategy::Medusa => Some(
                ColdStart::new(spec)
                    .gpu(gpu.clone())
                    .cost(cost.clone())
                    .parallelism(parallelism)
                    .tp(tp)
                    .materialize(seed)?
                    .0,
            ),
            _ => None,
        };
        let cold = match &tp_artifacts {
            Some(arts) => builder().strategy(strategy).artifacts(arts).run()?,
            None => builder().strategy(strategy).run()?,
        };
        perf.loading = cold.loading();
        let (fetch, degraded_loading, artifact_bytes) = match strategy {
            Strategy::Medusa => {
                // The registry entry a cache-missing node streams is the
                // MAF2-encoded bundle plus the weight payload it restores;
                // encoding the real artifacts prices both the fetch and the
                // byte-bounded cache accounting off the actual format.
                let maf2_bytes = tp_artifacts
                    .as_ref()
                    .map(|arts| arts.to_maf2().map(|b| b.len() as u64))
                    .transpose()?
                    .unwrap_or(0);
                let entry_bytes = spec.param_bytes() + maf2_bytes;
                (
                    SimDuration::from_secs_f64(entry_bytes as f64 / FETCH_BANDWIDTH_BPS),
                    builder().strategy(Strategy::Vanilla).run()?.loading(),
                    entry_bytes,
                )
            }
            _ => (SimDuration::ZERO, perf.loading, 0),
        };
        Ok(FleetProfile {
            strategy,
            perf,
            coldstart_work: cold.aggregate_work(),
            fetch,
            degraded_loading,
            model_costs: Vec::new(),
            artifact_bytes,
        })
    }

    /// Cold-start makespan of `model` on a node whose local cache state
    /// for that model is `cached`.
    fn coldstart_makespan(&self, cached: bool, model: u32) -> SimDuration {
        let loading = self.loading_for(model);
        if cached || self.strategy != Strategy::Medusa {
            loading
        } else {
            loading + self.fetch_for(model)
        }
    }
}

// ---------------------------------------------------------------------
// Scheduler policies.

/// Lifecycle state of one node — the state machine is
/// `Cold → Starting → Warm → (keep-alive expiry) → Cold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Scaled to zero: no instance. Routing here triggers a cold start.
    Cold,
    /// Cold start in flight; queued requests wait for readiness.
    Starting,
    /// Instance live and serving.
    Warm,
}

/// Read-only view of one node, handed to [`Scheduler`] policies for one
/// routing decision. Views are computed **per candidate request**, so
/// `cached` and `accepts` already encode that request's model: a warm
/// node serving a different model does not accept, and `cached` answers
/// "does this node's cache hold *the requested model's* artifact".
#[derive(Debug, Clone, Copy)]
pub struct NodeView {
    /// Lifecycle state.
    pub state: NodeState,
    /// Pending + running sequences on the node.
    pub load: usize,
    /// Whether the local artifact cache holds the materialized state for
    /// the candidate request's model (so a cold start here skips the
    /// registry fetch).
    pub cached: bool,
    /// Whether admitting *this* request respects the node's batch-slot
    /// and KV-capacity limits and model affinity (always `true` for cold
    /// nodes — they start empty and can start any model; always `false`
    /// for pipeline shard helpers — they release back to cold, so work
    /// must never queue on them).
    pub accepts: bool,
    /// Estimated time until this node could produce the candidate
    /// request's first token, ns: a warm node's queue-drain estimate, a
    /// cold node's full start cost (registry-fetch bytes over the fabric
    /// when its cache misses, plus the restore), a starting node's
    /// expected remaining start plus drain. Scored by
    /// [`ServerlessLlmLocality`]; the legacy policies ignore it.
    pub start_cost_ns: u64,
}

/// A routing decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Route to node `i`, cold-starting it first when necessary.
    Node(usize),
    /// No placement — leave the request in the global queue.
    Queue,
}

/// A pluggable routing policy.
///
/// [`Scheduler::route`] places one request; [`Scheduler::pick_cold`] is
/// consulted by the autoscaler whenever backlog (or an empty fleet) calls
/// for waking a scaled-to-zero node — this is where a policy accounts the
/// Medusa vs vanilla cold-start cost difference.
pub trait Scheduler {
    /// Policy name (embedded in reports and telemetry).
    fn name(&self) -> &'static str;

    /// Routes one request.
    fn route(&mut self, nodes: &[NodeView]) -> Decision;

    /// Picks which cold node the autoscaler should start for a request of
    /// `model` (the views' `cached` bit already reflects that model's
    /// locality). The default is cold-start-cost-oblivious: the first
    /// cold node by index.
    fn pick_cold(&mut self, nodes: &[NodeView], model: u32) -> Option<usize> {
        let _ = model;
        nodes.iter().position(|n| n.state == NodeState::Cold)
    }
}

/// Rotates over nodes, skipping ones that cannot accept; wakes cold nodes
/// as the rotation reaches them.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, nodes: &[NodeView]) -> Decision {
        if nodes.is_empty() {
            return Decision::Queue;
        }
        for off in 0..nodes.len() {
            let i = (self.next + off) % nodes.len();
            if nodes[i].accepts {
                self.next = (i + 1) % nodes.len();
                return Decision::Node(i);
            }
        }
        Decision::Queue
    }
}

/// Routes to the least-loaded node that can accept, **oblivious to
/// cold-start cost**: a cold node counts as load zero, so bursts fan out
/// across the fleet and wake every worker — the classic serverless
/// anti-pattern Medusa's cheap cold starts paper over.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl Scheduler for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, nodes: &[NodeView]) -> Decision {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.accepts)
            .min_by_key(|(i, n)| (n.load, *i))
            .map_or(Decision::Queue, |(i, _)| Decision::Node(i))
    }
}

/// Cold-start-aware routing (§6-informed): warm instances first (packed by
/// load), then instances whose cold start is already in flight; it never
/// wakes a cold node just to spread load — scale-out is left to the
/// autoscaler's backlog threshold, and when the fleet *must* start a node
/// this policy picks the one whose local artifact cache already holds the
/// `<GPU type, model type>` entry, i.e. the cheapest Medusa cold start
/// (no registry fetch).
#[derive(Debug, Default)]
pub struct ColdStartAware;

impl Scheduler for ColdStartAware {
    fn name(&self) -> &'static str {
        "coldstart-aware"
    }

    fn route(&mut self, nodes: &[NodeView]) -> Decision {
        let pick = |state: NodeState| {
            nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.state == state && n.accepts)
                .min_by_key(|(i, n)| (n.load, *i))
                .map(|(i, _)| i)
        };
        if let Some(i) = pick(NodeState::Warm) {
            return Decision::Node(i);
        }
        if let Some(i) = pick(NodeState::Starting) {
            return Decision::Node(i);
        }
        Decision::Queue
    }

    fn pick_cold(&mut self, nodes: &[NodeView], _model: u32) -> Option<usize> {
        // Cheapest start first: a node whose cache holds this model's
        // artifact skips the registry fetch. The views are computed per
        // candidate model, so `cached` *is* the model-affinity bit — a
        // warm-cache node always wins over an empty one.
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.state == NodeState::Cold)
            .min_by_key(|(i, n)| (!n.cached, *i))
            .map(|(i, _)| i)
    }
}

/// ServerlessLLM-style locality routing: every candidate node — warm,
/// starting, or cold — is scored by its **estimated start cost**
/// ([`NodeView::start_cost_ns`]: cache-hit restore vs registry-fetch
/// bytes at real MAF2 sizes, queue drain, warm state) and the request
/// goes to the cheapest, instead of to the shortest queue. An idle warm
/// node (cost ~0) always wins; once warm queues drain slower than a
/// cached cold start, the policy wakes the node whose artifact cache
/// makes that start cheapest.
///
/// With `pipeline` set (the [`Policy::Pipeline`] flavor) routing is
/// identical but the fleet shards each cold start across
/// [`ClusterSpec::pipeline_k`] nodes (default 2).
#[derive(Debug, Default)]
pub struct ServerlessLlmLocality {
    /// Whether this is the pipeline-parallel flavor (affects only the
    /// reported policy name; the sharding itself is a fleet-level knob).
    pub pipeline: bool,
}

impl Scheduler for ServerlessLlmLocality {
    fn name(&self) -> &'static str {
        if self.pipeline {
            "pipeline"
        } else {
            "locality"
        }
    }

    fn route(&mut self, nodes: &[NodeView]) -> Decision {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.accepts)
            .min_by_key(|(i, n)| (n.start_cost_ns, n.load, *i))
            .map_or(Decision::Queue, |(i, _)| Decision::Node(i))
    }

    fn pick_cold(&mut self, nodes: &[NodeView], _model: u32) -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.state == NodeState::Cold)
            .min_by_key(|(i, n)| (n.start_cost_ns, *i))
            .map(|(i, _)| i)
    }
}

/// The built-in policies, nameable from the CLI and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`ColdStartAware`].
    ColdStartAware,
    /// [`ServerlessLlmLocality`] — start-cost locality routing.
    Locality,
    /// [`ServerlessLlmLocality`] plus pipeline-parallel cold starts
    /// (defaults [`ClusterSpec::pipeline_k`] to 2 when unset).
    Pipeline,
}

impl Policy {
    /// The legacy built-in policies. Deliberately **excludes**
    /// [`Policy::Locality`] and [`Policy::Pipeline`]: the golden
    /// differential matrix ([`crate::scenarios`]) iterates this constant,
    /// and the committed golden reports must stay byte-identical — the
    /// predictive policies race in [`Policy::PREDICTIVE`] and the
    /// policy-race bench gate instead.
    pub const ALL: [Policy; 3] = [
        Policy::RoundRobin,
        Policy::LeastLoaded,
        Policy::ColdStartAware,
    ];

    /// The predictive/parallel policies raced by the policy-race gate.
    pub const PREDICTIVE: [Policy; 2] = [Policy::Locality, Policy::Pipeline];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            Policy::RoundRobin => Box::new(RoundRobin::default()),
            Policy::LeastLoaded => Box::new(LeastLoaded),
            Policy::ColdStartAware => Box::new(ColdStartAware),
            Policy::Locality => Box::new(ServerlessLlmLocality { pipeline: false }),
            Policy::Pipeline => Box::new(ServerlessLlmLocality { pipeline: true }),
        }
    }

    /// Parses a CLI policy name.
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "round-robin" => Some(Policy::RoundRobin),
            "least-loaded" => Some(Policy::LeastLoaded),
            "coldstart-aware" => Some(Policy::ColdStartAware),
            "locality" => Some(Policy::Locality),
            "pipeline" => Some(Policy::Pipeline),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Reports.

/// Per-node accounting of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeReport {
    /// GPU type.
    pub gpu: String,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Cold starts this node paid.
    pub cold_starts: u32,
    /// Simulated time spent cold-starting, ns.
    pub cold_ns: u64,
    /// First tokens produced (requests prefilled here).
    pub served: u32,
    /// Busy (iterating) wall-clock, ns.
    pub busy_ns: u64,
    /// Aggregate per-rank work, ns: cold-start work plus `tp`× the busy
    /// wall-clock (every rank executes every serving iteration).
    pub work_ns: u64,
    /// Whether the local artifact cache holds the entry after the run.
    pub cached_at_end: bool,
}

/// Per-tenant (per-model) accounting of one multi-tenant fleet run.
///
/// Only present in reports of traces that actually carry nonzero model
/// ids — single-tenant reports serialize byte-identically to the
/// pre-multi-tenant format.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Model/tenant id.
    pub model: u32,
    /// Requests this tenant offered.
    pub offered: usize,
    /// Requests fully completed before the drain horizon.
    pub completed: usize,
    /// Cold starts paid for this tenant's model.
    pub cold_starts: u32,
    /// Median time-to-first-token, µs.
    pub ttft_p50_us: u64,
    /// 99th-percentile time-to-first-token, µs.
    pub ttft_p99_us: u64,
    /// Per-mille of this tenant's prefilled requests whose TTFT met the
    /// cluster's [`ClusterSpec::slo_ttft_s`] threshold.
    pub slo_attained_pm: u32,
}

/// Fleet-wide artifact-cache counters (bounded-cache or multi-tenant runs
/// only — hit/miss is accounted per Medusa cold start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Cold starts whose node-local cache already held the model.
    pub hits: u64,
    /// Cold starts that had to fetch from the registry.
    pub misses: u64,
    /// Artifacts evicted under the capacity bound.
    pub evictions: u64,
}

/// Predictive-prewarm counters (prewarm-enabled runs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrewarmReport {
    /// Prewarm cold starts the estimator issued.
    pub issued: u64,
    /// Prewarmed nodes that never served a request before scaling back
    /// down (or before the run ended) — the waste metric the policy-race
    /// gate bounds.
    pub unused: u64,
}

/// Deterministic summary of one fleet simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReport {
    /// Scheduler policy name.
    pub policy: String,
    /// Fleet-wide cold-start strategy.
    pub strategy: Strategy,
    /// Requests in the trace.
    pub offered: usize,
    /// Requests fully completed before the drain horizon.
    pub completed: usize,
    /// Total cold starts across the fleet.
    pub cold_starts: u32,
    /// Scale-to-zero (keep-alive expiry) events.
    pub scale_to_zero_events: u32,
    /// Registry-fetch retries across the fleet (failed attempts that were
    /// re-tried within the budget).
    pub fetch_retries: u32,
    /// Cold starts degraded to the vanilla path after exhausting the
    /// registry retry budget (§7 at fleet scale).
    pub degraded_cold_starts: u32,
    /// Nodes crashed mid-cold-start.
    pub node_failures: u32,
    /// Requests re-routed off a crashed node back through the scheduler.
    pub reroutes: u32,
    /// Time of the last completion, ns.
    pub makespan_ns: u64,
    /// Median time-to-first-token, µs.
    pub ttft_p50_us: u64,
    /// 99th-percentile time-to-first-token, µs.
    pub ttft_p99_us: u64,
    /// Mean time-to-first-token, µs.
    pub ttft_mean_us: u64,
    /// Order-sensitive fingerprint of the replayed trace
    /// ([`medusa_workload::fingerprint`]).
    pub trace_fingerprint: u64,
    /// Predictive-prewarm counters; `None` (omitted from the JSON)
    /// unless [`ClusterSpec::prewarm`] was set, keeping the committed
    /// goldens byte-identical.
    pub prewarm: Option<PrewarmReport>,
    /// Cold starts that actually sharded across ≥ 2 nodes; `None`
    /// (omitted) unless pipeline mode was active.
    pub pipeline_starts: Option<u64>,
    /// Per-tenant accounting, ascending model id. Empty for single-tenant
    /// traces (and then omitted from the serialized report, keeping the
    /// committed goldens byte-identical).
    pub tenants: Vec<TenantReport>,
    /// Artifact-cache counters; `None` (omitted) for unbounded
    /// single-tenant runs.
    pub cache: Option<CacheReport>,
    /// Chunk-level registry counters; `None` (omitted) unless the fleet
    /// ran under [`RegistryMode::ContentAddressed`], keeping the committed
    /// goldens byte-identical.
    pub registry: Option<RegistryReport>,
    /// Per-node accounting, node order.
    pub nodes: Vec<NodeReport>,
}

// Serialization is hand-written (the vendored serde stub has no
// `skip_serializing_if`): `tenants`/`cache` appear in the JSON only when
// populated, so pre-multi-tenant reports — including every committed
// golden — serialize byte-identically.
impl serde::Serialize for ClusterReport {
    fn to_value(&self) -> serde::Value {
        let mut m: Vec<(String, serde::Value)> = vec![
            ("policy".into(), self.policy.to_value()),
            ("strategy".into(), self.strategy.to_value()),
            ("offered".into(), self.offered.to_value()),
            ("completed".into(), self.completed.to_value()),
            ("cold_starts".into(), self.cold_starts.to_value()),
            (
                "scale_to_zero_events".into(),
                self.scale_to_zero_events.to_value(),
            ),
            ("fetch_retries".into(), self.fetch_retries.to_value()),
            (
                "degraded_cold_starts".into(),
                self.degraded_cold_starts.to_value(),
            ),
            ("node_failures".into(), self.node_failures.to_value()),
            ("reroutes".into(), self.reroutes.to_value()),
            ("makespan_ns".into(), self.makespan_ns.to_value()),
            ("ttft_p50_us".into(), self.ttft_p50_us.to_value()),
            ("ttft_p99_us".into(), self.ttft_p99_us.to_value()),
            ("ttft_mean_us".into(), self.ttft_mean_us.to_value()),
            (
                "trace_fingerprint".into(),
                self.trace_fingerprint.to_value(),
            ),
        ];
        if let Some(prewarm) = &self.prewarm {
            m.push(("prewarm".into(), prewarm.to_value()));
        }
        if let Some(pipeline_starts) = self.pipeline_starts {
            m.push(("pipeline_starts".into(), pipeline_starts.to_value()));
        }
        if !self.tenants.is_empty() {
            m.push(("tenants".into(), self.tenants.to_value()));
        }
        if let Some(cache) = &self.cache {
            m.push(("cache".into(), cache.to_value()));
        }
        if let Some(registry) = &self.registry {
            m.push(("registry".into(), registry.to_value()));
        }
        m.push(("nodes".into(), self.nodes.to_value()));
        serde::Value::Map(m)
    }
}

impl serde::Deserialize for ClusterReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let ctx = "ClusterReport";
        Ok(ClusterReport {
            policy: String::from_value(serde::field(v, "policy", ctx)?)?,
            strategy: Strategy::from_value(serde::field(v, "strategy", ctx)?)?,
            offered: usize::from_value(serde::field(v, "offered", ctx)?)?,
            completed: usize::from_value(serde::field(v, "completed", ctx)?)?,
            cold_starts: u32::from_value(serde::field(v, "cold_starts", ctx)?)?,
            scale_to_zero_events: u32::from_value(serde::field(v, "scale_to_zero_events", ctx)?)?,
            fetch_retries: u32::from_value(serde::field(v, "fetch_retries", ctx)?)?,
            degraded_cold_starts: u32::from_value(serde::field(v, "degraded_cold_starts", ctx)?)?,
            node_failures: u32::from_value(serde::field(v, "node_failures", ctx)?)?,
            reroutes: u32::from_value(serde::field(v, "reroutes", ctx)?)?,
            makespan_ns: u64::from_value(serde::field(v, "makespan_ns", ctx)?)?,
            ttft_p50_us: u64::from_value(serde::field(v, "ttft_p50_us", ctx)?)?,
            ttft_p99_us: u64::from_value(serde::field(v, "ttft_p99_us", ctx)?)?,
            ttft_mean_us: u64::from_value(serde::field(v, "ttft_mean_us", ctx)?)?,
            trace_fingerprint: u64::from_value(serde::field(v, "trace_fingerprint", ctx)?)?,
            prewarm: match v.get("prewarm") {
                Some(p) => Some(PrewarmReport::from_value(p)?),
                None => None,
            },
            pipeline_starts: match v.get("pipeline_starts") {
                Some(p) => Some(u64::from_value(p)?),
                None => None,
            },
            tenants: match v.get("tenants") {
                Some(t) => Vec::<TenantReport>::from_value(t)?,
                None => Vec::new(),
            },
            cache: match v.get("cache") {
                Some(c) => Some(CacheReport::from_value(c)?),
                None => None,
            },
            registry: match v.get("registry") {
                Some(r) => Some(RegistryReport::from_value(r)?),
                None => None,
            },
            nodes: Vec::<NodeReport>::from_value(serde::field(v, "nodes", ctx)?)?,
        })
    }
}

impl ClusterReport {
    /// Encodes the report as one stable JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plain struct encodes")
    }

    /// Decodes a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Execution statistics of one fleet simulation — *not* part of the
/// serialized [`ClusterReport`] (so the byte-identity contract is
/// unaffected), but useful for throughput gates and conservation checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Events the simulation loop processed.
    pub events_processed: u64,
    /// Events retracted before firing (cancelled keep-alives, crashed
    /// starts' stage completions).
    pub events_cancelled: u64,
    /// Arrival events handled before the horizon (≤ `offered`).
    pub arrived: usize,
    /// Requests still in the global queue when the simulation stopped.
    pub queued_at_end: usize,
    /// Requests pending or running on nodes when the simulation stopped.
    pub in_flight_at_end: usize,
    /// Nodes still mid-cold-start when the simulation stopped.
    pub starting_nodes_at_end: usize,
    /// Whether the run stopped at the drain horizon with events still
    /// pending (as opposed to draining the queue dry).
    pub horizon_truncated: bool,
}

/// Full outcome of one fleet simulation: the serializable report plus the
/// raw per-request TTFT samples (completion order) for analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The deterministic summary.
    pub report: ClusterReport,
    /// Per-request TTFT samples.
    pub ttfts: Vec<SimDuration>,
    /// Execution statistics (event counts etc.).
    pub stats: FleetStats,
}

impl FleetOutcome {
    /// Request-conservation residual: arrivals minus completions minus
    /// everything still queued or in flight at the end. Zero iff no
    /// request was lost or double-counted — the fuzz harness asserts this
    /// over adversarial workloads.
    pub fn conservation_residual(&self) -> i64 {
        self.stats.arrived as i64
            - self.report.completed as i64
            - self.stats.queued_at_end as i64
            - self.stats.in_flight_at_end as i64
    }
}

// ---------------------------------------------------------------------
// The simulator.

/// splitmix64 — the fleet's deterministic fault-decision hash.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-mille roll for one fault decision, keyed by the fleet fault seed
/// plus simulated state (node, start ordinal, attempt).
fn roll_per_mille(seed: u64, node: usize, start: u32, attempt: u32) -> u32 {
    let key = seed ^ ((node as u64) << 48) ^ ((start as u64) << 16) ^ (attempt as u64);
    (mix(key) % 1000) as u32
}

#[derive(Debug)]
struct RunningSeq {
    remaining: u32,
    kv_reserved: u64,
    model: u32,
}

/// One resident artifact of a node-local cache.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    model: u32,
    bytes: u64,
    /// Simulated time of the last touch (placement or cold-start hit).
    last_used: u64,
    /// Touch count, for LFU.
    uses: u64,
}

struct Node {
    spec: NodeSpec,
    state: NodeState,
    busy: bool,
    pending: VecDeque<usize>,
    running: Vec<RunningSeq>,
    kv_tokens: u64,
    idle_since: Option<u64>,
    cold_starts: u32,
    cold_ns: u64,
    served: u32,
    busy_ns: u64,
    work_ns: u64,
    /// Model the live (Warm/Starting) instance hosts; `None` when cold.
    /// The node-local artifact cache outlives the instance — it survives
    /// scale-to-zero — so it lives in `cache`, not here.
    model: Option<u32>,
    /// Node-local §6 artifact cache (linear scan: capacities are small).
    cache: Vec<CacheEntry>,
    /// Chunk-level residency under [`RegistryMode::ContentAddressed`]:
    /// the digests of every chunk backing a resident cache entry. Always
    /// empty in whole-artifact mode.
    chunks: std::collections::BTreeSet<u64>,
    /// Bumped on every crash; stale stage events are ignored (and
    /// retracted via their tokens, so they normally never even fire).
    epoch: u32,
    /// Whether the in-flight cold start degraded to the vanilla path
    /// (registry budget exhausted) — a degraded start populates no cache.
    degraded_start: bool,
    /// Pending [`FleetEvent::KeepAliveExpiry`]; retracted the moment work
    /// lands on the node, so a cancelled expiry never fires.
    keep_alive: Option<EventToken>,
    /// Pending [`FleetEvent::RegistryFetchDone`] of the in-flight cold
    /// start (Medusa cache-miss starts only); retracted on crash.
    stage_fetch: Option<EventToken>,
    /// Pending [`FleetEvent::ColdStartStageDone`] of the in-flight cold
    /// start; retracted on crash. For a pipeline shard helper this holds
    /// the pending [`FleetEvent::PipelineShardDone`] instead.
    stage_ready: Option<EventToken>,
    /// Whether the live instance was started predictively by the prewarm
    /// estimator and has not yet served a request — cleared on first
    /// placement; still set at scale-down (or run end) it counts as
    /// prewarm waste.
    prewarmed: bool,
    /// `Some(head)` while this node is a pipeline shard helper restoring
    /// one contiguous MAF2 shard range for `head`'s cold start. Helpers
    /// never accept work; they release back to cold when the shard lands.
    pipeline_head: Option<usize>,
    /// Helper nodes currently restoring shards for *this* node's
    /// pipeline-parallel cold start (this node is the head).
    pipeline_members: Vec<usize>,
}

impl Node {
    /// Builds a node; a pre-seeded spec (`spec.cached`) starts with model
    /// 0's artifact resident (`seed_bytes` sizes it for byte-bounded
    /// caches).
    fn new(spec: NodeSpec, seed_bytes: u64) -> Self {
        let cache = if spec.cached {
            vec![CacheEntry {
                model: 0,
                bytes: seed_bytes,
                last_used: 0,
                uses: 0,
            }]
        } else {
            Vec::new()
        };
        Node {
            spec,
            state: NodeState::Cold,
            busy: false,
            pending: VecDeque::new(),
            running: Vec::new(),
            kv_tokens: 0,
            idle_since: None,
            cold_starts: 0,
            cold_ns: 0,
            served: 0,
            busy_ns: 0,
            work_ns: 0,
            model: None,
            cache,
            chunks: std::collections::BTreeSet::new(),
            epoch: 0,
            degraded_start: false,
            keep_alive: None,
            stage_fetch: None,
            stage_ready: None,
            prewarmed: false,
            pipeline_head: None,
            pipeline_members: Vec::new(),
        }
    }

    fn load(&self) -> usize {
        self.pending.len() + self.running.len()
    }

    fn cache_holds(&self, model: u32) -> bool {
        self.cache.iter().any(|e| e.model == model)
    }

    /// Touches `model`'s cache entry (recency + frequency), if resident.
    fn cache_touch(&mut self, model: u32, t: u64) {
        if let Some(e) = self.cache.iter_mut().find(|e| e.model == model) {
            e.last_used = t;
            e.uses += 1;
        }
    }

    fn view(&self, need: u64, max_running: u32, kv_capacity: u64, model: u32) -> NodeView {
        let live_accepts = self.load() < max_running as usize
            && self.kv_tokens + need <= kv_capacity
            && self.model == Some(model);
        NodeView {
            state: self.state,
            load: self.load(),
            cached: self.cache_holds(model),
            accepts: match self.state {
                NodeState::Cold => true,
                // A pipeline shard helper releases back to cold when its
                // shard lands, so work must never queue on it.
                NodeState::Starting | NodeState::Warm => {
                    live_accepts && self.pipeline_head.is_none()
                }
            },
            start_cost_ns: 0,
        }
    }
}

/// Worst-case KV reservation of a request (prompt + all output tokens).
fn kv_need(r: &Request) -> u64 {
    r.prompt_tokens as u64 + r.output_tokens as u64
}

/// The fleet simulator's mutable state. Every transition happens inside
/// the handler of exactly one [`FleetEvent`]; handlers communicate only
/// by scheduling further events on `events`.
struct FleetSim<'a> {
    profile: &'a FleetProfile,
    cluster: &'a ClusterSpec,
    trace: &'a [Request],
    tele: Option<&'a TelemetryRegistry>,
    nodes: Vec<Node>,
    queue: VecDeque<usize>,
    events: EventQueue<FleetEvent>,
    /// Nodes not `Cold`, maintained incrementally so the autoscaler's
    /// backlog check is O(1) per drained request instead of O(nodes).
    live: usize,
    /// Scratch buffer for [`NodeView`]s, reused across routing decisions
    /// so a thousand-node fleet doesn't allocate per request.
    views_buf: Vec<NodeView>,
    keep_alive_ns: u64,
    arrived: usize,
    ttfts: Vec<SimDuration>,
    completed: usize,
    makespan_ns: u64,
    cold_starts: u32,
    scale_to_zero_events: u32,
    fetch_retries: u32,
    degraded_cold_starts: u32,
    node_failures: u32,
    reroutes: u32,
    /// Whether the trace carries any nonzero model id. Per-tenant
    /// bookkeeping is skipped entirely for single-tenant traces, so the
    /// hot path (and the report) is unchanged from the single-model fleet.
    multi_tenant: bool,
    slo_ns: u64,
    tenant_stats: std::collections::BTreeMap<u32, TenantStat>,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    /// The registry backend fetches resolve through.
    registry: Box<dyn Registry>,
    /// Whether the backend is content-addressed: chunk residency, scaled
    /// fetch durations, per-chunk retries, and [`RegistryReport`] counters
    /// all key off this (the whole-artifact path stays byte-identical to
    /// the legacy simulator).
    cas: bool,
    reg_bytes_fetched: u64,
    reg_bytes_resolved: u64,
    reg_chunk_hits: u64,
    reg_chunk_misses: u64,
    /// Prewarm estimator fed by arrivals; `None` unless
    /// [`ClusterSpec::prewarm`] is set (the default), keeping the event
    /// schedule byte-identical for legacy runs.
    estimator: Option<PrewarmEstimator>,
    prewarms_issued: u64,
    prewarms_unused: u64,
    /// Effective pipeline degree: cold starts shard across up to this
    /// many nodes when ≥ 2 (and the strategy materializes artifacts).
    pipeline_k: u32,
    pipeline_starts: u64,
}

/// Per-tenant accumulator (multi-tenant traces only).
#[derive(Debug, Default)]
struct TenantStat {
    offered: usize,
    completed: usize,
    cold_starts: u32,
    ttfts_us: Vec<u64>,
    slo_attained: usize,
}

impl FleetSim<'_> {
    /// Fills the scratch view buffer for one routing decision on a request
    /// of `model`; the caller hands the buffer back by assigning to
    /// `views_buf`.
    fn fill_views(&mut self, need: u64, model: u32) -> Vec<NodeView> {
        let mut views = std::mem::take(&mut self.views_buf);
        views.clear();
        views.extend(self.nodes.iter().map(|n| {
            let mut v = n.view(
                need,
                self.cluster.max_running,
                self.profile.perf.kv_capacity_tokens,
                model,
            );
            v.start_cost_ns = self.start_cost(n, v.cached, model);
            v
        }));
        views
    }

    /// Estimated time until node `n` could produce a first token for a
    /// request of `model` (see [`NodeView::start_cost_ns`]): queue drain
    /// for a warm node, the full cached-vs-fetch start cost for a cold
    /// one, expected remaining start plus drain for a starting one.
    fn start_cost(&self, n: &Node, cached: bool, model: u32) -> u64 {
        let load = n.load() as u64;
        let drain = load
            * self
                .profile
                .perf
                .decode_duration((load as u32).max(1))
                .as_nanos();
        match n.state {
            NodeState::Warm => drain,
            NodeState::Cold => self.est_cold_ns(n, cached, model),
            NodeState::Starting => self.est_cold_ns(n, cached, model) / 2 + drain,
        }
    }

    /// Estimated cold-start makespan of `model` on node `n`: the legacy
    /// profile tables in whole-artifact mode (byte-identical goldens), the
    /// chunk-residency-resolved fetch plus restore in content-addressed
    /// mode — which is what lets locality routing prefer a node already
    /// holding most of a family's template chunks.
    fn est_cold_ns(&self, n: &Node, cached: bool, model: u32) -> u64 {
        if !self.cas {
            return self.profile.coldstart_makespan(cached, model).as_nanos();
        }
        let loading = self.profile.loading_for(model).as_nanos();
        if cached || self.profile.strategy != Strategy::Medusa {
            return loading;
        }
        let plan = self.registry.resolve(model, &n.chunks, self.profile);
        loading + self.registry.fetch(model, &plan, self.profile).as_nanos()
    }

    /// Inserts `model` into node `i`'s artifact cache at time `t` (or
    /// touches the resident entry), evicting under the capacity bound.
    /// The just-inserted model is never its own victim.
    fn cache_insert(&mut self, t: u64, i: usize, model: u32) {
        let profile = self.profile;
        let cfg = self.cluster.cache;
        let tele = self.tele;
        let node = &mut self.nodes[i];
        if node.cache_holds(model) {
            node.cache_touch(model, t);
            return;
        }
        node.cache.push(CacheEntry {
            model,
            bytes: profile.artifact_bytes_for(model),
            last_used: t,
            uses: 1,
        });
        loop {
            let over = match cfg.capacity {
                CacheCapacity::Unlimited => false,
                CacheCapacity::Artifacts(n) => node.cache.len() > n as usize,
                CacheCapacity::Bytes(b) => node.cache.iter().map(|e| e.bytes).sum::<u64>() > b,
            };
            if !over {
                break;
            }
            // Deterministic victim: metric, then recency, then model id.
            let victim = node
                .cache
                .iter()
                .enumerate()
                .filter(|(_, e)| e.model != model)
                .min_by_key(|(_, e)| match cfg.eviction {
                    EvictionPolicy::Lru => (e.last_used, 0, e.model),
                    EvictionPolicy::Lfu => (e.uses, e.last_used, e.model),
                    EvictionPolicy::CostAware => {
                        let cost = profile.fetch_for(e.model).as_nanos()
                            + profile.loading_for(e.model).as_nanos();
                        (cost, e.last_used, e.model)
                    }
                })
                .map(|(idx, _)| idx);
            match victim {
                Some(idx) => {
                    node.cache.remove(idx);
                    self.cache_evictions += 1;
                    if let Some(tl) = tele {
                        tl.inc("cluster_cache_evictions_total", 1);
                    }
                }
                None => break,
            }
        }
        // Content-addressed residency tracks the cache: the resident chunk
        // set is exactly the union of the resident models' manifests, so
        // an eviction drops the victim's unshared chunks but keeps the
        // template chunks other residents still reference.
        if let RegistryMode::ContentAddressed(catalog) = &self.cluster.registry_mode {
            node.chunks = node
                .cache
                .iter()
                .flat_map(|e| catalog.units_for(e.model, profile))
                .map(|u| u.digest)
                .collect();
        }
    }

    /// Begins a cold start of `model` on node `i` at time `t`.
    fn start_cold(&mut self, t: u64, i: usize, model: u32) {
        if self.pipeline_k >= 2 && self.profile.strategy == Strategy::Medusa {
            // Pipeline mode shards the materialized restore; only the
            // Medusa strategy has an artifact to shard.
            self.start_cold_pipeline(t, i, model);
            return;
        }
        let faults = self.cluster.faults;
        let reg = self.cluster.fetch_policy;
        let node = &mut self.nodes[i];
        debug_assert_eq!(node.state, NodeState::Cold);
        let cached = node.cache_holds(model);
        let needs_fetch = self.profile.strategy == Strategy::Medusa && !cached;
        node.state = NodeState::Starting;
        node.model = Some(model);
        node.cold_starts += 1;
        self.cold_starts += 1;
        self.live += 1;
        if self.profile.strategy == Strategy::Medusa {
            if needs_fetch {
                self.cache_misses += 1;
            } else {
                self.cache_hits += 1;
                self.nodes[i].cache_touch(model, t);
            }
            if let Some(tl) = self.tele {
                tl.inc(
                    if needs_fetch {
                        "cluster_cache_misses_total"
                    } else {
                        "cluster_cache_hits_total"
                    },
                    1,
                );
            }
        }
        if self.multi_tenant {
            self.tenant_stats.entry(model).or_default().cold_starts += 1;
        }
        // Resolve what this fetch must move through the registry backend:
        // the whole artifact, or only the chunks the node's residency lacks.
        let plan = needs_fetch.then(|| {
            self.registry
                .resolve(model, &self.nodes[i].chunks, self.profile)
        });
        let node = &mut self.nodes[i];

        // Registry fetch under the resilience policy: each failed attempt
        // costs a timeout, retries back off exponentially (bounded), and an
        // exhausted budget degrades this start to the vanilla path (§7).
        // Whole-artifact mode rolls once per attempt on the legacy key
        // schedule; content-addressed mode retries **per chunk**, each
        // chunk salted by its digest and granted its own budget.
        let mut retry_ns: u64 = 0;
        let mut retries: u32 = 0;
        let mut degraded = false;
        if needs_fetch && faults.registry_fail_per_mille > 0 {
            if self.cas {
                let units = plan.as_ref().map_or(&[][..], |p| &p.missing[..]);
                'units: for u in units {
                    let salt = mix(0x5a17_c4a5 ^ u.digest);
                    let mut failures: u32 = 0;
                    loop {
                        let roll =
                            roll_per_mille(faults.seed ^ salt, i, node.cold_starts, failures);
                        if roll >= faults.registry_fail_per_mille {
                            break;
                        }
                        failures += 1;
                        retry_ns += (reg.timeout_s * 1e9) as u64;
                        if failures > reg.retry_budget {
                            degraded = true;
                            break 'units;
                        }
                        let backoff = (reg.backoff_base_s * 2f64.powi(failures as i32 - 1))
                            .min(reg.backoff_max_s);
                        retry_ns += (backoff * 1e9) as u64;
                        retries += 1;
                    }
                }
            } else {
                let mut failures: u32 = 0;
                loop {
                    let roll = roll_per_mille(faults.seed, i, node.cold_starts, failures);
                    if roll >= faults.registry_fail_per_mille {
                        break;
                    }
                    failures += 1;
                    retry_ns += (reg.timeout_s * 1e9) as u64;
                    if failures > reg.retry_budget {
                        degraded = true;
                        break;
                    }
                    let backoff = (reg.backoff_base_s * 2f64.powi(failures as i32 - 1))
                        .min(reg.backoff_max_s);
                    retry_ns += (backoff * 1e9) as u64;
                    retries += 1;
                }
            }
        }
        node.degraded_start = degraded;

        let fetch_ns = match (&plan, degraded) {
            (Some(p), false) => self.registry.fetch(model, p, self.profile).as_nanos(),
            _ => 0,
        };
        let makespan_ns = if degraded {
            // No artifact to restore: vanilla-path loading, cache stays
            // cold so the next start tries the registry again.
            self.profile.degraded_loading.as_nanos()
        } else {
            self.profile.loading_for(model).as_nanos() + fetch_ns
        };
        if self.cas && !degraded {
            if let Some(p) = &plan {
                self.reg_bytes_fetched += p.bytes_needed;
                self.reg_bytes_resolved += p.bytes_resolved;
                self.reg_chunk_hits += p.chunk_hits;
                self.reg_chunk_misses += p.missing.len() as u64;
                if let Some(tl) = self.tele {
                    tl.inc("cluster_registry_bytes_fetched_total", p.bytes_needed);
                    tl.inc("cluster_registry_chunk_hits_total", p.chunk_hits);
                    tl.inc(
                        "cluster_registry_chunk_misses_total",
                        p.missing.len() as u64,
                    );
                }
            }
        }
        let node = &mut self.nodes[i];
        node.cold_ns += retry_ns + makespan_ns;
        // Aggregate rank work: every rank restores; fetch attempts and the
        // fetch itself occupy the node once (the cache is shared across
        // local ranks).
        let restore_work = if degraded {
            self.profile.degraded_loading.as_nanos() * node.spec.tp as u64
        } else {
            self.profile.coldstart_work_for(model).as_nanos()
        };
        node.work_ns += restore_work + retry_ns + fetch_ns;
        self.fetch_retries += retries;
        if degraded {
            self.degraded_cold_starts += 1;
        }
        let epoch = node.epoch;
        let ready = t + retry_ns + makespan_ns;
        if let Some(tl) = self.tele {
            tl.inc("cluster_cold_starts_total", 1);
            tl.inc(&format!("cluster_node{i}_cold_starts_total"), 1);
            if retries > 0 {
                tl.inc("cluster_fetch_retries_total", retries as u64);
            }
            if degraded {
                tl.inc("cluster_degraded_coldstarts_total", 1);
            }
            tl.span(
                format!("coldstart/n{i}/m{model}"),
                format!("node{i}"),
                t / 1_000,
                ready / 1_000,
            );
        }
        // A crashing start schedules its crash midway; the crash bumps the
        // epoch and retracts the stage events below.
        if faults.node_crash_per_mille > 0 {
            let roll = roll_per_mille(faults.seed ^ 0xc7a5_11fe, i, self.nodes[i].cold_starts, 0);
            if roll < faults.node_crash_per_mille {
                let crash_at = t + (retry_ns + makespan_ns) / 2;
                self.events
                    .schedule(crash_at, FleetEvent::NodeCrash { node: i, epoch });
            }
        }
        // The start's whole stage timeline is determined here (every fault
        // roll happens at start time), so both stages go on the queue now:
        // the registry fetch (cache-miss Medusa starts only), then the
        // restore whose completion makes the node ready.
        let fetch_tok = (needs_fetch && !degraded).then(|| {
            self.events.schedule(
                t + retry_ns + fetch_ns,
                FleetEvent::RegistryFetchDone { node: i, epoch },
            )
        });
        let ready_tok = self
            .events
            .schedule(ready, FleetEvent::ColdStartStageDone { node: i, epoch });
        let node = &mut self.nodes[i];
        node.stage_fetch = fetch_tok;
        node.stage_ready = Some(ready_tok);
    }

    /// Begins a **pipeline-parallel** cold start of `model` headed by
    /// node `i`: the head plus up to `pipeline_k − 1` recruited cold
    /// helpers each restore a contiguous MAF2 shard range (the lazy
    /// reader restores per-shard, so the split is free). The head serves
    /// the first token as soon as its own first stage lands — after
    /// `total / k` instead of the full restore — while helpers stream
    /// their shards to it and release back to cold
    /// ([`FleetEvent::PipelineShardDone`]). The last helper lands exactly
    /// on the single-node total, so sharding never inflates the full
    /// restore. Falls back to the single-node timeline when the start
    /// degrades (no artifact to shard) or no helper is free. The head's
    /// registry rolls use the same key schedule as the single-node path;
    /// helper crash rolls get their own attempt lane so fates stay
    /// independent. On completion the head caches the whole artifact
    /// (the shards reassemble on the head — a documented approximation).
    fn start_cold_pipeline(&mut self, t: u64, i: usize, model: u32) {
        let faults = self.cluster.faults;
        let reg = self.cluster.fetch_policy;
        let node = &mut self.nodes[i];
        debug_assert_eq!(node.state, NodeState::Cold);
        let cached = node.cache_holds(model);
        let needs_fetch = !cached;
        node.state = NodeState::Starting;
        node.model = Some(model);
        node.cold_starts += 1;
        self.cold_starts += 1;
        self.live += 1;
        if needs_fetch {
            self.cache_misses += 1;
        } else {
            self.cache_hits += 1;
            self.nodes[i].cache_touch(model, t);
        }
        if let Some(tl) = self.tele {
            tl.inc(
                if needs_fetch {
                    "cluster_cache_misses_total"
                } else {
                    "cluster_cache_hits_total"
                },
                1,
            );
        }
        if self.multi_tenant {
            self.tenant_stats.entry(model).or_default().cold_starts += 1;
        }
        let node = &mut self.nodes[i];

        // Registry fetch under the resilience policy — the head owns the
        // registry connection, so the rolls are keyed exactly like the
        // single-node path.
        let mut retry_ns: u64 = 0;
        let mut retries: u32 = 0;
        let mut degraded = false;
        if needs_fetch && faults.registry_fail_per_mille > 0 {
            let mut failures: u32 = 0;
            loop {
                let roll = roll_per_mille(faults.seed, i, node.cold_starts, failures);
                if roll >= faults.registry_fail_per_mille {
                    break;
                }
                failures += 1;
                retry_ns += (reg.timeout_s * 1e9) as u64;
                if failures > reg.retry_budget {
                    degraded = true;
                    break;
                }
                let backoff =
                    (reg.backoff_base_s * 2f64.powi(failures as i32 - 1)).min(reg.backoff_max_s);
                retry_ns += (backoff * 1e9) as u64;
                retries += 1;
            }
        }
        node.degraded_start = degraded;
        self.fetch_retries += retries;
        if degraded {
            self.degraded_cold_starts += 1;
        }

        // Recruit helpers: other cold nodes, ascending index (a degraded
        // start has no artifact to shard).
        let head_cold_starts = self.nodes[i].cold_starts;
        let helpers: Vec<usize> = if degraded {
            Vec::new()
        } else {
            (0..self.nodes.len())
                .filter(|&h| h != i && self.nodes[h].state == NodeState::Cold)
                .take(self.pipeline_k as usize - 1)
                .collect()
        };
        let k_eff = 1 + helpers.len() as u64;
        if k_eff > 1 {
            self.pipeline_starts += 1;
        }

        // Resolve through the registry backend (delta-only transfer in
        // content-addressed mode); the head owns the registry connection,
        // so the retry rolls above keep the whole-fetch key schedule even
        // under chunked transfers.
        let plan = (needs_fetch && !degraded).then(|| {
            self.registry
                .resolve(model, &self.nodes[i].chunks, self.profile)
        });
        let fetch_ns = match &plan {
            Some(p) => self.registry.fetch(model, p, self.profile).as_nanos(),
            None => 0,
        };
        let total_ns = if degraded {
            self.profile.degraded_loading.as_nanos()
        } else {
            self.profile.loading_for(model).as_nanos() + fetch_ns
        };
        if self.cas {
            if let Some(p) = &plan {
                self.reg_bytes_fetched += p.bytes_needed;
                self.reg_bytes_resolved += p.bytes_resolved;
                self.reg_chunk_hits += p.chunk_hits;
                self.reg_chunk_misses += p.missing.len() as u64;
                if let Some(tl) = self.tele {
                    tl.inc("cluster_registry_bytes_fetched_total", p.bytes_needed);
                    tl.inc("cluster_registry_chunk_hits_total", p.chunk_hits);
                    tl.inc(
                        "cluster_registry_chunk_misses_total",
                        p.missing.len() as u64,
                    );
                }
            }
        }
        let stage_span = total_ns / k_eff;
        let ready = t + retry_ns + stage_span;

        // Work split: every participant restores 1/k of the artifact;
        // the head additionally owns the retry attempts, the registry
        // fetch, and the division remainder.
        let restore_work = if degraded {
            self.profile.degraded_loading.as_nanos() * self.nodes[i].spec.tp as u64
        } else {
            self.profile.coldstart_work_for(model).as_nanos()
        };
        let share = restore_work / k_eff;
        let epoch = {
            let node = &mut self.nodes[i];
            node.cold_ns += retry_ns + stage_span;
            node.work_ns += restore_work - share * (k_eff - 1) + retry_ns + fetch_ns;
            node.epoch
        };
        if let Some(tl) = self.tele {
            tl.inc("cluster_cold_starts_total", 1);
            tl.inc(&format!("cluster_node{i}_cold_starts_total"), 1);
            if retries > 0 {
                tl.inc("cluster_fetch_retries_total", retries as u64);
            }
            if degraded {
                tl.inc("cluster_degraded_coldstarts_total", 1);
            }
            if k_eff > 1 {
                tl.inc("cluster_pipeline_starts_total", 1);
            }
            tl.span(
                format!("coldstart/n{i}/m{model}"),
                format!("node{i}"),
                t / 1_000,
                ready / 1_000,
            );
        }
        // Head crash roll: same key schedule as the single-node path, at
        // the midpoint of the head's own stage.
        if faults.node_crash_per_mille > 0 {
            let roll = roll_per_mille(faults.seed ^ 0xc7a5_11fe, i, head_cold_starts, 0);
            if roll < faults.node_crash_per_mille {
                let crash_at = t + (retry_ns + stage_span) / 2;
                self.events
                    .schedule(crash_at, FleetEvent::NodeCrash { node: i, epoch });
            }
        }
        let fetch_tok = (needs_fetch && !degraded).then(|| {
            self.events.schedule(
                t + retry_ns + fetch_ns / k_eff,
                FleetEvent::RegistryFetchDone { node: i, epoch },
            )
        });
        let ready_tok = self
            .events
            .schedule(ready, FleetEvent::ColdStartStageDone { node: i, epoch });
        {
            let node = &mut self.nodes[i];
            node.stage_fetch = fetch_tok;
            node.stage_ready = Some(ready_tok);
        }
        // Helper stages: helper j restores shard range j+1, landing at
        // (j+2)·span after the retries.
        for (j, &h) in helpers.iter().enumerate() {
            let done = t + retry_ns + (j as u64 + 2) * stage_span;
            let hep = {
                let helper = &mut self.nodes[h];
                helper.state = NodeState::Starting;
                helper.model = Some(model);
                helper.idle_since = None;
                helper.pipeline_head = Some(i);
                helper.work_ns += share;
                helper.epoch
            };
            let tok = self.events.schedule(
                done,
                FleetEvent::PipelineShardDone {
                    node: h,
                    head: i,
                    epoch: hep,
                },
            );
            self.nodes[h].stage_ready = Some(tok);
            self.nodes[i].pipeline_members.push(h);
            self.live += 1;
            // Helper crash roll: attempt lane j+1 keeps helper fates
            // independent of the head's roll (attempt 0).
            if faults.node_crash_per_mille > 0 {
                let roll =
                    roll_per_mille(faults.seed ^ 0xc7a5_11fe, h, head_cold_starts, j as u32 + 1);
                if roll < faults.node_crash_per_mille {
                    let mid = t + retry_ns + (j as u64 + 1) * stage_span + stage_span / 2;
                    self.events.schedule(
                        mid,
                        FleetEvent::NodeCrash {
                            node: h,
                            epoch: hep,
                        },
                    );
                }
            }
        }
    }

    /// Places request `r` on node `i` at time `t` (cold-starting first
    /// when needed), retracts the node's keep-alive countdown, and records
    /// the scheduler-decision span.
    fn place(&mut self, t: u64, r: usize, i: usize) {
        let model = self.trace[r].model;
        if self.nodes[i].state == NodeState::Cold {
            self.start_cold(t, i, model);
        }
        let need = kv_need(&self.trace[r]);
        let node = &mut self.nodes[i];
        node.cache_touch(model, t);
        node.kv_tokens += need;
        node.idle_since = None;
        // A predictively started node just got real work: the prewarm
        // paid off, so it no longer counts toward the waste metric.
        node.prewarmed = false;
        node.pending.push_back(r);
        // Work landed: the pending keep-alive expiry (if any) must never
        // fire.
        if let Some(tok) = node.keep_alive.take() {
            self.events.cancel(tok);
        }
        if let Some(tl) = self.tele {
            tl.span(
                format!("route/r{}/m{model}->n{i}", self.trace[r].id),
                "scheduler".to_string(),
                self.trace[r].arrival_ns / 1_000,
                t / 1_000,
            );
        }
        let node = &self.nodes[i];
        if node.state == NodeState::Warm && !node.busy {
            self.events.schedule(t, FleetEvent::Route { node: i });
        }
    }

    /// Routes as much of the global queue as the policy will place, then
    /// lets the autoscaler start nodes for any remaining backlog.
    ///
    /// Single-tenant traces keep the legacy strict-FIFO discipline: the
    /// queue head either routes or blocks everything behind it (which is
    /// harmless when every node can serve every request — only capacity
    /// blocks the head, and capacity frees in arrival order).
    /// Multi-tenant traces route with skip-ahead instead: a head whose
    /// model has no live affine node must not stall tenants whose warm
    /// nodes sit idle behind it.
    fn drain(&mut self, t: u64, sched: &mut dyn Scheduler) {
        if self.multi_tenant {
            let mut idx = 0;
            while idx < self.queue.len() {
                let r = self.queue[idx];
                let views = self.fill_views(kv_need(&self.trace[r]), self.trace[r].model);
                let decision = sched.route(&views);
                self.views_buf = views;
                match decision {
                    Decision::Node(i) => {
                        self.queue.remove(idx);
                        self.place(t, r, i);
                    }
                    Decision::Queue => idx += 1,
                }
            }
        } else {
            while let Some(&r) = self.queue.front() {
                let views = self.fill_views(kv_need(&self.trace[r]), self.trace[r].model);
                let decision = sched.route(&views);
                self.views_buf = views;
                match decision {
                    Decision::Node(i) => {
                        self.queue.pop_front();
                        self.place(t, r, i);
                    }
                    Decision::Queue => break,
                }
            }
        }
        // Autoscaler scale-up: an empty fleet, backlog beyond the
        // per-live-node target, or (multi-tenant) a starved tenant — a
        // queued model with no live affine node — wakes a cold node; the
        // *policy* picks which one (ColdStartAware prefers artifact-cached
        // nodes). Single-model traces never see the starvation clause:
        // every live node is affine to model 0.
        loop {
            if self.queue.is_empty() {
                break;
            }
            let affine_live = |nodes: &[Node], model: u32| {
                nodes.iter().any(|n| {
                    matches!(n.state, NodeState::Warm | NodeState::Starting)
                        && n.model == Some(model)
                })
            };
            // The request the next cold start is for: the first queued one
            // whose model is starved, else the queue head.
            let &r = self
                .queue
                .iter()
                .find(|&&r| !affine_live(&self.nodes, self.trace[r].model))
                .unwrap_or_else(|| self.queue.front().expect("queue non-empty"));
            let model = self.trace[r].model;
            let starved = !affine_live(&self.nodes, model);
            let limit = self.cluster.autoscaler.target_queue_depth * self.live.max(1);
            if self.live > 0 && !starved && self.queue.len() <= limit {
                break;
            }
            let need = kv_need(&self.trace[r]);
            let views = self.fill_views(need, model);
            let pick = sched.pick_cold(&views, model);
            self.views_buf = views;
            match pick {
                Some(i) => self.start_cold(t, i, model),
                None => break,
            }
        }
    }

    // -----------------------------------------------------------------
    // Event handlers. One per [`FleetEvent`] variant; the dispatch loop in
    // [`simulate_fleet_traced`] is the only caller.

    /// [`FleetEvent::Arrival`]: the request joins the global queue and the
    /// scheduler immediately tries to drain it.
    fn on_arrival(&mut self, t: u64, r: usize, sched: &mut dyn Scheduler) {
        self.arrived += 1;
        // Feed the prewarm estimator; a forecast schedules a predictive
        // [`FleetEvent::ScaleDecision`] ahead of the next expected
        // arrival (re-anchored on every observation).
        if let Some(est) = self.estimator.as_mut() {
            if let Some(d) = est.observe(t, self.trace[r].model) {
                self.events.schedule(
                    d.t_ns,
                    FleetEvent::ScaleDecision {
                        prewarm: Some(d.model),
                    },
                );
            }
        }
        self.queue.push_back(r);
        self.drain(t, sched);
    }

    /// [`FleetEvent::RegistryFetchDone`]: the fetch stage of the in-flight
    /// cold start finished; the restore stage is already on the queue, so
    /// this only closes out the stage bookkeeping.
    fn on_fetch_done(&mut self, i: usize, epoch: u32) {
        let node = &mut self.nodes[i];
        if node.epoch != epoch {
            // A crash retracted this start; the token was cancelled, so a
            // stale fetch normally never fires.
            return;
        }
        node.stage_fetch = None;
        debug_assert!(
            node.state == NodeState::Starting && node.stage_ready.is_some(),
            "the fetch stage completes mid-start, before the restore stage"
        );
    }

    /// [`FleetEvent::ColdStartStageDone`]: the restore (terminal) stage
    /// finished — the node is warm and may populate its artifact cache.
    fn on_stage_done(&mut self, t: u64, i: usize, epoch: u32, sched: &mut dyn Scheduler) {
        let node = &mut self.nodes[i];
        if node.epoch != epoch {
            // This start crashed before finishing; the event is stale.
            return;
        }
        node.stage_ready = None;
        node.state = NodeState::Warm;
        // The cold start populated the local cache (Medusa fetch or
        // in-place materialization reuse) — unless it degraded to the
        // vanilla path, which materializes nothing.
        let populate = self.profile.strategy == Strategy::Medusa && !node.degraded_start;
        let model = node.model.unwrap_or(0);
        if populate {
            self.cache_insert(t, i, model);
        }
        self.events.schedule(t, FleetEvent::Route { node: i });
        self.drain(t, sched);
    }

    /// [`FleetEvent::NodeCrash`]: crash mid-cold-start — the node scales
    /// back to cold, its pending stage events are retracted, and its
    /// queued requests go back through the scheduler. Crashing any
    /// *still-starting* participant of a pipeline-parallel start tears
    /// the whole still-starting group down (the shard stream is broken);
    /// a head that already went warm keeps serving and only the helpers
    /// release.
    fn on_crash(&mut self, t: u64, i: usize, epoch: u32, sched: &mut dyn Scheduler) {
        {
            let node = &self.nodes[i];
            if node.epoch != epoch || node.state != NodeState::Starting {
                return;
            }
        }
        let head = self.nodes[i].pipeline_head.unwrap_or(i);
        let mut group = vec![head];
        group.extend(self.nodes[head].pipeline_members.iter().copied());
        let mut rerouted: Vec<usize> = Vec::new();
        for &m in &group {
            let node = &mut self.nodes[m];
            if node.state != NodeState::Starting {
                continue;
            }
            node.epoch += 1;
            node.state = NodeState::Cold;
            node.model = None;
            node.idle_since = None;
            node.kv_tokens = 0;
            node.pipeline_head = None;
            node.prewarmed = false;
            rerouted.extend(node.pending.drain(..));
            let toks = [node.stage_fetch.take(), node.stage_ready.take()];
            self.live -= 1;
            for tok in toks.into_iter().flatten() {
                self.events.cancel(tok);
            }
        }
        self.nodes[head].pipeline_members.clear();
        self.node_failures += 1;
        self.reroutes += rerouted.len() as u32;
        if let Some(tl) = self.tele {
            tl.inc("cluster_node_failures_total", 1);
            if !rerouted.is_empty() {
                tl.inc("cluster_reroutes_total", rerouted.len() as u64);
            }
            tl.span(
                format!("nodefail/n{i}"),
                format!("node{i}"),
                t / 1_000,
                t / 1_000,
            );
        }
        // Front of the queue, original order: the crashed node's requests
        // have been waiting longest.
        for r in rerouted.into_iter().rev() {
            self.queue.push_front(r);
        }
        self.drain(t, sched);
    }

    /// [`FleetEvent::KeepAliveExpiry`]: the keep-alive countdown ran out
    /// without being retracted — scale the node to zero. The local
    /// artifact cache survives, so re-warming is cheap.
    fn on_keep_alive_expiry(&mut self, t: u64, i: usize) {
        let scale = self.cluster.autoscaler.scale_to_zero;
        let keep_alive_ns = self.keep_alive_ns;
        let node = &mut self.nodes[i];
        node.keep_alive = None;
        // An un-retracted expiry implies the node sat idle the whole
        // countdown; the full predicate stays as a guard so the report is
        // exactly what the predicate says even if retraction ever missed a
        // path.
        if scale
            && node.state == NodeState::Warm
            && !node.busy
            && node.pending.is_empty()
            && node.running.is_empty()
            && node
                .idle_since
                .is_some_and(|since| t.saturating_sub(since) >= keep_alive_ns)
        {
            node.state = NodeState::Cold;
            node.model = None;
            node.idle_since = None;
            let wasted = std::mem::take(&mut node.prewarmed);
            self.live -= 1;
            self.scale_to_zero_events += 1;
            if wasted {
                // Prewarmed, never served, scaled back down: pure waste.
                self.prewarms_unused += 1;
                if let Some(tl) = self.tele {
                    tl.inc("cluster_prewarms_unused_total", 1);
                }
            }
            if let Some(tl) = self.tele {
                tl.inc("cluster_scale_to_zero_total", 1);
            }
            // Orphaned shard helpers still streaming to this head release
            // immediately — their target is gone.
            let members = std::mem::take(&mut self.nodes[i].pipeline_members);
            for m in members {
                let helper = &mut self.nodes[m];
                if helper.state != NodeState::Starting || helper.pipeline_head != Some(i) {
                    continue;
                }
                helper.epoch += 1;
                helper.state = NodeState::Cold;
                helper.model = None;
                helper.idle_since = None;
                helper.pipeline_head = None;
                let tok = helper.stage_ready.take();
                self.live -= 1;
                if let Some(tok) = tok {
                    self.events.cancel(tok);
                }
            }
        }
    }

    /// [`FleetEvent::ScaleDecision`]: either a predictive prewarm
    /// (`prewarm: Some(model)`) — start a node for the forecast model
    /// *before* its burst, unless one is already live — or the periodic
    /// autoscaler tick (`prewarm: None`), which re-runs the drain and
    /// re-arms the next tick.
    fn on_scale_decision(&mut self, t: u64, prewarm: Option<u32>, sched: &mut dyn Scheduler) {
        match prewarm {
            Some(model) => {
                let affine_live = self.nodes.iter().any(|n| {
                    matches!(n.state, NodeState::Warm | NodeState::Starting)
                        && n.model == Some(model)
                });
                if !affine_live {
                    let views = self.fill_views(0, model);
                    let pick = sched.pick_cold(&views, model);
                    self.views_buf = views;
                    if let Some(i) = pick {
                        self.start_cold(t, i, model);
                        self.nodes[i].prewarmed = true;
                        self.prewarms_issued += 1;
                        if let Some(tl) = self.tele {
                            tl.inc("cluster_prewarms_issued_total", 1);
                        }
                    }
                }
                self.drain(t, sched);
            }
            None => {
                self.drain(t, sched);
                if let Some(interval_s) = self.cluster.autoscaler.eval_interval_s {
                    let step = (interval_s * 1e9) as u64;
                    if step > 0 {
                        self.events
                            .schedule(t + step, FleetEvent::ScaleDecision { prewarm: None });
                    }
                }
            }
        }
    }

    /// [`FleetEvent::PipelineShardDone`]: a shard helper's contiguous
    /// range landed on the head — the helper releases back to cold (its
    /// capacity is free again, so the drain gets a chance to use it).
    fn on_pipeline_shard_done(
        &mut self,
        t: u64,
        i: usize,
        head: usize,
        epoch: u32,
        sched: &mut dyn Scheduler,
    ) {
        {
            let node = &mut self.nodes[i];
            if node.epoch != epoch || node.pipeline_head != Some(head) {
                // The group crashed or the head scaled away; the token
                // was cancelled, so a stale shard normally never fires.
                return;
            }
            node.stage_ready = None;
            node.state = NodeState::Cold;
            node.model = None;
            node.idle_since = None;
            node.pipeline_head = None;
        }
        self.live -= 1;
        self.nodes[head].pipeline_members.retain(|&m| m != i);
        self.drain(t, sched);
    }

    /// [`FleetEvent::Route`]: the node re-examines its run queue and
    /// starts an iteration unless one is already in flight.
    fn on_route(&mut self, t: u64, i: usize) {
        if !self.nodes[i].busy {
            self.iteration(t, i);
        }
    }

    /// [`FleetEvent::IterationDone`]: the iteration's time elapsed; give
    /// the scheduler a chance to top the node up, then iterate again.
    fn on_iteration_done(&mut self, t: u64, i: usize, sched: &mut dyn Scheduler) {
        self.nodes[i].busy = false;
        self.drain(t, sched);
        self.iteration(t, i);
    }

    /// One serving iteration on node `i` at time `t`: prefill one pending
    /// request, else run one batched decode step, else go idle and arm the
    /// keep-alive countdown.
    fn iteration(&mut self, t: u64, i: usize) {
        let profile = self.profile;
        let trace = self.trace;
        let tele = self.tele;
        let perf = &profile.perf;
        let node = &mut self.nodes[i];
        if node.state != NodeState::Warm {
            return;
        }
        if let Some(r) = node.pending.pop_front() {
            // Prefill: produces the request's first token.
            let req = &trace[r];
            let dur = perf.prefill_duration(req.prompt_tokens).as_nanos();
            let end = t + dur;
            self.ttfts
                .push(SimDuration::from_nanos(end - req.arrival_ns));
            if self.multi_tenant {
                let ttft_ns = end - req.arrival_ns;
                let stat = self.tenant_stats.entry(req.model).or_default();
                stat.ttfts_us.push(ttft_ns / 1_000);
                if ttft_ns <= self.slo_ns {
                    stat.slo_attained += 1;
                }
            }
            node.served += 1;
            if let Some(tl) = tele {
                tl.observe_us("cluster_ttft_us", (end - req.arrival_ns) / 1_000);
                tl.observe_us(
                    &format!("cluster_node{i}_ttft_us"),
                    (end - req.arrival_ns) / 1_000,
                );
                tl.observe_us(
                    &format!("cluster_node{i}_queue_delay_us"),
                    (t - req.arrival_ns) / 1_000,
                );
            }
            if req.output_tokens > 1 {
                node.running.push(RunningSeq {
                    remaining: req.output_tokens - 1,
                    kv_reserved: kv_need(req),
                    model: req.model,
                });
            } else {
                node.kv_tokens = node.kv_tokens.saturating_sub(kv_need(req));
                self.completed += 1;
                if self.multi_tenant {
                    self.tenant_stats.entry(req.model).or_default().completed += 1;
                }
                self.makespan_ns = self.makespan_ns.max(end);
            }
            node.busy = true;
            node.busy_ns += dur;
            node.work_ns += dur * node.spec.tp as u64;
            self.events
                .schedule(end, FleetEvent::IterationDone { node: i });
        } else if !node.running.is_empty() {
            // Batched decode step.
            let dur = perf.decode_duration(node.running.len() as u32).as_nanos();
            let end = t + dur;
            for s in &mut node.running {
                s.remaining -= 1;
            }
            let released: u64 = node
                .running
                .iter()
                .filter(|s| s.remaining == 0)
                .map(|s| s.kv_reserved)
                .sum();
            let before = node.running.len();
            if self.multi_tenant {
                for s in node.running.iter().filter(|s| s.remaining == 0) {
                    self.tenant_stats.entry(s.model).or_default().completed += 1;
                }
            }
            node.running.retain(|s| s.remaining > 0);
            let finished = before - node.running.len();
            if finished > 0 {
                node.kv_tokens = node.kv_tokens.saturating_sub(released);
                self.completed += finished;
                self.makespan_ns = self.makespan_ns.max(end);
            }
            node.busy = true;
            node.busy_ns += dur;
            node.work_ns += dur * node.spec.tp as u64;
            self.events
                .schedule(end, FleetEvent::IterationDone { node: i });
        } else {
            // Idle: arm the keep-alive countdown. When scale-to-zero is
            // off the expiry could never fire anyway, so don't schedule
            // one at all.
            node.idle_since = Some(t);
            if self.cluster.autoscaler.scale_to_zero {
                let tok = self.events.schedule(
                    t + self.keep_alive_ns,
                    FleetEvent::KeepAliveExpiry { node: i },
                );
                self.nodes[i].keep_alive = Some(tok);
            }
        }
    }
}

/// Nearest-rank quantile over an already-sorted slice of microsecond
/// samples (0 when empty) — shared by the aggregate and per-tenant
/// report paths so both round identically.
fn quantile_us(sorted: &[u64], f: f64) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[((sorted.len() as f64 - 1.0) * f).round() as usize]
    }
}

/// Runs `trace` through a fleet shaped by `cluster` whose nodes replay
/// `profile`, routed by `policy`.
pub fn simulate_fleet(
    profile: &FleetProfile,
    cluster: &ClusterSpec,
    policy: Policy,
    trace: &[Request],
) -> FleetOutcome {
    simulate_fleet_traced(profile, cluster, policy, trace, None)
}

/// [`simulate_fleet`] with telemetry: per-node TTFT/queue-delay
/// histograms, fleet and per-node cold-start counters, scale-to-zero
/// counters, and scheduler-decision + cold-start spans. All values derive
/// from the simulated clock, so same-trace runs export byte-identically.
pub fn simulate_fleet_traced(
    profile: &FleetProfile,
    cluster: &ClusterSpec,
    policy: Policy,
    trace: &[Request],
    tele: Option<&TelemetryRegistry>,
) -> FleetOutcome {
    let mut sched = policy.build();
    let multi_tenant = trace.iter().any(|r| r.model != 0);
    let seed_bytes = profile.artifact_bytes_for(0);
    // Pipeline-parallel cold starts: explicit `pipeline_k` wins; the
    // pipeline policy flavor defaults to degree 2; everything else runs
    // the single-node timeline (degree 1).
    let pipeline_k = cluster
        .pipeline_k
        .unwrap_or(if policy == Policy::Pipeline { 2 } else { 1 })
        .max(1);
    let mut sim = FleetSim {
        profile,
        cluster,
        trace,
        tele,
        nodes: cluster
            .nodes
            .iter()
            .cloned()
            .map(|s| Node::new(s, seed_bytes))
            .collect(),
        queue: VecDeque::new(),
        events: EventQueue::new(),
        live: 0,
        views_buf: Vec::with_capacity(cluster.nodes.len()),
        keep_alive_ns: (cluster.autoscaler.keep_alive_s * 1e9) as u64,
        arrived: 0,
        ttfts: Vec::new(),
        completed: 0,
        makespan_ns: 0,
        cold_starts: 0,
        scale_to_zero_events: 0,
        fetch_retries: 0,
        degraded_cold_starts: 0,
        node_failures: 0,
        reroutes: 0,
        multi_tenant,
        slo_ns: (cluster.slo_ttft_s * 1e9) as u64,
        tenant_stats: std::collections::BTreeMap::new(),
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        registry: cluster.registry_mode.build(),
        cas: matches!(cluster.registry_mode, RegistryMode::ContentAddressed(_)),
        reg_bytes_fetched: 0,
        reg_bytes_resolved: 0,
        reg_chunk_hits: 0,
        reg_chunk_misses: 0,
        estimator: cluster
            .prewarm
            .map(|cfg| PrewarmEstimator::new(cfg, cluster.faults.seed)),
        prewarms_issued: 0,
        prewarms_unused: 0,
        pipeline_k,
        pipeline_starts: 0,
    };
    if multi_tenant {
        // Pre-populate so tenants whose every request times out still show
        // up in the report with `completed: 0`.
        for r in trace {
            sim.tenant_stats.entry(r.model).or_default().offered += 1;
        }
    }
    // Pre-seeded caches hold model 0's artifact; in content-addressed mode
    // that means its chunks are resident too.
    if let RegistryMode::ContentAddressed(catalog) = &cluster.registry_mode {
        for node in sim.nodes.iter_mut().filter(|n| n.spec.cached) {
            node.chunks = catalog
                .units_for(0, profile)
                .iter()
                .map(|u| u.digest)
                .collect();
        }
    }
    for (i, r) in trace.iter().enumerate() {
        sim.events
            .schedule(r.arrival_ns, FleetEvent::Arrival { req: i });
    }
    if let Some(interval_s) = cluster.autoscaler.eval_interval_s {
        let step = (interval_s * 1e9) as u64;
        if step > 0 {
            sim.events
                .schedule(step, FleetEvent::ScaleDecision { prewarm: None });
        }
    }
    let horizon = trace.last().map_or(0, |r| r.arrival_ns) + (cluster.drain_s * 1e9) as u64;

    let mut events_processed: u64 = 0;
    let mut truncated = false;
    while let Some((t, ev)) = sim.events.pop() {
        if t > horizon {
            truncated = true;
            break;
        }
        events_processed += 1;
        match ev {
            FleetEvent::Arrival { req } => sim.on_arrival(t, req, sched.as_mut()),
            FleetEvent::Route { node } => sim.on_route(t, node),
            FleetEvent::RegistryFetchDone { node, epoch } => sim.on_fetch_done(node, epoch),
            FleetEvent::ColdStartStageDone { node, epoch } => {
                sim.on_stage_done(t, node, epoch, sched.as_mut());
            }
            FleetEvent::KeepAliveExpiry { node } => sim.on_keep_alive_expiry(t, node),
            FleetEvent::NodeCrash { node, epoch } => sim.on_crash(t, node, epoch, sched.as_mut()),
            FleetEvent::ScaleDecision { prewarm } => {
                sim.on_scale_decision(t, prewarm, sched.as_mut());
            }
            FleetEvent::PipelineShardDone { node, head, epoch } => {
                sim.on_pipeline_shard_done(t, node, head, epoch, sched.as_mut());
            }
            FleetEvent::IterationDone { node } => sim.on_iteration_done(t, node, sched.as_mut()),
        }
    }
    let truncated = truncated || !sim.events.is_empty();
    // Prewarmed nodes that never got work by the end of the run count as
    // waste too (a node a request landed on cleared the flag).
    sim.prewarms_unused += sim.nodes.iter().filter(|n| n.prewarmed).count() as u64;

    let mut sorted: Vec<u64> = sim.ttfts.iter().map(|d| d.as_nanos() / 1_000).collect();
    sorted.sort_unstable();
    let q = |f: f64| -> u64 { quantile_us(&sorted, f) };
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().sum::<u64>() / sorted.len() as u64
    };
    if let Some(tl) = tele {
        tl.inc("cluster_requests_offered_total", trace.len() as u64);
        tl.inc("cluster_requests_completed_total", sim.completed as u64);
        tl.gauge_max("cluster_makespan_us", sim.makespan_ns / 1_000);
    }
    let report = ClusterReport {
        policy: sched.name().to_string(),
        strategy: profile.strategy,
        offered: trace.len(),
        completed: sim.completed,
        cold_starts: sim.cold_starts,
        scale_to_zero_events: sim.scale_to_zero_events,
        fetch_retries: sim.fetch_retries,
        degraded_cold_starts: sim.degraded_cold_starts,
        node_failures: sim.node_failures,
        reroutes: sim.reroutes,
        makespan_ns: sim.makespan_ns,
        ttft_p50_us: q(0.5),
        ttft_p99_us: q(0.99),
        ttft_mean_us: mean,
        trace_fingerprint: fingerprint(trace),
        prewarm: cluster.prewarm.is_some().then_some(PrewarmReport {
            issued: sim.prewarms_issued,
            unused: sim.prewarms_unused,
        }),
        pipeline_starts: (pipeline_k >= 2).then_some(sim.pipeline_starts),
        tenants: sim
            .tenant_stats
            .iter_mut()
            .map(|(&model, stat)| {
                stat.ttfts_us.sort_unstable();
                TenantReport {
                    model,
                    offered: stat.offered,
                    completed: stat.completed,
                    cold_starts: stat.cold_starts,
                    ttft_p50_us: quantile_us(&stat.ttfts_us, 0.5),
                    ttft_p99_us: quantile_us(&stat.ttfts_us, 0.99),
                    slo_attained_pm: if stat.offered == 0 {
                        0
                    } else {
                        (stat.slo_attained as u64 * 1_000 / stat.offered as u64) as u32
                    },
                }
            })
            .collect(),
        cache: (sim.multi_tenant || cluster.cache.capacity != CacheCapacity::Unlimited).then_some(
            CacheReport {
                hits: sim.cache_hits,
                misses: sim.cache_misses,
                evictions: sim.cache_evictions,
            },
        ),
        registry: sim.cas.then_some(RegistryReport {
            bytes_fetched: sim.reg_bytes_fetched,
            bytes_resolved: sim.reg_bytes_resolved,
            chunk_hits: sim.reg_chunk_hits,
            chunk_misses: sim.reg_chunk_misses,
        }),
        nodes: sim
            .nodes
            .iter()
            .map(|n| NodeReport {
                gpu: n.spec.gpu.clone(),
                tp: n.spec.tp,
                cold_starts: n.cold_starts,
                cold_ns: n.cold_ns,
                served: n.served,
                busy_ns: n.busy_ns,
                work_ns: n.work_ns,
                cached_at_end: !n.cache.is_empty(),
            })
            .collect(),
    };
    let in_flight_at_end: usize = sim.nodes.iter().map(Node::load).sum();
    let starting_nodes_at_end = sim
        .nodes
        .iter()
        .filter(|n| n.state == NodeState::Starting)
        .count();
    FleetOutcome {
        report,
        stats: FleetStats {
            events_processed,
            events_cancelled: sim.events.cancelled_total(),
            arrived: sim.arrived,
            queued_at_end: sim.queue.len(),
            in_flight_at_end,
            starting_nodes_at_end,
            horizon_truncated: truncated,
        },
        ttfts: sim.ttfts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medusa_workload::{ArrivalPattern, TraceConfig};

    fn perf(loading_ms: u64) -> PerfModel {
        PerfModel::from_tables(
            Strategy::Vanilla,
            "toy",
            SimDuration::from_millis(loading_ms),
            vec![1, 8, 32],
            vec![
                SimDuration::from_millis(5),
                SimDuration::from_millis(6),
                SimDuration::from_millis(8),
            ],
            vec![
                (100, SimDuration::from_millis(20)),
                (200, SimDuration::from_millis(40)),
            ],
        )
    }

    fn medusa_profile(loading_ms: u64, fetch_ms: u64) -> FleetProfile {
        let mut p = perf(loading_ms);
        p.strategy = Strategy::Medusa;
        FleetProfile::from_perf(Strategy::Medusa, p).with_fetch(SimDuration::from_millis(fetch_ms))
    }

    fn req(id: u64, arrival_ms: u64, prompt: u32, output: u32) -> Request {
        Request {
            id,
            arrival_ns: arrival_ms * 1_000_000,
            prompt_tokens: prompt,
            output_tokens: output,
            model: 0,
        }
    }

    fn mt_req(id: u64, arrival_ms: u64, model: u32) -> Request {
        Request {
            id,
            arrival_ns: arrival_ms * 1_000_000,
            prompt_tokens: 100,
            output_tokens: 1,
            model,
        }
    }

    #[test]
    fn single_request_pays_fetch_plus_loading_plus_prefill_on_cache_miss() {
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(2);
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        assert_eq!(out.ttfts.len(), 1);
        // fetch 300 + loading 500 + prefill 20.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(820));
        assert_eq!(out.report.cold_starts, 1);
        assert!(out.report.nodes[0].cached_at_end);
        assert!(!out.report.nodes[1].cached_at_end, "only node 0 started");
    }

    #[test]
    fn cached_node_skips_the_fetch() {
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(2).with_cached_prefix(1);
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        assert_eq!(out.ttfts[0], SimDuration::from_millis(520));
    }

    #[test]
    fn coldstart_aware_prefers_the_cached_cold_node() {
        let profile = medusa_profile(500, 300);
        // Node 1 (not 0) holds the artifact: the policy must pick it.
        let mut spec = ClusterSpec::uniform(3);
        spec.nodes[1].cached = true;
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        assert_eq!(out.report.nodes[1].cold_starts, 1);
        assert_eq!(out.report.nodes[0].cold_starts, 0);
        assert_eq!(out.ttfts[0], SimDuration::from_millis(520));
    }

    #[test]
    fn vanilla_fleet_never_fetches() {
        let profile = FleetProfile::from_perf(Strategy::Vanilla, perf(800))
            .with_fetch(SimDuration::from_millis(300));
        let spec = ClusterSpec::uniform(1);
        let out = simulate_fleet(&profile, &spec, Policy::LeastLoaded, &[req(0, 0, 100, 1)]);
        assert_eq!(out.ttfts[0], SimDuration::from_millis(820));
        assert!(
            !out.report.nodes[0].cached_at_end,
            "vanilla materializes nothing"
        );
    }

    #[test]
    fn round_robin_rotates_over_the_fleet() {
        let profile = medusa_profile(100, 0);
        let spec = ClusterSpec::uniform(3);
        let trace: Vec<Request> = (0..3).map(|i| req(i, 0, 100, 1)).collect();
        let out = simulate_fleet(&profile, &spec, Policy::RoundRobin, &trace);
        assert_eq!(out.report.cold_starts, 3, "rotation wakes each node once");
        for n in &out.report.nodes {
            assert_eq!(n.served, 1);
        }
    }

    #[test]
    fn least_loaded_wakes_the_fleet_on_a_burst_but_coldstart_aware_packs() {
        let profile = medusa_profile(500, 200);
        let spec = ClusterSpec::uniform(4);
        // 8 simultaneous short requests fit comfortably on one node.
        let trace: Vec<Request> = (0..8).map(|i| req(i, 0, 100, 2)).collect();
        let ll = simulate_fleet(&profile, &spec, Policy::LeastLoaded, &trace);
        let ca = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(ll.report.cold_starts, 4, "least-loaded fans out");
        assert_eq!(ca.report.cold_starts, 1, "coldstart-aware packs");
        assert_eq!(ll.report.completed, 8);
        assert_eq!(ca.report.completed, 8);
    }

    #[test]
    fn autoscaler_starts_nodes_when_backlog_exceeds_target_depth() {
        let profile = medusa_profile(500, 0);
        let mut spec = ClusterSpec::uniform(4);
        spec.autoscaler.target_queue_depth = 2;
        spec.max_running = 2; // routing saturates fast → global backlog
        let trace: Vec<Request> = (0..24).map(|i| req(i, 0, 100, 5)).collect();
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert!(
            out.report.cold_starts >= 2,
            "backlog must wake extra nodes: {:?}",
            out.report
        );
        assert_eq!(out.report.completed, 24);
    }

    #[test]
    fn keep_alive_expiry_scales_to_zero_and_rewarm_skips_the_fetch() {
        let profile = medusa_profile(500, 300);
        let mut spec = ClusterSpec::uniform(1);
        spec.autoscaler.keep_alive_s = 5.0;
        let trace = vec![req(0, 0, 100, 1), req(1, 30_000, 100, 1)];
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(out.report.cold_starts, 2, "node retired between requests");
        // One expiry between the requests, one after the second completes.
        assert_eq!(out.report.scale_to_zero_events, 2);
        // First start: fetch 300 + load 500 + prefill 20. Re-warm: the
        // cache survived scale-to-zero, so only load 500 + prefill 20.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(820));
        assert_eq!(out.ttfts[1], SimDuration::from_millis(520));
    }

    #[test]
    fn scale_to_zero_disabled_pins_warm_nodes() {
        let profile = medusa_profile(500, 300);
        let mut spec = ClusterSpec::uniform(1);
        spec.autoscaler.keep_alive_s = 5.0;
        spec.autoscaler.scale_to_zero = false;
        let trace = vec![req(0, 0, 100, 1), req(1, 30_000, 100, 1)];
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(out.report.cold_starts, 1);
        assert_eq!(out.ttfts[1], SimDuration::from_millis(20), "warm hit");
    }

    #[test]
    fn tp_nodes_aggregate_per_rank_work() {
        let base = medusa_profile(500, 0);
        let tp2 = base
            .clone()
            .with_coldstart_work(SimDuration::from_millis(1000)); // 2 ranks × 500ms
        let trace = vec![req(0, 0, 100, 3)];
        let out1 = simulate_fleet(
            &base,
            &ClusterSpec::uniform(1),
            Policy::ColdStartAware,
            &trace,
        );
        let out2 = simulate_fleet(
            &tp2,
            &ClusterSpec::uniform(1).with_tp(2),
            Policy::ColdStartAware,
            &trace,
        );
        let n1 = &out1.report.nodes[0];
        let n2 = &out2.report.nodes[0];
        assert_eq!(n1.cold_ns, n2.cold_ns, "same wall-clock makespan");
        assert_eq!(
            n2.work_ns,
            2 * n1.work_ns,
            "tp=2 consumes twice the rank work"
        );
        assert_eq!(out1.ttfts, out2.ttfts, "wall-clock TTFT is tp-invariant");
    }

    #[test]
    fn reports_and_telemetry_are_deterministic_per_trace() {
        let profile = medusa_profile(400, 150);
        let spec = ClusterSpec::uniform(4).with_cached_prefix(2);
        let trace = TraceConfig::sharegpt(6.0, 40.0)
            .with_seed(42)
            .with_pattern(ArrivalPattern::sharegpt_bursty())
            .generate();
        let run = || {
            let tele = TelemetryRegistry::new();
            let out =
                simulate_fleet_traced(&profile, &spec, Policy::ColdStartAware, &trace, Some(&tele));
            (
                out.report.to_json(),
                medusa_telemetry::export::prometheus::render(&tele.snapshot()),
            )
        };
        assert_eq!(run(), run(), "same trace must export byte-identically");
    }

    #[test]
    fn report_json_round_trips() {
        let profile = medusa_profile(400, 150);
        let spec = ClusterSpec::uniform(2);
        let trace: Vec<Request> = (0..5).map(|i| req(i, i * 100, 100, 3)).collect();
        let out = simulate_fleet(&profile, &spec, Policy::LeastLoaded, &trace);
        let back = ClusterReport::from_json(&out.report.to_json()).expect("parse");
        assert_eq!(back, out.report);
        assert_eq!(back.trace_fingerprint, fingerprint(&trace));
    }

    #[test]
    fn telemetry_records_decisions_and_per_node_histograms() {
        let profile = medusa_profile(400, 0);
        let spec = ClusterSpec::uniform(2);
        let trace: Vec<Request> = (0..4).map(|i| req(i, 0, 100, 1)).collect();
        let tele = TelemetryRegistry::new();
        let out =
            simulate_fleet_traced(&profile, &spec, Policy::ColdStartAware, &trace, Some(&tele));
        let snap = tele.snapshot();
        assert_eq!(
            snap.counter("cluster_cold_starts_total"),
            Some(out.report.cold_starts as u64)
        );
        assert_eq!(snap.counter("cluster_requests_offered_total"), Some(4));
        let routes = snap
            .spans
            .iter()
            .filter(|s| s.name.starts_with("route/"))
            .count();
        assert_eq!(routes, 4, "one scheduler-decision span per request");
        assert!(snap.histogram("cluster_node0_ttft_us").is_some());
        assert!(snap.histogram("cluster_node0_queue_delay_us").is_some());
    }

    #[test]
    fn empty_trace_is_handled() {
        let profile = medusa_profile(400, 0);
        let out = simulate_fleet(&profile, &ClusterSpec::uniform(2), Policy::LeastLoaded, &[]);
        assert_eq!(out.report.offered, 0);
        assert_eq!(out.report.ttft_p99_us, 0);
        assert_eq!(out.report.cold_starts, 0);
    }

    fn flaky_registry() -> FetchPolicy {
        FetchPolicy {
            timeout_s: 1.0,
            retry_budget: 3,
            backoff_base_s: 0.5,
            backoff_max_s: 2.0,
        }
    }

    #[test]
    fn exhausted_registry_budget_degrades_to_vanilla_without_caching() {
        let profile = medusa_profile(500, 300).with_degraded_loading(SimDuration::from_millis(800));
        let spec = ClusterSpec::uniform(1)
            .with_fetch_policy(flaky_registry())
            .with_faults(ClusterFaults {
                seed: 1,
                registry_fail_per_mille: 1000,
                node_crash_per_mille: 0,
            });
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        // 4 failed attempts × 1 s timeout, backoffs 0.5 + 1 + 2 s, then the
        // degraded vanilla load 800 ms + prefill 20 ms.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(8320));
        assert_eq!(out.report.degraded_cold_starts, 1);
        assert_eq!(out.report.fetch_retries, 3);
        assert!(
            !out.report.nodes[0].cached_at_end,
            "a degraded start materializes nothing"
        );
    }

    #[test]
    fn transient_registry_failure_retries_with_backoff_and_still_fetches() {
        // A seed whose first attempt fails and whose retry succeeds.
        let seed = (0..1000u64)
            .find(|&s| roll_per_mille(s, 0, 1, 0) < 500 && roll_per_mille(s, 0, 1, 1) >= 500)
            .expect("such a seed exists");
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(1)
            .with_fetch_policy(flaky_registry())
            .with_faults(ClusterFaults {
                seed,
                registry_fail_per_mille: 500,
                node_crash_per_mille: 0,
            });
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        // Timeout 1 s + backoff 0.5 s, then fetch 300 + load 500 + prefill
        // 20 ms as usual.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(2320));
        assert_eq!(out.report.fetch_retries, 1);
        assert_eq!(out.report.degraded_cold_starts, 0);
        assert!(out.report.nodes[0].cached_at_end);
    }

    #[test]
    fn node_crash_mid_cold_start_reroutes_and_restarts() {
        // A seed whose first start crashes and whose second survives.
        let crash = |s: u64, start: u32| roll_per_mille(s ^ 0xc7a5_11fe, 0, start, 0);
        let seed = (0..1000u64)
            .find(|&s| crash(s, 1) < 500 && crash(s, 2) >= 500)
            .expect("such a seed exists");
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(1).with_faults(ClusterFaults {
            seed,
            registry_fail_per_mille: 0,
            node_crash_per_mille: 500,
        });
        // LeastLoaded places the request on the starting node (ColdStartAware
        // would hold it in the global queue), so the crash must re-route it.
        let out = simulate_fleet(&profile, &spec, Policy::LeastLoaded, &[req(0, 0, 100, 1)]);
        assert_eq!(out.report.node_failures, 1);
        assert_eq!(out.report.reroutes, 1);
        assert_eq!(out.report.cold_starts, 2, "crashed start plus the retry");
        assert_eq!(out.report.completed, 1);
        // Crash at 400 ms (half of fetch 300 + load 500), restart pays the
        // full 800 ms again (the crashed fetch cached nothing), prefill 20.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(1220));
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let profile = medusa_profile(400, 150).with_degraded_loading(SimDuration::from_millis(700));
        let spec = ClusterSpec::uniform(4)
            .with_fetch_policy(flaky_registry())
            .with_faults(ClusterFaults {
                seed: 9,
                registry_fail_per_mille: 400,
                node_crash_per_mille: 100,
            });
        let trace = TraceConfig::sharegpt(6.0, 40.0)
            .with_seed(42)
            .with_pattern(ArrivalPattern::sharegpt_bursty())
            .generate();
        let run = || {
            let tele = TelemetryRegistry::new();
            let out =
                simulate_fleet_traced(&profile, &spec, Policy::ColdStartAware, &trace, Some(&tele));
            (
                out.report.to_json(),
                medusa_telemetry::export::prometheus::render(&tele.snapshot()),
            )
        };
        let (report, prom) = run();
        assert_eq!((report.clone(), prom.clone()), run());
        let parsed = ClusterReport::from_json(&report).expect("parse");
        assert_eq!(parsed.offered, trace.len());
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in Policy::ALL {
            let name = p.build().name();
            assert_eq!(Policy::parse(name), Some(p));
        }
        assert_eq!(Policy::parse("nope"), None);
    }

    #[test]
    fn eviction_policy_parse_round_trips() {
        for e in EvictionPolicy::ALL {
            assert_eq!(EvictionPolicy::parse(e.name()), Some(e));
        }
        assert_eq!(EvictionPolicy::parse("random"), None);
    }

    #[test]
    fn single_tenant_report_json_has_no_tenant_or_cache_fields() {
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(2);
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        let json = out.report.to_json();
        assert!(
            !json.contains("\"tenants\"") && !json.contains("\"cache\""),
            "single-tenant reports must stay byte-compatible: {json}"
        );
        let parsed = ClusterReport::from_json(&json).expect("parse");
        assert!(parsed.tenants.is_empty());
        assert!(parsed.cache.is_none());
    }

    #[test]
    fn multi_tenant_report_json_round_trips_tenants_and_cache() {
        let profile = medusa_profile(500, 300).with_scaled_models(4);
        let spec = ClusterSpec::uniform(2).with_cache(CacheConfig {
            capacity: CacheCapacity::Artifacts(1),
            eviction: EvictionPolicy::Lru,
        });
        let trace = vec![mt_req(0, 0, 1), mt_req(1, 3_000, 2), mt_req(2, 6_000, 1)];
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        let json = out.report.to_json();
        let parsed = ClusterReport::from_json(&json).expect("parse");
        assert_eq!(parsed.tenants.len(), 2, "{json}");
        assert_eq!(parsed.tenants[0].model, 1);
        assert_eq!(parsed.tenants[0].offered, 2);
        assert_eq!(parsed.tenants[1].model, 2);
        let cache = parsed.cache.expect("cache report present");
        assert_eq!(cache.hits + cache.misses, out.report.cold_starts as u64);
        assert_eq!(parsed, out.report);
    }

    #[test]
    fn per_model_costs_price_cold_starts_differently() {
        let profile = medusa_profile(500, 300).with_scaled_models(4);
        let spec = ClusterSpec::uniform(1);
        // Model 0 is the base table exactly; model 3 costs (4+3)/4 = 1.75x.
        let base = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &[mt_req(0, 0, 0)]);
        let tail = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &[mt_req(0, 0, 3)]);
        // fetch 300 + loading 500 + prefill 20.
        assert_eq!(base.ttfts[0], SimDuration::from_millis(820));
        // fetch 525 + loading 875 + prefill 20.
        assert_eq!(tail.ttfts[0], SimDuration::from_millis(1420));
    }

    #[test]
    fn bounded_cache_evicts_lru_victim_and_counts_it() {
        let profile = medusa_profile(400, 200).with_scaled_models(3);
        let spec = ClusterSpec::uniform(1)
            .with_cache(CacheConfig {
                capacity: CacheCapacity::Artifacts(1),
                eviction: EvictionPolicy::Lru,
            })
            .with_keep_alive(0.5);
        // Sequential one-shot requests with 10s gaps: the single node
        // scales to zero between each, and the 1-artifact cache can only
        // retain the most recent model.
        let trace = vec![mt_req(0, 0, 0), mt_req(1, 10_000, 1), mt_req(2, 20_000, 0)];
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(out.report.cold_starts, 3);
        let cache = out.report.cache.expect("bounded cache reports counters");
        // Every start misses: model 1 evicts model 0, model 0 evicts 1.
        assert_eq!(cache.hits, 0);
        assert_eq!(cache.misses, 3);
        assert_eq!(cache.evictions, 2);
    }

    #[test]
    fn unbounded_cache_turns_repeat_models_into_hits() {
        let profile = medusa_profile(400, 200).with_scaled_models(3);
        let spec = ClusterSpec::uniform(1).with_keep_alive(0.5);
        let trace = vec![mt_req(0, 0, 0), mt_req(1, 10_000, 1), mt_req(2, 20_000, 0)];
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(out.report.cold_starts, 3);
        let cache = out.report.cache.expect("multi-tenant run reports cache");
        assert_eq!(cache.misses, 2, "models 0 and 1 fetch once each");
        assert_eq!(cache.hits, 1, "model 0 re-warm hits the cache");
        assert_eq!(cache.evictions, 0);
    }

    #[test]
    fn cost_aware_eviction_keeps_the_expensive_artifact() {
        // Capacity 1 forces an eviction choice between the resident model
        // and the incoming one... but the incoming model is never its own
        // victim, so capacity 2 with three models exercises the policy:
        // after models 2 (expensive) and 0 (cheap) are resident, model 1's
        // insert must evict — Lru evicts model 2 (oldest), CostAware
        // evicts model 0 (cheapest to rematerialize).
        let profile = medusa_profile(400, 200).with_scaled_models(3);
        let trace = vec![
            mt_req(0, 0, 2),
            mt_req(1, 10_000, 0),
            mt_req(2, 20_000, 1),
            mt_req(3, 30_000, 2),
        ];
        let run = |eviction| {
            let spec = ClusterSpec::uniform(1)
                .with_cache(CacheConfig {
                    capacity: CacheCapacity::Artifacts(2),
                    eviction,
                })
                .with_keep_alive(0.5);
            simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace)
        };
        let lru = run(EvictionPolicy::Lru).report;
        let cost = run(EvictionPolicy::CostAware).report;
        let (lru_c, cost_c) = (lru.cache.unwrap(), cost.cache.unwrap());
        assert_eq!(lru_c.hits, 0, "Lru evicted model 2 before its return");
        assert_eq!(cost_c.hits, 1, "CostAware kept model 2 resident");
        // Keeping the expensive artifact resident shaves model 2's second
        // cold start by the saved registry fetch, so the aggregate mean
        // TTFT is strictly lower (the compulsory first miss keeps the
        // worst case — and thus p99-of-4 — identical).
        assert!(
            cost.ttft_mean_us < lru.ttft_mean_us,
            "cost-aware mean {} !< lru mean {}",
            cost.ttft_mean_us,
            lru.ttft_mean_us
        );
    }

    #[test]
    fn warm_nodes_only_accept_their_resident_model() {
        let profile = medusa_profile(400, 200).with_scaled_models(2);
        // Two models arriving together on a two-node fleet: affinity must
        // fan them out to separate nodes rather than queueing both behind
        // one warm instance.
        let spec = ClusterSpec::uniform(2);
        let trace = vec![mt_req(0, 0, 0), mt_req(1, 10, 1)];
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(out.report.cold_starts, 2, "one start per model");
        let served: Vec<u32> = out.report.nodes.iter().map(|n| n.served).collect();
        assert_eq!(served, vec![1, 1], "each node serves exactly one model");
    }

    #[test]
    fn multi_tenant_runs_are_deterministic_per_seed() {
        let profile = medusa_profile(400, 150).with_scaled_models(6);
        let spec = ClusterSpec::uniform(4)
            .with_cache(CacheConfig {
                capacity: CacheCapacity::Artifacts(2),
                eviction: EvictionPolicy::CostAware,
            })
            .with_faults(ClusterFaults {
                seed: 9,
                registry_fail_per_mille: 300,
                node_crash_per_mille: 100,
            })
            .with_fetch_policy(flaky_registry());
        let trace = TraceConfig::sharegpt(6.0, 40.0)
            .with_seed(42)
            .with_models(medusa_workload::ModelMix::Zipf { models: 6, s: 1.0 })
            .with_pattern(ArrivalPattern::sharegpt_bursty())
            .generate();
        assert!(trace.iter().any(|r| r.model != 0), "trace is multi-tenant");
        let a = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        let b = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.conservation_residual(), 0);
        let offered: usize = a.report.tenants.iter().map(|t| t.offered).sum();
        assert_eq!(offered, trace.len(), "tenant offered counts partition");
    }

    #[test]
    fn pick_cold_lets_a_warm_cache_node_beat_an_empty_one() {
        let view = |cached: bool, cost: u64| NodeView {
            state: NodeState::Cold,
            load: 0,
            cached,
            accepts: true,
            start_cost_ns: cost,
        };
        // Node 1 holds the artifact; node 0 is empty but earlier by index.
        let views = [view(false, 800), view(true, 500)];
        assert_eq!(ColdStartAware.pick_cold(&views, 0), Some(1));
        assert_eq!(
            ServerlessLlmLocality::default().pick_cold(&views, 0),
            Some(1)
        );
        // The trait's default impl stays index-first and cost-oblivious on
        // purpose: the committed goldens pin RoundRobin/LeastLoaded to it.
        struct Oblivious;
        impl Scheduler for Oblivious {
            fn name(&self) -> &'static str {
                "oblivious"
            }
            fn route(&mut self, _: &[NodeView]) -> Decision {
                Decision::Queue
            }
        }
        assert_eq!(Oblivious.pick_cold(&views, 0), Some(0));
    }

    #[test]
    fn locality_routes_to_the_cheapest_estimated_start() {
        let profile = medusa_profile(500, 300);
        // Node 2 (not 0) holds the artifact: the cache-hit start is the
        // cheapest estimated first token, so locality must pick it.
        let mut spec = ClusterSpec::uniform(3);
        spec.nodes[2].cached = true;
        let out = simulate_fleet(&profile, &spec, Policy::Locality, &[req(0, 0, 100, 1)]);
        assert_eq!(out.report.policy, "locality");
        assert_eq!(out.report.nodes[2].cold_starts, 1);
        assert_eq!(out.ttfts[0], SimDuration::from_millis(520));
        // And on a simultaneous burst, a start already in flight is
        // cheaper than waking another cold node: locality packs where
        // least-loaded would fan out across the fleet.
        let burst: Vec<Request> = (0..8).map(|i| req(i, 0, 100, 2)).collect();
        let packed = simulate_fleet(&profile, &ClusterSpec::uniform(4), Policy::Locality, &burst);
        assert_eq!(packed.report.cold_starts, 1, "locality packs the burst");
        assert_eq!(packed.report.completed, 8);
    }

    #[test]
    fn prewarm_estimator_warms_the_node_ahead_of_periodic_arrivals() {
        let profile = medusa_profile(500, 300);
        // Keep-alive (2 s) far shorter than the 10 s arrival period: the
        // reactive fleet pays a cold start on every arrival.
        let base = ClusterSpec::uniform(1).with_keep_alive(2.0);
        let trace: Vec<Request> = (0..5).map(|i| req(i, i * 10_000, 100, 1)).collect();
        let reactive = simulate_fleet(&profile, &base, Policy::Locality, &trace);
        let spec = base.clone().with_prewarm(PrewarmConfig::default());
        let predictive = simulate_fleet(&profile, &spec, Policy::Locality, &trace);
        let counters = predictive.report.prewarm.expect("prewarm counters");
        assert!(counters.issued >= 3, "estimator fired: {counters:?}");
        assert!(counters.unused <= counters.issued);
        // One gap of history suffices: every arrival from the third on
        // lands on a predictively warmed node and pays prefill only.
        assert_eq!(predictive.ttfts[2], SimDuration::from_millis(20));
        let sum = |out: &FleetOutcome| out.ttfts.iter().map(|d| d.as_nanos()).sum::<u64>();
        assert!(sum(&predictive) < sum(&reactive));
        assert_eq!(reactive.report.prewarm, None, "knob off ⇒ field omitted");
        assert_eq!(predictive.conservation_residual(), 0);
    }

    #[test]
    fn pipeline_cold_start_halves_time_to_first_token() {
        // A 100×-class artifact: fetch 2 s + restore 4 s dominates TTFT.
        let profile = medusa_profile(4000, 2000);
        let one = req(0, 0, 100, 1);
        let single = simulate_fleet(&profile, &ClusterSpec::uniform(2), Policy::Locality, &[one]);
        let piped = simulate_fleet(&profile, &ClusterSpec::uniform(2), Policy::Pipeline, &[one]);
        assert_eq!(single.ttfts[0], SimDuration::from_millis(6020));
        // Two stages of (2000 + 4000) / 2 = 3000 ms each; the first token
        // ships as soon as the head's own stage lands.
        assert_eq!(piped.ttfts[0], SimDuration::from_millis(3020));
        assert_eq!(piped.report.policy, "pipeline");
        assert_eq!(piped.report.pipeline_starts, Some(1));
        assert_eq!(single.report.pipeline_starts, None, "knob off ⇒ omitted");
        assert_eq!(piped.report.cold_starts, 1, "helpers are not cold starts");
        assert_eq!(piped.report.nodes[1].served, 0, "helper released to cold");
        assert_eq!(piped.conservation_residual(), 0);
        // With no helper available the pipeline degenerates to the
        // single-node timeline instead of stalling.
        let solo = simulate_fleet(&profile, &ClusterSpec::uniform(1), Policy::Pipeline, &[one]);
        assert_eq!(solo.ttfts[0], SimDuration::from_millis(6020));
        assert_eq!(solo.report.pipeline_starts, Some(0));
    }

    #[test]
    fn pipeline_crash_tears_down_the_group_and_reroutes() {
        // A seed whose first (pipelined) head start crashes and whose
        // retry — head roll (node 0, start 2, attempt 0) and helper roll
        // (node 1, start 2, attempt 1) — survives.
        let crash =
            |s: u64, n: usize, start: u32, att: u32| roll_per_mille(s ^ 0xc7a5_11fe, n, start, att);
        let seed = (0..4000u64)
            .find(|&s| {
                crash(s, 0, 1, 0) < 500 && crash(s, 0, 2, 0) >= 500 && crash(s, 1, 2, 1) >= 500
            })
            .expect("such a seed exists");
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(2).with_faults(ClusterFaults {
            seed,
            registry_fail_per_mille: 0,
            node_crash_per_mille: 500,
        });
        let out = simulate_fleet(&profile, &spec, Policy::Pipeline, &[req(0, 0, 100, 1)]);
        assert_eq!(out.report.node_failures, 1, "one failure per group crash");
        assert_eq!(out.report.reroutes, 1);
        assert_eq!(out.report.cold_starts, 2, "crashed head start plus retry");
        assert_eq!(out.report.pipeline_starts, Some(2));
        assert_eq!(out.report.completed, 1);
        // Head stage span (300 + 500) / 2 = 400 ms, crash at its midpoint
        // (200 ms); the retry pays the full sharded start again: first
        // token at 200 + 400 + 20 prefill.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(620));
        // The teardown retracted the head's pending ready stage and the
        // helper's shard event via their tokens (the pipelined fetch had
        // already landed at 150 ms, before the crash).
        assert!(
            out.stats.events_cancelled >= 2,
            "stages must be retracted, not left to fire stale: {:?}",
            out.stats
        );
        assert_eq!(out.conservation_residual(), 0);
    }

    /// Two-model catalog sharing chunk `0xA0`: model 0 = {A0, B0},
    /// model 1 = {A0, C0}, 1000 bytes each.
    fn shared_chunk_catalog() -> RegistryCatalog {
        let unit = |digest: u64| FetchUnit {
            digest,
            bytes: 1000,
        };
        RegistryCatalog {
            models: vec![
                ModelManifest {
                    units: vec![unit(0xA0), unit(0xB0)],
                },
                ModelManifest {
                    units: vec![unit(0xA0), unit(0xC0)],
                },
            ],
        }
    }

    #[test]
    fn cas_fleet_transfers_only_the_missing_chunks_and_reports_counters() {
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(1)
            .with_registry_mode(RegistryMode::ContentAddressed(shared_chunk_catalog()))
            .with_keep_alive(0.5);
        // Model 0 then model 1 with a scale-to-zero gap between: the second
        // start resolves shared chunk A0 from the node's residency and only
        // transfers C0, so its fetch costs half the whole-artifact penalty.
        let trace = vec![mt_req(0, 0, 0), mt_req(1, 10_000, 1)];
        let out = simulate_fleet(&profile, &spec, Policy::ColdStartAware, &trace);
        // fetch 300 (2000/2000 bytes) + loading 500 + prefill 20.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(820));
        // fetch 150 (1000/2000 bytes) + loading 500 + prefill 20.
        assert_eq!(out.ttfts[1], SimDuration::from_millis(670));
        let reg = out.report.registry.expect("cas run reports counters");
        assert_eq!(reg.bytes_fetched, 3000, "A0+B0 then C0 only");
        assert_eq!(reg.bytes_resolved, 1000, "A0 deduplicated");
        assert_eq!(reg.chunk_hits, 1);
        assert_eq!(reg.chunk_misses, 3);
        assert!((reg.dedup_ratio() - 4.0 / 3.0).abs() < 1e-9);
        // The counters survive the report's JSON round trip.
        let json = out.report.to_json();
        assert!(json.contains("\"registry\""), "{json}");
        let parsed = ClusterReport::from_json(&json).expect("parse");
        assert_eq!(parsed.registry, Some(reg));
        assert_eq!(parsed, out.report);
    }

    #[test]
    fn whole_mode_report_omits_registry_counters() {
        let profile = medusa_profile(500, 300);
        let out = simulate_fleet(
            &profile,
            &ClusterSpec::uniform(2),
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        assert_eq!(out.report.registry, None);
        let json = out.report.to_json();
        assert!(
            !json.contains("\"registry\""),
            "whole-mode reports must stay byte-compatible: {json}"
        );
    }

    #[test]
    fn cas_monolithic_catalog_matches_whole_mode_timing() {
        // One monolithic unit per model: chunk accounting on, transfer
        // behavior identical — the control row of registry benchmarks.
        let profile = medusa_profile(500, 300);
        let catalog = RegistryCatalog::monolithic(&[profile.artifact_bytes_for(0)]);
        let trace = vec![req(0, 0, 100, 1), req(1, 10_000, 100, 1)];
        let whole = simulate_fleet(
            &profile,
            &ClusterSpec::uniform(1).with_keep_alive(0.5),
            Policy::ColdStartAware,
            &trace,
        );
        let cas = simulate_fleet(
            &profile,
            &ClusterSpec::uniform(1)
                .with_keep_alive(0.5)
                .with_registry_mode(RegistryMode::ContentAddressed(catalog)),
            Policy::ColdStartAware,
            &trace,
        );
        assert_eq!(cas.ttfts, whole.ttfts);
        assert_eq!(cas.report.cold_starts, whole.report.cold_starts);
        let reg = cas.report.registry.expect("counters still present");
        // The second start re-warms the resident artifact without a fetch.
        assert_eq!(reg.bytes_fetched, profile.artifact_bytes_for(0));
        assert_eq!(reg.chunk_misses, 1);
    }

    #[test]
    fn cas_retries_per_chunk_and_a_transient_chunk_failure_recovers() {
        let catalog = shared_chunk_catalog();
        let salt = |digest: u64| mix(0x5a17_c4a5 ^ digest);
        // A seed where chunk A0's first attempt fails and its retry
        // succeeds, while chunk B0 fetches cleanly on the first try.
        let seed = (0..4000u64)
            .find(|&s| {
                roll_per_mille(s ^ salt(0xA0), 0, 1, 0) < 500
                    && roll_per_mille(s ^ salt(0xA0), 0, 1, 1) >= 500
                    && roll_per_mille(s ^ salt(0xB0), 0, 1, 0) >= 500
            })
            .expect("such a seed exists");
        let profile = medusa_profile(500, 300);
        let spec = ClusterSpec::uniform(1)
            .with_registry_mode(RegistryMode::ContentAddressed(catalog))
            .with_fetch_policy(flaky_registry())
            .with_faults(ClusterFaults {
                seed,
                registry_fail_per_mille: 500,
                node_crash_per_mille: 0,
            });
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        // One timeout (1 s) + one backoff (0.5 s) on chunk A0, then the
        // full 2-chunk fetch 300 + loading 500 + prefill 20.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(2320));
        assert_eq!(out.report.fetch_retries, 1);
        assert_eq!(out.report.degraded_cold_starts, 0);
        assert!(out.report.nodes[0].cached_at_end);
    }

    #[test]
    fn cas_exhausted_chunk_budget_degrades_the_whole_start() {
        let profile = medusa_profile(500, 300).with_degraded_loading(SimDuration::from_millis(800));
        let spec = ClusterSpec::uniform(1)
            .with_registry_mode(RegistryMode::ContentAddressed(shared_chunk_catalog()))
            .with_fetch_policy(flaky_registry())
            .with_faults(ClusterFaults {
                seed: 1,
                registry_fail_per_mille: 1000,
                node_crash_per_mille: 0,
            });
        let out = simulate_fleet(
            &profile,
            &spec,
            Policy::ColdStartAware,
            &[req(0, 0, 100, 1)],
        );
        // The first chunk alone burns the whole budget (4 timeouts × 1 s,
        // backoffs 0.5 + 1 + 2 s), the remaining chunks are never tried,
        // and the start degrades: vanilla load 800 + prefill 20.
        assert_eq!(out.ttfts[0], SimDuration::from_millis(8320));
        assert_eq!(out.report.degraded_cold_starts, 1);
        assert_eq!(out.report.fetch_retries, 3, "per-chunk budget is bounded");
        assert_eq!(out.report.registry, Some(RegistryReport::default()));
        assert!(
            !out.report.nodes[0].cached_at_end,
            "a degraded start materializes no chunks"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_registry_policy_alias_still_builds_the_same_spec() {
        let policy = RegistryPolicy {
            timeout_s: 0.4,
            retry_budget: 2,
            backoff_base_s: 0.1,
            backoff_max_s: 0.8,
        };
        let old = ClusterSpec::uniform(2).with_registry(policy);
        let new = ClusterSpec::uniform(2).with_fetch_policy(policy);
        assert_eq!(old.fetch_policy, new.fetch_policy);
        let profile = medusa_profile(500, 300);
        let trace = [req(0, 0, 100, 1)];
        let a = simulate_fleet(&profile, &old, Policy::ColdStartAware, &trace);
        let b = simulate_fleet(&profile, &new, Policy::ColdStartAware, &trace);
        assert_eq!(a.report.to_json(), b.report.to_json());
    }
}
