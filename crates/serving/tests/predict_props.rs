//! Property suite for the prewarm estimator ([`medusa_serving::predict`]).
//!
//! The estimator sits between the arrival stream and the scheduler: a
//! wrong decision either wastes a node (fires too early, expires unused)
//! or is useless (fires after the arrival it was meant to beat). Two
//! properties are load-bearing enough to pin over the whole input space
//! rather than at hand-picked points:
//!
//! * **Causality** — [`PrewarmEstimator::observe`] never returns a fire
//!   instant earlier than the observation that produced it, for any
//!   policy, percentile, lead, seed, or arrival stream. The fleet layer
//!   schedules the decision verbatim; a past-dated decision would be an
//!   unschedulable event.
//! * **Determinism** — the same seed and the same arrival stream produce
//!   a byte-identical decision log, and the seed's only influence is the
//!   sub-millisecond jitter. The policy-race CI gate diffs TTFT
//!   percentiles at 5% tolerance against a committed baseline; that only
//!   works if reruns are exact replicas.

use medusa_serving::{PrewarmConfig, PrewarmDecision, PrewarmEstimator, PrewarmPolicy};
use proptest::prelude::*;

/// Builds a policy from raw drawn knobs: both families, full knob ranges
/// (percentiles past 1000‰ exercise the internal clamp).
fn policy(histogram: bool, percentile_pm: u32, window_s: f64) -> PrewarmPolicy {
    if histogram {
        PrewarmPolicy::Histogram { percentile_pm }
    } else {
        PrewarmPolicy::WindowedRate { window_s }
    }
}

/// Folds a drawn (gap, model) stream into absolute non-decreasing
/// instants and replays it, logging every (observation, decision) pair.
/// Arbitrary burstiness — zero gaps included — over interleaved models.
fn replay(
    policy: PrewarmPolicy,
    lead_s: f64,
    seed: u64,
    stream: &[(u64, u32)],
) -> Vec<(u64, PrewarmDecision)> {
    let mut est = PrewarmEstimator::new(PrewarmConfig { policy, lead_s }, seed);
    let mut now = 0u64;
    let mut log = Vec::new();
    for &(gap, model) in stream {
        now = now.saturating_add(gap);
        if let Some(d) = est.observe(now, model) {
            log.push((now, d));
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Causality: no decision ever fires before the arrival that
    /// produced it, even with leads far beyond any plausible gap.
    #[test]
    fn decisions_never_fire_in_the_past(
        histogram in any::<bool>(),
        percentile_pm in 0u32..1200,
        window_s in 0.05f64..180.0,
        lead_s in 0.0f64..10_000.0,
        seed in any::<u64>(),
        stream in prop::collection::vec((0u64..30_000_000_000, 0u32..5), 1..120),
    ) {
        let p = policy(histogram, percentile_pm, window_s);
        for (now, d) in replay(p, lead_s, seed, &stream) {
            prop_assert!(
                d.t_ns >= now,
                "decision for model {} fires at {} ns, before its observation at {} ns",
                d.model, d.t_ns, now
            );
        }
    }

    /// Determinism: the same (config, seed, stream) triple replays to a
    /// byte-identical decision log — no hidden host state anywhere.
    #[test]
    fn same_seed_same_stream_is_byte_identical(
        histogram in any::<bool>(),
        percentile_pm in 0u32..1200,
        window_s in 0.05f64..180.0,
        lead_s in 0.0f64..100.0,
        seed in any::<u64>(),
        stream in prop::collection::vec((0u64..30_000_000_000, 0u32..5), 1..120),
    ) {
        let p = policy(histogram, percentile_pm, window_s);
        let encode = |log: &[(u64, PrewarmDecision)]| {
            serde_json::to_string(&log.iter().map(|(_, d)| *d).collect::<Vec<_>>())
                .expect("plain structs encode")
        };
        prop_assert_eq!(
            encode(&replay(p, lead_s, seed, &stream)),
            encode(&replay(p, lead_s, seed, &stream))
        );
    }

    /// The seed's entire influence is the sub-millisecond jitter: two
    /// estimators differing only in seed emit the same decisions at the
    /// same observations, with fire instants less than 1 ms apart.
    #[test]
    fn seed_only_moves_decisions_by_subms_jitter(
        histogram in any::<bool>(),
        percentile_pm in 0u32..1200,
        window_s in 0.05f64..180.0,
        lead_s in 0.0f64..100.0,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        stream in prop::collection::vec((0u64..30_000_000_000, 0u32..5), 1..120),
    ) {
        let p = policy(histogram, percentile_pm, window_s);
        let a = replay(p, lead_s, seed_a, &stream);
        let b = replay(p, lead_s, seed_b, &stream);
        prop_assert_eq!(a.len(), b.len(), "seeds changed *which* arrivals decide");
        for ((now_a, da), (now_b, db)) in a.iter().zip(&b) {
            prop_assert_eq!(now_a, now_b);
            prop_assert_eq!(da.model, db.model);
            prop_assert!(
                da.t_ns.abs_diff(db.t_ns) < 1_000_000,
                "seeds moved a decision by {} ns (≥ 1 ms): {} vs {}",
                da.t_ns.abs_diff(db.t_ns), da.t_ns, db.t_ns
            );
        }
    }
}
