//! Multi-GPU (tensor-parallel) materialization and restoration — the
//! paper's §8 extension.
//!
//! "Regarding multi-GPU support, Medusa's core concepts remain applicable
//! [...] One potential future exploration is constructing the indirect
//! index pointer table across multiple GPU instances."
//!
//! A `tp`-way instance runs one process per GPU. Each rank's control flow
//! is deterministic *per rank*, so each rank gets its **own** indirect
//! index pointer table, replay sequence and kernel name table: the offline
//! phase produces one artifact per rank, and the online phase restores all
//! ranks (conceptually in parallel — cold-start loading is the slowest
//! rank's loading).

use crate::artifact::MaterializedState;
use crate::error::{MedusaError, MedusaResult};
use crate::pipeline::{
    cold_start, materialize_offline_sharded, ColdStartOptions, ColdStartReport, OfflineReport,
    ReadyEngine, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;

/// The per-rank artifacts of one `<GPU type, model type, tp>` combination.
#[derive(Debug, Clone, PartialEq)]
pub struct TpArtifacts {
    ranks: Vec<MaterializedState>,
}

impl TpArtifacts {
    /// Wraps per-rank artifacts (ascending rank).
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactMismatch`] if the ranks disagree on
    /// model, GPU or degree, or are out of order.
    pub fn new(ranks: Vec<MaterializedState>) -> MedusaResult<Self> {
        let tp = ranks.len() as u32;
        for (i, a) in ranks.iter().enumerate() {
            a.check_target(&ranks[0].model, &ranks[0].gpu, i as u32, tp)?;
        }
        Ok(TpArtifacts { ranks })
    }

    /// Tensor-parallel degree.
    pub fn tp(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// The artifact of `rank`.
    pub fn rank(&self, rank: u32) -> &MaterializedState {
        &self.ranks[rank as usize]
    }

    /// Iterates over per-rank artifacts in rank order.
    pub fn iter(&self) -> impl Iterator<Item = &MaterializedState> {
        self.ranks.iter()
    }
}

/// Runs the offline phase for every rank of a `tp`-way instance.
/// The reported durations are the slowest rank's (ranks materialize in
/// parallel on their own GPUs).
///
/// # Errors
///
/// Propagates per-rank capture/analysis failures.
pub fn materialize_offline_tp(
    spec: &ModelSpec,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    seed: u64,
) -> MedusaResult<(TpArtifacts, OfflineReport)> {
    assert!(tp > 0, "tensor-parallel degree must be positive");
    let mut ranks = Vec::with_capacity(tp as usize);
    let mut report = OfflineReport { capture: SimDuration::ZERO, analysis: SimDuration::ZERO };
    for rank in 0..tp {
        let (artifact, r) = materialize_offline_sharded(
            spec,
            rank,
            tp,
            gpu.clone(),
            cost.clone(),
            seed ^ (0x7a_0000 + rank as u64),
        )?;
        report.capture = report.capture.max(r.capture);
        report.analysis = report.analysis.max(r.analysis);
        ranks.push(artifact);
    }
    Ok((TpArtifacts::new(ranks)?, report))
}

/// Result of a tensor-parallel cold start.
#[derive(Debug)]
pub struct TpColdStart {
    /// Per-rank serving-ready engines, rank order.
    pub engines: Vec<ReadyEngine>,
    /// Per-rank timing reports.
    pub reports: Vec<ColdStartReport>,
}

impl TpColdStart {
    /// The instance's loading-phase duration: the slowest rank's (ranks
    /// load in parallel, and serving starts when all are ready).
    pub fn loading(&self) -> SimDuration {
        self.reports.iter().map(|r| r.loading).max().unwrap_or(SimDuration::ZERO)
    }

    /// The instance's cold-start duration: the slowest rank's.
    pub fn total(&self) -> SimDuration {
        self.reports.iter().map(|r| r.total).max().unwrap_or(SimDuration::ZERO)
    }
}

/// Cold-starts every rank of a `tp`-way instance with `strategy`.
///
/// # Errors
///
/// * [`MedusaError::ArtifactRequired`] for [`Strategy::Medusa`] without
///   artifacts.
/// * [`MedusaError::ArtifactMismatch`] if `artifacts` has a different
///   degree.
/// * Propagated per-rank errors.
pub fn cold_start_tp(
    strategy: Strategy,
    spec: &ModelSpec,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    artifacts: Option<&TpArtifacts>,
    opts: ColdStartOptions,
) -> MedusaResult<TpColdStart> {
    assert!(tp > 0, "tensor-parallel degree must be positive");
    if let Some(a) = artifacts {
        if a.tp() != tp {
            return Err(MedusaError::ArtifactMismatch {
                artifact: format!("tp={}", a.tp()),
                target: format!("tp={tp}"),
            });
        }
    }
    let mut engines = Vec::with_capacity(tp as usize);
    let mut reports = Vec::with_capacity(tp as usize);
    for rank in 0..tp {
        let rank_opts = ColdStartOptions {
            rank,
            tp,
            seed: opts.seed ^ (0x9a_0000 + rank as u64),
            ..opts
        };
        let art = artifacts.map(|a| a.rank(rank));
        let (engine, report) = cold_start(strategy, spec, gpu.clone(), cost.clone(), art, rank_opts)?;
        engines.push(engine);
        reports.push(report);
    }
    Ok(TpColdStart { engines, reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Stage;

    fn spec() -> ModelSpec {
        ModelSpec::by_name("Qwen1.5-0.5B").unwrap()
    }

    #[test]
    fn tp_offline_produces_per_rank_artifacts() {
        let (arts, report) =
            materialize_offline_tp(&spec(), 2, GpuSpec::a100_40gb(), CostModel::default(), 501)
                .unwrap();
        assert_eq!(arts.tp(), 2);
        assert_eq!(arts.rank(0).rank, 0);
        assert_eq!(arts.rank(1).rank, 1);
        // Each rank's graphs carry the 2 extra all-reduce nodes per layer.
        let l = spec().layers() as u64;
        let single_base = medusa_model::schedule::base_nodes_per_graph(&spec());
        let g0 = arts.rank(0).graphs[0].nodes.len() as u64;
        assert_eq!(
            g0,
            single_base + 2 * l + medusa_model::schedule::aux_pad_for_graph(&spec(), 0),
            "tp graphs add two all-reduces per layer"
        );
        assert!(arts.rank(0).graphs[0].nodes.iter().any(|n| n.kernel.contains("all_reduce")));
        assert!(report.total() > SimDuration::ZERO);
        // Per-rank control flow is identical, so per-rank artifacts agree on
        // everything but raw values (which are gone after analysis) and rank.
        assert_eq!(arts.rank(0).replay_prefix_allocs, arts.rank(1).replay_prefix_allocs);
        assert_eq!(arts.rank(0).kv_free_bytes, arts.rank(1).kv_free_bytes);
    }

    #[test]
    fn tp_medusa_cold_start_restores_all_ranks() {
        let s = spec();
        let (arts, _) =
            materialize_offline_tp(&s, 2, GpuSpec::a100_40gb(), CostModel::default(), 502)
                .unwrap();
        // Validation correctness first (timing-independent)...
        cold_start_tp(
            Strategy::Medusa,
            &s,
            2,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            Some(&arts),
            ColdStartOptions { validate: true, ..Default::default() },
        )
        .unwrap();
        // ...then the timing comparison without the validation forwardings.
        let medusa = cold_start_tp(
            Strategy::Medusa,
            &s,
            2,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            Some(&arts),
            ColdStartOptions::default(),
        )
        .unwrap();
        let vanilla = cold_start_tp(
            Strategy::Vanilla,
            &s,
            2,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
        )
        .unwrap();
        assert_eq!(medusa.engines.len(), 2);
        assert!(medusa.loading() < vanilla.loading(), "Medusa wins per rank too");
        for r in &medusa.reports {
            assert!(r.stage(Stage::KvCacheInit) < vanilla.reports[0].stage(Stage::KvCacheInit));
        }
        // Each rank serves through its restored graphs.
        for engine in &medusa.engines {
            assert_eq!(engine.graphs.len(), 35);
        }
    }

    #[test]
    fn tp_rank_artifacts_cannot_cross_restore() {
        let s = spec();
        let (arts, _) =
            materialize_offline_tp(&s, 2, GpuSpec::a100_40gb(), CostModel::default(), 503)
                .unwrap();
        // Restoring rank 1's artifact into rank 0 must be rejected.
        let err = cold_start(
            Strategy::Medusa,
            &s,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            Some(arts.rank(1)),
            ColdStartOptions { rank: 0, tp: 2, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, MedusaError::ArtifactMismatch { .. }));
    }

    #[test]
    fn tp_degree_mismatch_rejected() {
        let s = spec();
        let (arts, _) =
            materialize_offline_tp(&s, 2, GpuSpec::a100_40gb(), CostModel::default(), 504)
                .unwrap();
        let err = cold_start_tp(
            Strategy::Medusa,
            &s,
            4,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            Some(&arts),
            ColdStartOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MedusaError::ArtifactMismatch { .. }));
    }

    #[test]
    fn sharded_weights_shrink_per_rank() {
        let s = spec();
        let v1 = cold_start_tp(
            Strategy::NoCudaGraph,
            &s,
            1,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
        )
        .unwrap();
        let v4 = cold_start_tp(
            Strategy::NoCudaGraph,
            &s,
            4,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
        )
        .unwrap();
        let w1 = v1.engines[0].inst.weight_bytes();
        let w4 = v4.engines[0].inst.weight_bytes();
        assert!(w4 * 3 < w1, "4-way shards must be much smaller: {w4} vs {w1}");
        assert!(
            v4.reports[0].stage(Stage::WeightsLoad) < v1.reports[0].stage(Stage::WeightsLoad)
        );
    }
}
