//! Multi-GPU (tensor-parallel) materialization and restoration — the
//! paper's §8 extension.
//!
//! "Regarding multi-GPU support, Medusa's core concepts remain applicable
//! [...] One potential future exploration is constructing the indirect
//! index pointer table across multiple GPU instances."
//!
//! A `tp`-way instance runs one process per GPU. Each rank's control flow
//! is deterministic *per rank*, so each rank gets its **own** indirect
//! index pointer table, replay sequence and kernel name table: the offline
//! phase produces one artifact per rank, and the online phase restores all
//! ranks (conceptually in parallel — cold-start loading is the slowest
//! rank's loading).

use crate::artifact::MaterializedState;
use crate::engine::par_map;
use crate::error::{MedusaError, MedusaResult};
use crate::pipeline::{
    cold_start_impl, materialize_offline_shard_impl, ColdStartOptions, ColdStartReport,
    OfflineReport, Parallelism, ReadyEngine, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;
use medusa_telemetry::Registry;

/// The per-rank artifacts of one `<GPU type, model type, tp>` combination.
#[derive(Debug, Clone, PartialEq)]
pub struct TpArtifacts {
    ranks: Vec<MaterializedState>,
}

impl TpArtifacts {
    /// Wraps per-rank artifacts (ascending rank).
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactMismatch`] if the ranks disagree on
    /// model, GPU or degree, or are out of order.
    pub fn new(ranks: Vec<MaterializedState>) -> MedusaResult<Self> {
        let tp = ranks.len() as u32;
        for (i, a) in ranks.iter().enumerate() {
            a.check_target(&ranks[0].model, &ranks[0].gpu, i as u32, tp)?;
        }
        Ok(TpArtifacts { ranks })
    }

    /// Tensor-parallel degree.
    pub fn tp(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// The artifact of `rank`.
    pub fn rank(&self, rank: u32) -> &MaterializedState {
        &self.ranks[rank as usize]
    }

    /// Iterates over per-rank artifacts in rank order.
    pub fn iter(&self) -> impl Iterator<Item = &MaterializedState> {
        self.ranks.iter()
    }

    /// Encodes every rank into one MAF2 bundle — the persistence format a
    /// registry would store per `<GPU type, model type, tp>`. A restoring
    /// rank opens the bundle with [`crate::Maf2Reader`] and lazily
    /// materializes only its own sections.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] on encoder failure.
    pub fn to_maf2(&self) -> MedusaResult<Vec<u8>> {
        let refs: Vec<&MaterializedState> = self.ranks.iter().collect();
        crate::artifact::maf2::encode_bundle(&refs)
    }

    /// Eagerly decodes a MAF2 bundle into per-rank artifacts.
    ///
    /// # Errors
    ///
    /// Propagates open/decode failures and rank-consistency violations.
    pub fn from_maf2(bytes: &[u8]) -> MedusaResult<Self> {
        let reader = crate::artifact::maf2::Maf2Reader::open(bytes)?;
        TpArtifacts::new(reader.materialize_all()?)
    }
}

/// Runs the offline phase for every rank of a `tp`-way instance with the
/// default [`Parallelism::Overlapped`] mode: ranks materialize in parallel
/// on their own GPUs, and the reported durations are the slowest rank's.
///
/// # Errors
///
/// Propagates per-rank capture/analysis failures.
pub fn materialize_offline_tp(
    spec: &ModelSpec,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    seed: u64,
) -> MedusaResult<(TpArtifacts, OfflineReport)> {
    materialize_offline_tp_with(spec, tp, gpu, cost, seed, Parallelism::Overlapped)
}

/// [`materialize_offline_tp`] with an explicit parallelism mode.
///
/// Under [`Parallelism::Serial`] ranks materialize one after another (the
/// reported durations are the sum); otherwise every rank runs on its own
/// worker thread — real host parallelism — and the reported durations are
/// the slowest rank's.
///
/// # Errors
///
/// Propagates per-rank capture/analysis failures.
pub fn materialize_offline_tp_with(
    spec: &ModelSpec,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    seed: u64,
    parallelism: Parallelism,
) -> MedusaResult<(TpArtifacts, OfflineReport)> {
    assert!(tp > 0, "tensor-parallel degree must be positive");
    let run_rank = |rank: u32| {
        materialize_offline_shard_impl(
            spec,
            rank,
            tp,
            gpu.clone(),
            cost.clone(),
            seed ^ (0x7a_0000 + rank as u64),
        )
    };
    let results: Vec<MedusaResult<(MaterializedState, OfflineReport)>> =
        if parallelism == Parallelism::Serial {
            (0..tp).map(run_rank).collect()
        } else {
            par_map((0..tp).collect(), run_rank)
        };
    let mut ranks = Vec::with_capacity(tp as usize);
    let mut report = OfflineReport {
        capture: SimDuration::ZERO,
        analysis: SimDuration::ZERO,
    };
    for result in results {
        let (artifact, r) = result?;
        if parallelism == Parallelism::Serial {
            report.capture += r.capture;
            report.analysis += r.analysis;
        } else {
            report.capture = report.capture.max(r.capture);
            report.analysis = report.analysis.max(r.analysis);
        }
        ranks.push(artifact);
    }
    Ok((TpArtifacts::new(ranks)?, report))
}

/// Result of a tensor-parallel cold start.
#[derive(Debug)]
pub struct TpColdStart {
    /// Per-rank serving-ready engines, rank order.
    pub engines: Vec<ReadyEngine>,
    /// Per-rank timing reports.
    pub reports: Vec<ColdStartReport>,
    /// The parallelism mode the instance restored under.
    pub parallelism: Parallelism,
    /// The end-of-loading synchronization point across ranks (one barrier
    /// before serving; zero for single-GPU instances).
    pub sync: SimDuration,
}

impl TpColdStart {
    /// The instance's loading-phase duration.
    ///
    /// Under [`Parallelism::Serial`] ranks restore one after another, so
    /// this is the sum of per-rank loadings plus the final barrier; in the
    /// parallel modes ranks load concurrently and serving starts when the
    /// slowest rank clears the barrier (max + sync).
    pub fn loading(&self) -> SimDuration {
        self.rollup(|r| r.loading) + self.sync
    }

    /// The instance's cold-start duration, rolled up like
    /// [`TpColdStart::loading`].
    pub fn total(&self) -> SimDuration {
        self.rollup(|r| r.total) + self.sync
    }

    /// Aggregate loading-phase *work* across all ranks: the sum of every
    /// rank's stage durations regardless of overlap — the resource-time
    /// the instance consumed, as opposed to the wall-clock it occupied.
    pub fn aggregate_work(&self) -> SimDuration {
        self.reports.iter().map(ColdStartReport::work).sum()
    }

    fn rollup(&self, f: impl Fn(&ColdStartReport) -> SimDuration) -> SimDuration {
        if self.parallelism == Parallelism::Serial {
            self.reports.iter().map(f).sum()
        } else {
            self.reports
                .iter()
                .map(f)
                .max()
                .unwrap_or(SimDuration::ZERO)
        }
    }
}

/// Cold-starts every rank of a `tp`-way instance with `strategy`.
///
/// # Errors
///
/// * [`MedusaError::ArtifactRequired`] for [`Strategy::Medusa`] without
///   artifacts.
/// * [`MedusaError::ArtifactMismatch`] if `artifacts` has a different
///   degree.
/// * Propagated per-rank errors.
#[deprecated(
    since = "0.6.0",
    note = "use the `ColdStart` builder: `ColdStart::new(spec).tp(n).run()`"
)]
pub fn cold_start_tp(
    strategy: Strategy,
    spec: &ModelSpec,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    artifacts: Option<&TpArtifacts>,
    opts: ColdStartOptions,
) -> MedusaResult<TpColdStart> {
    cold_start_tp_impl(strategy, spec, tp, gpu, cost, artifacts, opts, None)
}

/// [`cold_start_tp`] with an optional telemetry registry shared by every
/// rank: per-rank stage spans land under `rank{r}/`-prefixed names on
/// `/rank{r}`-suffixed lanes, and the cross-rank barrier is recorded as
/// `tp_sync_us`. The registry is internally synchronized and every write
/// is commutative or rank-keyed, so concurrent rank threads still produce
/// a deterministic snapshot.
///
/// # Errors
///
/// Same as [`cold_start_tp`].
#[allow(clippy::too_many_arguments)]
#[deprecated(
    since = "0.6.0",
    note = "use the `ColdStart` builder: `ColdStart::new(spec).tp(n).telemetry(t).run()`"
)]
pub fn cold_start_tp_traced(
    strategy: Strategy,
    spec: &ModelSpec,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    artifacts: Option<&TpArtifacts>,
    opts: ColdStartOptions,
    tele: Option<&Registry>,
) -> MedusaResult<TpColdStart> {
    cold_start_tp_impl(strategy, spec, tp, gpu, cost, artifacts, opts, tele)
}

/// Shared multi-rank implementation behind the deprecated free functions
/// and the [`crate::builder::ColdStart`] builder.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cold_start_tp_impl(
    strategy: Strategy,
    spec: &ModelSpec,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    artifacts: Option<&TpArtifacts>,
    opts: ColdStartOptions,
    tele: Option<&Registry>,
) -> MedusaResult<TpColdStart> {
    assert!(tp > 0, "tensor-parallel degree must be positive");
    if let Some(a) = artifacts {
        if a.tp() != tp {
            return Err(MedusaError::ArtifactMismatch {
                artifact: format!("tp={}", a.tp()),
                target: format!("tp={tp}"),
            });
        }
    }
    let run_rank = |rank: u32| {
        let rank_opts = ColdStartOptions {
            rank,
            tp,
            seed: opts.seed ^ (0x9a_0000 + rank as u64),
            ..opts
        };
        let art = artifacts.map(|a| a.rank(rank));
        cold_start_impl(
            strategy,
            spec,
            gpu.clone(),
            cost.clone(),
            art,
            rank_opts,
            tele,
        )
    };
    // Each rank owns an independent ProcessRuntime, so the parallel modes
    // restore all ranks on real worker threads; simulated timings are
    // computed per rank and never observe host scheduling.
    let results: Vec<MedusaResult<(ReadyEngine, ColdStartReport)>> =
        if opts.parallelism == Parallelism::Serial {
            (0..tp).map(run_rank).collect()
        } else {
            par_map((0..tp).collect(), run_rank)
        };
    let mut engines = Vec::with_capacity(tp as usize);
    let mut reports = Vec::with_capacity(tp as usize);
    for result in results {
        let (engine, report) = result?;
        engines.push(engine);
        reports.push(report);
    }
    let sync = if tp > 1 {
        SimDuration::from_nanos(cost.sync_ns * tp as u64)
    } else {
        SimDuration::ZERO
    };
    if let Some(t) = tele {
        t.inc("tp_cold_starts_total", 1);
        t.observe_us("tp_sync_us", sync.as_nanos() / 1_000);
    }
    Ok(TpColdStart {
        engines,
        reports,
        parallelism: opts.parallelism,
        sync,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Stage;

    fn spec() -> ModelSpec {
        ModelSpec::by_name("Qwen1.5-0.5B").unwrap()
    }

    // Local shims shadowing the deprecated glob-imported free functions:
    // the tests exercise the impls directly.
    fn cold_start_tp(
        strategy: Strategy,
        spec: &ModelSpec,
        tp: u32,
        gpu: GpuSpec,
        cost: CostModel,
        artifacts: Option<&TpArtifacts>,
        opts: ColdStartOptions,
    ) -> MedusaResult<TpColdStart> {
        cold_start_tp_impl(strategy, spec, tp, gpu, cost, artifacts, opts, None)
    }

    fn cold_start(
        strategy: Strategy,
        spec: &ModelSpec,
        gpu: GpuSpec,
        cost: CostModel,
        artifact: Option<&MaterializedState>,
        opts: ColdStartOptions,
    ) -> MedusaResult<(ReadyEngine, ColdStartReport)> {
        cold_start_impl(strategy, spec, gpu, cost, artifact, opts, None)
    }

    /// The deprecated tp wrapper stays byte-compatible with the impl.
    #[test]
    #[allow(deprecated)]
    fn deprecated_tp_wrapper_matches_the_impl() {
        let s = spec();
        let a = super::cold_start_tp(
            Strategy::NoCudaGraph,
            &s,
            2,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
        )
        .unwrap();
        let b = cold_start_tp(
            Strategy::NoCudaGraph,
            &s,
            2,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
        )
        .unwrap();
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.sync, b.sync);
    }

    #[test]
    fn tp_offline_produces_per_rank_artifacts() {
        let (arts, report) =
            materialize_offline_tp(&spec(), 2, GpuSpec::a100_40gb(), CostModel::default(), 501)
                .unwrap();
        assert_eq!(arts.tp(), 2);
        assert_eq!(arts.rank(0).rank, 0);
        assert_eq!(arts.rank(1).rank, 1);
        // Each rank's graphs carry the 2 extra all-reduce nodes per layer.
        let l = spec().layers() as u64;
        let single_base = medusa_model::schedule::base_nodes_per_graph(&spec());
        let g0 = arts.rank(0).graphs[0].nodes.len() as u64;
        assert_eq!(
            g0,
            single_base + 2 * l + medusa_model::schedule::aux_pad_for_graph(&spec(), 0),
            "tp graphs add two all-reduces per layer"
        );
        assert!(arts.rank(0).graphs[0]
            .nodes
            .iter()
            .any(|n| n.kernel.contains("all_reduce")));
        assert!(report.total() > SimDuration::ZERO);
        // Per-rank control flow is identical, so per-rank artifacts agree on
        // everything but raw values (which are gone after analysis) and rank.
        assert_eq!(
            arts.rank(0).replay_prefix_allocs,
            arts.rank(1).replay_prefix_allocs
        );
        assert_eq!(arts.rank(0).kv_free_bytes, arts.rank(1).kv_free_bytes);
    }

    #[test]
    fn tp_medusa_cold_start_restores_all_ranks() {
        let s = spec();
        let (arts, _) =
            materialize_offline_tp(&s, 2, GpuSpec::a100_40gb(), CostModel::default(), 502).unwrap();
        // Validation correctness first (timing-independent)...
        cold_start_tp(
            Strategy::Medusa,
            &s,
            2,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            Some(&arts),
            ColdStartOptions {
                validate: true,
                ..Default::default()
            },
        )
        .unwrap();
        // ...then the timing comparison without the validation forwardings.
        let medusa = cold_start_tp(
            Strategy::Medusa,
            &s,
            2,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            Some(&arts),
            ColdStartOptions::default(),
        )
        .unwrap();
        let vanilla = cold_start_tp(
            Strategy::Vanilla,
            &s,
            2,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
        )
        .unwrap();
        assert_eq!(medusa.engines.len(), 2);
        assert!(
            medusa.loading() < vanilla.loading(),
            "Medusa wins per rank too"
        );
        for r in &medusa.reports {
            assert!(r.stage(Stage::KvCacheInit) < vanilla.reports[0].stage(Stage::KvCacheInit));
        }
        // Each rank serves through its restored graphs.
        for engine in &medusa.engines {
            assert_eq!(engine.graphs.len(), 35);
        }
    }

    #[test]
    fn tp_rank_artifacts_cannot_cross_restore() {
        let s = spec();
        let (arts, _) =
            materialize_offline_tp(&s, 2, GpuSpec::a100_40gb(), CostModel::default(), 503).unwrap();
        // Restoring rank 1's artifact into rank 0 must be rejected.
        let err = cold_start(
            Strategy::Medusa,
            &s,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            Some(arts.rank(1)),
            ColdStartOptions {
                rank: 0,
                tp: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MedusaError::ArtifactMismatch { .. }));
    }

    #[test]
    fn tp_degree_mismatch_rejected() {
        let s = spec();
        let (arts, _) =
            materialize_offline_tp(&s, 2, GpuSpec::a100_40gb(), CostModel::default(), 504).unwrap();
        let err = cold_start_tp(
            Strategy::Medusa,
            &s,
            4,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            Some(&arts),
            ColdStartOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MedusaError::ArtifactMismatch { .. }));
    }

    #[test]
    fn parallel_modes_beat_serial_and_preserve_work() {
        let s = spec();
        let (arts, _) =
            materialize_offline_tp(&s, 2, GpuSpec::a100_40gb(), CostModel::default(), 505).unwrap();
        let run = |mode: Parallelism| {
            cold_start_tp(
                Strategy::Medusa,
                &s,
                2,
                GpuSpec::a100_40gb(),
                CostModel::default(),
                Some(&arts),
                ColdStartOptions {
                    parallelism: mode,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let serial = run(Parallelism::Serial);
        let overlapped = run(Parallelism::Overlapped);
        let pipelined = run(Parallelism::PipelinedTp);
        // ISSUE acceptance: overlapped+tp-pipelined strictly beats serial
        // simulated loading for tp >= 2.
        assert!(
            pipelined.loading() < serial.loading(),
            "pipelined {} must beat serial {}",
            pipelined.loading(),
            serial.loading()
        );
        assert!(overlapped.loading() < serial.loading());
        assert!(pipelined.loading() <= overlapped.loading());
        // Serial mode is a contiguous chain: its wall-clock IS its work.
        assert_eq!(serial.loading(), serial.aggregate_work() + serial.sync);
        // Staggered streams run at full bandwidth, so pipelining moves
        // wall-clock without changing the work done...
        assert_eq!(pipelined.aggregate_work(), serial.aggregate_work());
        // ...while interleaved overlapped streams pay storage contention.
        assert!(overlapped.aggregate_work() > serial.aggregate_work());
        // The cross-rank barrier is accounted once per instance.
        assert!(pipelined.sync > SimDuration::ZERO);
        assert_eq!(pipelined.parallelism, Parallelism::PipelinedTp);
    }

    #[test]
    fn sharded_weights_shrink_per_rank() {
        let s = spec();
        let v1 = cold_start_tp(
            Strategy::NoCudaGraph,
            &s,
            1,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
        )
        .unwrap();
        let v4 = cold_start_tp(
            Strategy::NoCudaGraph,
            &s,
            4,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
        )
        .unwrap();
        let w1 = v1.engines[0].inst.weight_bytes();
        let w4 = v4.engines[0].inst.weight_bytes();
        assert!(
            w4 * 3 < w1,
            "4-way shards must be much smaller: {w4} vs {w1}"
        );
        assert!(v4.reports[0].stage(Stage::WeightsLoad) < v1.reports[0].stage(Stage::WeightsLoad));
    }
}
