//! Pre-restore artifact validation.
//!
//! A materialized artifact is only trustworthy for the exact
//! `<GPU type, model type>` it was built for, against the exact library set
//! the online process loads (§5 — raw kernel addresses rot, which is why the
//! artifact stores kernel *names*; those names rot too when a library
//! upgrade removes a symbol). The [`ArtifactValidator`] runs every integrity
//! check that can be answered *before* touching the device:
//!
//! 1. **format version** — the artifact's layout version matches this
//!    build's [`ARTIFACT_VERSION`];
//! 2. **content checksum** — the sealed FNV fold still matches the payload
//!    (storage/transit corruption);
//! 3. **target key** — `<model, GPU, rank, tp>` match the restoring process;
//! 4. **kernel name table** — every materialized `(library, kernel)` pair
//!    resolves against the process's library catalog;
//! 5. **pointer bounds** — the replay sequence is well-formed (frees hit
//!    live allocations) and every indirect index pointer, semantic label,
//!    permanent buffer, and pointer-table entry references an allocation
//!    that is live once replay completes.
//!
//! Any failure downgrades the cold start to the vanilla path (§7); the
//! report records which check rejected the artifact and why.

use crate::artifact::maf2::{self, Maf2Reader};
use crate::artifact::registry::{ChunkManifest, ChunkStore, MANIFEST_VERSION};
use crate::artifact::{MaterializedState, ParamSpec, ReplayOp, ARTIFACT_VERSION};
use crate::error::{MedusaError, MedusaResult};
use medusa_gpu::{GpuSpec, LibraryCatalog};
use medusa_model::{build_catalog, ModelSpec};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The individual checks run by [`ArtifactValidator::validate`], in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationCheck {
    /// Artifact layout version equals [`ARTIFACT_VERSION`].
    FormatVersion,
    /// Sealed content checksum matches a recomputation.
    Checksum,
    /// `<model, GPU, rank, tp>` key matches the restoring process.
    TargetKey,
    /// Every materialized kernel name resolves in the library catalog.
    KernelTable,
    /// Replay sequence and index pointers are in-bounds and live.
    PointerBounds,
}

impl ValidationCheck {
    /// All checks in execution order.
    pub const ALL: [ValidationCheck; 5] = [
        ValidationCheck::FormatVersion,
        ValidationCheck::Checksum,
        ValidationCheck::TargetKey,
        ValidationCheck::KernelTable,
        ValidationCheck::PointerBounds,
    ];

    /// Stable name for reports and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            ValidationCheck::FormatVersion => "format_version",
            ValidationCheck::Checksum => "checksum",
            ValidationCheck::TargetKey => "target_key",
            ValidationCheck::KernelTable => "kernel_table",
            ValidationCheck::PointerBounds => "pointer_bounds",
        }
    }
}

/// Outcome of validating one artifact: every check's verdict.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// `(check, failure)` per check, in execution order; `None` = passed.
    pub checks: Vec<(ValidationCheck, Option<MedusaError>)>,
}

impl ValidationReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|(_, e)| e.is_none())
    }

    /// The first failing check and its error, if any.
    pub fn first_failure(&self) -> Option<(&ValidationCheck, &MedusaError)> {
        self.checks
            .iter()
            .find_map(|(c, e)| e.as_ref().map(|e| (c, e)))
    }

    /// Converts the report into a result: `Ok` iff every check passed.
    ///
    /// # Errors
    ///
    /// Returns the first failing check's error, wrapped with the check name
    /// as context.
    pub fn ok(&self) -> MedusaResult<()> {
        match self.first_failure() {
            None => Ok(()),
            Some((check, err)) => Err(err
                .clone()
                .with_context(format!("artifact validation ({})", check.name()))),
        }
    }
}

/// Validates materialized artifacts against one restoring target.
#[derive(Debug, Clone)]
pub struct ArtifactValidator {
    model: String,
    gpu: String,
    rank: u32,
    tp: u32,
    catalog: Arc<LibraryCatalog>,
}

impl ArtifactValidator {
    /// Builds a validator for the `<model, GPU>` pair a process would
    /// restore into, at rank 0 of tp 1. The kernel-name-table check runs
    /// against the same simulated library catalog the online process loads.
    pub fn for_target(spec: &ModelSpec, gpu: &GpuSpec) -> Self {
        ArtifactValidator {
            model: spec.name().to_string(),
            gpu: gpu.name().to_string(),
            rank: 0,
            tp: 1,
            catalog: build_catalog(spec),
        }
    }

    /// Retargets the validator at a tensor-parallel shard.
    pub fn shard(mut self, rank: u32, tp: u32) -> Self {
        self.rank = rank;
        self.tp = tp;
        self
    }

    /// Runs every check against `artifact`. All checks always run, so a CLI
    /// report can show each verdict; use [`ValidationReport::ok`] for the
    /// pass/fail decision.
    pub fn validate(&self, artifact: &MaterializedState) -> ValidationReport {
        let checks = vec![
            (
                ValidationCheck::FormatVersion,
                self.check_version(artifact).err(),
            ),
            (ValidationCheck::Checksum, artifact.verify_checksum().err()),
            (
                ValidationCheck::TargetKey,
                artifact
                    .check_target(&self.model, &self.gpu, self.rank, self.tp)
                    .err(),
            ),
            (
                ValidationCheck::KernelTable,
                self.check_kernel_table(artifact).err(),
            ),
            (
                ValidationCheck::PointerBounds,
                self.check_pointer_bounds(artifact).err(),
            ),
        ];
        ValidationReport { checks }
    }

    /// Validates raw artifact bytes in either encoding, auto-detected by
    /// magic: MAF2 files take the header-first path ([`Self::validate_maf2`]),
    /// anything else is treated as the JSON debug encoding.
    ///
    /// When the bytes cannot even be opened, the report carries the open
    /// error on the check it maps to (`checksum` for digest mismatches,
    /// `format_version` for structural corruption) and omits checks that
    /// could not run.
    pub fn validate_bytes(&self, bytes: &[u8]) -> ValidationReport {
        if maf2::is_maf2(bytes) {
            match Maf2Reader::open(bytes) {
                Ok(reader) => self.validate_maf2(&reader),
                Err(err) => ValidationReport {
                    checks: vec![(Self::check_for_open_error(&err), Some(err))],
                },
            }
        } else {
            let parsed = std::str::from_utf8(bytes)
                .map_err(|_| MedusaError::ArtifactCorrupt {
                    detail: "artifact is neither MAF2 (no magic) nor UTF-8 JSON".into(),
                })
                .and_then(MaterializedState::from_json);
            match parsed {
                Ok(artifact) => self.validate(&artifact),
                Err(err) => ValidationReport {
                    checks: vec![(ValidationCheck::FormatVersion, Some(err))],
                },
            }
        }
    }

    fn check_for_open_error(err: &MedusaError) -> ValidationCheck {
        if err.kind() == "checksum_mismatch" {
            ValidationCheck::Checksum
        } else {
            ValidationCheck::FormatVersion
        }
    }

    /// Header-first fast path over an opened MAF2 reader: format version,
    /// streaming checksum-of-section-digests, and the target key (header
    /// strings + this shard's fixed-width ShardMeta). O(header + index) —
    /// section payloads other than the 104-byte ShardMeta are never read,
    /// and repeated calls for different ranks reuse the same parsed section
    /// index instead of re-walking the artifact.
    pub fn validate_maf2_header(&self, reader: &Maf2Reader<'_>) -> ValidationReport {
        let version_err =
            (reader.version() != ARTIFACT_VERSION).then(|| MedusaError::ArtifactCorrupt {
                detail: format!(
                    "format version {} != supported {}",
                    reader.version(),
                    ARTIFACT_VERSION
                ),
            });
        let meta = reader.shard_meta(self.rank);
        let checksum_err = reader
            .verify_content_checksum()
            .err()
            .or_else(|| match &meta {
                Err(e) if e.kind() == "checksum_mismatch" => Some(e.clone()),
                _ => None,
            });
        let target_err = match &meta {
            Ok(m) => {
                if reader.model() != self.model
                    || reader.gpu() != self.gpu
                    || m.rank != self.rank
                    || m.tp != self.tp
                {
                    Some(MedusaError::ArtifactMismatch {
                        artifact: format!(
                            "{}/{} r{}/{}",
                            reader.model(),
                            reader.gpu(),
                            m.rank,
                            m.tp
                        ),
                        target: format!("{}/{} r{}/{}", self.model, self.gpu, self.rank, self.tp),
                    })
                } else {
                    None
                }
            }
            Err(e) => Some(e.clone()),
        };
        ValidationReport {
            checks: vec![
                (ValidationCheck::FormatVersion, version_err),
                (ValidationCheck::Checksum, checksum_err),
                (ValidationCheck::TargetKey, target_err),
            ],
        }
    }

    /// Full validation of one shard of an opened MAF2 reader: the
    /// header-first checks plus the deep kernel-table and pointer-bounds
    /// checks, which lazily materialize only this shard's sections. When
    /// the shard cannot be materialized the deep checks are omitted (the
    /// failure is already attributed to `format_version` or `checksum`).
    pub fn validate_maf2(&self, reader: &Maf2Reader<'_>) -> ValidationReport {
        let mut report = self.validate_maf2_header(reader);
        let shard = if reader.version() == ARTIFACT_VERSION {
            reader.shard(self.rank)
        } else {
            // `shard` would reject the skew with the same error already on
            // the format_version check; don't touch payloads.
            return report;
        };
        match shard {
            Ok(state) => {
                // The sealed per-shard fold is part of the checksum verdict.
                if report.checks[1].1.is_none() {
                    report.checks[1].1 = state.verify_checksum().err();
                }
                report.checks.push((
                    ValidationCheck::KernelTable,
                    self.check_kernel_table(state).err(),
                ));
                report.checks.push((
                    ValidationCheck::PointerBounds,
                    self.check_pointer_bounds(state).err(),
                ));
            }
            Err(err) => {
                let slot = match Self::check_for_open_error(&err) {
                    ValidationCheck::Checksum => 1,
                    _ => 0,
                };
                if report.checks[slot].1.is_none() {
                    report.checks[slot].1 = Some(err);
                }
            }
        }
        report
    }

    /// Validates every shard in a MAF2 bundle, reusing one opened reader:
    /// the O(header + index) open happens once and each rank adds only its
    /// own ShardMeta read plus its own lazily-materialized sections —
    /// validating a tp=8 bundle no longer re-walks the whole artifact per
    /// rank. Shards are checked against this validator's `<model, GPU>` at
    /// their own declared rank and the bundle's tp.
    pub fn validate_bundle(&self, reader: &Maf2Reader<'_>) -> Vec<(u32, ValidationReport)> {
        reader
            .shard_ranks()
            .into_iter()
            .map(|rank| {
                let v = self.clone().shard(rank, reader.tp());
                (rank, v.validate_maf2(reader))
            })
            .collect()
    }

    /// O(manifest) validation of a content-addressed manifest against its
    /// chunk store: format version, target key, and digest checks of *only*
    /// the chunks the requested `(rank, tp)` shard touches (its own
    /// sections plus the shared framing chunks) — mirroring the MAF2
    /// lazy-restore invariant that a rank never reads another rank's
    /// payload. Chunks outside the shard's footprint are never hashed.
    pub fn validate_manifest(
        &self,
        manifest: &ChunkManifest,
        store: &ChunkStore,
    ) -> ValidationReport {
        let version_err =
            (manifest.version != MANIFEST_VERSION).then(|| MedusaError::ArtifactCorrupt {
                detail: format!(
                    "manifest version {} != supported {MANIFEST_VERSION}",
                    manifest.version
                ),
            });
        let mut checksum_err = None;
        for i in manifest.shard_chunk_indices(self.rank) {
            if let Err(err) = store.verify(&manifest.chunks[i as usize]) {
                checksum_err = Some(err.with_context(format!("chunk #{i}")));
                break;
            }
        }
        let target_err = if manifest.model != self.model
            || manifest.gpu != self.gpu
            || manifest.tp != self.tp
            || !manifest.shard_ranks().contains(&self.rank)
        {
            Some(MedusaError::ArtifactMismatch {
                artifact: format!(
                    "{}/{} ranks {:?}/{}",
                    manifest.model,
                    manifest.gpu,
                    manifest.shard_ranks(),
                    manifest.tp
                ),
                target: format!("{}/{} r{}/{}", self.model, self.gpu, self.rank, self.tp),
            })
        } else {
            None
        };
        ValidationReport {
            checks: vec![
                (ValidationCheck::FormatVersion, version_err),
                (ValidationCheck::Checksum, checksum_err),
                (ValidationCheck::TargetKey, target_err),
            ],
        }
    }

    /// Validates every shard of a content-addressed manifest, each in
    /// O(manifest): the per-rank reports digest-check only that rank's
    /// chunks, against this validator's `<model, GPU>` at the manifest's tp.
    pub fn validate_cas_bundle(
        &self,
        manifest: &ChunkManifest,
        store: &ChunkStore,
    ) -> Vec<(u32, ValidationReport)> {
        manifest
            .shard_ranks()
            .into_iter()
            .map(|rank| {
                let v = self.clone().shard(rank, manifest.tp);
                (rank, v.validate_manifest(manifest, store))
            })
            .collect()
    }

    fn check_version(&self, artifact: &MaterializedState) -> MedusaResult<()> {
        if artifact.version != ARTIFACT_VERSION {
            return Err(MedusaError::ArtifactCorrupt {
                detail: format!(
                    "format version {} != supported {}",
                    artifact.version, ARTIFACT_VERSION
                ),
            });
        }
        Ok(())
    }

    /// §5: every `(library, kernel)` pair the graphs reference must exist in
    /// the catalog — export status does not matter here (hidden kernels are
    /// reachable via triggering), existence does.
    fn check_kernel_table(&self, artifact: &MaterializedState) -> MedusaResult<()> {
        let mut seen = BTreeSet::new();
        for g in &artifact.graphs {
            for n in &g.nodes {
                if !seen.insert((n.library.as_str(), n.kernel.as_str())) {
                    continue;
                }
                if self.catalog.find_kernel(&n.library, &n.kernel).is_err() {
                    return Err(MedusaError::KernelUnresolved {
                        library: n.library.clone(),
                        kernel: n.kernel.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// §4.1/§4.2: walk the replay sequence tracking liveness, then require
    /// every indirect reference to land on an allocation that is live once
    /// replay completes.
    fn check_pointer_bounds(&self, artifact: &MaterializedState) -> MedusaResult<()> {
        let mut live: BTreeSet<u64> = (0..artifact.replay_prefix_allocs).collect();
        let mut next = artifact.replay_prefix_allocs;
        for op in &artifact.replay_ops {
            match op {
                ReplayOp::Malloc { .. } => {
                    live.insert(next);
                    next += 1;
                }
                ReplayOp::Free { alloc_seq } => {
                    if !live.remove(alloc_seq) {
                        return Err(MedusaError::ReplayDanglingFree {
                            alloc_seq: *alloc_seq,
                        });
                    }
                }
            }
        }
        let require = |seq: u64, what: &str| -> MedusaResult<()> {
            if live.contains(&seq) {
                Ok(())
            } else {
                Err(MedusaError::ArtifactCorrupt {
                    detail: format!("{what} references dead allocation #{seq}"),
                })
            }
        };
        for (label, seq) in &artifact.labels {
            require(*seq, &format!("label `{label}`"))?;
        }
        for (seq, _) in &artifact.permanent_contents {
            require(*seq, "permanent buffer")?;
        }
        for (seq, entries) in &artifact.permanent_ptr_tables {
            require(*seq, "pointer table")?;
            for (i, e) in entries.iter().enumerate() {
                if !live.contains(&e.alloc_seq) {
                    return Err(MedusaError::UnmatchedTableEntry {
                        table_seq: *seq,
                        index: i,
                        addr: e.alloc_seq,
                    });
                }
            }
        }
        for g in &artifact.graphs {
            for (node, n) in g.nodes.iter().enumerate() {
                for (param, p) in n.params.iter().enumerate() {
                    if let ParamSpec::IndirectPtr { alloc_seq, raw, .. } = p {
                        if !live.contains(alloc_seq) {
                            return Err(MedusaError::UnmatchedPointer {
                                batch: g.batch,
                                node,
                                param,
                                addr: *raw,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan};
    use crate::pipeline::materialize_offline;
    use medusa_gpu::CostModel;

    fn target() -> (ModelSpec, GpuSpec) {
        (
            ModelSpec::by_name("Qwen1.5-0.5B").unwrap(),
            GpuSpec::a100_40gb(),
        )
    }

    fn artifact() -> MaterializedState {
        let (spec, gpu) = target();
        materialize_offline(&spec, gpu, CostModel::default(), 41)
            .unwrap()
            .0
    }

    #[test]
    fn healthy_artifact_passes_every_check() {
        let (spec, gpu) = target();
        let report = ArtifactValidator::for_target(&spec, &gpu).validate(&artifact());
        assert!(report.passed(), "{:?}", report.first_failure());
        assert!(report.ok().is_ok());
        assert_eq!(report.checks.len(), ValidationCheck::ALL.len());
    }

    #[test]
    fn each_fault_class_trips_its_check() {
        let (spec, gpu) = target();
        let v = ArtifactValidator::for_target(&spec, &gpu);
        let a = artifact();

        let corrupt = FaultPlan::single(FaultKind::CorruptArtifact, 5).apply_to_artifact(&a);
        let r = v.validate(&corrupt);
        assert!(!r.passed());
        assert_eq!(r.first_failure().unwrap().1.kind(), "checksum_mismatch");

        let skewed = FaultPlan::single(FaultKind::VersionSkew, 5).apply_to_artifact(&a);
        let r = v.validate(&skewed);
        assert_eq!(r.first_failure().unwrap().0.name(), "format_version");
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_corrupt");

        let ghost = FaultPlan::single(FaultKind::MissingLibrary, 5).apply_to_artifact(&a);
        let r = v.validate(&ghost);
        assert_eq!(r.first_failure().unwrap().0.name(), "kernel_table");
        assert_eq!(r.first_failure().unwrap().1.kind(), "kernel_unresolved");
    }

    #[test]
    fn wrong_target_and_bad_replay_are_rejected() {
        let (spec, gpu) = target();
        let v = ArtifactValidator::for_target(&spec, &gpu);
        let mut a = artifact();
        a.gpu = "H100-80GB".into();
        a.seal();
        let r = v.validate(&a);
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_mismatch");

        let mut b = artifact();
        b.replay_ops.push(ReplayOp::Free { alloc_seq: 1 << 40 });
        b.seal();
        let r = v.validate(&b);
        assert_eq!(r.first_failure().unwrap().1.kind(), "replay_dangling_free");
        assert!(r.ok().unwrap_err().to_string().contains("pointer_bounds"));
    }

    #[test]
    fn shard_retargets_the_key() {
        let (spec, gpu) = target();
        let v = ArtifactValidator::for_target(&spec, &gpu).shard(1, 2);
        let r = v.validate(&artifact());
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_mismatch");
    }

    #[test]
    fn validate_bytes_auto_detects_both_formats() {
        let (spec, gpu) = target();
        let v = ArtifactValidator::for_target(&spec, &gpu);
        let a = artifact();

        let json = a.to_json().unwrap();
        let r = v.validate_bytes(json.as_bytes());
        assert!(r.passed(), "{:?}", r.first_failure());
        assert_eq!(r.checks.len(), ValidationCheck::ALL.len());

        let bin = a.to_maf2().unwrap();
        let r = v.validate_bytes(&bin);
        assert!(r.passed(), "{:?}", r.first_failure());
        assert_eq!(r.checks.len(), ValidationCheck::ALL.len());

        let r = v.validate_bytes(b"{not an artifact");
        assert_eq!(r.first_failure().unwrap().0.name(), "format_version");

        let r = v.validate_bytes(&bin[..40]);
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_corrupt");
    }

    #[test]
    fn maf2_header_path_catches_wrong_target() {
        let (_spec, gpu) = target();
        let a = artifact();
        let bin = a.to_maf2().unwrap();
        let reader = crate::artifact::maf2::Maf2Reader::open(&bin).unwrap();
        let other = ModelSpec::by_name("Qwen1.5-4B").unwrap();
        let v = ArtifactValidator::for_target(&other, &gpu);
        let r = v.validate_maf2_header(&reader);
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_mismatch");
        assert_eq!(r.checks.len(), 3, "header path runs only O(header) checks");
    }

    #[test]
    fn bundle_validation_reuses_the_section_index() {
        let (spec, gpu) = target();
        let tp = 8u32;
        let shards: Vec<_> = (0..tp)
            .map(|rank| {
                let mut s = artifact();
                s.rank = rank;
                s.tp = tp;
                s.seal();
                s
            })
            .collect();
        let refs: Vec<&MaterializedState> = shards.iter().collect();
        let bin = crate::artifact::maf2::encode_bundle(&refs).unwrap();
        let reader = crate::artifact::maf2::Maf2Reader::open(&bin).unwrap();
        let v = ArtifactValidator::for_target(&spec, &gpu);

        // Header-first pass for every rank: one shared open, per-rank cost
        // is a 104-byte ShardMeta read — total bytes touched must not scale
        // with the payload, i.e. stay far below the file size even at tp=8.
        let opened = reader.bytes_read();
        for rank in 0..tp {
            let r = v.clone().shard(rank, tp).validate_maf2_header(&reader);
            assert!(r.passed(), "rank {rank}: {:?}", r.first_failure());
        }
        let header_pass = reader.bytes_read() - opened;
        assert!(
            header_pass <= u64::from(tp) * 104,
            "header-first pass read {header_pass} payload bytes"
        );
        assert!(reader.bytes_read() < reader.file_len() / 4);

        // Full bundle validation materializes each shard exactly once.
        let reports = v.validate_bundle(&reader);
        assert_eq!(reports.len(), tp as usize);
        for (rank, r) in &reports {
            assert!(r.passed(), "rank {rank}: {:?}", r.first_failure());
        }
    }

    fn cas_bundle(tp: u32) -> (ChunkStore, ChunkManifest) {
        let shards: Vec<_> = (0..tp)
            .map(|rank| {
                let mut s = artifact();
                s.rank = rank;
                s.tp = tp;
                s.seal();
                s
            })
            .collect();
        let refs: Vec<&MaterializedState> = shards.iter().collect();
        let bin = crate::artifact::maf2::encode_bundle(&refs).unwrap();
        let mut store = ChunkStore::default();
        let manifest = store.pack(&bin).unwrap();
        (store, manifest)
    }

    #[test]
    fn cas_manifest_validation_passes_and_scopes_to_the_shard() {
        let (spec, gpu) = target();
        let tp = 4u32;
        let (store, manifest) = cas_bundle(tp);
        let v = ArtifactValidator::for_target(&spec, &gpu);

        for (rank, r) in v.validate_cas_bundle(&manifest, &store) {
            assert!(r.passed(), "rank {rank}: {:?}", r.first_failure());
            // O(manifest) promise: each shard digest-checks a strict subset
            // of the chunk list, not the whole artifact.
            assert!(
                manifest.shard_chunk_indices(rank).len() < manifest.chunks.len(),
                "rank {rank} touches every chunk"
            );
        }
    }

    #[test]
    fn cas_chunk_corruption_only_fails_the_owning_shard() {
        let (spec, gpu) = target();
        let tp = 4u32;
        let (mut store, manifest) = cas_bundle(tp);

        // Corrupt a chunk that rank 1 owns and rank 0 never touches.
        let r0: std::collections::BTreeSet<u32> =
            manifest.shard_chunk_indices(0).into_iter().collect();
        let victim = manifest
            .shard_chunk_indices(1)
            .into_iter()
            .find(|i| !r0.contains(i))
            .expect("rank 1 must own chunks rank 0 does not");
        let d = manifest.chunks[victim as usize].digest;
        let mut bad = store.get(d).unwrap().to_vec();
        bad[0] ^= 0x40;
        store.tamper_chunk(d, bad);

        let v = ArtifactValidator::for_target(&spec, &gpu);
        let ok = v.clone().shard(0, tp).validate_manifest(&manifest, &store);
        assert!(ok.passed(), "rank 0: {:?}", ok.first_failure());
        let r = v.clone().shard(1, tp).validate_manifest(&manifest, &store);
        assert_eq!(r.first_failure().unwrap().0.name(), "checksum");
        assert_eq!(r.first_failure().unwrap().1.kind(), "checksum_mismatch");
    }

    #[test]
    fn cas_manifest_validation_catches_version_and_target_skew() {
        let (spec, gpu) = target();
        let (store, mut manifest) = cas_bundle(2);
        let v = ArtifactValidator::for_target(&spec, &gpu).shard(0, 2);

        let other = ModelSpec::by_name("Qwen1.5-4B").unwrap();
        let w = ArtifactValidator::for_target(&other, &gpu).shard(0, 2);
        let r = w.validate_manifest(&manifest, &store);
        assert_eq!(r.first_failure().unwrap().0.name(), "target_key");
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_mismatch");

        manifest.version += 1;
        let r = v.validate_manifest(&manifest, &store);
        assert_eq!(r.first_failure().unwrap().0.name(), "format_version");
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_corrupt");
    }
}
