//! Pre-restore artifact validation.
//!
//! A materialized artifact is only trustworthy for the exact
//! `<GPU type, model type>` it was built for, against the exact library set
//! the online process loads (§5 — raw kernel addresses rot, which is why the
//! artifact stores kernel *names*; those names rot too when a library
//! upgrade removes a symbol). The [`ArtifactValidator`] runs every integrity
//! check that can be answered *before* touching the device:
//!
//! 1. **format version** — the artifact's layout version matches this
//!    build's [`ARTIFACT_VERSION`];
//! 2. **content checksum** — the sealed FNV fold still matches the payload
//!    (storage/transit corruption);
//! 3. **target key** — `<model, GPU, rank, tp>` match the restoring process;
//! 4. **kernel name table** — every materialized `(library, kernel)` pair
//!    resolves against the process's library catalog;
//! 5. **pointer bounds** — the replay sequence is well-formed (frees hit
//!    live allocations) and every indirect index pointer, semantic label,
//!    permanent buffer, and pointer-table entry references an allocation
//!    that is live once replay completes.
//!
//! Any failure downgrades the cold start to the vanilla path (§7); the
//! report records which check rejected the artifact and why.

use crate::artifact::{MaterializedState, ParamSpec, ReplayOp, ARTIFACT_VERSION};
use crate::error::{MedusaError, MedusaResult};
use medusa_gpu::{GpuSpec, LibraryCatalog};
use medusa_model::{build_catalog, ModelSpec};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The individual checks run by [`ArtifactValidator::validate`], in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationCheck {
    /// Artifact layout version equals [`ARTIFACT_VERSION`].
    FormatVersion,
    /// Sealed content checksum matches a recomputation.
    Checksum,
    /// `<model, GPU, rank, tp>` key matches the restoring process.
    TargetKey,
    /// Every materialized kernel name resolves in the library catalog.
    KernelTable,
    /// Replay sequence and index pointers are in-bounds and live.
    PointerBounds,
}

impl ValidationCheck {
    /// All checks in execution order.
    pub const ALL: [ValidationCheck; 5] = [
        ValidationCheck::FormatVersion,
        ValidationCheck::Checksum,
        ValidationCheck::TargetKey,
        ValidationCheck::KernelTable,
        ValidationCheck::PointerBounds,
    ];

    /// Stable name for reports and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            ValidationCheck::FormatVersion => "format_version",
            ValidationCheck::Checksum => "checksum",
            ValidationCheck::TargetKey => "target_key",
            ValidationCheck::KernelTable => "kernel_table",
            ValidationCheck::PointerBounds => "pointer_bounds",
        }
    }
}

/// Outcome of validating one artifact: every check's verdict.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// `(check, failure)` per check, in execution order; `None` = passed.
    pub checks: Vec<(ValidationCheck, Option<MedusaError>)>,
}

impl ValidationReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|(_, e)| e.is_none())
    }

    /// The first failing check and its error, if any.
    pub fn first_failure(&self) -> Option<(&ValidationCheck, &MedusaError)> {
        self.checks
            .iter()
            .find_map(|(c, e)| e.as_ref().map(|e| (c, e)))
    }

    /// Converts the report into a result: `Ok` iff every check passed.
    ///
    /// # Errors
    ///
    /// Returns the first failing check's error, wrapped with the check name
    /// as context.
    pub fn ok(&self) -> MedusaResult<()> {
        match self.first_failure() {
            None => Ok(()),
            Some((check, err)) => Err(err
                .clone()
                .with_context(format!("artifact validation ({})", check.name()))),
        }
    }
}

/// Validates materialized artifacts against one restoring target.
#[derive(Debug, Clone)]
pub struct ArtifactValidator {
    model: String,
    gpu: String,
    rank: u32,
    tp: u32,
    catalog: Arc<LibraryCatalog>,
}

impl ArtifactValidator {
    /// Builds a validator for the `<model, GPU>` pair a process would
    /// restore into, at rank 0 of tp 1. The kernel-name-table check runs
    /// against the same simulated library catalog the online process loads.
    pub fn for_target(spec: &ModelSpec, gpu: &GpuSpec) -> Self {
        ArtifactValidator {
            model: spec.name().to_string(),
            gpu: gpu.name().to_string(),
            rank: 0,
            tp: 1,
            catalog: build_catalog(spec),
        }
    }

    /// Retargets the validator at a tensor-parallel shard.
    pub fn shard(mut self, rank: u32, tp: u32) -> Self {
        self.rank = rank;
        self.tp = tp;
        self
    }

    /// Runs every check against `artifact`. All checks always run, so a CLI
    /// report can show each verdict; use [`ValidationReport::ok`] for the
    /// pass/fail decision.
    pub fn validate(&self, artifact: &MaterializedState) -> ValidationReport {
        let checks = vec![
            (
                ValidationCheck::FormatVersion,
                self.check_version(artifact).err(),
            ),
            (ValidationCheck::Checksum, artifact.verify_checksum().err()),
            (
                ValidationCheck::TargetKey,
                artifact
                    .check_target(&self.model, &self.gpu, self.rank, self.tp)
                    .err(),
            ),
            (
                ValidationCheck::KernelTable,
                self.check_kernel_table(artifact).err(),
            ),
            (
                ValidationCheck::PointerBounds,
                self.check_pointer_bounds(artifact).err(),
            ),
        ];
        ValidationReport { checks }
    }

    fn check_version(&self, artifact: &MaterializedState) -> MedusaResult<()> {
        if artifact.version != ARTIFACT_VERSION {
            return Err(MedusaError::ArtifactCorrupt {
                detail: format!(
                    "format version {} != supported {}",
                    artifact.version, ARTIFACT_VERSION
                ),
            });
        }
        Ok(())
    }

    /// §5: every `(library, kernel)` pair the graphs reference must exist in
    /// the catalog — export status does not matter here (hidden kernels are
    /// reachable via triggering), existence does.
    fn check_kernel_table(&self, artifact: &MaterializedState) -> MedusaResult<()> {
        let mut seen = BTreeSet::new();
        for g in &artifact.graphs {
            for n in &g.nodes {
                if !seen.insert((n.library.as_str(), n.kernel.as_str())) {
                    continue;
                }
                if self.catalog.find_kernel(&n.library, &n.kernel).is_err() {
                    return Err(MedusaError::KernelUnresolved {
                        library: n.library.clone(),
                        kernel: n.kernel.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// §4.1/§4.2: walk the replay sequence tracking liveness, then require
    /// every indirect reference to land on an allocation that is live once
    /// replay completes.
    fn check_pointer_bounds(&self, artifact: &MaterializedState) -> MedusaResult<()> {
        let mut live: BTreeSet<u64> = (0..artifact.replay_prefix_allocs).collect();
        let mut next = artifact.replay_prefix_allocs;
        for op in &artifact.replay_ops {
            match op {
                ReplayOp::Malloc { .. } => {
                    live.insert(next);
                    next += 1;
                }
                ReplayOp::Free { alloc_seq } => {
                    if !live.remove(alloc_seq) {
                        return Err(MedusaError::ReplayDanglingFree {
                            alloc_seq: *alloc_seq,
                        });
                    }
                }
            }
        }
        let require = |seq: u64, what: &str| -> MedusaResult<()> {
            if live.contains(&seq) {
                Ok(())
            } else {
                Err(MedusaError::ArtifactCorrupt {
                    detail: format!("{what} references dead allocation #{seq}"),
                })
            }
        };
        for (label, seq) in &artifact.labels {
            require(*seq, &format!("label `{label}`"))?;
        }
        for (seq, _) in &artifact.permanent_contents {
            require(*seq, "permanent buffer")?;
        }
        for (seq, entries) in &artifact.permanent_ptr_tables {
            require(*seq, "pointer table")?;
            for (i, e) in entries.iter().enumerate() {
                if !live.contains(&e.alloc_seq) {
                    return Err(MedusaError::UnmatchedTableEntry {
                        table_seq: *seq,
                        index: i,
                        addr: e.alloc_seq,
                    });
                }
            }
        }
        for g in &artifact.graphs {
            for (node, n) in g.nodes.iter().enumerate() {
                for (param, p) in n.params.iter().enumerate() {
                    if let ParamSpec::IndirectPtr { alloc_seq, raw, .. } = p {
                        if !live.contains(alloc_seq) {
                            return Err(MedusaError::UnmatchedPointer {
                                batch: g.batch,
                                node,
                                param,
                                addr: *raw,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan};
    use crate::pipeline::materialize_offline;
    use medusa_gpu::CostModel;

    fn target() -> (ModelSpec, GpuSpec) {
        (
            ModelSpec::by_name("Qwen1.5-0.5B").unwrap(),
            GpuSpec::a100_40gb(),
        )
    }

    fn artifact() -> MaterializedState {
        let (spec, gpu) = target();
        materialize_offline(&spec, gpu, CostModel::default(), 41)
            .unwrap()
            .0
    }

    #[test]
    fn healthy_artifact_passes_every_check() {
        let (spec, gpu) = target();
        let report = ArtifactValidator::for_target(&spec, &gpu).validate(&artifact());
        assert!(report.passed(), "{:?}", report.first_failure());
        assert!(report.ok().is_ok());
        assert_eq!(report.checks.len(), ValidationCheck::ALL.len());
    }

    #[test]
    fn each_fault_class_trips_its_check() {
        let (spec, gpu) = target();
        let v = ArtifactValidator::for_target(&spec, &gpu);
        let a = artifact();

        let corrupt = FaultPlan::single(FaultKind::CorruptArtifact, 5).apply_to_artifact(&a);
        let r = v.validate(&corrupt);
        assert!(!r.passed());
        assert_eq!(r.first_failure().unwrap().1.kind(), "checksum_mismatch");

        let skewed = FaultPlan::single(FaultKind::VersionSkew, 5).apply_to_artifact(&a);
        let r = v.validate(&skewed);
        assert_eq!(r.first_failure().unwrap().0.name(), "format_version");
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_corrupt");

        let ghost = FaultPlan::single(FaultKind::MissingLibrary, 5).apply_to_artifact(&a);
        let r = v.validate(&ghost);
        assert_eq!(r.first_failure().unwrap().0.name(), "kernel_table");
        assert_eq!(r.first_failure().unwrap().1.kind(), "kernel_unresolved");
    }

    #[test]
    fn wrong_target_and_bad_replay_are_rejected() {
        let (spec, gpu) = target();
        let v = ArtifactValidator::for_target(&spec, &gpu);
        let mut a = artifact();
        a.gpu = "H100-80GB".into();
        a.seal();
        let r = v.validate(&a);
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_mismatch");

        let mut b = artifact();
        b.replay_ops.push(ReplayOp::Free { alloc_seq: 1 << 40 });
        b.seal();
        let r = v.validate(&b);
        assert_eq!(r.first_failure().unwrap().1.kind(), "replay_dangling_free");
        assert!(r.ok().unwrap_err().to_string().contains("pointer_bounds"));
    }

    #[test]
    fn shard_retargets_the_key() {
        let (spec, gpu) = target();
        let v = ArtifactValidator::for_target(&spec, &gpu).shard(1, 2);
        let r = v.validate(&artifact());
        assert_eq!(r.first_failure().unwrap().1.kind(), "artifact_mismatch");
    }
}
