//! The parallel cold-start engine: a stage dependency graph with a
//! deterministic critical-path scheduler, plus real worker-thread helpers.
//!
//! The paper's online phase (§6, Fig. 8c) is a small static dataflow
//! graph: weight streaming runs on the storage→H2D lane, tokenizer
//! loading is pure host work, and KV/graph restoration occupies the
//! device. [`StageGraph`] models exactly that — each stage is a node with
//! a measured (or analytically derived) duration, a [`Lane`] it occupies,
//! and explicit dependency edges — and [`StageGraph::schedule`] computes
//! the resulting timeline: per-stage spans, the makespan, and the binding
//! critical path. Timings are **computed from the graph, never from host
//! thread timing**, so two runs with the same seed produce byte-identical
//! reports regardless of host scheduling.
//!
//! Real parallelism is separate and wall-clock only: [`host_pair`] and
//! [`par_map`] run independent host-side work (tokenizer construction,
//! per-rank restoration) on `std::thread` scoped threads.

use crate::pipeline::{Stage, StageSpan};
use medusa_gpu::{SimDuration, SimTime};

/// The execution lane a stage occupies. Stages on the same lane serialize
/// in insertion order; stages on different lanes overlap freely (subject
/// to dependency edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The GPU + its driver thread (restoration, capture, profiling).
    Device,
    /// Pure host CPU work (tokenizer parsing, artifact decoding).
    Host,
    /// The storage → host → device weight-streaming pipeline.
    Storage,
}

impl Lane {
    /// Stable lowercase lane name, used as the telemetry lane label (the
    /// Chrome trace exporter turns each lane into one thread row).
    pub fn name(self) -> &'static str {
        match self {
            Lane::Device => "device",
            Lane::Host => "host",
            Lane::Storage => "storage",
        }
    }
}

/// Node id inside a [`StageGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
struct StageNode {
    stage: Stage,
    lane: Lane,
    duration: SimDuration,
    deps: Vec<NodeId>,
    /// Earliest permitted start (models cross-rank staggering).
    floor: SimTime,
}

/// A cold-start stage dependency graph.
#[derive(Debug, Clone, Default)]
pub struct StageGraph {
    nodes: Vec<StageNode>,
}

impl StageGraph {
    /// Empty graph.
    pub fn new() -> Self {
        StageGraph::default()
    }

    /// Adds a stage with `duration` on `lane`, starting no earlier than
    /// the end of every node in `deps`.
    pub fn add(
        &mut self,
        stage: Stage,
        lane: Lane,
        duration: SimDuration,
        deps: &[NodeId],
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(StageNode {
            stage,
            lane,
            duration,
            deps: deps.to_vec(),
            floor: SimTime::ZERO,
        });
        id
    }

    /// Constrains `node` to start no earlier than `floor` (used for
    /// tensor-parallel weight-stream staggering).
    pub fn set_floor(&mut self, node: NodeId, floor: SimTime) {
        self.nodes[node.0].floor = floor;
    }

    /// Schedules the graph: every node starts at the latest of `origin`,
    /// its floor, its dependencies' ends, and its lane's availability
    /// (lanes serialize in insertion order). Deterministic list scheduling
    /// — no host timing is consulted.
    pub fn schedule(&self, origin: SimTime) -> Schedule {
        let mut starts = Vec::with_capacity(self.nodes.len());
        let mut ends: Vec<SimTime> = Vec::with_capacity(self.nodes.len());
        let mut lane_free: Vec<(Lane, SimTime)> = Vec::new();
        for node in &self.nodes {
            let mut start = origin.max(node.floor);
            for dep in &node.deps {
                assert!(dep.0 < ends.len(), "dependency on a later node");
                start = start.max(ends[dep.0]);
            }
            if let Some((_, free)) = lane_free.iter().find(|(l, _)| *l == node.lane) {
                start = start.max(*free);
            }
            let end = start + node.duration;
            match lane_free.iter_mut().find(|(l, _)| *l == node.lane) {
                Some(slot) => slot.1 = end,
                None => lane_free.push((node.lane, end)),
            }
            starts.push(start);
            ends.push(end);
        }
        Schedule {
            graph: self.clone(),
            starts,
            ends,
            origin,
        }
    }
}

/// The scheduled timeline of a [`StageGraph`].
#[derive(Debug, Clone)]
pub struct Schedule {
    graph: StageGraph,
    starts: Vec<SimTime>,
    ends: Vec<SimTime>,
    origin: SimTime,
}

impl Schedule {
    /// The scheduled span of `node`.
    pub fn span(&self, node: NodeId) -> StageSpan {
        StageSpan {
            stage: self.graph.nodes[node.0].stage,
            start: self.starts[node.0],
            end: self.ends[node.0],
        }
    }

    /// End instant of `node`.
    pub fn end(&self, node: NodeId) -> SimTime {
        self.ends[node.0]
    }

    /// All spans, in insertion order.
    pub fn spans(&self) -> Vec<StageSpan> {
        (0..self.graph.nodes.len())
            .map(|i| self.span(NodeId(i)))
            .collect()
    }

    /// The makespan end: when every lane has drained.
    pub fn makespan_end(&self) -> SimTime {
        self.ends.iter().copied().max().unwrap_or(self.origin)
    }

    /// The makespan as a duration from the schedule origin.
    pub fn makespan(&self) -> SimDuration {
        self.makespan_end() - self.origin
    }

    /// Total work across all stages (the serial-execution lower bound the
    /// linear-sum accounting used to report).
    pub fn work(&self) -> SimDuration {
        self.graph.nodes.iter().map(|n| n.duration).sum()
    }

    /// The constraint that bound `node`'s start: the dependency edge or
    /// lane predecessor whose end equals the node's start, if any (`None`
    /// means the node started at the origin or its floor). This is the
    /// single step of the critical-path walk, exposed so telemetry can
    /// attach the same causal parent to each span that
    /// [`Schedule::critical_path`] reports.
    pub fn binder(&self, node: NodeId) -> Option<NodeId> {
        let start = self.starts[node.0];
        let n = &self.graph.nodes[node.0];
        let lane_pred = (0..node.0)
            .rev()
            .find(|&i| self.graph.nodes[i].lane == n.lane);
        n.deps
            .iter()
            .map(|d| d.0)
            .chain(lane_pred)
            .filter(|&i| self.ends[i] == start)
            .max()
            .map(NodeId)
    }

    /// The binding critical path, in start order: walks back from the
    /// latest-ending node through whichever constraint (dependency edge or
    /// lane predecessor) bound each node's start.
    pub fn critical_path(&self) -> Vec<Stage> {
        let Some(mut at) = (0..self.graph.nodes.len()).max_by_key(|&i| (self.ends[i], i)) else {
            return Vec::new();
        };
        let mut path = vec![self.graph.nodes[at].stage];
        while let Some(prev) = self.binder(NodeId(at)) {
            path.push(self.graph.nodes[prev.0].stage);
            at = prev.0;
        }
        path.reverse();
        path
    }
}

/// Runs two independent host-side computations on real threads (scoped;
/// no detached state) and returns both results. Used to overlap pure host
/// work — e.g. tokenizer construction — with device-side restoration.
/// Wall-clock only: simulated timings never observe thread interleaving.
pub fn host_pair<A, B, FA, FB>(a: FA, b: FB) -> (A, B)
where
    A: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B,
{
    std::thread::scope(|scope| {
        let ha = scope.spawn(a);
        let rb = b();
        (ha.join().expect("host worker panicked"), rb)
    })
}

/// Maps `f` over `items` on scoped worker threads, preserving order. Used
/// for per-rank tensor-parallel restoration: each rank owns its own
/// `ProcessRuntime`, so ranks share nothing mutable.
///
/// Worker count is capped at the host's available parallelism: with fewer
/// cores than items, contiguous chunks run per worker instead of
/// oversubscribing the cores with memory-heavy rank working sets (on a
/// single-core host this degrades to a plain sequential map). Results are
/// identical either way — only wall-clock changes.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(cores);
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::new();
        let mut iter = items.into_iter();
        loop {
            let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            handles.push(scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rank worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn lanes_overlap_and_serialize() {
        let mut g = StageGraph::new();
        let s = g.add(Stage::StructureInit, Lane::Device, ms(10), &[]);
        let w = g.add(Stage::WeightsLoad, Lane::Storage, ms(100), &[s]);
        let t = g.add(Stage::TokenizerLoad, Lane::Host, ms(30), &[s]);
        let k = g.add(Stage::KvCacheInit, Lane::Device, ms(20), &[s]);
        let c = g.add(Stage::Capture, Lane::Device, ms(40), &[k]);
        let sched = g.schedule(SimTime::ZERO);
        // Storage and host lanes start right after structure init, together.
        assert_eq!(sched.span(w).start, SimTime::from_nanos(10_000_000));
        assert_eq!(sched.span(t).start, sched.span(w).start);
        // Device lane serializes: kv then capture.
        assert_eq!(sched.span(k).start, sched.span(w).start);
        assert_eq!(sched.span(c).start, sched.span(k).end);
        // Makespan is the weights lane (10 + 100), not the sum (200).
        assert_eq!(sched.makespan(), ms(110));
        assert_eq!(sched.work(), ms(200));
        assert_eq!(
            sched.critical_path(),
            vec![Stage::StructureInit, Stage::WeightsLoad]
        );
    }

    #[test]
    fn dependencies_create_gaps_on_a_lane() {
        let mut g = StageGraph::new();
        let s = g.add(Stage::StructureInit, Lane::Device, ms(5), &[]);
        let w = g.add(Stage::WeightsLoad, Lane::Storage, ms(50), &[s]);
        let k = g.add(Stage::KvCacheInit, Lane::Device, ms(10), &[s]);
        // Capture needs both the device lane and the weights.
        let c = g.add(Stage::Capture, Lane::Device, ms(20), &[k, w]);
        let sched = g.schedule(SimTime::ZERO);
        assert_eq!(
            sched.span(c).start,
            sched.span(w).end,
            "capture waits for weights"
        );
        assert_eq!(sched.makespan(), ms(75));
        assert_eq!(
            sched.critical_path(),
            vec![Stage::StructureInit, Stage::WeightsLoad, Stage::Capture]
        );
    }

    #[test]
    fn floors_delay_starts() {
        let mut g = StageGraph::new();
        let w = g.add(Stage::WeightsLoad, Lane::Storage, ms(10), &[]);
        g.set_floor(w, SimTime::from_nanos(7_000_000));
        let sched = g.schedule(SimTime::ZERO);
        assert_eq!(sched.span(w).start, SimTime::from_nanos(7_000_000));
        assert_eq!(sched.makespan(), ms(17));
    }

    #[test]
    fn schedule_is_deterministic() {
        let build = || {
            let mut g = StageGraph::new();
            let s = g.add(Stage::StructureInit, Lane::Device, ms(3), &[]);
            let w = g.add(Stage::WeightsLoad, Lane::Storage, ms(17), &[s]);
            g.add(Stage::Capture, Lane::Device, ms(9), &[s, w]);
            g.schedule(SimTime::from_nanos(123)).spans()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn binder_reports_the_constraint_that_critical_path_walks() {
        let mut g = StageGraph::new();
        let s = g.add(Stage::StructureInit, Lane::Device, ms(5), &[]);
        let w = g.add(Stage::WeightsLoad, Lane::Storage, ms(50), &[s]);
        let k = g.add(Stage::KvCacheInit, Lane::Device, ms(10), &[s]);
        let c = g.add(Stage::Capture, Lane::Device, ms(20), &[k, w]);
        let sched = g.schedule(SimTime::ZERO);
        assert_eq!(sched.binder(s), None, "root starts at the origin");
        assert_eq!(sched.binder(w), Some(s));
        assert_eq!(sched.binder(k), Some(s));
        assert_eq!(sched.binder(c), Some(w), "capture was gated by weights");
    }

    #[test]
    fn lane_names_are_stable() {
        assert_eq!(Lane::Device.name(), "device");
        assert_eq!(Lane::Host.name(), "host");
        assert_eq!(Lane::Storage.name(), "storage");
    }

    #[test]
    fn host_pair_returns_both_results() {
        let (a, b) = host_pair(|| 6 * 7, || "device".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "device");
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..16).collect::<Vec<u32>>(), |x| x * x);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<u32>>());
    }
}
