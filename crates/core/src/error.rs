//! Errors of the Medusa materialization/restoration layer.

use medusa_gpu::GpuError;
use medusa_graph::GraphError;
use medusa_kvcache::KvCacheInitError;
use std::fmt;

/// Errors produced by Medusa's offline and online phases.
#[derive(Debug, Clone, PartialEq)]
pub enum MedusaError {
    /// Driver-level failure.
    Gpu(GpuError),
    /// CUDA graph failure.
    Graph(GraphError),
    /// KV cache initialization failure.
    Kv(KvCacheInitError),
    /// A graph-node data pointer could not be matched against the recorded
    /// allocation sequence (paper §4.1).
    UnmatchedPointer {
        /// Batch size of the graph.
        batch: u32,
        /// Node index within the graph.
        node: usize,
        /// Parameter index within the node.
        param: usize,
        /// The unmatched raw address.
        addr: u64,
    },
    /// The online process's natural allocation count disagrees with the
    /// artifact's replay prefix — the control flow diverged, so indirect
    /// index pointers would be meaningless.
    ReplayMisaligned {
        /// Allocations the artifact expects before replay starts.
        expected: u64,
        /// Allocations actually performed by the online process.
        actual: u64,
    },
    /// A replay op referenced an allocation index that was never replayed.
    ReplayDanglingFree {
        /// The missing allocation index.
        alloc_seq: u64,
    },
    /// A materialized kernel could not be resolved to an address online
    /// (neither `dlsym` nor module enumeration found it).
    KernelUnresolved {
        /// Library the kernel was materialized from.
        library: String,
        /// The kernel's mangled name.
        kernel: String,
    },
    /// Validation found an output mismatch that correction could not repair.
    ValidationFailed {
        /// Batch size of the failing graph.
        batch: u32,
    },
    /// The artifact was produced for a different `<GPU type, model type>`.
    ArtifactMismatch {
        /// Model/GPU the artifact was built for.
        artifact: String,
        /// Model/GPU of the restoring process.
        target: String,
    },
    /// The artifact could not be decoded.
    ArtifactCorrupt {
        /// Decoder message.
        detail: String,
    },
    /// The Medusa strategy was started without a materialization artifact.
    ArtifactRequired,
    /// A pointer-table entry (indirect pointers, §8) matched no live
    /// allocation during analysis.
    UnmatchedTableEntry {
        /// Allocation index of the table buffer.
        table_seq: u64,
        /// Entry index within the table.
        index: usize,
        /// The unmatched stored pointer.
        addr: u64,
    },
    /// A semantic buffer label is missing from the artifact.
    MissingLabel {
        /// The label.
        label: String,
    },
    /// The artifact's stored content checksum disagrees with the checksum
    /// recomputed over its fields — the payload was corrupted in storage
    /// or transit.
    ChecksumMismatch {
        /// Checksum recorded when the artifact was sealed.
        expected: u64,
        /// Checksum recomputed by the validator.
        actual: u64,
    },
    /// The weight stream ended before the full parameter payload arrived
    /// (injected fault or a torn registry transfer).
    WeightStreamTruncated {
        /// Bytes actually delivered.
        loaded: u64,
        /// Bytes the model requires.
        expected: u64,
    },
    /// The cold start was aborted mid-flight at the named stage (node
    /// preemption, OOM-kill, injected fault).
    StageAborted {
        /// Stage at which the abort fired.
        stage: String,
    },
    /// An error wrapped with a human-readable context describing what the
    /// caller was doing. `kind()` sees through the wrapper to the root.
    Context {
        /// What the caller was doing.
        context: String,
        /// The underlying error.
        source: Box<MedusaError>,
    },
}

impl MedusaError {
    /// Stable machine-readable identifier for this error class.
    ///
    /// The namespace is flat across the gpu/graph/core layers: driver and
    /// graph errors delegate to their own `kind()`, and [`Context`] wrappers
    /// are transparent. The strings are a public contract — tests and
    /// telemetry labels match on them — and never change once released.
    ///
    /// [`Context`]: MedusaError::Context
    pub fn kind(&self) -> &'static str {
        match self {
            MedusaError::Gpu(e) => e.kind(),
            MedusaError::Graph(e) => e.kind(),
            MedusaError::Kv(_) => "kv_init",
            MedusaError::UnmatchedPointer { .. } => "unmatched_pointer",
            MedusaError::ReplayMisaligned { .. } => "replay_misaligned",
            MedusaError::ReplayDanglingFree { .. } => "replay_dangling_free",
            MedusaError::KernelUnresolved { .. } => "kernel_unresolved",
            MedusaError::ValidationFailed { .. } => "validation_failed",
            MedusaError::ArtifactMismatch { .. } => "artifact_mismatch",
            MedusaError::ArtifactCorrupt { .. } => "artifact_corrupt",
            MedusaError::ArtifactRequired => "artifact_required",
            MedusaError::UnmatchedTableEntry { .. } => "unmatched_table_entry",
            MedusaError::MissingLabel { .. } => "missing_label",
            MedusaError::ChecksumMismatch { .. } => "checksum_mismatch",
            MedusaError::WeightStreamTruncated { .. } => "weight_stream_truncated",
            MedusaError::StageAborted { .. } => "stage_aborted",
            MedusaError::Context { source, .. } => source.kind(),
        }
    }

    /// Wrap this error with a context string describing the operation that
    /// failed. Chains nest: the outermost context displays first.
    pub fn with_context(self, context: impl Into<String>) -> MedusaError {
        MedusaError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }
}

impl fmt::Display for MedusaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MedusaError::Gpu(e) => write!(f, "driver: {e}"),
            MedusaError::Graph(e) => write!(f, "graph: {e}"),
            MedusaError::Kv(e) => write!(f, "kv cache: {e}"),
            MedusaError::UnmatchedPointer { batch, node, param, addr } => write!(
                f,
                "no allocation matches pointer {addr:#x} (graph b={batch}, node {node}, param {param})"
            ),
            MedusaError::ReplayMisaligned { expected, actual } => write!(
                f,
                "allocation replay misaligned: artifact expects {expected} natural allocations, process made {actual}"
            ),
            MedusaError::ReplayDanglingFree { alloc_seq } => {
                write!(f, "replay frees allocation #{alloc_seq} which was never mapped")
            }
            MedusaError::KernelUnresolved { library, kernel } => {
                write!(f, "kernel `{kernel}` of `{library}` could not be resolved online")
            }
            MedusaError::ValidationFailed { batch } => {
                write!(f, "restored graph for batch {batch} failed output validation")
            }
            MedusaError::ArtifactMismatch { artifact, target } => {
                write!(f, "artifact built for `{artifact}` cannot restore `{target}`")
            }
            MedusaError::ArtifactCorrupt { detail } => write!(f, "artifact corrupt: {detail}"),
            MedusaError::ArtifactRequired => {
                write!(f, "the Medusa strategy requires a materialization artifact")
            }
            MedusaError::UnmatchedTableEntry { table_seq, index, addr } => write!(
                f,
                "pointer table #{table_seq} entry {index} ({addr:#x}) matches no live allocation"
            ),
            MedusaError::MissingLabel { label } => {
                write!(f, "artifact lacks semantic buffer label `{label}`")
            }
            MedusaError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact checksum mismatch: sealed {expected:#018x}, recomputed {actual:#018x}"
            ),
            MedusaError::WeightStreamTruncated { loaded, expected } => write!(
                f,
                "weight stream truncated after {loaded} of {expected} bytes"
            ),
            MedusaError::StageAborted { stage } => {
                write!(f, "cold start aborted during stage `{stage}`")
            }
            MedusaError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for MedusaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MedusaError::Gpu(e) => Some(e),
            MedusaError::Graph(e) => Some(e),
            MedusaError::Kv(e) => Some(e),
            MedusaError::Context { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<GpuError> for MedusaError {
    fn from(e: GpuError) -> Self {
        MedusaError::Gpu(e)
    }
}

impl From<GraphError> for MedusaError {
    fn from(e: GraphError) -> Self {
        MedusaError::Graph(e)
    }
}

impl From<KvCacheInitError> for MedusaError {
    fn from(e: KvCacheInitError) -> Self {
        MedusaError::Kv(e)
    }
}

/// Result alias for the Medusa layer.
pub type MedusaResult<T> = Result<T, MedusaError>;

/// Extension trait adding `.context("...")` to [`MedusaResult`] (and to any
/// result whose error converts into [`MedusaError`], e.g. `GpuResult`).
pub trait ErrorContext<T> {
    /// Wrap the error, if any, with a context string.
    fn context(self, context: impl Into<String>) -> MedusaResult<T>;
}

impl<T, E: Into<MedusaError>> ErrorContext<T> for Result<T, E> {
    fn context(self, context: impl Into<String>) -> MedusaResult<T> {
        self.map_err(|e| e.into().with_context(context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        use std::error::Error;
        let e = MedusaError::from(GpuError::NotCapturing);
        assert!(e.source().is_some());
        let all = vec![
            MedusaError::UnmatchedPointer {
                batch: 1,
                node: 2,
                param: 3,
                addr: 4,
            },
            MedusaError::ReplayMisaligned {
                expected: 1,
                actual: 2,
            },
            MedusaError::ReplayDanglingFree { alloc_seq: 9 },
            MedusaError::KernelUnresolved {
                library: "l".into(),
                kernel: "k".into(),
            },
            MedusaError::ValidationFailed { batch: 8 },
            MedusaError::ArtifactMismatch {
                artifact: "a".into(),
                target: "b".into(),
            },
            MedusaError::ArtifactCorrupt {
                detail: "bad json".into(),
            },
            MedusaError::MissingLabel {
                label: "ws.ids".into(),
            },
            MedusaError::UnmatchedTableEntry {
                table_seq: 1,
                index: 2,
                addr: 3,
            },
        ];
        for e in all {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_none());
        }
    }

    #[test]
    fn kind_is_stable_and_sees_through_context() {
        let e = MedusaError::from(GpuError::LibraryNotFound {
            library: "libfoo.so".into(),
        });
        assert_eq!(e.kind(), "gpu_library_not_found");
        let wrapped = e.with_context("restoring graphs");
        assert_eq!(wrapped.kind(), "gpu_library_not_found");
        assert!(wrapped.to_string().starts_with("restoring graphs: "));
        use std::error::Error;
        assert!(wrapped.source().is_some());
        assert_eq!(MedusaError::ArtifactRequired.kind(), "artifact_required");
        assert_eq!(
            MedusaError::ChecksumMismatch {
                expected: 1,
                actual: 2
            }
            .kind(),
            "checksum_mismatch"
        );
        assert_eq!(
            MedusaError::StageAborted {
                stage: "weights_load".into()
            }
            .kind(),
            "stage_aborted"
        );
    }

    #[test]
    fn result_context_extension_wraps_errors() {
        let r: Result<(), GpuError> = Err(GpuError::NotCapturing);
        let wrapped = r.context("capturing graphs").unwrap_err();
        assert_eq!(wrapped.kind(), "gpu_not_capturing");
        assert_eq!(
            wrapped.to_string(),
            "capturing graphs: driver: end_capture called with no active capture"
        );
        let ok: MedusaResult<u32> = Ok(7);
        assert_eq!(ok.context("nope").unwrap(), 7);
    }
}
