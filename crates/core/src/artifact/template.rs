//! Template artifacts: factor a model family's shared capture out of its
//! per-model artifacts.
//!
//! Foundry's observation (PAPERS.md) is that most of a captured serving
//! context is a *template* shared across a model family: the graph topology,
//! kernel name tables, and (de)allocation replay depend on the architecture
//! and engine, not on which fine-tune's weights are loaded. This module
//! factors a captured [`MaterializedState`] bundle accordingly:
//!
//! * an [`ArtifactTemplate`] holds the family-shared sections — replay
//!   sequence, semantic labels, pointer tables, materialized graphs, and
//!   analysis stats, per rank;
//! * a [`ModelDelta`] holds what distinguishes one member — its name, KV
//!   budget, and permanent-buffer contents (the weight-adjacent bytes) —
//!   and pins the template it instantiates against by digest;
//! * [`ArtifactTemplate::instantiate`] rebuilds the member's full sealed
//!   bundle at restore time; the result is field-identical to the directly
//!   captured artifact, so its [`content_checksum`] matches exactly.
//!
//! [`content_checksum`]: MaterializedState::content_checksum

use super::maf2;
use super::{AnalysisStats, GraphSpec, MaterializedState, PtrTableEntry, ReplayOp};
use crate::error::{MedusaError, MedusaResult};
use crate::faults::splitmix64;
use medusa_gpu::Digest;
use std::collections::{BTreeSet, HashMap};

fn corrupt(detail: impl Into<String>) -> MedusaError {
    MedusaError::ArtifactCorrupt {
        detail: detail.into(),
    }
}

/// The family-shared half of one shard's capture.
#[derive(Debug, Clone, PartialEq)]
struct TemplateShard {
    rank: u32,
    replay_prefix_allocs: u64,
    replay_ops: Vec<ReplayOp>,
    labels: HashMap<String, u64>,
    permanent_ptr_tables: Vec<(u64, Vec<PtrTableEntry>)>,
    graphs: Vec<GraphSpec>,
    stats: AnalysisStats,
}

/// The per-model half of one shard's capture.
#[derive(Debug, Clone, PartialEq)]
struct DeltaShard {
    rank: u32,
    kv_free_bytes: u64,
    permanent_contents: Vec<(u64, Digest)>,
}

/// A model family's shared capture: everything in a
/// [`MaterializedState`] bundle that does not depend on which member's
/// weights are loaded.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactTemplate {
    /// Family name (free-form; stamped into telemetry and store listings).
    pub family: String,
    /// GPU the family was captured on.
    pub gpu: String,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Artifact format version the capture was sealed under.
    pub version: u32,
    shards: Vec<TemplateShard>,
}

/// One family member's instantiation parameters on top of a template.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDelta {
    /// The member's model name.
    pub model: String,
    /// Digest of the [`ArtifactTemplate`] this delta instantiates against.
    pub template: u64,
    shards: Vec<DeltaShard>,
}

impl ArtifactTemplate {
    /// Factors a captured bundle (one [`MaterializedState`] per rank) into
    /// its family template and the capturing member's delta.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] when the bundle is empty,
    /// shards disagree on `<model, gpu, tp, version>`, or ranks repeat.
    pub fn extract(
        shards: &[MaterializedState],
        family: &str,
    ) -> MedusaResult<(ArtifactTemplate, ModelDelta)> {
        let first = shards
            .first()
            .ok_or_else(|| corrupt("cannot extract a template from an empty bundle"))?;
        let mut ordered: Vec<&MaterializedState> = shards.iter().collect();
        ordered.sort_by_key(|s| s.rank);
        let mut seen = BTreeSet::new();
        for s in &ordered {
            if s.model != first.model
                || s.gpu != first.gpu
                || s.tp != first.tp
                || s.version != first.version
            {
                return Err(corrupt(format!(
                    "bundle shards disagree: {}/{} tp{} v{} vs {}/{} tp{} v{}",
                    s.model,
                    s.gpu,
                    s.tp,
                    s.version,
                    first.model,
                    first.gpu,
                    first.tp,
                    first.version
                )));
            }
            if !seen.insert(s.rank) {
                return Err(corrupt(format!("duplicate rank {} in bundle", s.rank)));
            }
        }
        let template = ArtifactTemplate {
            family: family.to_string(),
            gpu: first.gpu.clone(),
            tp: first.tp,
            version: first.version,
            shards: ordered
                .iter()
                .map(|s| TemplateShard {
                    rank: s.rank,
                    replay_prefix_allocs: s.replay_prefix_allocs,
                    replay_ops: s.replay_ops.clone(),
                    labels: s.labels.clone(),
                    permanent_ptr_tables: s.permanent_ptr_tables.clone(),
                    graphs: s.graphs.clone(),
                    stats: s.stats.clone(),
                })
                .collect(),
        };
        let delta = ModelDelta {
            model: first.model.clone(),
            template: template.digest(),
            shards: ordered
                .iter()
                .map(|s| DeltaShard {
                    rank: s.rank,
                    kv_free_bytes: s.kv_free_bytes,
                    permanent_contents: s.permanent_contents.clone(),
                })
                .collect(),
        };
        Ok((template, delta))
    }

    /// The template's canonical fingerprint: the FNV fold of each shard's
    /// content checksum computed over a *canonical instantiation* (empty
    /// model name, zero KV budget, no permanent contents), plus the family
    /// name. Reuses the artifact fold, so two templates agree iff every
    /// shared field agrees.
    pub fn digest(&self) -> u64 {
        let mut body = Vec::with_capacity(self.family.len() + self.shards.len() * 8 + 8);
        body.extend_from_slice(self.family.as_bytes());
        body.extend_from_slice(&u64::from(self.version).to_le_bytes());
        for shard in &self.shards {
            let canonical = self.build_state(shard, "", 0, Vec::new());
            body.extend_from_slice(&canonical.content_checksum().to_le_bytes());
        }
        maf2::fnv1a(&[&body])
    }

    /// Ranks present in the template, ascending.
    pub fn shard_ranks(&self) -> Vec<u32> {
        self.shards.iter().map(|s| s.rank).collect()
    }

    fn build_state(
        &self,
        shard: &TemplateShard,
        model: &str,
        kv_free_bytes: u64,
        permanent_contents: Vec<(u64, Digest)>,
    ) -> MaterializedState {
        MaterializedState {
            version: self.version,
            model: model.to_string(),
            gpu: self.gpu.clone(),
            rank: shard.rank,
            tp: self.tp,
            kv_free_bytes,
            replay_prefix_allocs: shard.replay_prefix_allocs,
            replay_ops: shard.replay_ops.clone(),
            labels: shard.labels.clone(),
            permanent_contents,
            permanent_ptr_tables: shard.permanent_ptr_tables.clone(),
            graphs: shard.graphs.clone(),
            stats: shard.stats.clone(),
            checksum: 0,
        }
    }

    /// Factors another captured bundle against *this* template, returning
    /// its delta — the membership check for adding a family member.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactMismatch`] when the bundle's shared
    /// sections differ from this template (it is not a family member), plus
    /// the [`ArtifactTemplate::extract`] structural errors.
    pub fn delta_for(&self, shards: &[MaterializedState]) -> MedusaResult<ModelDelta> {
        let (other, delta) = ArtifactTemplate::extract(shards, &self.family)?;
        if other.digest() != self.digest() {
            return Err(MedusaError::ArtifactMismatch {
                artifact: format!("captured bundle for {}", delta.model),
                target: format!("family template {} ({:#018x})", self.family, self.digest()),
            });
        }
        Ok(delta)
    }

    /// Instantiates a family member: template + delta → the member's full
    /// sealed bundle, field-identical to a direct capture (equal
    /// [`content_checksum`](MaterializedState::content_checksum)).
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactMismatch`] when the delta references
    /// a different template digest, and [`MedusaError::ArtifactCorrupt`]
    /// when the delta's ranks do not match the template's.
    pub fn instantiate(&self, delta: &ModelDelta) -> MedusaResult<Vec<MaterializedState>> {
        let digest = self.digest();
        if delta.template != digest {
            return Err(MedusaError::ArtifactMismatch {
                artifact: format!(
                    "delta for {} (template {:#018x})",
                    delta.model, delta.template
                ),
                target: format!("template {} ({digest:#018x})", self.family),
            });
        }
        if delta.shards.len() != self.shards.len()
            || delta
                .shards
                .iter()
                .zip(&self.shards)
                .any(|(d, t)| d.rank != t.rank)
        {
            return Err(corrupt(format!(
                "delta ranks {:?} do not match template ranks {:?}",
                delta.shards.iter().map(|s| s.rank).collect::<Vec<_>>(),
                self.shard_ranks()
            )));
        }
        Ok(delta
            .shards
            .iter()
            .zip(&self.shards)
            .map(|(d, t)| {
                let mut s = self.build_state(
                    t,
                    &delta.model,
                    d.kv_free_bytes,
                    d.permanent_contents.clone(),
                );
                s.seal();
                s
            })
            .collect())
    }
}

impl ModelDelta {
    /// Derives a synthetic family member from this delta: a new model name,
    /// a seed-perturbed KV budget, and seed-perturbed permanent-buffer
    /// contents — the "fine-tune of the same base" generator used by the
    /// registry bench, CLI, and tests. Deterministic per `(name, seed)`.
    pub fn derive_variant(&self, name: &str, seed: u64) -> ModelDelta {
        ModelDelta {
            model: name.to_string(),
            template: self.template,
            shards: self
                .shards
                .iter()
                .map(|s| DeltaShard {
                    rank: s.rank,
                    kv_free_bytes: s.kv_free_bytes
                        ^ (splitmix64(seed ^ u64::from(s.rank)) & 0x3f_ffff),
                    permanent_contents: s
                        .permanent_contents
                        .iter()
                        .enumerate()
                        .map(|(i, (seq, d))| {
                            let mut d = *d;
                            let r = splitmix64(seed ^ (i as u64) << 8 ^ u64::from(s.rank));
                            d[0] ^= (r & 0xff) as u8;
                            d[1] ^= ((r >> 8) & 0xff) as u8;
                            (*seq, d)
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::tests_support::tiny_sealed;

    fn bundle(tp: u32) -> Vec<MaterializedState> {
        (0..tp)
            .map(|rank| {
                let mut s = tiny_sealed();
                s.rank = rank;
                s.tp = tp;
                s.kv_free_bytes += u64::from(rank);
                s.seal();
                s
            })
            .collect()
    }

    #[test]
    fn extract_then_instantiate_reproduces_the_capture() {
        let shards = bundle(2);
        let (template, delta) = ArtifactTemplate::extract(&shards, "qwen-fam").unwrap();
        let rebuilt = template.instantiate(&delta).unwrap();
        assert_eq!(rebuilt, shards, "instantiation is field-identical");
        for (a, b) in rebuilt.iter().zip(&shards) {
            assert_eq!(a.content_checksum(), b.content_checksum());
            a.verify_checksum().unwrap();
        }
    }

    #[test]
    fn digest_pins_shared_fields_only() {
        let shards = bundle(1);
        let (template, delta) = ArtifactTemplate::extract(&shards, "fam").unwrap();
        // A different member (new name/KV/contents) shares the template.
        let other = template.delta_for(
            &template
                .instantiate(&delta.derive_variant("fam-ft1", 9))
                .unwrap(),
        );
        assert_eq!(other.unwrap().template, template.digest());
        // A changed shared field (graphs) is a different template.
        let mut skewed = shards.clone();
        skewed[0].graphs.pop();
        skewed[0].seal();
        let err = template.delta_for(&skewed).unwrap_err();
        assert_eq!(err.kind(), "artifact_mismatch");
    }

    #[test]
    fn instantiate_rejects_wrong_template_and_ranks() {
        let shards = bundle(2);
        let (template, delta) = ArtifactTemplate::extract(&shards, "fam").unwrap();
        let mut wrong = delta.clone();
        wrong.template ^= 1;
        assert_eq!(
            template.instantiate(&wrong).unwrap_err().kind(),
            "artifact_mismatch"
        );
        let (solo_template, _) = ArtifactTemplate::extract(&bundle(1), "fam").unwrap();
        let mut cross = delta.clone();
        cross.template = solo_template.digest();
        assert_eq!(
            solo_template.instantiate(&cross).unwrap_err().kind(),
            "artifact_corrupt"
        );
    }

    #[test]
    fn extract_rejects_inconsistent_bundles() {
        assert_eq!(
            ArtifactTemplate::extract(&[], "fam").unwrap_err().kind(),
            "artifact_corrupt"
        );
        let mut shards = bundle(2);
        shards[1].model = "other".into();
        shards[1].seal();
        assert_eq!(
            ArtifactTemplate::extract(&shards, "fam")
                .unwrap_err()
                .kind(),
            "artifact_corrupt"
        );
        let dup = vec![shards[0].clone(), shards[0].clone()];
        assert_eq!(
            ArtifactTemplate::extract(&dup, "fam").unwrap_err().kind(),
            "artifact_corrupt"
        );
    }

    #[test]
    fn derived_variants_are_deterministic_and_distinct() {
        let shards = bundle(1);
        let (template, delta) = ArtifactTemplate::extract(&shards, "fam").unwrap();
        let v1 = delta.derive_variant("fam-ft1", 7);
        assert_eq!(v1, delta.derive_variant("fam-ft1", 7));
        let v2 = delta.derive_variant("fam-ft2", 8);
        assert_ne!(v1.shards, v2.shards);
        let s1 = template.instantiate(&v1).unwrap();
        let s2 = template.instantiate(&v2).unwrap();
        assert_ne!(
            s1[0].content_checksum(),
            s2[0].content_checksum(),
            "variants are distinct artifacts"
        );
    }
}
