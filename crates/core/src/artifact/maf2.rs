//! MAF2: the Medusa Artifact Format v2 — a zero-copy binary container for
//! [`MaterializedState`] bundles.
//!
//! The JSON encoding (kept as a debug import/export, see
//! [`MaterializedState::to_json`]) must be parsed in full before a single
//! field can be read, so open + validate is O(file). ServerlessLLM showed
//! that a loading-optimized checkpoint layout is itself a first-order
//! cold-start lever; MAF2 applies the same idea to the materialization
//! artifact:
//!
//! * a fixed-width 64-byte **header** (magic, format version, target key
//!   lengths, file length, section-index offset, streaming checksum over
//!   the section digests, and an index digest sealing the header + target
//!   key + section index);
//! * a fixed-width **section index** — 32-byte entries `(kind, shard,
//!   offset, length, digest)` — that addresses every per-shard section
//!   without touching payload bytes;
//! * fixed-width **tables** for the allocation/replay sequence, labels,
//!   permanent contents, pointer tables, and graph nodes/params/edges;
//! * an offset-indexed, deduplicated **string table** per shard for kernel,
//!   library, and label names;
//! * one group of sections per `(rank, tp)` shard, **lazily materialized**
//!   on first touch, so a rank restores by reading only its own sections.
//!
//! Opening a MAF2 file therefore costs O(header + index): length, magic,
//! bounds, and index-digest checks — never a payload scan. Payload integrity
//! is enforced per section, on first materialization, against the digest
//! sealed in the index. See DESIGN.md §13 for the byte-level layout.
//!
//! All integers are little-endian. The format is deliberately *not*
//! self-describing: the layout is pinned by `format_version` and the
//! decoder rejects anything it does not understand with a typed error.

use super::{
    AnalysisStats, GraphSpec, MaterializedState, NodeSpec, ParamSpec, PtrTableEntry, ReplayOp,
    ARTIFACT_VERSION,
};
use crate::error::{MedusaError, MedusaResult};
use std::cell::{Cell, OnceCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// MAF2 magic: `MAF2` followed by the PNG-style `\r\n\x1a\n` transfer-
/// corruption canary (detects CRLF translation and EOF truncation).
pub const MAF2_MAGIC: [u8; 8] = *b"MAF2\x0d\x0a\x1a\x0a";

/// Fixed header length in bytes.
pub const MAF2_HEADER_LEN: usize = 64;

/// Length of one section-index entry in bytes.
pub const MAF2_INDEX_ENTRY_LEN: usize = 32;

/// Fixed byte length of a ShardMeta section payload.
const SHARD_META_LEN: usize = 104;

/// Section kinds, one group per shard. The `kind` discriminant is part of
/// the on-disk format and must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SectionKind {
    /// Shard scalars: rank, tp, kv bytes, replay prefix, sealed checksum,
    /// analysis stats. Fixed 104 bytes.
    ShardMeta,
    /// The (de)allocation replay sequence, 16 bytes per op.
    Replay,
    /// Deduplicated string table (kernel/library/label names).
    Strings,
    /// Semantic labels, 16 bytes per entry, sorted by name.
    Labels,
    /// Permanent buffer contents, 24 bytes per entry.
    PermContents,
    /// Permanent pointer tables (variable-width, sequentially decoded).
    PtrTables,
    /// Materialized graphs: fixed node/param/edge records plus a spill blob
    /// for oversized constants.
    Graphs,
}

impl SectionKind {
    /// All kinds in per-shard encode order.
    pub const ALL: [SectionKind; 7] = [
        SectionKind::ShardMeta,
        SectionKind::Replay,
        SectionKind::Strings,
        SectionKind::Labels,
        SectionKind::PermContents,
        SectionKind::PtrTables,
        SectionKind::Graphs,
    ];

    pub(crate) fn code(self) -> u32 {
        match self {
            SectionKind::ShardMeta => 0,
            SectionKind::Replay => 1,
            SectionKind::Strings => 2,
            SectionKind::Labels => 3,
            SectionKind::PermContents => 4,
            SectionKind::PtrTables => 5,
            SectionKind::Graphs => 6,
        }
    }

    pub(crate) fn from_code(c: u32) -> Option<SectionKind> {
        SectionKind::ALL.into_iter().find(|k| k.code() == c)
    }
}

/// FNV-1a 64-bit over raw bytes — the digest primitive for sections, the
/// section index, and the header's checksum-of-digests. Same constants as
/// the artifact's [`content_checksum`](MaterializedState::content_checksum)
/// fold, but over encoded bytes rather than logical fields.
pub(crate) fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn corrupt(detail: impl Into<String>) -> MedusaError {
    MedusaError::ArtifactCorrupt {
        detail: detail.into(),
    }
}

/// Returns `true` when `bytes` begin with the MAF2 magic — the format
/// auto-detection used by `medusa-cli` and the validator.
pub fn is_maf2(bytes: &[u8]) -> bool {
    bytes.len() >= MAF2_MAGIC.len() && bytes[..MAF2_MAGIC.len()] == MAF2_MAGIC
}

/// Coarse region map parsed from a header, used by fault injection to aim
/// tampering at a specific region without a full open.
pub(crate) struct HeaderLayout {
    /// First byte past the target-key strings (= first payload byte).
    pub payload_off: usize,
    /// Bytes between the target key and the section index.
    pub payload_len: usize,
    /// Section-index offset.
    pub index_off: usize,
    /// Number of index entries.
    pub section_count: usize,
}

/// Parses the region map from a (possibly tampered) header; `None` when the
/// header is too short or internally inconsistent to locate the regions.
pub(crate) fn header_layout(bytes: &[u8]) -> Option<HeaderLayout> {
    if bytes.len() < MAF2_HEADER_LEN || !is_maf2(bytes) {
        return None;
    }
    let le32 = |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
    let model_len = le32(24) as usize;
    let gpu_len = le32(28) as usize;
    let section_count = le32(20) as usize;
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[40..48]);
    let index_off = u64::from_le_bytes(b) as usize;
    let payload_off = MAF2_HEADER_LEN
        .checked_add(model_len)?
        .checked_add(gpu_len)?;
    let index_end = index_off.checked_add(section_count.checked_mul(MAF2_INDEX_ENTRY_LEN)?)?;
    if payload_off > index_off || index_end > bytes.len() {
        return None;
    }
    Some(HeaderLayout {
        payload_off,
        payload_len: index_off - payload_off,
        index_off,
        section_count,
    })
}

/// Recomputes and re-stamps the sealed index digest from the current header
/// fields. Fault injection uses this to craft files that are self-consistent
/// *except* for one targeted inconsistency (e.g. a version skew or an
/// out-of-bounds index offset), so the tampering is caught by the check
/// under test rather than masked by the digest seal. No-op when the header
/// is too mangled to locate the regions.
pub(crate) fn reseal_index_digest(bytes: &mut [u8]) {
    let Some(layout) = header_layout(bytes) else {
        return;
    };
    let index_end = layout.index_off + layout.section_count * MAF2_INDEX_ENTRY_LEN;
    let digest = fnv1a(&[
        &bytes[..56],
        &bytes[MAF2_HEADER_LEN..layout.payload_off],
        &bytes[layout.index_off..index_end],
    ]);
    bytes[56..64].copy_from_slice(&digest.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Little-endian append helpers over a `Vec<u8>` payload buffer.
trait PutLe {
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
}

impl PutLe for Vec<u8> {
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Per-shard deduplicated string table: indices are assigned in sorted
/// order so encoding is deterministic for a given content.
struct StringTable {
    index: BTreeMap<String, u32>,
}

impl StringTable {
    fn build(shard: &MaterializedState) -> Self {
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for label in shard.labels.keys() {
            names.insert(label);
        }
        for g in &shard.graphs {
            for n in &g.nodes {
                names.insert(&n.kernel);
                names.insert(&n.library);
            }
        }
        let index = names
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s.to_string(), i as u32))
            .collect();
        StringTable { index }
    }

    fn id(&self, s: &str) -> u32 {
        // Every string was inserted by `build`; absence is an encoder bug.
        self.index[s]
    }

    fn encode(&self) -> Vec<u8> {
        let mut blob = Vec::new();
        let mut entries = Vec::with_capacity(self.index.len() * 8);
        for s in self.index.keys() {
            entries.put_u32(blob.len() as u32);
            entries.put_u32(s.len() as u32);
            blob.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::with_capacity(8 + entries.len() + blob.len());
        out.put_u32(self.index.len() as u32);
        out.put_u32(0); // pad to 8-byte entry alignment
        out.extend_from_slice(&entries);
        out.extend_from_slice(&blob);
        out
    }
}

fn encode_shard_meta(s: &MaterializedState) -> Vec<u8> {
    let mut out = Vec::with_capacity(SHARD_META_LEN);
    out.put_u32(s.rank);
    out.put_u32(s.tp);
    out.put_u64(s.kv_free_bytes);
    out.put_u64(s.replay_prefix_allocs);
    out.put_u64(s.checksum);
    for v in [
        s.stats.nodes,
        s.stats.pointer_params,
        s.stats.const_params,
        s.stats.multi_match_pointers,
        s.stats.dlsym_restorable_nodes,
        s.stats.hidden_kernel_nodes,
        s.stats.param_buffers,
        s.stats.temp_buffers,
        s.stats.permanent_buffers,
    ] {
        out.put_u64(v);
    }
    debug_assert_eq!(out.len(), SHARD_META_LEN);
    out
}

fn encode_replay(s: &MaterializedState) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.replay_ops.len() * 16);
    for op in &s.replay_ops {
        match op {
            ReplayOp::Malloc { size } => {
                out.put_u64(0);
                out.put_u64(*size);
            }
            ReplayOp::Free { alloc_seq } => {
                out.put_u64(1);
                out.put_u64(*alloc_seq);
            }
        }
    }
    out
}

fn encode_labels(s: &MaterializedState, strings: &StringTable) -> Vec<u8> {
    let mut labels: Vec<(&String, &u64)> = s.labels.iter().collect();
    labels.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = Vec::with_capacity(labels.len() * 16);
    for (name, seq) in labels {
        out.put_u32(strings.id(name));
        out.put_u32(0);
        out.put_u64(*seq);
    }
    out
}

fn encode_perm_contents(s: &MaterializedState) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.permanent_contents.len() * 24);
    for (seq, digest) in &s.permanent_contents {
        out.put_u64(*seq);
        out.extend_from_slice(digest);
    }
    out
}

fn encode_ptr_tables(s: &MaterializedState) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u64(s.permanent_ptr_tables.len() as u64);
    for (seq, entries) in &s.permanent_ptr_tables {
        out.put_u64(*seq);
        out.put_u64(entries.len() as u64);
        for e in entries {
            out.put_u64(e.alloc_seq);
            out.put_u64(e.offset);
        }
    }
    out
}

/// Constants longer than the 24-byte inline window of a param record spill
/// into a blob at the end of the Graphs section.
const PARAM_INLINE_LEN: usize = 24;

fn encode_graphs(s: &MaterializedState, strings: &StringTable) -> Vec<u8> {
    let mut out = Vec::new();
    let mut spill: Vec<u8> = Vec::new();
    out.put_u64(s.graphs.len() as u64);
    for g in &s.graphs {
        let total_params: usize = g.nodes.iter().map(|n| n.params.len()).sum();
        out.put_u32(g.batch);
        out.put_u32(g.nodes.len() as u32);
        out.put_u32(g.edges.len() as u32);
        out.put_u32(total_params as u32);
        for n in &g.nodes {
            out.put_u32(strings.id(&n.kernel));
            out.put_u32(strings.id(&n.library));
            out.put_u32(u32::from(n.exported));
            out.put_u32(n.stream);
            out.put_u32(n.params.len() as u32);
            out.put_u32(0);
            out.put_u64(n.work.flops.to_bits());
            out.put_u64(n.work.bytes.to_bits());
        }
        for n in &g.nodes {
            for p in &n.params {
                match p {
                    ParamSpec::Const { bytes } => {
                        out.put_u32(0);
                        out.put_u32(bytes.len() as u32);
                        if bytes.len() <= PARAM_INLINE_LEN {
                            let mut inline = [0u8; PARAM_INLINE_LEN];
                            inline[..bytes.len()].copy_from_slice(bytes);
                            out.extend_from_slice(&inline);
                        } else {
                            out.put_u64(spill.len() as u64);
                            out.put_u64(0);
                            out.put_u64(0);
                            spill.extend_from_slice(bytes);
                        }
                    }
                    ParamSpec::IndirectPtr {
                        alloc_seq,
                        offset,
                        raw,
                    } => {
                        out.put_u32(1);
                        out.put_u32(0);
                        out.put_u64(*alloc_seq);
                        out.put_u64(*offset);
                        out.put_u64(*raw);
                    }
                }
            }
        }
        for (a, b) in &g.edges {
            out.put_u32(*a);
            out.put_u32(*b);
        }
    }
    out.extend_from_slice(&spill);
    out
}

/// Encodes a bundle of shards (one [`MaterializedState`] per rank) into a
/// single MAF2 file. Shards must agree on `<model, gpu, tp, version>` and
/// carry distinct ranks; they are written in ascending rank order so
/// encoding is deterministic — re-encoding a decoded bundle reproduces the
/// bytes exactly.
///
/// # Errors
///
/// Returns [`MedusaError::ArtifactCorrupt`] when the bundle is empty or the
/// shards disagree on the target key.
pub fn encode_bundle(shards: &[&MaterializedState]) -> MedusaResult<Vec<u8>> {
    let first = shards
        .first()
        .ok_or_else(|| corrupt("cannot encode an empty artifact bundle"))?;
    let mut ordered: Vec<&MaterializedState> = shards.to_vec();
    ordered.sort_by_key(|s| s.rank);
    let mut seen = BTreeSet::new();
    for s in &ordered {
        if s.model != first.model
            || s.gpu != first.gpu
            || s.tp != first.tp
            || s.version != first.version
        {
            return Err(corrupt(format!(
                "bundle shards disagree: {}/{} tp{} v{} vs {}/{} tp{} v{}",
                s.model, s.gpu, s.tp, s.version, first.model, first.gpu, first.tp, first.version
            )));
        }
        if !seen.insert(s.rank) {
            return Err(corrupt(format!("duplicate rank {} in bundle", s.rank)));
        }
    }

    // Section payloads, in rank order then kind order.
    let mut sections: Vec<(SectionKind, u32, Vec<u8>)> = Vec::new();
    for s in &ordered {
        let strings = StringTable::build(s);
        sections.push((SectionKind::ShardMeta, s.rank, encode_shard_meta(s)));
        sections.push((SectionKind::Replay, s.rank, encode_replay(s)));
        sections.push((SectionKind::Strings, s.rank, strings.encode()));
        sections.push((SectionKind::Labels, s.rank, encode_labels(s, &strings)));
        sections.push((SectionKind::PermContents, s.rank, encode_perm_contents(s)));
        sections.push((SectionKind::PtrTables, s.rank, encode_ptr_tables(s)));
        sections.push((SectionKind::Graphs, s.rank, encode_graphs(s, &strings)));
    }

    let model = first.model.as_bytes();
    let gpu = first.gpu.as_bytes();
    let payload_base = MAF2_HEADER_LEN + model.len() + gpu.len();
    let payload_len: usize = sections.iter().map(|(_, _, p)| p.len()).sum();
    let index_off = payload_base + payload_len;
    let file_len = index_off + sections.len() * MAF2_INDEX_ENTRY_LEN;

    // Section index: (kind, shard, off, len, digest) per section.
    let mut index = Vec::with_capacity(sections.len() * MAF2_INDEX_ENTRY_LEN);
    let mut digest_fold: u64 = 0xcbf2_9ce4_8422_2325;
    let mut off = payload_base as u64;
    for (kind, shard, payload) in &sections {
        let digest = fnv1a(&[payload]);
        index.put_u32(kind.code());
        index.put_u32(*shard);
        index.put_u64(off);
        index.put_u64(payload.len() as u64);
        index.put_u64(digest);
        off += payload.len() as u64;
        for b in digest.to_le_bytes() {
            digest_fold ^= u64::from(b);
            digest_fold = digest_fold.wrapping_mul(0x100_0000_01b3);
        }
    }

    let mut out = Vec::with_capacity(file_len);
    out.extend_from_slice(&MAF2_MAGIC);
    out.put_u32(first.version);
    out.put_u32(first.tp);
    out.put_u32(ordered.len() as u32);
    out.put_u32(sections.len() as u32);
    out.put_u32(model.len() as u32);
    out.put_u32(gpu.len() as u32);
    out.put_u64(file_len as u64);
    out.put_u64(index_off as u64);
    out.put_u64(digest_fold);
    out.put_u64(0); // index_digest, patched below
    debug_assert_eq!(out.len(), MAF2_HEADER_LEN);
    out.extend_from_slice(model);
    out.extend_from_slice(gpu);
    for (_, _, payload) in &sections {
        out.extend_from_slice(payload);
    }
    out.extend_from_slice(&index);
    debug_assert_eq!(out.len(), file_len);

    // index_digest seals header scalars, target key, and the whole index.
    let index_digest = fnv1a(&[&out[..56], model, gpu, &index]);
    out[56..64].copy_from_slice(&index_digest.to_le_bytes());
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian cursor over a section payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Cursor {
            bytes,
            pos: 0,
            what,
        }
    }

    fn take(&mut self, n: usize) -> MedusaResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(corrupt(format!(
                "{} section truncated: need {} bytes at offset {} of {}",
                self.what,
                n,
                self.pos,
                self.bytes.len()
            ))),
        }
    }

    fn u32(&mut self) -> MedusaResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> MedusaResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn done(&self) -> MedusaResult<()> {
        if self.pos != self.bytes.len() {
            return Err(corrupt(format!(
                "{} section has {} trailing bytes",
                self.what,
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// One parsed section-index entry.
#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    kind: SectionKind,
    shard: u32,
    off: u64,
    len: u64,
    digest: u64,
}

/// Public view of one section-index entry: where a section's payload lives
/// in the file and the digest it is sealed under. The content-addressed
/// registry forces chunk boundaries at these seams so family-shared sections
/// deduplicate chunk-for-chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionExtent {
    /// Section kind.
    pub kind: SectionKind,
    /// Owning shard rank.
    pub shard: u32,
    /// Byte offset of the payload within the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Sealed FNV-1a digest of the payload.
    pub digest: u64,
}

/// Parsed ShardMeta section: the per-shard scalars readable in O(1) without
/// materializing the shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeta {
    /// Tensor-parallel rank.
    pub rank: u32,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Materialized KV cache initialization bytes.
    pub kv_free_bytes: u64,
    /// Natural allocation prefix length.
    pub replay_prefix_allocs: u64,
    /// The shard's sealed content checksum.
    pub checksum: u64,
    /// Analysis statistics.
    pub stats: AnalysisStats,
}

/// Per-shard decoded string table.
struct ShardStrings {
    strings: Vec<String>,
}

impl ShardStrings {
    fn get(&self, id: u32, what: &str) -> MedusaResult<&str> {
        self.strings
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| {
                corrupt(format!(
                    "{what} references string #{id} out of bounds ({} strings)",
                    self.strings.len()
                ))
            })
    }
}

/// A zero-copy reader over an in-memory MAF2 file.
///
/// [`Maf2Reader::open`] performs only O(header + index) work: length, magic,
/// bounds, and index-digest verification. Shard payloads stay untouched
/// until [`Maf2Reader::shard`] materializes them on first use, verifying
/// each section's digest as it is read. [`Maf2Reader::bytes_read`] counts
/// every payload byte the reader has actually consumed, which tests and the
/// size-sweep benchmark use to prove the lazy-restore bound (a single shard
/// reads < 1/tp of the file).
pub struct Maf2Reader<'a> {
    bytes: &'a [u8],
    version: u32,
    tp: u32,
    model: &'a str,
    gpu: &'a str,
    content_checksum: u64,
    index: Vec<SectionEntry>,
    /// One lazy slot per ShardMeta entry, same order as `shard_ranks`.
    shards: Vec<(u32, OnceCell<MaterializedState>)>,
    bytes_read: Cell<u64>,
}

impl<'a> Maf2Reader<'a> {
    /// Opens a MAF2 file, validating the fixed header, the target-key
    /// strings, and the section index (bounds + sealed index digest) — an
    /// O(header + index) operation that never reads section payloads.
    ///
    /// A format-version skew is *not* rejected here so the validator can
    /// report it as the `format_version` check; materialization rejects it.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] for truncation, bad magic,
    /// or malformed index entries, and [`MedusaError::ChecksumMismatch`]
    /// when the sealed index digest does not match.
    pub fn open(bytes: &'a [u8]) -> MedusaResult<Maf2Reader<'a>> {
        if bytes.len() < MAF2_HEADER_LEN {
            return Err(corrupt(format!(
                "truncated: {} bytes < {MAF2_HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[..8] != MAF2_MAGIC {
            return Err(corrupt("bad magic: not a MAF2 artifact"));
        }
        let le32 =
            |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        let le64 = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[o..o + 8]);
            u64::from_le_bytes(b)
        };
        let version = le32(8);
        let tp = le32(12);
        let shard_count = le32(16) as usize;
        let section_count = le32(20) as usize;
        let model_len = le32(24) as usize;
        let gpu_len = le32(28) as usize;
        let file_len = le64(32);
        let index_off = le64(40) as usize;
        let content_checksum = le64(48);
        let index_digest = le64(56);

        if file_len != bytes.len() as u64 {
            return Err(corrupt(format!(
                "truncated: header declares {file_len} bytes, have {}",
                bytes.len()
            )));
        }
        let key_end = MAF2_HEADER_LEN
            .checked_add(model_len)
            .and_then(|e| e.checked_add(gpu_len))
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| corrupt("target-key strings exceed file bounds"))?;
        let model_bytes = &bytes[MAF2_HEADER_LEN..MAF2_HEADER_LEN + model_len];
        let gpu_bytes = &bytes[MAF2_HEADER_LEN + model_len..key_end];
        let model = std::str::from_utf8(model_bytes)
            .map_err(|_| corrupt("model name is not valid UTF-8"))?;
        let gpu =
            std::str::from_utf8(gpu_bytes).map_err(|_| corrupt("gpu name is not valid UTF-8"))?;

        let index_len = section_count
            .checked_mul(MAF2_INDEX_ENTRY_LEN)
            .ok_or_else(|| corrupt("section count overflows"))?;
        let index_end = index_off
            .checked_add(index_len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| {
                corrupt(format!(
                    "section index [{index_off}, +{index_len}) exceeds file bounds"
                ))
            })?;
        let index_bytes = &bytes[index_off..index_end];

        let actual = fnv1a(&[&bytes[..56], model_bytes, gpu_bytes, index_bytes]);
        if actual != index_digest {
            return Err(MedusaError::ChecksumMismatch {
                expected: index_digest,
                actual,
            });
        }

        let mut index = Vec::with_capacity(section_count);
        let mut shards: Vec<(u32, OnceCell<MaterializedState>)> = Vec::new();
        for (i, entry) in index_bytes.chunks_exact(MAF2_INDEX_ENTRY_LEN).enumerate() {
            let kind_code = u32::from_le_bytes([entry[0], entry[1], entry[2], entry[3]]);
            let kind = SectionKind::from_code(kind_code)
                .ok_or_else(|| corrupt(format!("index entry {i} has unknown kind {kind_code}")))?;
            let shard = u32::from_le_bytes([entry[4], entry[5], entry[6], entry[7]]);
            let mut b = [0u8; 8];
            b.copy_from_slice(&entry[8..16]);
            let off = u64::from_le_bytes(b);
            b.copy_from_slice(&entry[16..24]);
            let len = u64::from_le_bytes(b);
            b.copy_from_slice(&entry[24..32]);
            let digest = u64::from_le_bytes(b);
            let end = off.checked_add(len).filter(|&e| e <= file_len);
            if end.is_none() || off < key_end as u64 {
                return Err(corrupt(format!(
                    "index entry {i} ({kind:?} shard {shard}) [{off}, +{len}) is out of bounds"
                )));
            }
            if kind == SectionKind::ShardMeta {
                shards.push((shard, OnceCell::new()));
            }
            index.push(SectionEntry {
                kind,
                shard,
                off,
                len,
                digest,
            });
        }
        if shards.len() != shard_count {
            return Err(corrupt(format!(
                "header declares {shard_count} shards, index has {}",
                shards.len()
            )));
        }

        let reader = Maf2Reader {
            bytes,
            version,
            tp,
            model,
            gpu,
            content_checksum,
            index,
            shards,
            bytes_read: Cell::new((key_end + index_len) as u64),
        };
        Ok(reader)
    }

    /// Declared format version (may differ from [`ARTIFACT_VERSION`]; see
    /// [`Maf2Reader::open`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Model name from the header's target key.
    pub fn model(&self) -> &'a str {
        self.model
    }

    /// GPU name from the header's target key.
    pub fn gpu(&self) -> &'a str {
        self.gpu
    }

    /// Tensor-parallel degree of the bundle.
    pub fn tp(&self) -> u32 {
        self.tp
    }

    /// Number of shards stored in this file (a file may carry a subset of
    /// the tp ranks).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Ranks present in the file, in index order.
    pub fn shard_ranks(&self) -> Vec<u32> {
        self.shards.iter().map(|(r, _)| *r).collect()
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// The section extents in index order — O(index), never touches
    /// payloads. The registry's chunker aligns chunk seams to these.
    pub fn section_extents(&self) -> Vec<SectionExtent> {
        self.index
            .iter()
            .map(|e| SectionExtent {
                kind: e.kind,
                shard: e.shard,
                offset: e.off,
                len: e.len,
                digest: e.digest,
            })
            .collect()
    }

    /// Payload bytes actually consumed so far (header + index + every
    /// section read), the observable cost of lazy restoration.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Verifies the header's streaming checksum: an FNV fold over every
    /// section digest in index order. O(index); never touches payloads.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ChecksumMismatch`] on disagreement.
    pub fn verify_content_checksum(&self) -> MedusaResult<()> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for e in &self.index {
            for b in e.digest.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        if h != self.content_checksum {
            return Err(MedusaError::ChecksumMismatch {
                expected: self.content_checksum,
                actual: h,
            });
        }
        Ok(())
    }

    /// Fetches one section's payload, verifying its sealed digest. Counts
    /// the payload against [`Maf2Reader::bytes_read`].
    fn section(&self, kind: SectionKind, rank: u32) -> MedusaResult<&'a [u8]> {
        let entry = self
            .index
            .iter()
            .find(|e| e.kind == kind && e.shard == rank)
            .ok_or_else(|| corrupt(format!("no {kind:?} section for rank {rank}")))?;
        let payload = &self.bytes[entry.off as usize..(entry.off + entry.len) as usize];
        let actual = fnv1a(&[payload]);
        if actual != entry.digest {
            return Err(MedusaError::ChecksumMismatch {
                expected: entry.digest,
                actual,
            });
        }
        self.bytes_read.set(self.bytes_read.get() + entry.len);
        Ok(payload)
    }

    /// Reads and verifies one shard's ShardMeta section — O(1) in file
    /// size, used by the header-first validator for per-shard target and
    /// checksum checks without materialization.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] when absent or malformed,
    /// [`MedusaError::ChecksumMismatch`] when the section digest disagrees.
    pub fn shard_meta(&self, rank: u32) -> MedusaResult<ShardMeta> {
        let payload = self.section(SectionKind::ShardMeta, rank)?;
        if payload.len() != SHARD_META_LEN {
            return Err(corrupt(format!(
                "ShardMeta section is {} bytes, expected {SHARD_META_LEN}",
                payload.len()
            )));
        }
        let mut c = Cursor::new(payload, "ShardMeta");
        let meta = ShardMeta {
            rank: c.u32()?,
            tp: c.u32()?,
            kv_free_bytes: c.u64()?,
            replay_prefix_allocs: c.u64()?,
            checksum: c.u64()?,
            stats: AnalysisStats {
                nodes: c.u64()?,
                pointer_params: c.u64()?,
                const_params: c.u64()?,
                multi_match_pointers: c.u64()?,
                dlsym_restorable_nodes: c.u64()?,
                hidden_kernel_nodes: c.u64()?,
                param_buffers: c.u64()?,
                temp_buffers: c.u64()?,
                permanent_buffers: c.u64()?,
            },
        };
        c.done()?;
        Ok(meta)
    }

    /// Lazily materializes one shard, reading only that shard's sections
    /// (each verified against its sealed digest on the way in). Subsequent
    /// calls return the cached state without re-reading.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] on format-version skew or
    /// malformed sections, [`MedusaError::ChecksumMismatch`] on a section
    /// digest mismatch.
    pub fn shard(&self, rank: u32) -> MedusaResult<&MaterializedState> {
        let cell = self
            .shards
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|(_, c)| c)
            .ok_or_else(|| corrupt(format!("no shard for rank {rank} in artifact")))?;
        if let Some(state) = cell.get() {
            return Ok(state);
        }
        if self.version != ARTIFACT_VERSION {
            return Err(corrupt(format!(
                "format version {} != supported {ARTIFACT_VERSION}",
                self.version
            )));
        }
        let state = self.materialize_shard(rank)?;
        let _ = cell.set(state);
        Ok(cell.get().expect("just set"))
    }

    /// Eagerly materializes every shard in the file, in index order.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure (see [`Maf2Reader::shard`]).
    pub fn materialize_all(&self) -> MedusaResult<Vec<MaterializedState>> {
        self.shard_ranks()
            .into_iter()
            .map(|r| self.shard(r).cloned())
            .collect()
    }

    fn decode_strings(&self, rank: u32) -> MedusaResult<ShardStrings> {
        let payload = self.section(SectionKind::Strings, rank)?;
        let mut c = Cursor::new(payload, "Strings");
        let count = c.u32()? as usize;
        let _pad = c.u32()?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let off = c.u32()? as usize;
            let len = c.u32()? as usize;
            entries.push((off, len));
        }
        let blob = &payload[c.pos..];
        let mut strings = Vec::with_capacity(count);
        for (i, (off, len)) in entries.into_iter().enumerate() {
            let end = off.checked_add(len).filter(|&e| e <= blob.len());
            let end = end.ok_or_else(|| {
                corrupt(format!(
                    "string #{i} [{off}, +{len}) exceeds blob of {} bytes",
                    blob.len()
                ))
            })?;
            let s = std::str::from_utf8(&blob[off..end])
                .map_err(|_| corrupt(format!("string #{i} is not valid UTF-8")))?;
            strings.push(s.to_string());
        }
        Ok(ShardStrings { strings })
    }

    fn materialize_shard(&self, rank: u32) -> MedusaResult<MaterializedState> {
        let meta = self.shard_meta(rank)?;
        let strings = self.decode_strings(rank)?;

        let replay = self.section(SectionKind::Replay, rank)?;
        if replay.len() % 16 != 0 {
            return Err(corrupt(format!(
                "Replay section length {} is not a multiple of 16",
                replay.len()
            )));
        }
        let mut replay_ops = Vec::with_capacity(replay.len() / 16);
        let mut c = Cursor::new(replay, "Replay");
        while c.pos < replay.len() {
            let tag = c.u64()?;
            let value = c.u64()?;
            replay_ops.push(match tag {
                0 => ReplayOp::Malloc { size: value },
                1 => ReplayOp::Free { alloc_seq: value },
                t => return Err(corrupt(format!("replay op has unknown tag {t}"))),
            });
        }

        let labels_payload = self.section(SectionKind::Labels, rank)?;
        if labels_payload.len() % 16 != 0 {
            return Err(corrupt(format!(
                "Labels section length {} is not a multiple of 16",
                labels_payload.len()
            )));
        }
        let mut labels = HashMap::new();
        let mut c = Cursor::new(labels_payload, "Labels");
        while c.pos < labels_payload.len() {
            let name_id = c.u32()?;
            let _pad = c.u32()?;
            let seq = c.u64()?;
            let name = strings.get(name_id, "label")?;
            labels.insert(name.to_string(), seq);
        }

        let perm = self.section(SectionKind::PermContents, rank)?;
        if perm.len() % 24 != 0 {
            return Err(corrupt(format!(
                "PermContents section length {} is not a multiple of 24",
                perm.len()
            )));
        }
        let mut permanent_contents = Vec::with_capacity(perm.len() / 24);
        let mut c = Cursor::new(perm, "PermContents");
        while c.pos < perm.len() {
            let seq = c.u64()?;
            let raw = c.take(16)?;
            let mut digest = [0u8; 16];
            digest.copy_from_slice(raw);
            permanent_contents.push((seq, digest));
        }

        let tables_payload = self.section(SectionKind::PtrTables, rank)?;
        let mut c = Cursor::new(tables_payload, "PtrTables");
        let table_count = c.u64()? as usize;
        let mut permanent_ptr_tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let seq = c.u64()?;
            let entry_count = c.u64()? as usize;
            let mut entries = Vec::with_capacity(entry_count);
            for _ in 0..entry_count {
                entries.push(PtrTableEntry {
                    alloc_seq: c.u64()?,
                    offset: c.u64()?,
                });
            }
            permanent_ptr_tables.push((seq, entries));
        }
        c.done()?;

        let graphs = self.decode_graphs(rank, &strings)?;

        Ok(MaterializedState {
            version: self.version,
            model: self.model.to_string(),
            gpu: self.gpu.to_string(),
            rank: meta.rank,
            tp: meta.tp,
            kv_free_bytes: meta.kv_free_bytes,
            replay_prefix_allocs: meta.replay_prefix_allocs,
            replay_ops,
            labels,
            permanent_contents,
            permanent_ptr_tables,
            graphs,
            stats: meta.stats,
            checksum: meta.checksum,
        })
    }

    fn decode_graphs(&self, rank: u32, strings: &ShardStrings) -> MedusaResult<Vec<GraphSpec>> {
        let payload = self.section(SectionKind::Graphs, rank)?;
        // Pass 1: walk the fixed-width headers to locate the spill blob.
        let mut c = Cursor::new(payload, "Graphs");
        let graph_count = c.u64()? as usize;
        let mut spans = Vec::with_capacity(graph_count);
        for _ in 0..graph_count {
            let batch = c.u32()?;
            let node_count = c.u32()? as usize;
            let edge_count = c.u32()? as usize;
            let param_count = c.u32()? as usize;
            spans.push((batch, node_count, edge_count, param_count));
            c.take(node_count * 40 + param_count * 32 + edge_count * 8)?;
        }
        let spill = &payload[c.pos..];

        // Pass 2: decode records.
        let mut c = Cursor::new(payload, "Graphs");
        let _ = c.u64()?;
        let mut graphs = Vec::with_capacity(graph_count);
        for (batch, node_count, edge_count, param_count) in spans {
            let _ = c.u32()?; // batch (from pass 1)
            let _ = c.u32()?;
            let _ = c.u32()?;
            let _ = c.u32()?;
            let mut nodes = Vec::with_capacity(node_count);
            let mut node_param_counts = Vec::with_capacity(node_count);
            for _ in 0..node_count {
                let kernel = strings.get(c.u32()?, "graph node kernel")?.to_string();
                let library = strings.get(c.u32()?, "graph node library")?.to_string();
                let flags = c.u32()?;
                let stream = c.u32()?;
                let n_params = c.u32()? as usize;
                let _pad = c.u32()?;
                let flops = f64::from_bits(c.u64()?);
                let bytes = f64::from_bits(c.u64()?);
                node_param_counts.push(n_params);
                nodes.push(NodeSpec {
                    kernel,
                    library,
                    exported: flags & 1 != 0,
                    params: Vec::with_capacity(n_params),
                    work: medusa_gpu::Work { flops, bytes },
                    stream,
                });
            }
            let declared: usize = node_param_counts.iter().sum();
            if declared != param_count {
                return Err(corrupt(format!(
                    "graph batch {batch}: nodes declare {declared} params, header says {param_count}"
                )));
            }
            for (node, &n_params) in nodes.iter_mut().zip(&node_param_counts) {
                for _ in 0..n_params {
                    let tag = c.u32()?;
                    let aux = c.u32()? as usize;
                    let body = c.take(PARAM_INLINE_LEN)?;
                    node.params.push(match tag {
                        0 if aux <= PARAM_INLINE_LEN => ParamSpec::Const {
                            bytes: body[..aux].to_vec(),
                        },
                        0 => {
                            let mut b = [0u8; 8];
                            b.copy_from_slice(&body[..8]);
                            let off = u64::from_le_bytes(b) as usize;
                            let end = off.checked_add(aux).filter(|&e| e <= spill.len());
                            let end = end.ok_or_else(|| {
                                corrupt(format!(
                                    "const spill [{off}, +{aux}) exceeds blob of {} bytes",
                                    spill.len()
                                ))
                            })?;
                            ParamSpec::Const {
                                bytes: spill[off..end].to_vec(),
                            }
                        }
                        1 => {
                            let mut b = [0u8; 8];
                            b.copy_from_slice(&body[..8]);
                            let alloc_seq = u64::from_le_bytes(b);
                            b.copy_from_slice(&body[8..16]);
                            let offset = u64::from_le_bytes(b);
                            b.copy_from_slice(&body[16..24]);
                            let raw = u64::from_le_bytes(b);
                            ParamSpec::IndirectPtr {
                                alloc_seq,
                                offset,
                                raw,
                            }
                        }
                        t => return Err(corrupt(format!("param has unknown tag {t}"))),
                    });
                }
            }
            let mut edges = Vec::with_capacity(edge_count);
            for _ in 0..edge_count {
                edges.push((c.u32()?, c.u32()?));
            }
            graphs.push(GraphSpec {
                batch,
                nodes,
                edges,
            });
        }
        Ok(graphs)
    }
}

impl std::fmt::Debug for Maf2Reader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Maf2Reader")
            .field("version", &self.version)
            .field("model", &self.model)
            .field("gpu", &self.gpu)
            .field("tp", &self.tp)
            .field("shards", &self.shard_ranks())
            .field("file_len", &self.file_len())
            .field("bytes_read", &self.bytes_read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::tests_support::tiny_sealed;

    fn tiny() -> MaterializedState {
        tiny_sealed()
    }

    fn shard_for(rank: u32, tp: u32) -> MaterializedState {
        let mut s = tiny();
        s.rank = rank;
        s.tp = tp;
        s.kv_free_bytes ^= u64::from(rank) << 32;
        s.seal();
        s
    }

    #[test]
    fn roundtrip_single_shard() {
        let a = tiny();
        let bytes = encode_bundle(&[&a]).unwrap();
        assert!(is_maf2(&bytes));
        let r = Maf2Reader::open(&bytes).unwrap();
        assert_eq!(r.model(), a.model);
        assert_eq!(r.gpu(), a.gpu);
        assert_eq!(r.tp(), 1);
        assert_eq!(r.shard_count(), 1);
        r.verify_content_checksum().unwrap();
        let b = r.shard(0).unwrap();
        assert_eq!(&a, b);
        assert_eq!(b.content_checksum(), b.checksum);
    }

    #[test]
    fn reencode_is_byte_identical() {
        let a = tiny();
        let bytes = encode_bundle(&[&a]).unwrap();
        let r = Maf2Reader::open(&bytes).unwrap();
        let decoded = r.shard(0).unwrap().clone();
        let again = encode_bundle(&[&decoded]).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn multi_shard_lazy_reads_fraction() {
        let tp = 4;
        let shards: Vec<MaterializedState> = (0..tp).map(|r| shard_for(r, tp)).collect();
        let refs: Vec<&MaterializedState> = shards.iter().collect();
        let bytes = encode_bundle(&refs).unwrap();
        let r = Maf2Reader::open(&bytes).unwrap();
        assert_eq!(r.shard_ranks(), vec![0, 1, 2, 3]);
        let opened = r.bytes_read();
        let s2 = r.shard(2).unwrap();
        assert_eq!(s2.rank, 2);
        let after = r.bytes_read();
        assert!(
            after - opened < r.file_len() / u64::from(tp) + 1,
            "single-shard restore read {} of {} file bytes",
            after - opened,
            r.file_len()
        );
        // Cached: a second access reads nothing.
        let _ = r.shard(2).unwrap();
        assert_eq!(r.bytes_read(), after);
    }

    #[test]
    fn open_rejects_truncation_and_bad_magic() {
        let bytes = encode_bundle(&[&tiny()]).unwrap();
        for cut in [0, 7, 63, bytes.len() - 1] {
            let err = Maf2Reader::open(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), "artifact_corrupt", "cut at {cut}: {err}");
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            Maf2Reader::open(&bad).unwrap_err().kind(),
            "artifact_corrupt"
        );
    }

    #[test]
    fn open_detects_index_tampering() {
        let bytes = encode_bundle(&[&tiny()]).unwrap();
        // Flip a byte inside the index region (covered by index_digest).
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 1;
        assert_eq!(
            Maf2Reader::open(&bad).unwrap_err().kind(),
            "checksum_mismatch"
        );
    }

    #[test]
    fn payload_corruption_is_caught_lazily() {
        let a = tiny();
        let bytes = encode_bundle(&[&a]).unwrap();
        let mut bad = bytes.clone();
        // Corrupt one payload byte just past the target-key strings.
        let off = MAF2_HEADER_LEN + a.model.len() + a.gpu.len() + 3;
        bad[off] ^= 0x40;
        let r = Maf2Reader::open(&bad).unwrap();
        assert_eq!(r.shard(0).unwrap_err().kind(), "checksum_mismatch");
    }

    #[test]
    fn version_skew_opens_but_does_not_materialize() {
        let bytes = encode_bundle(&[&tiny()]).unwrap();
        let mut skewed = bytes.clone();
        skewed[8..12].copy_from_slice(&999u32.to_le_bytes());
        // Re-seal the index digest so the skew is the only inconsistency.
        let model_gpu_end = {
            let r = Maf2Reader::open(&bytes).unwrap();
            MAF2_HEADER_LEN + r.model().len() + r.gpu().len()
        };
        let index_off = u64::from_le_bytes(skewed[40..48].try_into().unwrap()) as usize;
        let digest = fnv1a(&[
            &skewed[..56],
            &skewed[MAF2_HEADER_LEN..model_gpu_end],
            &skewed[index_off..],
        ]);
        skewed[56..64].copy_from_slice(&digest.to_le_bytes());
        let r = Maf2Reader::open(&skewed).unwrap();
        assert_eq!(r.version(), 999);
        let err = r.shard(0).unwrap_err();
        assert_eq!(err.kind(), "artifact_corrupt");
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn bundle_consistency_is_enforced() {
        assert!(encode_bundle(&[]).is_err());
        let a = tiny();
        let mut b = tiny();
        b.gpu = "H100".into();
        b.seal();
        assert_eq!(
            encode_bundle(&[&a, &b]).unwrap_err().kind(),
            "artifact_corrupt"
        );
        assert_eq!(
            encode_bundle(&[&a, &a]).unwrap_err().kind(),
            "artifact_corrupt"
        );
    }

    #[test]
    fn oversized_const_spills_and_restores() {
        let mut a = tiny();
        a.graphs[0].nodes[0].params.push(ParamSpec::Const {
            bytes: (0..=255).collect(),
        });
        a.seal();
        let bytes = encode_bundle(&[&a]).unwrap();
        let r = Maf2Reader::open(&bytes).unwrap();
        assert_eq!(r.shard(0).unwrap(), &a);
    }
}
