//! Content-addressed chunk registry over MAF2 artifacts.
//!
//! Medusa captures one artifact per `<GPU type, model type>`, so a naive
//! registry re-transfers every byte of an artifact even when the fetching
//! node already holds most of them — and a model *family* (fine-tunes of one
//! base, or size variants sharing an architecture) stores near-identical
//! graph/kernel-table/replay sections once per member. This module closes
//! both gaps the way content-addressed stores do:
//!
//! * a MAF2 file is split into **content-defined chunks** (Gear-hash CDC
//!   with boundaries *forced* at section seams, so a section shared by two
//!   artifacts chunks identically regardless of where it lands in the file);
//! * each chunk is keyed by its **FNV-1a digest** and stored once in a
//!   [`ChunkStore`];
//! * each artifact is described by a [`ChunkManifest`] — the ordered chunk
//!   digests whose concatenation reproduces the original bytes exactly,
//!   plus a **section map** recording which chunks each `(kind, shard)`
//!   section covers, which is what makes O(manifest) shard-scoped
//!   validation and lazy per-shard fetches possible;
//! * a family's common chunks factor into a [`TemplateManifest`] that
//!   per-model manifests reference by digest, so registry storage for a
//!   4-model family collapses to ~1 template + 4 small deltas.
//!
//! Every encoding here is canonical and seed-free: packing the same bytes
//! always yields the same chunk boundaries, digests, and manifest encoding,
//! so manifests fingerprint exactly like artifacts and goldens stay stable.

use super::maf2::{self, Maf2Reader, SectionKind};
use crate::error::{MedusaError, MedusaResult};
use crate::faults::splitmix64;
use std::collections::{BTreeMap, BTreeSet};

/// Manifest layout version, bumped on breaking changes to the canonical
/// encoding.
pub const MANIFEST_VERSION: u32 = 1;

/// Minimum content-defined chunk length in bytes (regions shorter than this
/// become a single chunk).
pub const CHUNK_MIN: usize = 1 << 10;

/// Maximum chunk length in bytes; a boundary is forced at this span.
pub const CHUNK_MAX: usize = 1 << 15;

/// Average-size mask width: a chunk boundary fires when the low
/// `CHUNK_AVG_BITS` bits of the rolling Gear hash are zero (~4 KiB mean).
pub const CHUNK_AVG_BITS: u32 = 12;

/// Magic prefix of a canonically encoded [`ChunkManifest`].
pub const MANIFEST_MAGIC: [u8; 4] = *b"MCM1";

/// Magic prefix of a canonically encoded [`ChunkStore`].
pub const STORE_MAGIC: [u8; 4] = *b"MCS1";

fn corrupt(detail: impl Into<String>) -> MedusaError {
    MedusaError::ArtifactCorrupt {
        detail: detail.into(),
    }
}

/// A reference to one deduplicated chunk: its content digest and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// FNV-1a 64-bit digest of the chunk bytes.
    pub digest: u64,
    /// Chunk length in bytes.
    pub len: u32,
}

/// One entry of a manifest's section map: the contiguous run of manifest
/// chunks that carries one MAF2 section's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionSpan {
    /// Section kind.
    pub kind: SectionKind,
    /// Owning shard rank.
    pub shard: u32,
    /// Index of the first covering chunk in [`ChunkManifest::chunks`].
    pub first_chunk: u32,
    /// Number of covering chunks.
    pub chunk_count: u32,
}

/// The manifest of one packed artifact: ordered chunk references whose
/// concatenation reproduces the original MAF2 bytes, plus the section map.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkManifest {
    /// Manifest layout version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Model name from the artifact's target key.
    pub model: String,
    /// GPU name from the artifact's target key.
    pub gpu: String,
    /// Tensor-parallel degree of the bundle.
    pub tp: u32,
    /// Total artifact length in bytes (sum of chunk lengths).
    pub total_bytes: u64,
    /// Ordered chunk references.
    pub chunks: Vec<ChunkRef>,
    /// Section map: which chunks carry each `(kind, shard)` section.
    pub sections: Vec<SectionSpan>,
    /// Digest of the [`TemplateManifest`] this artifact's family factors
    /// through, once [`ChunkStore::factor_family`] ran.
    pub template: Option<u64>,
}

impl ChunkManifest {
    /// Canonical byte encoding: fixed little-endian layout sealed by a
    /// trailing FNV-1a digest. Same manifest, same bytes — always.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.tp.to_le_bytes());
        out.extend_from_slice(&(self.model.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.gpu.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&u32::from(self.template.is_some()).to_le_bytes());
        out.extend_from_slice(&self.template.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&self.total_bytes.to_le_bytes());
        out.extend_from_slice(self.model.as_bytes());
        out.extend_from_slice(self.gpu.as_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.digest.to_le_bytes());
            out.extend_from_slice(&c.len.to_le_bytes());
        }
        for s in &self.sections {
            out.extend_from_slice(&s.kind.code().to_le_bytes());
            out.extend_from_slice(&s.shard.to_le_bytes());
            out.extend_from_slice(&s.first_chunk.to_le_bytes());
            out.extend_from_slice(&s.chunk_count.to_le_bytes());
        }
        let seal = maf2::fnv1a(&[&out]);
        out.extend_from_slice(&seal.to_le_bytes());
        out
    }

    /// Decodes a canonical manifest encoding.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] for truncation, bad magic,
    /// or an unsupported version, and [`MedusaError::ChecksumMismatch`] when
    /// the trailing seal disagrees.
    pub fn decode(bytes: &[u8]) -> MedusaResult<ChunkManifest> {
        if bytes.len() < 48 + 8 {
            return Err(corrupt(format!(
                "manifest truncated: {} bytes",
                bytes.len()
            )));
        }
        if bytes[..4] != MANIFEST_MAGIC {
            return Err(corrupt("bad magic: not a chunk manifest"));
        }
        let body = &bytes[..bytes.len() - 8];
        let mut seal = [0u8; 8];
        seal.copy_from_slice(&bytes[bytes.len() - 8..]);
        let expected = u64::from_le_bytes(seal);
        let actual = maf2::fnv1a(&[body]);
        if actual != expected {
            return Err(MedusaError::ChecksumMismatch { expected, actual });
        }
        let le32 =
            |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        let le64 = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[o..o + 8]);
            u64::from_le_bytes(b)
        };
        let version = le32(4);
        if version != MANIFEST_VERSION {
            return Err(corrupt(format!(
                "manifest version {version} != supported {MANIFEST_VERSION}"
            )));
        }
        let tp = le32(8);
        let model_len = le32(12) as usize;
        let gpu_len = le32(16) as usize;
        let chunk_count = le32(20) as usize;
        let section_count = le32(24) as usize;
        let template_present = le32(28);
        let template_digest = le64(32);
        let total_bytes = le64(40);
        let need = 48 + model_len + gpu_len + chunk_count * 12 + section_count * 16;
        if body.len() != need {
            return Err(corrupt(format!(
                "manifest body is {} bytes, layout requires {need}",
                body.len()
            )));
        }
        let model = std::str::from_utf8(&bytes[48..48 + model_len])
            .map_err(|_| corrupt("manifest model name is not valid UTF-8"))?
            .to_string();
        let gpu = std::str::from_utf8(&bytes[48 + model_len..48 + model_len + gpu_len])
            .map_err(|_| corrupt("manifest gpu name is not valid UTF-8"))?
            .to_string();
        let mut off = 48 + model_len + gpu_len;
        let mut chunks = Vec::with_capacity(chunk_count);
        for _ in 0..chunk_count {
            chunks.push(ChunkRef {
                digest: le64(off),
                len: le32(off + 8),
            });
            off += 12;
        }
        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let kind = SectionKind::from_code(le32(off))
                .ok_or_else(|| corrupt(format!("section span {i} has unknown kind")))?;
            let span = SectionSpan {
                kind,
                shard: le32(off + 4),
                first_chunk: le32(off + 8),
                chunk_count: le32(off + 12),
            };
            let end = span.first_chunk as usize + span.chunk_count as usize;
            if end > chunks.len() {
                return Err(corrupt(format!(
                    "section span {i} covers chunks [{}, {end}) of {}",
                    span.first_chunk,
                    chunks.len()
                )));
            }
            sections.push(span);
            off += 16;
        }
        Ok(ChunkManifest {
            version,
            model,
            gpu,
            tp,
            total_bytes,
            chunks,
            sections,
            template: (template_present != 0).then_some(template_digest),
        })
    }

    /// Canonical fingerprint of the manifest: the seal of its encoding.
    pub fn digest(&self) -> u64 {
        let encoded = self.encode();
        let mut b = [0u8; 8];
        b.copy_from_slice(&encoded[encoded.len() - 8..]);
        u64::from_le_bytes(b)
    }

    /// Encoded manifest size in bytes — what a registry fetch transfers
    /// before any chunk moves.
    pub fn encoded_len(&self) -> u64 {
        (48 + self.model.len()
            + self.gpu.len()
            + self.chunks.len() * 12
            + self.sections.len() * 16
            + 8) as u64
    }

    /// Chunk indices the `(rank)` shard touches: every chunk of a section
    /// owned by `rank`, plus the framing chunks (header, target key, section
    /// index) not covered by any section span. This is the O(manifest)
    /// footprint a shard-scoped validation or lazy fetch must verify —
    /// mirroring the MAF2 lazy-restore invariant that a rank reads only its
    /// own sections.
    pub fn shard_chunk_indices(&self, rank: u32) -> Vec<u32> {
        let mut covered: BTreeSet<u32> = BTreeSet::new();
        let mut wanted: BTreeSet<u32> = BTreeSet::new();
        for s in &self.sections {
            for i in s.first_chunk..s.first_chunk + s.chunk_count {
                covered.insert(i);
                if s.shard == rank {
                    wanted.insert(i);
                }
            }
        }
        for i in 0..self.chunks.len() as u32 {
            if !covered.contains(&i) {
                wanted.insert(i);
            }
        }
        wanted.into_iter().collect()
    }

    /// Ranks that own at least one section in this manifest.
    pub fn shard_ranks(&self) -> Vec<u32> {
        let ranks: BTreeSet<u32> = self.sections.iter().map(|s| s.shard).collect();
        ranks.into_iter().collect()
    }
}

/// A factored family template: the chunks every member of a model family
/// shares, referenced by per-model manifests via [`ChunkManifest::template`].
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateManifest {
    /// Family name the template was factored for.
    pub family: String,
    /// The shared chunks, in first-member manifest order.
    pub chunks: Vec<ChunkRef>,
    /// Total shared bytes.
    pub bytes: u64,
    /// Canonical fingerprint of the template (FNV over family + chunk refs).
    pub digest: u64,
}

impl TemplateManifest {
    fn seal(family: &str, chunks: &[ChunkRef]) -> u64 {
        let mut body = Vec::with_capacity(family.len() + chunks.len() * 12);
        body.extend_from_slice(family.as_bytes());
        for c in chunks {
            body.extend_from_slice(&c.digest.to_le_bytes());
            body.extend_from_slice(&c.len.to_le_bytes());
        }
        maf2::fnv1a(&[&body])
    }
}

/// Deduplication statistics over a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupStats {
    /// Number of packed manifests.
    pub manifests: usize,
    /// Sum of manifest `total_bytes` — what a whole-artifact registry
    /// stores and transfers.
    pub logical_bytes: u64,
    /// Bytes actually stored after deduplication.
    pub stored_bytes: u64,
    /// Distinct chunks in the store.
    pub unique_chunks: usize,
}

impl DedupStats {
    /// Deduplication ratio `logical / stored` (1.0 when the store is empty).
    pub fn ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// A deduplicated chunk store plus the manifests packed into it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkStore {
    chunks: BTreeMap<u64, Vec<u8>>,
    manifests: Vec<ChunkManifest>,
    templates: Vec<TemplateManifest>,
}

/// Content-defined chunk boundaries over `data`: Gear-hash CDC
/// ([`CHUNK_MIN`], ~2^[`CHUNK_AVG_BITS`] mean, [`CHUNK_MAX`]) with extra
/// boundaries forced at `forced` offsets. Returns half-open spans covering
/// `data` exactly; deterministic for given content.
pub fn chunk_spans(data: &[u8], forced: &[usize]) -> Vec<(usize, usize)> {
    let mut gear = [0u64; 256];
    for (i, g) in gear.iter_mut().enumerate() {
        *g = splitmix64(0x6765_6172 ^ i as u64);
    }
    let mask: u64 = (1 << CHUNK_AVG_BITS) - 1;

    let mut cuts: BTreeSet<usize> = forced
        .iter()
        .copied()
        .filter(|&o| o > 0 && o < data.len())
        .collect();
    cuts.insert(0);
    cuts.insert(data.len());
    let regions: Vec<usize> = cuts.into_iter().collect();

    let mut spans = Vec::new();
    for w in regions.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mut start = lo;
        let mut h: u64 = 0;
        for (pos, &b) in data[lo..hi].iter().enumerate() {
            let at = lo + pos;
            h = (h << 1).wrapping_add(gear[b as usize]);
            let span = at + 1 - start;
            if span >= CHUNK_MAX || (span >= CHUNK_MIN && h & mask == 0) {
                spans.push((start, at + 1));
                start = at + 1;
                h = 0;
            }
        }
        if start < hi {
            spans.push((start, hi));
        }
    }
    spans
}

impl ChunkStore {
    /// An empty store.
    pub fn new() -> Self {
        ChunkStore::default()
    }

    /// Packs one MAF2 artifact into the store: opens and validates the
    /// header + index, splits the file into content-defined chunks with
    /// boundaries forced at section seams, deduplicates them against the
    /// store, and records (and returns) the manifest.
    ///
    /// # Errors
    ///
    /// Returns the [`Maf2Reader::open`] error for malformed input, and
    /// [`MedusaError::ArtifactCorrupt`] on a chunk digest collision.
    pub fn pack(&mut self, bytes: &[u8]) -> MedusaResult<ChunkManifest> {
        let reader = Maf2Reader::open(bytes)?;
        let extents = reader.section_extents();
        let mut forced: Vec<usize> = extents.iter().map(|e| e.offset as usize).collect();
        if let Some(last) = extents.iter().map(|e| (e.offset + e.len) as usize).max() {
            // The section index begins right after the last payload byte.
            forced.push(last);
        }
        let spans = chunk_spans(bytes, &forced);

        let mut chunks = Vec::with_capacity(spans.len());
        for &(lo, hi) in &spans {
            let slice = &bytes[lo..hi];
            let digest = maf2::fnv1a(&[slice]);
            match self.chunks.get(&digest) {
                Some(existing) if existing.as_slice() != slice => {
                    return Err(corrupt(format!(
                        "chunk digest collision on {digest:#018x}: {} vs {} bytes",
                        existing.len(),
                        slice.len()
                    )));
                }
                Some(_) => {}
                None => {
                    self.chunks.insert(digest, slice.to_vec());
                }
            }
            chunks.push(ChunkRef {
                digest,
                len: (hi - lo) as u32,
            });
        }

        // Section map: seams were forced at every extent boundary, so each
        // extent covers a whole number of consecutive chunks.
        let mut sections = Vec::with_capacity(extents.len());
        for e in &extents {
            let first = spans
                .iter()
                .position(|&(lo, _)| lo as u64 == e.offset)
                .or_else(|| (e.len == 0).then_some(0));
            let Some(first) = first else {
                return Err(corrupt(format!(
                    "no chunk seam at section offset {} ({:?} shard {})",
                    e.offset, e.kind, e.shard
                )));
            };
            let mut count = 0u32;
            let mut covered = 0u64;
            while covered < e.len {
                let (lo, hi) = spans[first + count as usize];
                covered += (hi - lo) as u64;
                count += 1;
            }
            if covered != e.len {
                return Err(corrupt(format!(
                    "chunk seams straddle section {:?} shard {}",
                    e.kind, e.shard
                )));
            }
            sections.push(SectionSpan {
                kind: e.kind,
                shard: e.shard,
                first_chunk: if e.len == 0 { 0 } else { first as u32 },
                chunk_count: count,
            });
        }

        let manifest = ChunkManifest {
            version: MANIFEST_VERSION,
            model: reader.model().to_string(),
            gpu: reader.gpu().to_string(),
            tp: reader.tp(),
            total_bytes: bytes.len() as u64,
            chunks,
            sections,
            template: None,
        };
        self.manifests.push(manifest.clone());
        Ok(manifest)
    }

    /// The raw bytes of one chunk, if present.
    pub fn get(&self, digest: u64) -> Option<&[u8]> {
        self.chunks.get(&digest).map(Vec::as_slice)
    }

    /// Verifies one chunk against its reference: present, right length,
    /// digest matches a recomputation.
    ///
    /// # Errors
    ///
    /// [`MedusaError::ArtifactCorrupt`] when the chunk is missing,
    /// [`MedusaError::WeightStreamTruncated`] when it is shorter or longer
    /// than the manifest says, [`MedusaError::ChecksumMismatch`] when the
    /// bytes do not hash back to the digest they are stored under.
    pub fn verify(&self, r: &ChunkRef) -> MedusaResult<&[u8]> {
        let bytes = self
            .chunks
            .get(&r.digest)
            .ok_or_else(|| corrupt(format!("chunk {:#018x} missing from store", r.digest)))?;
        if bytes.len() != r.len as usize {
            return Err(MedusaError::WeightStreamTruncated {
                loaded: bytes.len() as u64,
                expected: u64::from(r.len),
            });
        }
        let actual = maf2::fnv1a(&[bytes]);
        if actual != r.digest {
            return Err(MedusaError::ChecksumMismatch {
                expected: r.digest,
                actual,
            });
        }
        Ok(bytes)
    }

    /// Fetches (and verifies) every referenced chunk, in order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ChunkStore::verify`] failure.
    pub fn fetch(&self, refs: &[ChunkRef]) -> MedusaResult<Vec<&[u8]>> {
        refs.iter().map(|r| self.verify(r)).collect()
    }

    /// Reassembles the original artifact bytes from a manifest —
    /// `pack → fetch-all → reassemble` is byte-identical to the input.
    ///
    /// # Errors
    ///
    /// Propagates chunk verification failures; returns
    /// [`MedusaError::ArtifactCorrupt`] when the assembled length disagrees
    /// with the manifest.
    pub fn assemble(&self, manifest: &ChunkManifest) -> MedusaResult<Vec<u8>> {
        let mut out = Vec::with_capacity(manifest.total_bytes as usize);
        for r in &manifest.chunks {
            out.extend_from_slice(self.verify(r)?);
        }
        if out.len() as u64 != manifest.total_bytes {
            return Err(corrupt(format!(
                "assembled {} bytes, manifest declares {}",
                out.len(),
                manifest.total_bytes
            )));
        }
        Ok(out)
    }

    /// Every manifest packed so far, in pack order.
    pub fn manifests(&self) -> &[ChunkManifest] {
        &self.manifests
    }

    /// Every factored template.
    pub fn templates(&self) -> &[TemplateManifest] {
        &self.templates
    }

    /// Deduplication statistics over the current store contents.
    pub fn dedup_stats(&self) -> DedupStats {
        DedupStats {
            manifests: self.manifests.len(),
            logical_bytes: self.manifests.iter().map(|m| m.total_bytes).sum(),
            stored_bytes: self.chunks.values().map(|c| c.len() as u64).sum(),
            unique_chunks: self.chunks.len(),
        }
    }

    /// Factors the chunks shared by *every* packed manifest into a
    /// [`TemplateManifest`] and stamps each manifest's
    /// [`template`](ChunkManifest::template) reference — the "1 template +
    /// N small deltas" storage shape for a model family.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] when the store holds no
    /// manifests.
    pub fn factor_family(&mut self, family: &str) -> MedusaResult<TemplateManifest> {
        let first = self
            .manifests
            .first()
            .ok_or_else(|| corrupt("cannot factor a family from an empty store"))?;
        let mut shared: BTreeSet<u64> = first.chunks.iter().map(|c| c.digest).collect();
        for m in &self.manifests[1..] {
            let digests: BTreeSet<u64> = m.chunks.iter().map(|c| c.digest).collect();
            shared = shared.intersection(&digests).copied().collect();
        }
        let mut seen = BTreeSet::new();
        let chunks: Vec<ChunkRef> = first
            .chunks
            .iter()
            .filter(|c| shared.contains(&c.digest) && seen.insert(c.digest))
            .copied()
            .collect();
        let bytes = chunks.iter().map(|c| u64::from(c.len)).sum();
        let digest = TemplateManifest::seal(family, &chunks);
        let template = TemplateManifest {
            family: family.to_string(),
            chunks,
            bytes,
            digest,
        };
        for m in &mut self.manifests {
            m.template = Some(digest);
        }
        self.templates.push(template.clone());
        Ok(template)
    }

    /// Bytes of `manifest` *not* covered by `template` — the per-model delta
    /// a family member adds on top of the shared template.
    pub fn delta_bytes(manifest: &ChunkManifest, template: &TemplateManifest) -> u64 {
        let shared: BTreeSet<u64> = template.chunks.iter().map(|c| c.digest).collect();
        manifest
            .chunks
            .iter()
            .filter(|c| !shared.contains(&c.digest))
            .map(|c| u64::from(c.len))
            .sum()
    }

    /// Canonical single-file encoding of the whole store (manifests,
    /// templates, deduplicated chunks), sealed by a trailing digest — the
    /// `medusa-cli registry` on-disk format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&STORE_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.manifests.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.templates.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        for m in &self.manifests {
            let enc = m.encode();
            out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
            out.extend_from_slice(&enc);
        }
        for t in &self.templates {
            out.extend_from_slice(&(t.family.len() as u32).to_le_bytes());
            out.extend_from_slice(&(t.chunks.len() as u32).to_le_bytes());
            out.extend_from_slice(&t.bytes.to_le_bytes());
            out.extend_from_slice(&t.digest.to_le_bytes());
            out.extend_from_slice(t.family.as_bytes());
            for c in &t.chunks {
                out.extend_from_slice(&c.digest.to_le_bytes());
                out.extend_from_slice(&c.len.to_le_bytes());
            }
        }
        for (digest, bytes) in &self.chunks {
            out.extend_from_slice(&digest.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        let seal = maf2::fnv1a(&[&out]);
        out.extend_from_slice(&seal.to_le_bytes());
        out
    }

    /// Decodes a store file written by [`ChunkStore::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] for truncation or structural
    /// damage and [`MedusaError::ChecksumMismatch`] when the trailing seal
    /// disagrees.
    pub fn decode(bytes: &[u8]) -> MedusaResult<ChunkStore> {
        if bytes.len() < 24 + 8 {
            return Err(corrupt(format!("store truncated: {} bytes", bytes.len())));
        }
        if bytes[..4] != STORE_MAGIC {
            return Err(corrupt("bad magic: not a chunk store"));
        }
        let body = &bytes[..bytes.len() - 8];
        let mut seal = [0u8; 8];
        seal.copy_from_slice(&bytes[bytes.len() - 8..]);
        let expected = u64::from_le_bytes(seal);
        let actual = maf2::fnv1a(&[body]);
        if actual != expected {
            return Err(MedusaError::ChecksumMismatch { expected, actual });
        }
        let take = |off: &mut usize, n: usize| -> MedusaResult<&[u8]> {
            let end = off.checked_add(n).filter(|&e| e <= body.len());
            match end {
                Some(end) => {
                    let s = &body[*off..end];
                    *off = end;
                    Ok(s)
                }
                None => Err(corrupt(format!(
                    "store truncated: need {n} bytes at offset {off}"
                ))),
            }
        };
        let le32 = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        let le64 = |b: &[u8]| {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            u64::from_le_bytes(a)
        };
        let mut off = 4;
        let version = le32(take(&mut off, 4)?);
        if version != MANIFEST_VERSION {
            return Err(corrupt(format!(
                "store version {version} != supported {MANIFEST_VERSION}"
            )));
        }
        let manifest_count = le32(take(&mut off, 4)?) as usize;
        let template_count = le32(take(&mut off, 4)?) as usize;
        let chunk_count = le32(take(&mut off, 4)?) as usize;
        take(&mut off, 4)?; // pad
        let mut store = ChunkStore::new();
        for _ in 0..manifest_count {
            let len = le32(take(&mut off, 4)?) as usize;
            store
                .manifests
                .push(ChunkManifest::decode(take(&mut off, len)?)?);
        }
        for _ in 0..template_count {
            let family_len = le32(take(&mut off, 4)?) as usize;
            let tchunks = le32(take(&mut off, 4)?) as usize;
            let bytes_total = le64(take(&mut off, 8)?);
            let digest = le64(take(&mut off, 8)?);
            let family = std::str::from_utf8(take(&mut off, family_len)?)
                .map_err(|_| corrupt("template family name is not valid UTF-8"))?
                .to_string();
            let mut chunks = Vec::with_capacity(tchunks);
            for _ in 0..tchunks {
                let digest = le64(take(&mut off, 8)?);
                let len = le32(take(&mut off, 4)?);
                chunks.push(ChunkRef { digest, len });
            }
            store.templates.push(TemplateManifest {
                family,
                chunks,
                bytes: bytes_total,
                digest,
            });
        }
        for _ in 0..chunk_count {
            let digest = le64(take(&mut off, 8)?);
            let len = le32(take(&mut off, 4)?) as usize;
            store.chunks.insert(digest, take(&mut off, len)?.to_vec());
        }
        if off != body.len() {
            return Err(corrupt(format!(
                "store has {} trailing bytes",
                body.len() - off
            )));
        }
        Ok(store)
    }

    /// Test/fault-injection access: replaces one chunk's bytes in place.
    /// Returns `false` when the digest is absent.
    pub(crate) fn tamper_chunk(&mut self, digest: u64, bytes: Vec<u8>) -> bool {
        match self.chunks.get_mut(&digest) {
            Some(slot) => {
                *slot = bytes;
                true
            }
            None => false,
        }
    }

    /// Digests currently stored, in ascending order.
    pub fn chunk_digests(&self) -> Vec<u64> {
        self.chunks.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::tests_support::tiny_sealed;
    use crate::artifact::MaterializedState;
    use crate::pipeline::materialize_offline;
    use medusa_gpu::{CostModel, GpuSpec};
    use medusa_model::ModelSpec;

    fn base() -> MaterializedState {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        materialize_offline(&spec, GpuSpec::a100_40gb(), CostModel::default(), 41)
            .unwrap()
            .0
    }

    /// A family member: same architecture capture, its own name, KV budget,
    /// and permanent-buffer contents.
    fn variant(base: &MaterializedState, m: u64) -> MaterializedState {
        let mut a = base.clone();
        if m > 0 {
            a.model = format!("{}-ft{m}", base.model);
            a.kv_free_bytes ^= m << 20;
            for (i, (_, d)) in a.permanent_contents.iter_mut().enumerate() {
                d[0] ^= (m as u8).wrapping_add(i as u8);
            }
            a.seal();
        }
        a
    }

    #[test]
    fn chunk_spans_cover_exactly_and_respect_forced_seams() {
        let data: Vec<u8> = (0..200_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 8) as u8)
            .collect();
        let forced = vec![0, 777, 100_000, data.len()];
        let spans = chunk_spans(&data, &forced);
        let mut pos = 0;
        for &(lo, hi) in &spans {
            assert_eq!(lo, pos, "spans must tile the input");
            assert!(hi > lo && hi - lo <= CHUNK_MAX);
            pos = hi;
        }
        assert_eq!(pos, data.len());
        assert!(spans.iter().any(|&(lo, _)| lo == 777), "forced seam kept");
        assert!(spans.iter().any(|&(lo, _)| lo == 100_000));
        assert_eq!(spans, chunk_spans(&data, &forced), "deterministic");
    }

    #[test]
    fn pack_assemble_round_trips_byte_identically() {
        let bytes = tiny_sealed().to_maf2().unwrap();
        let mut store = ChunkStore::new();
        let manifest = store.pack(&bytes).unwrap();
        assert_eq!(manifest.total_bytes, bytes.len() as u64);
        assert_eq!(store.assemble(&manifest).unwrap(), bytes);
        let decoded = MaterializedState::from_maf2(&store.assemble(&manifest).unwrap()).unwrap();
        decoded.verify_checksum().unwrap();
    }

    #[test]
    fn manifest_encoding_round_trips_and_fingerprints() {
        let bytes = tiny_sealed().to_maf2().unwrap();
        let mut store = ChunkStore::new();
        let m = store.pack(&bytes).unwrap();
        let enc = m.encode();
        assert_eq!(enc.len() as u64, m.encoded_len());
        let back = ChunkManifest::decode(&enc).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.digest(), m.digest());
        // Tampering trips the seal with a typed error.
        let mut bad = enc.clone();
        bad[20] ^= 1;
        assert_eq!(
            ChunkManifest::decode(&bad).unwrap_err().kind(),
            "checksum_mismatch"
        );
        assert_eq!(
            ChunkManifest::decode(&enc[..30]).unwrap_err().kind(),
            "artifact_corrupt"
        );
    }

    #[test]
    fn family_members_dedup_and_factor_into_a_template() {
        let b = base();
        let mut store = ChunkStore::new();
        for m in 0..4 {
            store.pack(&variant(&b, m).to_maf2().unwrap()).unwrap();
        }
        let stats = store.dedup_stats();
        assert_eq!(stats.manifests, 4);
        assert!(
            stats.ratio() >= 2.0,
            "4 family members must dedup >= 2x, got {:.2} ({} logical / {} stored)",
            stats.ratio(),
            stats.logical_bytes,
            stats.stored_bytes
        );
        let template = store.factor_family("fam").unwrap();
        assert!(template.bytes > 0);
        for m in store.manifests() {
            assert_eq!(m.template, Some(template.digest));
            let delta = ChunkStore::delta_bytes(m, &template);
            assert!(
                delta + template.bytes >= m.total_bytes,
                "template + delta must cover the artifact"
            );
            assert!(
                delta * 2 < m.total_bytes,
                "family delta must be small: {delta} of {}",
                m.total_bytes
            );
        }
    }

    #[test]
    fn store_encoding_round_trips() {
        let mut a = tiny_sealed();
        let mut store = ChunkStore::new();
        store.pack(&a.to_maf2().unwrap()).unwrap();
        a.model = "Qwen1.5-4B-ft1".into();
        a.seal();
        store.pack(&a.to_maf2().unwrap()).unwrap();
        store.factor_family("fam").unwrap();
        let enc = store.encode();
        let back = ChunkStore::decode(&enc).unwrap();
        assert_eq!(back, store);
        assert_eq!(back.encode(), enc, "canonical: re-encode reproduces bytes");
        let mut bad = enc.clone();
        let n = bad.len();
        bad[n / 2] ^= 0x10;
        assert_eq!(
            ChunkStore::decode(&bad).unwrap_err().kind(),
            "checksum_mismatch"
        );
        assert_eq!(
            ChunkStore::decode(&enc[..10]).unwrap_err().kind(),
            "artifact_corrupt"
        );
    }

    #[test]
    fn shard_chunks_are_a_strict_subset_for_multi_shard_bundles() {
        let tp = 4u32;
        let shards: Vec<MaterializedState> = (0..tp)
            .map(|rank| {
                let mut s = tiny_sealed();
                s.rank = rank;
                s.tp = tp;
                s.seal();
                s
            })
            .collect();
        let refs: Vec<&MaterializedState> = shards.iter().collect();
        let bytes = maf2::encode_bundle(&refs).unwrap();
        let mut store = ChunkStore::new();
        let m = store.pack(&bytes).unwrap();
        assert_eq!(m.shard_ranks(), vec![0, 1, 2, 3]);
        let all: u64 = m.chunks.iter().map(|c| u64::from(c.len)).sum();
        for rank in 0..tp {
            let idx = m.shard_chunk_indices(rank);
            let touched: u64 = idx
                .iter()
                .map(|&i| u64::from(m.chunks[i as usize].len))
                .sum();
            assert!(touched < all, "rank {rank} must not touch the whole file");
        }
    }
}
