//! The materialization artifact: everything Medusa's offline phase saves and
//! its online phase restores (paper Figure 5).
//!
//! One artifact exists per `<GPU type, model type>` pair. It contains:
//!
//! * the materialized **KV cache initialization** — the profiled available
//!   free GPU memory (§6);
//! * the **(de)allocation replay sequence** — every `cudaMalloc`/`cudaFree`
//!   the offline loading phase performed after model structure
//!   initialization, so the online phase can recreate the buffer layout (§4.2);
//! * one **materialized graph** per captured batch size: nodes with
//!   constants stored by value and data pointers stored as *indirect index
//!   pointers* into the replay sequence (§4.1), kernels stored by mangled
//!   name + library (§5), and the dependency edges;
//! * the contents of **permanent buffers** only (copy-free buffer contents
//!   restoration, §4.3);
//! * **semantic labels** binding engine-level buffers (KV cache, workspace,
//!   magic pairs) to allocation indices so the online engine can address
//!   them.

use crate::error::{MedusaError, MedusaResult};
use medusa_gpu::{Digest, Work};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

pub mod maf2;
pub mod registry;
pub mod template;

/// Format version, bumped on breaking layout changes (v2 added the sealed
/// content checksum).
pub const ARTIFACT_VERSION: u32 = 2;

/// One materialized kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamSpec {
    /// A constant: restored by copying the plain value (§4).
    Const {
        /// Raw little-endian bytes (4 or 8).
        bytes: Vec<u8>,
    },
    /// A data pointer: restored through the indirect index pointer table
    /// (§4.1/§4.2).
    IndirectPtr {
        /// Index in the (prefix + replayed) allocation sequence.
        alloc_seq: u64,
        /// Byte offset of the pointer within the matched buffer.
        offset: u64,
        /// The raw offline value (for diagnostics and for correction of
        /// false positives back to a constant, §4).
        raw: u64,
    },
}

/// One materialized CUDA graph node (paper Fig. 4, with addresses replaced
/// by restorable references).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The kernel's mangled name (§5).
    pub kernel: String,
    /// The dynamic library the kernel belongs to (§5).
    pub library: String,
    /// Whether the offline phase found the kernel in the library's dynamic
    /// symbol table (determines the dlsym vs. triggering-kernel path).
    pub exported: bool,
    /// Materialized parameters, in signature order.
    pub params: Vec<ParamSpec>,
    /// Recorded work size (grid-dim equivalent).
    pub work: Work,
    /// Capture-time stream.
    pub stream: u32,
}

/// One materialized graph (a single batch size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// The decode batch size the graph was captured for.
    pub batch: u32,
    /// Materialized nodes in capture order.
    pub nodes: Vec<NodeSpec>,
    /// Dependency edges `(src, dst)`.
    pub edges: Vec<(u32, u32)>,
}

/// One step of the (de)allocation replay sequence (§4.2). Allocation ops
/// implicitly number themselves in sequence order continuing after the
/// natural prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayOp {
    /// `cudaMalloc(size)`.
    Malloc {
        /// Rounded allocation size.
        size: u64,
    },
    /// `cudaFree` of the buffer created by allocation `alloc_seq`.
    Free {
        /// Allocation-sequence index of the freed buffer.
        alloc_seq: u64,
    },
}

/// One entry of a materialized pointer table (indirect pointers, §8): the
/// buffer's stored pointers re-expressed as indirect indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtrTableEntry {
    /// Allocation-sequence index of the target buffer.
    pub alloc_seq: u64,
    /// Byte offset of the stored pointer within the target buffer.
    pub offset: u64,
}

/// Statistics recorded by the analysis stage (reported in EXPERIMENTS.md and
/// used by tests to pin paper-claimed proportions).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Total materialized nodes across all graphs.
    pub nodes: u64,
    /// Parameters classified as data pointers.
    pub pointer_params: u64,
    /// Parameters classified as constants.
    pub const_params: u64,
    /// Pointer params whose address matched more than one historical
    /// allocation — the Fig. 6 false-positive hazard that trace-based
    /// matching disambiguates.
    pub multi_match_pointers: u64,
    /// Nodes whose kernel is restorable via `dlsym` (paper: 69.2 % for
    /// Llama2 13B @ batch 1).
    pub dlsym_restorable_nodes: u64,
    /// Nodes needing the triggering-kernel path.
    pub hidden_kernel_nodes: u64,
    /// Distinct buffers classified as model parameters (contents skipped).
    pub param_buffers: u64,
    /// Distinct buffers classified as temporary (contents skipped).
    pub temp_buffers: u64,
    /// Distinct buffers classified as permanent (contents materialized;
    /// paper: ~9 % of kernels need two 4-byte permanent buffers).
    pub permanent_buffers: u64,
}

/// The complete materialized state for one `<GPU type, model type>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaterializedState {
    /// Format version.
    pub version: u32,
    /// Model name the artifact was built for.
    pub model: String,
    /// GPU name the artifact was built for.
    pub gpu: String,
    /// Tensor-parallel rank this artifact belongs to (0 for single GPU).
    pub rank: u32,
    /// Tensor-parallel degree (1 for single GPU). Multi-GPU support is the
    /// paper's §8 extension: one artifact per rank.
    pub tp: u32,
    /// Materialized KV cache initialization: available free GPU memory (§6).
    pub kv_free_bytes: u64,
    /// Number of allocations the online process performs naturally (model
    /// structure initialization) before replay begins.
    pub replay_prefix_allocs: u64,
    /// The replayed (de)allocation sequence (§4.2).
    pub replay_ops: Vec<ReplayOp>,
    /// Semantic buffer label → allocation-sequence index.
    pub labels: HashMap<String, u64>,
    /// Permanent buffer contents: allocation index → digest (§4.3).
    pub permanent_contents: Vec<(u64, Digest)>,
    /// Permanent pointer tables (indirect pointers, §8): allocation index →
    /// stored pointers as indirect indices, rebuilt with restored addresses
    /// online.
    pub permanent_ptr_tables: Vec<(u64, Vec<PtrTableEntry>)>,
    /// Materialized graphs, one per captured batch size, ascending batch.
    pub graphs: Vec<GraphSpec>,
    /// Analysis statistics.
    pub stats: AnalysisStats,
    /// Content checksum sealed at materialization time: an FNV-1a fold over
    /// every field except `version` and the checksum itself, with `labels`
    /// folded in sorted key order so the value is independent of hash-map
    /// iteration order. Registry transfers and caches verify it before any
    /// restore is attempted.
    pub checksum: u64,
}

/// FNV-1a 64-bit fold used for the artifact content checksum. Deliberately
/// *not* a hash of the JSON encoding: the encoder's map ordering is not part
/// of the artifact contract, the field fold below is.
struct ContentFold(u64);

impl ContentFold {
    fn new() -> Self {
        ContentFold(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn bytes(&mut self, bs: &[u8]) {
        self.u64(bs.len() as u64);
        for &b in bs {
            self.byte(b);
        }
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

impl MaterializedState {
    /// Total node count across graphs.
    pub fn total_nodes(&self) -> u64 {
        self.graphs.iter().map(|g| g.nodes.len() as u64).sum()
    }

    /// Recomputes the content checksum over the artifact's fields.
    ///
    /// The fold order is fixed (struct field order, `labels` sorted by key)
    /// so same-content artifacts always agree regardless of how they were
    /// produced or transported.
    pub fn content_checksum(&self) -> u64 {
        let mut f = ContentFold::new();
        f.str(&self.model);
        f.str(&self.gpu);
        f.u64(u64::from(self.rank));
        f.u64(u64::from(self.tp));
        f.u64(self.kv_free_bytes);
        f.u64(self.replay_prefix_allocs);
        f.u64(self.replay_ops.len() as u64);
        for op in &self.replay_ops {
            match op {
                ReplayOp::Malloc { size } => {
                    f.byte(0);
                    f.u64(*size);
                }
                ReplayOp::Free { alloc_seq } => {
                    f.byte(1);
                    f.u64(*alloc_seq);
                }
            }
        }
        let mut labels: Vec<_> = self.labels.iter().collect();
        labels.sort_by(|a, b| a.0.cmp(b.0));
        f.u64(labels.len() as u64);
        for (k, v) in labels {
            f.str(k);
            f.u64(*v);
        }
        f.u64(self.permanent_contents.len() as u64);
        for (seq, digest) in &self.permanent_contents {
            f.u64(*seq);
            f.bytes(digest);
        }
        f.u64(self.permanent_ptr_tables.len() as u64);
        for (seq, entries) in &self.permanent_ptr_tables {
            f.u64(*seq);
            f.u64(entries.len() as u64);
            for e in entries {
                f.u64(e.alloc_seq);
                f.u64(e.offset);
            }
        }
        f.u64(self.graphs.len() as u64);
        for g in &self.graphs {
            f.u64(u64::from(g.batch));
            f.u64(g.nodes.len() as u64);
            for n in &g.nodes {
                f.str(&n.kernel);
                f.str(&n.library);
                f.byte(u8::from(n.exported));
                f.u64(n.params.len() as u64);
                for p in &n.params {
                    match p {
                        ParamSpec::Const { bytes } => {
                            f.byte(0);
                            f.bytes(bytes);
                        }
                        ParamSpec::IndirectPtr {
                            alloc_seq,
                            offset,
                            raw,
                        } => {
                            f.byte(1);
                            f.u64(*alloc_seq);
                            f.u64(*offset);
                            f.u64(*raw);
                        }
                    }
                }
                f.u64(n.work.flops.to_bits());
                f.u64(n.work.bytes.to_bits());
                f.u64(u64::from(n.stream));
            }
            f.u64(g.edges.len() as u64);
            for (a, b) in &g.edges {
                f.u64(u64::from(*a));
                f.u64(u64::from(*b));
            }
        }
        for v in [
            self.stats.nodes,
            self.stats.pointer_params,
            self.stats.const_params,
            self.stats.multi_match_pointers,
            self.stats.dlsym_restorable_nodes,
            self.stats.hidden_kernel_nodes,
            self.stats.param_buffers,
            self.stats.temp_buffers,
            self.stats.permanent_buffers,
        ] {
            f.u64(v);
        }
        f.0
    }

    /// Seals the artifact: stamps the content checksum over the current
    /// field values. Called once by the offline analysis stage.
    pub fn seal(&mut self) {
        self.checksum = self.content_checksum();
    }

    /// Verifies the sealed checksum against a recomputation.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ChecksumMismatch`] when the payload no longer
    /// matches what was sealed.
    pub fn verify_checksum(&self) -> MedusaResult<()> {
        let actual = self.content_checksum();
        if self.checksum != actual {
            return Err(MedusaError::ChecksumMismatch {
                expected: self.checksum,
                actual,
            });
        }
        Ok(())
    }

    /// Checks the artifact matches the restoring `<GPU, model>` pair and
    /// shard.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactMismatch`] when it does not.
    pub fn check_target(&self, model: &str, gpu: &str, rank: u32, tp: u32) -> MedusaResult<()> {
        if self.model != model || self.gpu != gpu || self.rank != rank || self.tp != tp {
            return Err(MedusaError::ArtifactMismatch {
                artifact: format!("{}/{} r{}/{}", self.model, self.gpu, self.rank, self.tp),
                target: format!("{model}/{gpu} r{rank}/{tp}"),
            });
        }
        Ok(())
    }

    /// Looks up a semantic label.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::MissingLabel`] when absent.
    pub fn label(&self, name: &str) -> MedusaResult<u64> {
        self.labels
            .get(name)
            .copied()
            .ok_or_else(|| MedusaError::MissingLabel {
                label: name.to_string(),
            })
    }

    /// Serializes the artifact (the format a deployment would persist per
    /// `<GPU type, model type>`).
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] on encoder failure.
    pub fn to_json(&self) -> MedusaResult<String> {
        serde_json::to_string(self).map_err(|e| MedusaError::ArtifactCorrupt {
            detail: e.to_string(),
        })
    }

    /// Deserializes an artifact, validating the version.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] on decode failure or version
    /// mismatch.
    pub fn from_json(s: &str) -> MedusaResult<Self> {
        let v: MaterializedState =
            serde_json::from_str(s).map_err(|e| MedusaError::ArtifactCorrupt {
                detail: e.to_string(),
            })?;
        if v.version != ARTIFACT_VERSION {
            return Err(MedusaError::ArtifactCorrupt {
                detail: format!("version {} != {}", v.version, ARTIFACT_VERSION),
            });
        }
        Ok(v)
    }

    /// Encodes this artifact as a single-shard MAF2 binary file (the
    /// production persistence format; JSON remains the debug encoding).
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] on encoder failure.
    pub fn to_maf2(&self) -> MedusaResult<Vec<u8>> {
        maf2::encode_bundle(&[self])
    }

    /// Decodes a single-shard MAF2 file eagerly, validating the version.
    /// For bundles or lazy per-shard access use [`maf2::Maf2Reader`].
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::ArtifactCorrupt`] on decode failure, version
    /// mismatch, or when the file holds more than one shard, and
    /// [`MedusaError::ChecksumMismatch`] on digest disagreement.
    pub fn from_maf2(bytes: &[u8]) -> MedusaResult<Self> {
        let reader = maf2::Maf2Reader::open(bytes)?;
        if reader.version() != ARTIFACT_VERSION {
            return Err(MedusaError::ArtifactCorrupt {
                detail: format!("version {} != {}", reader.version(), ARTIFACT_VERSION),
            });
        }
        let ranks = reader.shard_ranks();
        match ranks.as_slice() {
            [rank] => Ok(reader.shard(*rank)?.clone()),
            _ => Err(MedusaError::ArtifactCorrupt {
                detail: format!(
                    "expected a single-shard artifact, file holds {} shards",
                    ranks.len()
                ),
            }),
        }
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// A tiny sealed artifact exercising every field, shared by the JSON
    /// and MAF2 unit tests.
    pub(crate) fn tiny_sealed() -> MaterializedState {
        let mut a = MaterializedState {
            version: ARTIFACT_VERSION,
            model: "Qwen1.5-4B".into(),
            gpu: "A100-40GB-SXM4".into(),
            rank: 0,
            tp: 1,
            kv_free_bytes: 123,
            replay_prefix_allocs: 4,
            replay_ops: vec![
                ReplayOp::Malloc { size: 256 },
                ReplayOp::Free { alloc_seq: 4 },
            ],
            labels: [("kv.key".to_string(), 4u64)].into_iter().collect(),
            permanent_contents: vec![(5, [7; 16])],
            permanent_ptr_tables: vec![(
                6,
                vec![PtrTableEntry {
                    alloc_seq: 4,
                    offset: 0,
                }],
            )],
            graphs: vec![GraphSpec {
                batch: 1,
                nodes: vec![NodeSpec {
                    kernel: "k".into(),
                    library: "l".into(),
                    exported: true,
                    params: vec![
                        ParamSpec::Const {
                            bytes: vec![1, 0, 0, 0],
                        },
                        ParamSpec::IndirectPtr {
                            alloc_seq: 4,
                            offset: 16,
                            raw: 99,
                        },
                    ],
                    work: Work::NONE,
                    stream: 0,
                }],
                edges: vec![],
            }],
            stats: AnalysisStats::default(),
            checksum: 0,
        };
        a.seal();
        a
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::tiny_sealed as tiny;
    use super::*;

    #[test]
    fn json_roundtrip() {
        let a = tiny();
        let s = a.to_json().unwrap();
        let b = MaterializedState::from_json(&s).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.total_nodes(), 1);
    }

    #[test]
    fn version_is_checked() {
        let mut a = tiny();
        a.version = 999;
        let s = serde_json::to_string(&a).unwrap();
        assert!(matches!(
            MaterializedState::from_json(&s),
            Err(MedusaError::ArtifactCorrupt { .. })
        ));
    }

    #[test]
    fn corrupt_json_is_reported() {
        assert!(matches!(
            MaterializedState::from_json("{not json"),
            Err(MedusaError::ArtifactCorrupt { .. })
        ));
    }

    #[test]
    fn target_check() {
        let a = tiny();
        assert!(a.check_target("Qwen1.5-4B", "A100-40GB-SXM4", 0, 1).is_ok());
        assert!(matches!(
            a.check_target("Llama2-7B", "A100-40GB-SXM4", 0, 1),
            Err(MedusaError::ArtifactMismatch { .. })
        ));
        assert!(matches!(
            a.check_target("Qwen1.5-4B", "H100", 0, 1),
            Err(MedusaError::ArtifactMismatch { .. })
        ));
        assert!(matches!(
            a.check_target("Qwen1.5-4B", "A100-40GB-SXM4", 1, 2),
            Err(MedusaError::ArtifactMismatch { .. })
        ));
    }

    #[test]
    fn checksum_seals_and_detects_tampering() {
        let a = tiny();
        assert!(a.verify_checksum().is_ok());
        assert_eq!(a.checksum, a.content_checksum(), "seal stamps the fold");
        let mut b = tiny();
        assert_eq!(a.checksum, b.checksum, "same content, same checksum");
        b.kv_free_bytes ^= 1;
        assert!(matches!(
            b.verify_checksum(),
            Err(MedusaError::ChecksumMismatch { .. })
        ));
        // Label-map iteration order must not affect the fold.
        let mut c = tiny();
        c.labels.insert("zz.extra".into(), 9);
        c.labels.insert("aa.extra".into(), 8);
        let mut d = tiny();
        d.labels.insert("aa.extra".into(), 8);
        d.labels.insert("zz.extra".into(), 9);
        assert_eq!(c.content_checksum(), d.content_checksum());
    }

    #[test]
    fn label_lookup() {
        let a = tiny();
        assert_eq!(a.label("kv.key").unwrap(), 4);
        assert!(matches!(
            a.label("nope"),
            Err(MedusaError::MissingLabel { .. })
        ));
    }
}
