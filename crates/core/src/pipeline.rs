//! Cold-start pipelines: the compared strategies of the paper's evaluation.
//!
//! * **`Vanilla`** — vLLM: every loading stage synchronous (§2.1).
//! * **`VanillaAsync`** — vLLM + naive asynchronous weight loading,
//!   overlapped with tokenizer loading and KV-cache initialization; models
//!   the §7.3 host-to-device interference and the residual bubble.
//! * **`Medusa`** — state materialization: KV init restored from the
//!   artifact, the capturing stage replaced by first-layer
//!   triggering-kernels + graph restoration, warm-up overlapped with weight
//!   loading (§7.3 / Fig. 8c).
//! * **`NoCudaGraph`** — the capturing stage removed entirely; serving pays
//!   eager per-kernel launch overhead forever (§7.5's `w/o CUDA GRAPH`).

use crate::artifact::{GraphSpec, MaterializedState};
use crate::engine::{host_pair, Lane, StageGraph};
use crate::error::{MedusaError, MedusaResult};
use crate::faults::{AbortPoint, FaultPlan};
use crate::offline::analysis::{analyze, AnalysisOutput};
use crate::online::kernels::KernelResolver;
use crate::online::replay::{replay_allocations, restore_graph, ReplayedLayout};
use crate::online::validate::validate_and_correct;
use medusa_gpu::{CostModel, GpuSpec, ProcessRuntime, SimDuration, SimStorage, SimTime};
use medusa_graph::GraphExec;
use medusa_kvcache::{kv_cache_init_stage_traced, KvCache, KvCacheConfig};
use medusa_model::{
    apply_weights, build_catalog, capture_decode_graph, capture_first_layer_graph,
    decode_step_with_graph, load_duration, run_eager_forward_step, run_handwritten_triggers,
    warmup_decode, warmup_first_layer, ForwardConfig, KvView, ModelInstance, ModelSpec, Tokenizer,
};
use medusa_telemetry::{Registry, SpanRecord};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cold-start strategy under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Vanilla vLLM, fully synchronous loading.
    Vanilla,
    /// vLLM plus naive asynchronous model weights loading.
    VanillaAsync,
    /// Medusa with full state materialization.
    Medusa,
    /// vLLM with the capturing stage removed (`w/o CUDA GRAPH`).
    NoCudaGraph,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Vanilla,
        Strategy::VanillaAsync,
        Strategy::Medusa,
        Strategy::NoCudaGraph,
    ];
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::Vanilla => "vLLM",
            Strategy::VanillaAsync => "vLLM+Async",
            Strategy::Medusa => "Medusa",
            Strategy::NoCudaGraph => "w/o CUDA graph",
        };
        f.write_str(s)
    }
}

/// How Medusa's online phase forces the driver to load the modules that
/// contain hidden kernels (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TriggeringMode {
    /// §5.2: warm up and capture the model's first layer per batch size;
    /// its kernels inherently cover every module the full graphs need.
    FirstLayer,
    /// §5.1: a manually maintained list of triggering launches (one GEMM
    /// per hidden module). Works, but the list must be updated whenever the
    /// batch-size bucketing changes — the maintenance burden that motivated
    /// first-layer triggering.
    Handwritten,
}

/// How much parallelism the cold-start engine exploits across loading
/// stages and, at the instance level, across tensor-parallel ranks.
///
/// The knob only affects strategies that define asynchronous lanes
/// ([`Strategy::VanillaAsync`] and [`Strategy::Medusa`]); `Vanilla` and
/// `NoCudaGraph` are synchronous by definition and ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Parallelism {
    /// Every stage strictly sequential on a single lane — the lower bound
    /// that linear-sum accounting assumes. Asynchronous weight lanes
    /// degenerate to synchronous loads (and therefore see no §7.3
    /// interference), and tensor-parallel ranks restore one after another
    /// on exclusive storage.
    Serial,
    /// Overlapped restoration stages (Fig. 8b/c): weights stream on the
    /// storage lane, the tokenizer parses on a host thread, restoration
    /// occupies the device. Tensor-parallel ranks restore concurrently and
    /// contend for shared storage bandwidth.
    #[default]
    Overlapped,
    /// [`Parallelism::Overlapped`] plus per-rank weight-stream pipelining
    /// (§8): ranks stagger their reads so each streams at full sequential
    /// bandwidth instead of interleaving on the shared link.
    PipelinedTp,
}

impl Parallelism {
    /// All modes, serial first.
    pub const ALL: [Parallelism; 3] = [
        Parallelism::Serial,
        Parallelism::Overlapped,
        Parallelism::PipelinedTp,
    ];
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Parallelism::Serial => "serial",
            Parallelism::Overlapped => "overlapped",
            Parallelism::PipelinedTp => "overlapped+tp-pipelined",
        };
        f.write_str(s)
    }
}

/// A loading-phase (or cold-start) stage, paper §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Container/runtime initialization (eliminated by warm pools).
    RuntimeInit,
    /// ❶ model structure initialization.
    StructureInit,
    /// ❷ model weights loading.
    WeightsLoad,
    /// ❸ tokenizer loading.
    TokenizerLoad,
    /// ❹ KV cache initialization (or its materialized restore).
    KvCacheInit,
    /// ❺ CUDA graph capturing (or its materialized restore).
    Capture,
    /// Generating the first token after loading.
    FirstToken,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::RuntimeInit => "runtime init",
            Stage::StructureInit => "structure init",
            Stage::WeightsLoad => "weights load",
            Stage::TokenizerLoad => "tokenizer load",
            Stage::KvCacheInit => "kv cache init",
            Stage::Capture => "capturing",
            Stage::FirstToken => "first token",
        };
        f.write_str(s)
    }
}

/// One stage's span on the cold-start timeline. Spans of asynchronous
/// stages may overlap (that is the point of Fig. 8b/c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Which stage.
    pub stage: Stage,
    /// Start instant (process time).
    pub start: SimTime,
    /// End instant (process time).
    pub end: SimTime,
}

impl StageSpan {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Timing report of one cold start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColdStartReport {
    /// The strategy used.
    pub strategy: Strategy,
    /// Model served.
    pub model: String,
    /// Per-stage spans (may overlap).
    pub spans: Vec<StageSpan>,
    /// Loading-phase duration (structure init through capture/restore,
    /// including asynchronous tails). This is the stage-graph makespan,
    /// not the linear sum of stage durations.
    pub loading: SimDuration,
    /// Full cold-start duration (runtime init + loading + first token).
    pub total: SimDuration,
    /// The binding critical path through the loading-phase stage graph:
    /// the chain of stages whose ends gated each other's starts up to the
    /// loading end. Replaces linear-sum reasoning about "the slow stage".
    pub critical_path: Vec<Stage>,
}

impl ColdStartReport {
    /// Duration of a stage (zero if absent).
    pub fn stage(&self, stage: Stage) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(StageSpan::duration)
            .sum()
    }

    /// Total loading-phase *work*: the sum of every loading stage's
    /// duration regardless of overlap (what a strictly serial engine would
    /// take, and what the linear-sum accounting used to report). Excludes
    /// runtime init and the first token.
    pub fn work(&self) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| !matches!(s.stage, Stage::RuntimeInit | Stage::FirstToken))
            .map(StageSpan::duration)
            .sum()
    }
}

/// Cold-start options.
#[derive(Debug, Clone, Copy)]
pub struct ColdStartOptions {
    /// Process seed (address non-determinism).
    pub seed: u64,
    /// Start from a warm container (runtime init eliminated) — the trace
    /// experiments' setting (§7.5).
    pub warm_container: bool,
    /// Run the validation forwarding on every restored graph (Medusa only;
    /// adds eager forwardings to the timeline, so off for timing runs).
    pub validate: bool,
    /// Prompt length used for the first-token stage.
    pub first_token_prompt: u32,
    /// How hidden kernel modules are triggered during restoration.
    pub triggering: TriggeringMode,
    /// Tensor-parallel rank of this process (0 for single GPU; §8).
    pub rank: u32,
    /// Tensor-parallel degree (1 for single GPU; §8).
    pub tp: u32,
    /// How much parallelism the cold-start engine exploits across stages
    /// and ranks.
    pub parallelism: Parallelism,
    /// Runtime fault injection (truncated weight streams, mid-stage
    /// aborts). `None` injects nothing; artifact-level faults are applied
    /// by the [`crate::builder::ColdStart`] builder before validation.
    pub fault: Option<FaultPlan>,
}

impl Default for ColdStartOptions {
    fn default() -> Self {
        ColdStartOptions {
            seed: 1,
            warm_container: false,
            validate: false,
            first_token_prompt: 161,
            triggering: TriggeringMode::FirstLayer,
            rank: 0,
            tp: 1,
            parallelism: Parallelism::Overlapped,
            fault: None,
        }
    }
}

/// A serving-ready instance produced by a cold start.
#[derive(Debug)]
pub struct ReadyEngine {
    /// The instance's process runtime.
    pub rt: ProcessRuntime,
    /// The loaded model.
    pub inst: ModelInstance,
    /// The KV cache.
    pub kv: KvCache,
    /// The tokenizer.
    pub tokenizer: Tokenizer,
    /// Instantiated decode graphs, ascending batch size (empty for
    /// `NoCudaGraph`).
    pub graphs: Vec<(u32, GraphExec)>,
    step: u64,
}

impl ReadyEngine {
    /// The KV cache view.
    pub fn kv_view(&self) -> KvView {
        self.kv.view()
    }

    /// Index of the decode graph serving `batch` (smallest captured batch
    /// size ≥ `batch`, vLLM's rounding rule).
    pub fn graph_index_for(&self, batch: u32) -> Option<usize> {
        self.graphs.iter().position(|(b, _)| *b >= batch)
    }

    /// Runs one decode step (graph replay when available, eager otherwise)
    /// and returns its duration.
    ///
    /// # Errors
    ///
    /// Returns driver/graph errors.
    pub fn decode_step(&mut self, batch: u32) -> MedusaResult<SimDuration> {
        self.step += 1;
        let kv = self.kv.view();
        match self.graph_index_for(batch) {
            Some(idx) => {
                let out = decode_step_with_graph(
                    &mut self.rt,
                    &self.inst,
                    &self.graphs[idx].1,
                    self.graphs[idx].0,
                    self.step,
                )?;
                Ok(out.duration)
            }
            None => {
                let cfg = ForwardConfig::decode(batch, medusa_model::capture_ctx_len());
                let out = run_eager_forward_step(
                    &mut self.rt,
                    &mut self.inst,
                    &cfg,
                    Some(&kv),
                    self.step,
                )?;
                Ok(out.duration)
            }
        }
    }

    /// Runs one eager prefill of `batch`×`tokens` and returns its duration.
    ///
    /// # Errors
    ///
    /// Returns driver errors.
    pub fn prefill(&mut self, batch: u32, tokens: u32) -> MedusaResult<SimDuration> {
        self.step += 1;
        let kv = self.kv.view();
        let cfg = ForwardConfig::prefill(batch, tokens);
        let out = run_eager_forward_step(&mut self.rt, &mut self.inst, &cfg, Some(&kv), self.step)?;
        Ok(out.duration)
    }
}

/// Report of one offline materialization run (paper Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineReport {
    /// Capturing-stage duration.
    pub capture: SimDuration,
    /// Analysis-stage duration.
    pub analysis: SimDuration,
}

impl OfflineReport {
    /// Total offline-phase duration.
    pub fn total(&self) -> SimDuration {
        self.capture + self.analysis
    }
}

/// Runs the complete offline phase for `<spec, gpu>`: capturing stage +
/// analysis stage (executed once per `<GPU type, model type>`, §3).
///
/// # Errors
///
/// Propagates capture and analysis failures.
pub fn materialize_offline(
    spec: &ModelSpec,
    gpu: GpuSpec,
    cost: CostModel,
    seed: u64,
) -> MedusaResult<(MaterializedState, OfflineReport)> {
    materialize_offline_shard_impl(spec, 0, 1, gpu, cost, seed)
}

/// Runs the offline phase for one tensor-parallel shard (paper §8): rank
/// `rank` of a `tp`-way instance gets its own artifact.
///
/// # Errors
///
/// Propagates capture and analysis failures.
#[deprecated(
    since = "0.6.0",
    note = "use `ColdStart::new(spec).tp(n).materialize()` (the builder shards per rank)"
)]
pub fn materialize_offline_sharded(
    spec: &ModelSpec,
    rank: u32,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    seed: u64,
) -> MedusaResult<(MaterializedState, OfflineReport)> {
    materialize_offline_shard_impl(spec, rank, tp, gpu, cost, seed)
}

/// Shared implementation behind [`materialize_offline`], the deprecated
/// [`materialize_offline_sharded`], and the builder's materialize path.
pub(crate) fn materialize_offline_shard_impl(
    spec: &ModelSpec,
    rank: u32,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    seed: u64,
) -> MedusaResult<(MaterializedState, OfflineReport)> {
    let capture = crate::offline::capture::run_offline_capture_sharded(
        spec,
        rank,
        tp,
        gpu,
        cost.clone(),
        seed,
    )?;
    let capture_duration = capture.duration;
    let AnalysisOutput {
        state,
        duration: analysis,
    } = analyze(&capture, &cost)?;
    Ok((
        state,
        OfflineReport {
            capture: capture_duration,
            analysis,
        },
    ))
}

/// Runs a cold start with `strategy`, returning the serving-ready engine
/// and the stage-timing report.
///
/// # Errors
///
/// * [`MedusaError::ArtifactRequired`] for [`Strategy::Medusa`] without an
///   artifact.
/// * Propagated driver / KV / restoration errors.
#[deprecated(
    since = "0.6.0",
    note = "use the `ColdStart` builder: `ColdStart::new(spec).strategy(s).options(opts).run()`"
)]
pub fn cold_start(
    strategy: Strategy,
    spec: &ModelSpec,
    gpu: GpuSpec,
    cost: CostModel,
    artifact: Option<&MaterializedState>,
    opts: ColdStartOptions,
) -> MedusaResult<(ReadyEngine, ColdStartReport)> {
    cold_start_impl(strategy, spec, gpu, cost, artifact, opts, None)
}

/// [`cold_start`] with an optional telemetry registry: stage spans (with
/// critical-path parent linkage), per-stage duration histograms, and
/// loading/total histograms are recorded into `tele`, all in simulated
/// time — same-seed runs produce identical registries. Under tensor
/// parallelism (`opts.tp > 1`) span names are `rank{r}/`-prefixed and
/// lanes `/rank{r}`-suffixed so per-rank timelines stay separate rows in
/// the Chrome trace.
///
/// # Errors
///
/// Same as [`cold_start`].
#[deprecated(
    since = "0.6.0",
    note = "use the `ColdStart` builder: `ColdStart::new(spec).telemetry(t).run()`"
)]
pub fn cold_start_traced(
    strategy: Strategy,
    spec: &ModelSpec,
    gpu: GpuSpec,
    cost: CostModel,
    artifact: Option<&MaterializedState>,
    opts: ColdStartOptions,
    tele: Option<&Registry>,
) -> MedusaResult<(ReadyEngine, ColdStartReport)> {
    cold_start_impl(strategy, spec, gpu, cost, artifact, opts, tele)
}

/// Shared single-rank cold-start implementation behind the deprecated free
/// functions and the [`crate::builder::ColdStart`] builder. Timing, seeding,
/// and telemetry are exactly those of the original `cold_start_traced`.
pub(crate) fn cold_start_impl(
    strategy: Strategy,
    spec: &ModelSpec,
    gpu: GpuSpec,
    cost: CostModel,
    artifact: Option<&MaterializedState>,
    opts: ColdStartOptions,
    tele: Option<&Registry>,
) -> MedusaResult<(ReadyEngine, ColdStartReport)> {
    let mut rt = ProcessRuntime::new(build_catalog(spec), gpu, cost, opts.seed);
    let mut spans = Vec::new();

    if !opts.warm_container {
        let start = rt.now();
        rt.advance(SimDuration::from_nanos(rt.cost().runtime_init_ns));
        spans.push(StageSpan {
            stage: Stage::RuntimeInit,
            start,
            end: rt.now(),
        });
    }
    let loading_start = rt.now();

    // ❶ structure initialization (all strategies).
    let s0 = rt.now();
    let mut inst = ModelInstance::initialize_sharded(&mut rt, spec, opts.rank, opts.tp)?;
    let structure_end = rt.now();
    spans.push(StageSpan {
        stage: Stage::StructureInit,
        start: s0,
        end: structure_end,
    });
    fault_gate(&opts, AbortPoint::AfterStructureInit, Stage::StructureInit)?;

    let weights_bytes = inst.weight_bytes();
    let (engine, loading_end, critical_path) = match strategy {
        Strategy::Vanilla | Strategy::NoCudaGraph => {
            // Synchronous by definition: the parallelism knob is a no-op.
            // ❷ weights, synchronous.
            weights_fault_gate(&opts, weights_bytes)?;
            let w0 = rt.now();
            medusa_model::load_weights(&mut rt, &inst, 1.0)?;
            spans.push(StageSpan {
                stage: Stage::WeightsLoad,
                start: w0,
                end: rt.now(),
            });
            // ❸ tokenizer.
            let t0 = rt.now();
            let (tokenizer, tok_dur) = Tokenizer::load(spec.vocab(), rt.cost());
            rt.advance(tok_dur);
            spans.push(StageSpan {
                stage: Stage::TokenizerLoad,
                start: t0,
                end: rt.now(),
            });
            // ❹ KV cache initialization (profiling forwarding).
            let k0 = rt.now();
            let (kv, _free) = kv_cache_init_stage_traced(&mut rt, &mut inst, tele)?;
            inst.ensure_workspace(&mut rt)?;
            spans.push(StageSpan {
                stage: Stage::KvCacheInit,
                start: k0,
                end: rt.now(),
            });
            // ❺ capturing (skipped by NoCudaGraph).
            let graphs = if strategy == Strategy::Vanilla {
                let c0 = rt.now();
                let graphs = capture_all_graphs(&mut rt, &mut inst, &kv.view())?;
                spans.push(StageSpan {
                    stage: Stage::Capture,
                    start: c0,
                    end: rt.now(),
                });
                graphs
            } else {
                Vec::new()
            };
            let end = rt.now();
            let mut critical = vec![
                Stage::StructureInit,
                Stage::WeightsLoad,
                Stage::TokenizerLoad,
                Stage::KvCacheInit,
            ];
            if strategy == Strategy::Vanilla {
                critical.push(Stage::Capture);
            }
            (
                ReadyEngine {
                    rt,
                    inst,
                    kv,
                    tokenizer,
                    graphs,
                    step: 0,
                },
                end,
                critical,
            )
        }
        Strategy::VanillaAsync if opts.parallelism == Parallelism::Serial => {
            // Serial mode: the async weights lane degenerates to a
            // synchronous load — no overlap, hence no §7.3 interference.
            weights_fault_gate(&opts, weights_bytes)?;
            let w0 = rt.now();
            medusa_model::load_weights(&mut rt, &inst, 1.0)?;
            spans.push(StageSpan {
                stage: Stage::WeightsLoad,
                start: w0,
                end: rt.now(),
            });
            let t0 = rt.now();
            let (tokenizer, tok_dur) = Tokenizer::load(spec.vocab(), rt.cost());
            rt.advance(tok_dur);
            spans.push(StageSpan {
                stage: Stage::TokenizerLoad,
                start: t0,
                end: rt.now(),
            });
            let k0 = rt.now();
            let (kv, _free) = kv_cache_init_stage_traced(&mut rt, &mut inst, tele)?;
            inst.ensure_workspace(&mut rt)?;
            spans.push(StageSpan {
                stage: Stage::KvCacheInit,
                start: k0,
                end: rt.now(),
            });
            let c0 = rt.now();
            let graphs = capture_all_graphs(&mut rt, &mut inst, &kv.view())?;
            spans.push(StageSpan {
                stage: Stage::Capture,
                start: c0,
                end: rt.now(),
            });
            let end = rt.now();
            let critical = vec![
                Stage::StructureInit,
                Stage::WeightsLoad,
                Stage::TokenizerLoad,
                Stage::KvCacheInit,
                Stage::Capture,
            ];
            (
                ReadyEngine {
                    rt,
                    inst,
                    kv,
                    tokenizer,
                    graphs,
                    step: 0,
                },
                end,
                critical,
            )
        }
        Strategy::VanillaAsync => {
            // ❷ weights on the storage lane starting now.
            weights_fault_gate(&opts, weights_bytes)?;
            let w0 = rt.now();
            apply_weights(&mut rt, &inst)?;
            // ❸ tokenizer on a real host thread while the device runs the
            // profiling forwarding — the lanes share no state.
            let vocab = spec.vocab();
            let tok_cost = rt.cost().clone();
            let ((tokenizer, tok_dur), kv_out) = host_pair(
                move || Tokenizer::load(vocab, &tok_cost),
                || -> MedusaResult<_> {
                    // ❹ KV cache initialization (profiling forwarding).
                    let k0 = rt.now();
                    let (kv, _free) = kv_cache_init_stage_traced(&mut rt, &mut inst, tele)?;
                    inst.ensure_workspace(&mut rt)?;
                    Ok((k0, rt.now(), kv))
                },
            );
            let (k0, kv_end, kv) = kv_out?;
            // Interference (§7.3): the profiling forwarding blocks async
            // H2D copies, stretching the weight load.
            let plain = load_duration(weights_bytes, rt.cost(), 1.0);
            let overlaps_profiling = w0 + plain > k0;
            let base_slowdown = if overlaps_profiling {
                rt.cost().h2d_interference_factor
            } else {
                1.0
            };
            let (w_dur, w_delay) =
                weights_lane_timing(weights_bytes, rt.cost(), base_slowdown, &opts);
            // ❺ capture waits for the profiled workspace AND the weights.
            rt.advance_to(w0 + w_delay + w_dur);
            let c0 = rt.now();
            let graphs = capture_all_graphs(&mut rt, &mut inst, &kv.view())?;
            let cap_dur = rt.now() - c0;

            let mut g = StageGraph::new();
            let s_n = g.add(Stage::StructureInit, Lane::Device, structure_end - s0, &[]);
            let w_n = g.add(Stage::WeightsLoad, Lane::Storage, w_dur, &[s_n]);
            g.set_floor(w_n, w0 + w_delay);
            let t_n = g.add(Stage::TokenizerLoad, Lane::Host, tok_dur, &[s_n]);
            let k_n = g.add(Stage::KvCacheInit, Lane::Device, kv_end - k0, &[s_n]);
            let c_n = g.add(Stage::Capture, Lane::Device, cap_dur, &[k_n, w_n]);
            let sched = g.schedule(s0);
            for n in [w_n, t_n, k_n, c_n] {
                spans.push(sched.span(n));
            }
            let end = sched.makespan_end();
            rt.advance_to(end);
            (
                ReadyEngine {
                    rt,
                    inst,
                    kv,
                    tokenizer,
                    graphs,
                    step: 0,
                },
                end,
                sched.critical_path(),
            )
        }
        Strategy::Medusa if opts.parallelism == Parallelism::Serial => {
            let artifact = artifact.ok_or(MedusaError::ArtifactRequired)?;
            artifact.check_target(spec.name(), rt.spec().name(), opts.rank, opts.tp)?;
            // Materialized KV init + allocation replay; the §7.2 reorder
            // (KV before weights) is kept even when strictly serial.
            let k0 = rt.now();
            let (layout, _replay_dur) = replay_allocations(&mut rt, artifact)?;
            let kv_view = layout.kv_view(16)?;
            inst.bind_workspace(layout.workspace()?);
            inst.bind_magic(layout.magic_pairs(spec.layers())?);
            let config = KvCacheConfig::for_shard(spec, opts.tp);
            let kv = KvCache::from_restored(
                config,
                kv_view.kcache,
                kv_view.vcache,
                kv_view.block_table,
                config.blocks_for(artifact.kv_free_bytes),
            );
            if let Some(t) = tele {
                t.inc("kv_restore_total", 1);
                t.gauge_max("kv_free_bytes", artifact.kv_free_bytes);
            }
            spans.push(StageSpan {
                stage: Stage::KvCacheInit,
                start: k0,
                end: rt.now(),
            });
            // ❷ weights fully synchronous on the exclusive storage lane.
            weights_fault_gate(&opts, weights_bytes)?;
            let w0 = rt.now();
            medusa_model::load_weights(&mut rt, &inst, 1.0)?;
            spans.push(StageSpan {
                stage: Stage::WeightsLoad,
                start: w0,
                end: rt.now(),
            });
            // ❸ tokenizer.
            let t0 = rt.now();
            let (tokenizer, tok_dur) = Tokenizer::load(spec.vocab(), rt.cost());
            rt.advance(tok_dur);
            spans.push(StageSpan {
                stage: Stage::TokenizerLoad,
                start: t0,
                end: rt.now(),
            });
            // ❺ restoration.
            let c0 = rt.now();
            let graphs =
                restore_all_graphs(&mut rt, &mut inst, artifact, &layout, &kv_view, &opts, tele)?;
            spans.push(StageSpan {
                stage: Stage::Capture,
                start: c0,
                end: rt.now(),
            });
            let end = rt.now();
            let critical = vec![
                Stage::StructureInit,
                Stage::KvCacheInit,
                Stage::WeightsLoad,
                Stage::TokenizerLoad,
                Stage::Capture,
            ];
            (
                ReadyEngine {
                    rt,
                    inst,
                    kv,
                    tokenizer,
                    graphs,
                    step: 0,
                },
                end,
                critical,
            )
        }
        Strategy::Medusa => {
            let artifact = artifact.ok_or(MedusaError::ArtifactRequired)?;
            artifact.check_target(spec.name(), rt.spec().name(), opts.rank, opts.tp)?;
            // Materialized KV init + allocation replay (reordered before
            // weight loading, §7.2).
            let k0 = rt.now();
            let (layout, _replay_dur) = replay_allocations(&mut rt, artifact)?;
            let kv_view = layout.kv_view(16)?;
            inst.bind_workspace(layout.workspace()?);
            inst.bind_magic(layout.magic_pairs(spec.layers())?);
            let config = KvCacheConfig::for_shard(spec, opts.tp);
            let kv = KvCache::from_restored(
                config,
                kv_view.kcache,
                kv_view.vcache,
                kv_view.block_table,
                config.blocks_for(artifact.kv_free_bytes),
            );
            if let Some(t) = tele {
                t.inc("kv_restore_total", 1);
                t.gauge_max("kv_free_bytes", artifact.kv_free_bytes);
            }
            let kv_end = rt.now();

            // ❷ weights on the storage lane (no profiling → no
            // interference, Fig. 8c).
            weights_fault_gate(&opts, weights_bytes)?;
            let w0 = rt.now();
            apply_weights(&mut rt, &inst)?;
            let (w_dur, w_delay) = weights_lane_timing(weights_bytes, rt.cost(), 1.0, &opts);

            // ❸ tokenizer on a real host thread, ❺ restoration (first-layer
            // triggering-kernels + per-graph restore, §5.2/§7.3) on the
            // device lane — they share no state, so they overlap in
            // wall-clock too. Simulated spans come from the stage graph,
            // never from thread timing.
            let c0 = rt.now();
            let vocab = spec.vocab();
            let tok_cost = rt.cost().clone();
            let ((tokenizer, tok_dur), graphs) = host_pair(
                move || Tokenizer::load(vocab, &tok_cost),
                || restore_all_graphs(&mut rt, &mut inst, artifact, &layout, &kv_view, &opts, tele),
            );
            let graphs = graphs?;
            let cap_dur = rt.now() - c0;

            let mut g = StageGraph::new();
            let s_n = g.add(Stage::StructureInit, Lane::Device, structure_end - s0, &[]);
            let k_n = g.add(Stage::KvCacheInit, Lane::Device, kv_end - k0, &[s_n]);
            let w_n = g.add(Stage::WeightsLoad, Lane::Storage, w_dur, &[k_n]);
            g.set_floor(w_n, w0 + w_delay);
            let t_n = g.add(Stage::TokenizerLoad, Lane::Host, tok_dur, &[s_n]);
            let c_n = g.add(Stage::Capture, Lane::Device, cap_dur, &[k_n]);
            let sched = g.schedule(s0);
            for n in [k_n, w_n, t_n, c_n] {
                spans.push(sched.span(n));
            }
            // Loading ends when every lane drains.
            let end = sched.makespan_end();
            rt.advance_to(end);
            (
                ReadyEngine {
                    rt,
                    inst,
                    kv,
                    tokenizer,
                    graphs,
                    step: 0,
                },
                end,
                sched.critical_path(),
            )
        }
    };

    let mut engine = engine;
    let loading = loading_end - loading_start;
    fault_gate(&opts, AbortPoint::BeforeFirstToken, Stage::FirstToken)?;

    // First token: one eager prefill.
    let f0 = engine.rt.now();
    engine.prefill(1, opts.first_token_prompt)?;
    spans.push(StageSpan {
        stage: Stage::FirstToken,
        start: f0,
        end: engine.rt.now(),
    });
    let total = engine.rt.now() - SimTime::ZERO;

    let report = ColdStartReport {
        strategy,
        model: spec.name().to_string(),
        spans,
        loading,
        total,
        critical_path,
    };
    if let Some(t) = tele {
        record_cold_start_telemetry(t, &report, &opts);
    }
    Ok((engine, report))
}

/// The engine lane a stage occupies on the telemetry timeline (the same
/// lane assignment the overlapped [`StageGraph`]s use).
fn stage_lane(stage: Stage) -> Lane {
    match stage {
        Stage::RuntimeInit | Stage::TokenizerLoad => Lane::Host,
        Stage::WeightsLoad => Lane::Storage,
        Stage::StructureInit | Stage::KvCacheInit | Stage::Capture | Stage::FirstToken => {
            Lane::Device
        }
    }
}

/// Snake-case stage identifier used in metric names
/// (`coldstart_stage_<ident>_us`).
fn stage_ident(stage: Stage) -> &'static str {
    match stage {
        Stage::RuntimeInit => "runtime_init",
        Stage::StructureInit => "structure_init",
        Stage::WeightsLoad => "weights_load",
        Stage::TokenizerLoad => "tokenizer_load",
        Stage::KvCacheInit => "kv_cache_init",
        Stage::Capture => "capture",
        Stage::FirstToken => "first_token",
    }
}

/// Records one finished cold start into the registry: a [`SpanRecord`]
/// per stage with critical-path parent linkage, per-stage duration
/// histograms, and the loading/total histograms. All values come from the
/// report's simulated spans, so recording is deterministic per seed.
///
/// Parent linkage mirrors [`crate::engine::Schedule::binder`]: each stage
/// on the report's critical path points at its predecessor on that path;
/// off-path loading stages point at structure init (the fan-out root);
/// structure init points at runtime init when present; the first token
/// points at the last loading stage of the critical path.
fn record_cold_start_telemetry(tele: &Registry, report: &ColdStartReport, opts: &ColdStartOptions) {
    let name_of = |stage: Stage| {
        if opts.tp > 1 {
            format!("rank{}/{}", opts.rank, stage)
        } else {
            stage.to_string()
        }
    };
    let lane_of = |stage: Stage| {
        if opts.tp > 1 {
            format!("{}/rank{}", stage_lane(stage).name(), opts.rank)
        } else {
            stage_lane(stage).name().to_string()
        }
    };
    let cp = &report.critical_path;
    let has_runtime = report.spans.iter().any(|s| s.stage == Stage::RuntimeInit);
    let parent_of = |stage: Stage| -> Option<Stage> {
        match stage {
            Stage::RuntimeInit => None,
            Stage::StructureInit => has_runtime.then_some(Stage::RuntimeInit),
            Stage::FirstToken => cp.last().copied(),
            _ => match cp.iter().position(|&c| c == stage) {
                Some(0) | None => Some(Stage::StructureInit),
                Some(i) => Some(cp[i - 1]),
            },
        }
    };
    for span in &report.spans {
        tele.record_span(SpanRecord {
            name: name_of(span.stage),
            lane: lane_of(span.stage),
            start_us: span.start.as_nanos() / 1_000,
            end_us: span.end.as_nanos() / 1_000,
            parent: parent_of(span.stage).map(name_of),
        });
        tele.observe_us(
            &format!("coldstart_stage_{}_us", stage_ident(span.stage)),
            span.duration().as_nanos() / 1_000,
        );
    }
    tele.inc("coldstart_total", 1);
    tele.observe_us("coldstart_loading_us", report.loading.as_nanos() / 1_000);
    tele.observe_us("coldstart_total_us", report.total.as_nanos() / 1_000);
}

/// Fires an armed mid-stage abort at the given checkpoint (injected fault,
/// modeling node preemption / OOM-kill).
fn fault_gate(opts: &ColdStartOptions, point: AbortPoint, stage: Stage) -> MedusaResult<()> {
    if opts.fault.and_then(|f| f.abort_point()) == Some(point) {
        return Err(MedusaError::StageAborted {
            stage: stage_ident(stage).to_string(),
        });
    }
    Ok(())
}

/// Tears the weight stream before the loading stage when the fault plan
/// arms [`crate::faults::FaultKind::TruncatedWeights`].
fn weights_fault_gate(opts: &ColdStartOptions, expected: u64) -> MedusaResult<()> {
    if let Some(frac) = opts.fault.and_then(|f| f.weight_truncation()) {
        return Err(MedusaError::WeightStreamTruncated {
            loaded: (expected as f64 * frac) as u64,
            expected,
        });
    }
    Ok(())
}

/// Interleaved-read efficiency when multiple tensor-parallel ranks stream
/// their weight shards from shared storage concurrently
/// ([`Parallelism::Overlapped`]): each rank gets a 1/tp bandwidth share,
/// and the interleaving itself costs a fraction of peak sequential
/// throughput. [`Parallelism::PipelinedTp`] avoids both penalties by
/// staggering the rank streams (§8).
const TP_CONTENTION_EFFICIENCY: f64 = 0.85;

/// Duration of the weights lane and the extra start delay it suffers,
/// given the parallelism mode and tensor-parallel geometry in `opts`.
fn weights_lane_timing(
    bytes: u64,
    cost: &CostModel,
    base_slowdown: f64,
    opts: &ColdStartOptions,
) -> (SimDuration, SimDuration) {
    match opts.parallelism {
        Parallelism::Overlapped if opts.tp > 1 => {
            let slowdown = base_slowdown * TP_CONTENTION_EFFICIENCY / opts.tp as f64;
            (load_duration(bytes, cost, slowdown), SimDuration::ZERO)
        }
        Parallelism::PipelinedTp if opts.tp > 1 => {
            // Ranks stagger by one full sequential read each: rank r waits
            // for r earlier streams, then reads at full bandwidth.
            let stream = SimStorage::from_cost_model(cost).read_duration(bytes);
            (
                load_duration(bytes, cost, base_slowdown),
                stream * opts.rank as u64,
            )
        }
        // Serial (ranks restore one after another on exclusive storage)
        // and single-GPU cases: full bandwidth, no delay.
        _ => (load_duration(bytes, cost, base_slowdown), SimDuration::ZERO),
    }
}

/// Medusa's restoration loop (❺): first-layer triggering-kernels +
/// per-graph restore, shared by the serial and overlapped paths. When a
/// telemetry registry is given, per-graph restore counters
/// (`graph_restore_graphs_total`, `graph_restore_nodes_total`) accumulate
/// into it.
fn restore_all_graphs(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    artifact: &MaterializedState,
    layout: &ReplayedLayout,
    kv_view: &KvView,
    opts: &ColdStartOptions,
    tele: Option<&Registry>,
) -> MedusaResult<Vec<(u32, GraphExec)>> {
    let mut resolver = KernelResolver::new();
    resolver.resolve_exported(rt, artifact)?;
    let mut gspecs: Vec<GraphSpec> = artifact.graphs.clone();
    let mut graphs = Vec::with_capacity(gspecs.len());
    if opts.triggering == TriggeringMode::Handwritten {
        // §5.1: one curated launch per hidden module, once.
        run_handwritten_triggers(rt, inst)?;
        resolver.resolve_by_enumeration(rt, artifact)?;
        resolver.ensure_complete(artifact)?;
    }
    for gspec in &mut gspecs {
        let batch = gspec.batch;
        if opts.triggering == TriggeringMode::FirstLayer {
            warmup_first_layer(rt, inst, batch, kv_view)?;
            let _first_layer = capture_first_layer_graph(rt, inst, batch, kv_view)?;
            if resolver.ensure_complete(artifact).is_err() {
                resolver.resolve_by_enumeration(rt, artifact)?;
            }
        }
        let nodes = gspec.nodes.len() as u64;
        rt.advance(SimDuration::from_nanos(
            rt.cost().artifact_load_per_node_ns * nodes,
        ));
        let exec = if opts.validate {
            validate_and_correct(rt, inst, gspec, layout, resolver.addrs(), kv_view)?.exec
        } else {
            let graph = restore_graph(gspec, layout, resolver.addrs())?;
            GraphExec::instantiate(rt, graph)?
        };
        rt.advance(SimDuration::from_nanos(rt.cost().node_patch_ns * nodes));
        if let Some(t) = tele {
            t.inc("graph_restore_graphs_total", 1);
            t.inc("graph_restore_nodes_total", nodes);
        }
        graphs.push((batch, exec));
    }
    resolver.ensure_complete(artifact)?;
    Ok(graphs)
}

/// The vanilla capturing stage: warm-up + capture + instantiate for all 35
/// batch sizes.
#[doc(hidden)]
fn capture_all_graphs(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    kv: &KvView,
) -> MedusaResult<Vec<(u32, GraphExec)>> {
    let mut graphs = Vec::new();
    for (gi, batch) in ModelSpec::capture_batch_sizes().into_iter().enumerate() {
        warmup_decode(rt, inst, batch, kv)?;
        let graph = capture_decode_graph(rt, inst, batch, kv, gi)?;
        let exec = GraphExec::instantiate(rt, graph)?;
        graphs.push((batch, exec));
    }
    Ok(graphs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ModelSpec {
        ModelSpec::by_name("Qwen1.5-0.5B").unwrap()
    }

    fn artifact() -> MaterializedState {
        materialize_offline(&spec(), GpuSpec::a100_40gb(), CostModel::default(), 41)
            .unwrap()
            .0
    }

    fn start(
        strategy: Strategy,
        art: Option<&MaterializedState>,
        opts: ColdStartOptions,
    ) -> (ReadyEngine, ColdStartReport) {
        cold_start_impl(
            strategy,
            &spec(),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            art,
            opts,
            None,
        )
        .unwrap()
    }

    #[test]
    fn vanilla_cold_start_has_all_stages_in_order() {
        let (_e, r) = start(Strategy::Vanilla, None, ColdStartOptions::default());
        for stage in [
            Stage::RuntimeInit,
            Stage::StructureInit,
            Stage::WeightsLoad,
            Stage::TokenizerLoad,
            Stage::KvCacheInit,
            Stage::Capture,
            Stage::FirstToken,
        ] {
            assert!(r.stage(stage).as_nanos() > 0, "missing {stage}");
        }
        // Synchronous: loading equals the sum of its stage durations.
        let sum: SimDuration = [
            Stage::StructureInit,
            Stage::WeightsLoad,
            Stage::TokenizerLoad,
            Stage::KvCacheInit,
            Stage::Capture,
        ]
        .iter()
        .map(|&s| r.stage(s))
        .sum();
        let diff = r.loading.as_secs_f64() - sum.as_secs_f64();
        assert!(
            diff.abs() < 1e-6,
            "vanilla stages must tile the loading phase"
        );
        assert!(r.total > r.loading);
    }

    #[test]
    fn strategies_order_matches_figure7() {
        let art = artifact();
        let opts = ColdStartOptions {
            seed: 7,
            ..ColdStartOptions::default()
        };
        let (_e1, vanilla) = start(Strategy::Vanilla, None, opts);
        let (_e2, asynch) = start(Strategy::VanillaAsync, None, opts);
        let (_e3, medusa) = start(Strategy::Medusa, Some(&art), opts);
        assert!(
            asynch.loading < vanilla.loading,
            "async {} must beat vanilla {}",
            asynch.loading,
            vanilla.loading
        );
        assert!(
            medusa.loading < asynch.loading,
            "medusa {} must beat async {}",
            medusa.loading,
            asynch.loading
        );
        let reduction = 1.0 - medusa.loading.as_secs_f64() / vanilla.loading.as_secs_f64();
        // Paper Fig. 7: 42.5% average reduction; 21.1% for Qwen1.5 0.5B
        // (the smallest). Accept a generous band around the small-model
        // figure.
        assert!(
            (0.10..0.60).contains(&reduction),
            "loading reduction {reduction:.2} out of band"
        );
    }

    #[test]
    fn medusa_kv_init_is_materialized_and_capture_shrinks() {
        let art = artifact();
        let opts = ColdStartOptions {
            seed: 9,
            ..ColdStartOptions::default()
        };
        let (_e1, vanilla) = start(Strategy::Vanilla, None, opts);
        let (_e2, medusa) = start(Strategy::Medusa, Some(&art), opts);
        // Fig. 8: KV init 0.50 s → 0.02 s; capture shrinks but stays
        // significant (first-layer warm-up + restoration).
        assert!(
            medusa.stage(Stage::KvCacheInit).as_secs_f64()
                < vanilla.stage(Stage::KvCacheInit).as_secs_f64() / 5.0,
            "kv init must shrink by much more than 5x"
        );
        assert!(medusa.stage(Stage::Capture) < vanilla.stage(Stage::Capture));
        assert!(medusa.stage(Stage::Capture).as_nanos() > 0);
    }

    #[test]
    fn restored_graphs_produce_identical_decode_outputs() {
        let art = artifact();
        let (mut vanilla, _) = start(
            Strategy::Vanilla,
            None,
            ColdStartOptions {
                seed: 100,
                ..Default::default()
            },
        );
        let (mut medusa, _) = start(
            Strategy::Medusa,
            Some(&art),
            ColdStartOptions {
                seed: 200,
                ..Default::default()
            },
        );
        // Same logical decode step on both engines: identical outputs.
        let kv_v = vanilla.kv_view();
        let kv_m = medusa.kv_view();
        crate::online::validate::reset_kv_state(&mut vanilla.rt, &kv_v).unwrap();
        crate::online::validate::reset_kv_state(&mut medusa.rt, &kv_m).unwrap();
        let idx_v = vanilla.graph_index_for(4).unwrap();
        let idx_m = medusa.graph_index_for(4).unwrap();
        let out_v = medusa_model::decode_step_with_graph(
            &mut vanilla.rt,
            &vanilla.inst,
            &vanilla.graphs[idx_v].1,
            vanilla.graphs[idx_v].0,
            77,
        )
        .unwrap();
        let out_m = medusa_model::decode_step_with_graph(
            &mut medusa.rt,
            &medusa.inst,
            &medusa.graphs[idx_m].1,
            medusa.graphs[idx_m].0,
            77,
        )
        .unwrap();
        assert_eq!(
            out_v.output, out_m.output,
            "restored graph must equal captured graph"
        );
    }

    #[test]
    fn medusa_validation_passes_with_no_corrections() {
        let art = artifact();
        let (_e, r) = start(
            Strategy::Medusa,
            Some(&art),
            ColdStartOptions {
                seed: 300,
                validate: true,
                ..Default::default()
            },
        );
        assert!(r.loading.as_nanos() > 0);
    }

    #[test]
    fn medusa_without_artifact_is_rejected() {
        let err = cold_start_impl(
            Strategy::Medusa,
            &spec(),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, MedusaError::ArtifactRequired));
    }

    #[test]
    fn medusa_rejects_mismatched_artifact() {
        let art = artifact();
        let other = ModelSpec::by_name("Qwen1.5-1.8B").unwrap();
        let err = cold_start_impl(
            Strategy::Medusa,
            &other,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            Some(&art),
            ColdStartOptions::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, MedusaError::ArtifactMismatch { .. }));
    }

    /// The deprecated free functions stay as thin wrappers for one release:
    /// identical results to the impl they forward to.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_impl() {
        let opts = ColdStartOptions {
            seed: 17,
            warm_container: true,
            ..Default::default()
        };
        let (_e1, via_wrapper) = cold_start(
            Strategy::Vanilla,
            &spec(),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            opts,
        )
        .unwrap();
        let (_e2, via_impl) = cold_start_impl(
            Strategy::Vanilla,
            &spec(),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            opts,
            None,
        )
        .unwrap();
        assert_eq!(via_wrapper, via_impl);
        let (a, _) = materialize_offline_sharded(
            &spec(),
            0,
            1,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            41,
        )
        .unwrap();
        assert_eq!(a, artifact());
    }

    #[test]
    fn injected_faults_surface_as_typed_errors() {
        use crate::faults::{FaultKind, FaultPlan};
        let art = artifact();
        // Find seeds for both abort checkpoints so each gate is exercised.
        let mut seen_early = false;
        let mut seen_late = false;
        for fault_seed in 0..8u64 {
            let plan = FaultPlan::single(FaultKind::MidStageAbort, fault_seed);
            let opts = ColdStartOptions {
                fault: Some(plan),
                ..Default::default()
            };
            let err = cold_start_impl(
                Strategy::Medusa,
                &spec(),
                GpuSpec::a100_40gb(),
                CostModel::default(),
                Some(&art),
                opts,
                None,
            )
            .unwrap_err();
            assert_eq!(err.kind(), "stage_aborted");
            match plan.abort_point().unwrap() {
                AbortPoint::AfterStructureInit => seen_early = true,
                AbortPoint::BeforeFirstToken => seen_late = true,
            }
        }
        assert!(seen_early && seen_late, "both checkpoints exercised");
        let opts = ColdStartOptions {
            fault: Some(FaultPlan::single(FaultKind::TruncatedWeights, 3)),
            ..Default::default()
        };
        let err = cold_start_impl(
            Strategy::Vanilla,
            &spec(),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            opts,
            None,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MedusaError::WeightStreamTruncated { loaded, expected } if loaded < expected
        ));
    }

    #[test]
    fn warm_container_removes_runtime_init() {
        let (_e, r) = start(
            Strategy::NoCudaGraph,
            None,
            ColdStartOptions {
                warm_container: true,
                ..Default::default()
            },
        );
        assert_eq!(r.stage(Stage::RuntimeInit), SimDuration::ZERO);
        assert_eq!(r.stage(Stage::Capture), SimDuration::ZERO);
    }

    #[test]
    fn engine_decode_uses_graphs_and_rounds_batch_up() {
        let (mut e, _) = start(
            Strategy::Vanilla,
            None,
            ColdStartOptions {
                seed: 5,
                ..Default::default()
            },
        );
        assert_eq!(e.graphs.len(), 35);
        assert_eq!(e.graph_index_for(3).map(|i| e.graphs[i].0), Some(4));
        assert_eq!(e.graph_index_for(256).map(|i| e.graphs[i].0), Some(256));
        assert_eq!(e.graph_index_for(257), None);
        let d_graph = e.decode_step(1).unwrap();
        let d_eager = e.decode_step(257).unwrap();
        assert!(d_eager > d_graph, "eager fallback must be slower");
        let p = e.prefill(1, 161).unwrap();
        assert!(p.as_nanos() > 0);
    }

    #[test]
    fn no_cuda_graph_engine_decodes_eagerly() {
        let (mut e, _) = start(
            Strategy::NoCudaGraph,
            None,
            ColdStartOptions {
                seed: 6,
                ..Default::default()
            },
        );
        assert!(e.graphs.is_empty());
        let (mut g, _) = start(
            Strategy::Vanilla,
            None,
            ColdStartOptions {
                seed: 6,
                ..Default::default()
            },
        );
        let d_eager = e.decode_step(1).unwrap();
        let d_graph = g.decode_step(1).unwrap();
        assert!(
            d_eager.as_secs_f64() / d_graph.as_secs_f64() > 1.3,
            "w/o CUDA graph serving must pay eager overhead (Fig. 3)"
        );
    }

    #[test]
    fn handwritten_triggering_restores_identically_to_first_layer() {
        let art = artifact();
        let base = ColdStartOptions {
            seed: 400,
            validate: true,
            ..Default::default()
        };
        let (mut fl, r_fl) = start(Strategy::Medusa, Some(&art), base);
        let (mut hw, r_hw) = start(
            Strategy::Medusa,
            Some(&art),
            ColdStartOptions {
                triggering: TriggeringMode::Handwritten,
                seed: 401,
                ..base
            },
        );
        // Both modes restore working graphs with identical outputs.
        let kv_f = fl.kv_view();
        let kv_h = hw.kv_view();
        crate::online::validate::reset_kv_state(&mut fl.rt, &kv_f).unwrap();
        crate::online::validate::reset_kv_state(&mut hw.rt, &kv_h).unwrap();
        let out_f = medusa_model::decode_step_with_graph(
            &mut fl.rt,
            &fl.inst,
            &fl.graphs[10].1,
            fl.graphs[10].0,
            55,
        )
        .unwrap();
        let out_h = medusa_model::decode_step_with_graph(
            &mut hw.rt,
            &hw.inst,
            &hw.graphs[10].1,
            hw.graphs[10].0,
            55,
        )
        .unwrap();
        assert_eq!(out_f.output, out_h.output);
        // The handwritten list skips 35 first-layer warm-ups/captures, so
        // its restore stage is cheaper — the paper kept it only until the
        // per-batch maintenance became unacceptable (§5.1).
        assert!(r_hw.stage(Stage::Capture) < r_fl.stage(Stage::Capture));
    }

    #[test]
    fn spans_are_well_formed_for_every_strategy() {
        let art = artifact();
        for strategy in Strategy::ALL {
            let a = (strategy == Strategy::Medusa).then_some(&art);
            let (_e, r) = start(strategy, a, ColdStartOptions::default());
            for span in &r.spans {
                assert!(
                    span.end >= span.start,
                    "{strategy}: negative span for {}",
                    span.stage
                );
            }
            // First token comes after loading for every strategy.
            let ft = r
                .spans
                .iter()
                .find(|s| s.stage == Stage::FirstToken)
                .unwrap();
            for span in &r.spans {
                if span.stage != Stage::FirstToken {
                    assert!(
                        span.end <= ft.start,
                        "{strategy}: {} overlaps first token",
                        span.stage
                    );
                }
            }
            // Structure init is strictly first within loading.
            let s0 = r
                .spans
                .iter()
                .find(|s| s.stage == Stage::StructureInit)
                .unwrap();
            for span in &r.spans {
                if !matches!(span.stage, Stage::RuntimeInit | Stage::StructureInit) {
                    assert!(
                        span.start >= s0.end,
                        "{strategy}: {} precedes structure init",
                        span.stage
                    );
                }
            }
        }
    }

    #[test]
    fn reports_serialize_to_json() {
        let (_e, r) = start(Strategy::Vanilla, None, ColdStartOptions::default());
        let json = serde_json::to_string(&r).unwrap();
        let back: ColdStartReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn offline_report_matches_figure9_scale() {
        let (_a, report) =
            materialize_offline(&spec(), GpuSpec::a100_40gb(), CostModel::default(), 51).unwrap();
        let total = report.total().as_secs_f64();
        // Fig. 9: < 1 minute, ~39 s average across models (smallest model
        // comes in lower).
        assert!(total < 60.0, "offline phase {total}s exceeds a minute");
        assert!(
            report.analysis > report.capture,
            "analysis dominates (Fig. 9)"
        );
    }
}
