//! Deterministic, seed-driven fault injection for the cold-start pipeline.
//!
//! Serverless platforms live on the unhappy path: artifacts rot in caches,
//! library upgrades skew kernel name tables, registry transfers tear, and
//! nodes die mid-cold-start. The paper's §7 answer is graceful degradation —
//! when the materialized state cannot be trusted, fall back to the vanilla
//! path rather than crash. This module provides the *injection* half of that
//! story: a [`FaultPlan`] enumerates which fault classes to arm, and every
//! derived quantity (which field gets corrupted, where the weight stream
//! tears, which stage aborts) is a pure function of the plan's seed, so a
//! faulty run is exactly as reproducible as a healthy one.
//!
//! Artifact-level faults ([`FaultKind::CorruptArtifact`],
//! [`FaultKind::VersionSkew`], [`FaultKind::MissingLibrary`]) tamper with a
//! *copy* of the artifact before validation; runtime faults
//! ([`FaultKind::TruncatedWeights`], [`FaultKind::MidStageAbort`]) fire
//! inside the pipeline itself. Registry and node failures are fleet-level
//! concerns and live in `medusa-serving`'s `ClusterFaults`.

use crate::artifact::registry::ChunkStore;
use crate::artifact::{maf2, MaterializedState};

/// Mixes a seed into a well-distributed 64-bit value (SplitMix64 finalizer).
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip payload bits after the artifact was sealed, so the stored
    /// checksum no longer matches the content.
    CorruptArtifact,
    /// Stamp a future format version on the artifact (a registry serving
    /// entries written by a newer materializer).
    VersionSkew,
    /// Rename one materialized kernel's library to one absent from the
    /// process catalog (a library upgrade that dropped the `.so`), then
    /// re-seal — the artifact is internally consistent but unrestorable.
    MissingLibrary,
    /// Tear the weight stream partway through the loading stage.
    TruncatedWeights,
    /// Abort the cold start mid-flight at a seed-chosen stage boundary
    /// (node preemption / OOM-kill).
    MidStageAbort,
}

impl FaultKind {
    /// All fault classes, in matrix order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::CorruptArtifact,
        FaultKind::VersionSkew,
        FaultKind::MissingLibrary,
        FaultKind::TruncatedWeights,
        FaultKind::MidStageAbort,
    ];

    /// Stable name, used in CLI specs and telemetry labels.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::CorruptArtifact => "corrupt",
            FaultKind::VersionSkew => "version_skew",
            FaultKind::MissingLibrary => "missing_library",
            FaultKind::TruncatedWeights => "truncated_weights",
            FaultKind::MidStageAbort => "abort",
        }
    }
}

/// Where a [`FaultKind::MidStageAbort`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortPoint {
    /// Right after model structure initialization, before any strategy work.
    AfterStructureInit,
    /// After all loading completed, just before the first-token prefill.
    BeforeFirstToken,
}

/// A deterministic plan of which faults to inject into one cold start.
///
/// `Copy` so it can ride inside `ColdStartOptions`. An all-`false` plan (the
/// `Default`) injects nothing and leaves the pipeline byte-identical to a
/// run without a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed every derived quantity is a pure function of.
    pub seed: u64,
    /// Arm [`FaultKind::CorruptArtifact`].
    pub corrupt_artifact: bool,
    /// Arm [`FaultKind::VersionSkew`].
    pub version_skew: bool,
    /// Arm [`FaultKind::MissingLibrary`].
    pub missing_library: bool,
    /// Arm [`FaultKind::TruncatedWeights`].
    pub truncated_weights: bool,
    /// Arm [`FaultKind::MidStageAbort`].
    pub mid_stage_abort: bool,
}

impl FaultPlan {
    /// An empty plan with the given seed; arm faults with [`FaultPlan::with`].
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A plan arming exactly one fault class.
    pub fn single(kind: FaultKind, seed: u64) -> Self {
        FaultPlan::new(seed).with(kind)
    }

    /// A plan arming every fault class — the CI fault matrix.
    pub fn matrix(seed: u64) -> Self {
        FaultKind::ALL
            .iter()
            .fold(FaultPlan::new(seed), |p, &k| p.with(k))
    }

    /// Arms one fault class.
    pub fn with(mut self, kind: FaultKind) -> Self {
        match kind {
            FaultKind::CorruptArtifact => self.corrupt_artifact = true,
            FaultKind::VersionSkew => self.version_skew = true,
            FaultKind::MissingLibrary => self.missing_library = true,
            FaultKind::TruncatedWeights => self.truncated_weights = true,
            FaultKind::MidStageAbort => self.mid_stage_abort = true,
        }
        self
    }

    /// Whether the given class is armed.
    pub fn enabled(&self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::CorruptArtifact => self.corrupt_artifact,
            FaultKind::VersionSkew => self.version_skew,
            FaultKind::MissingLibrary => self.missing_library,
            FaultKind::TruncatedWeights => self.truncated_weights,
            FaultKind::MidStageAbort => self.mid_stage_abort,
        }
    }

    /// Whether no fault is armed.
    pub fn is_empty(&self) -> bool {
        FaultKind::ALL.iter().all(|&k| !self.enabled(k))
    }

    /// Parses a comma-separated fault spec (`"corrupt,abort"`). Accepts the
    /// [`FaultKind::name`] strings plus `all` for the full matrix; `-` is
    /// accepted in place of `_`.
    ///
    /// # Errors
    ///
    /// Returns the unknown token.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::new(seed);
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let canon = token.replace('-', "_");
            if canon == "all" {
                plan = FaultPlan::matrix(seed);
                continue;
            }
            match FaultKind::ALL.iter().find(|k| k.name() == canon) {
                Some(&k) => plan = plan.with(k),
                None => return Err(token.to_string()),
            }
        }
        Ok(plan)
    }

    /// Applies the armed *artifact-level* faults to a copy of `artifact`.
    ///
    /// Corruption flips payload bits without re-sealing (a storage/transit
    /// error the checksum catches); version skew stamps a future version;
    /// a missing library renames a seed-chosen node's library and re-seals
    /// (an internally consistent artifact that no longer resolves).
    pub fn apply_to_artifact(&self, artifact: &MaterializedState) -> MaterializedState {
        let mut a = artifact.clone();
        if self.missing_library {
            let total: usize = a.graphs.iter().map(|g| g.nodes.len()).sum();
            if total > 0 {
                let mut pick = (splitmix64(self.seed ^ 0xfa_0001) as usize) % total;
                'outer: for g in &mut a.graphs {
                    for n in &mut g.nodes {
                        if pick == 0 {
                            n.library = format!("libghost-{}.so.0", self.seed & 0xffff);
                            break 'outer;
                        }
                        pick -= 1;
                    }
                }
                a.seal();
            }
        }
        if self.corrupt_artifact {
            // Bit-flip after sealing: pick the field from the seed.
            match splitmix64(self.seed ^ 0xfa_0002) % 3 {
                0 => a.kv_free_bytes ^= 1 << (splitmix64(self.seed ^ 0xfa_0003) % 32),
                1 => a.replay_prefix_allocs ^= 1,
                _ => {
                    if let Some(op) = a.replay_ops.first_mut() {
                        match op {
                            crate::artifact::ReplayOp::Malloc { size } => *size ^= 0x40,
                            crate::artifact::ReplayOp::Free { alloc_seq } => *alloc_seq ^= 0x1,
                        }
                    } else {
                        a.kv_free_bytes ^= 0x2;
                    }
                }
            }
        }
        if self.version_skew {
            a.version += 1 + (splitmix64(self.seed ^ 0xfa_0004) % 3) as u32;
        }
        a
    }

    /// Applies the armed artifact-level faults to a copy of MAF2-encoded
    /// artifact bytes — the binary analogue of
    /// [`FaultPlan::apply_to_artifact`].
    ///
    /// * [`FaultKind::CorruptArtifact`] picks, from the seed, one of three
    ///   binary corruption shapes: a section-payload byte flip (caught
    ///   lazily by the section digest on first materialization), a
    ///   section-digest flip inside the index (caught at open by the sealed
    ///   index digest), or an index offset rewritten out of bounds with the
    ///   index digest re-sealed (caught by the open-time bounds check).
    /// * [`FaultKind::VersionSkew`] stamps a future format version and
    ///   re-seals the index digest, so the skew is the only inconsistency.
    /// * [`FaultKind::TruncatedWeights`] tears the byte stream: inside the
    ///   header, just before the section index, or at a seed-chosen payload
    ///   fraction.
    ///
    /// [`FaultKind::MissingLibrary`] is a decoded-level fault (it re-seals
    /// the per-shard checksum); apply it via [`FaultPlan::apply_to_artifact`]
    /// before encoding. Every resulting file fails with a *typed* error —
    /// [`Maf2Reader::open`](maf2::Maf2Reader::open) and shard
    /// materialization never panic on tampered input.
    pub fn apply_to_maf2(&self, bytes: &[u8]) -> Vec<u8> {
        let mut b = bytes.to_vec();
        if self.corrupt_artifact {
            match maf2::header_layout(&b) {
                Some(layout) => match splitmix64(self.seed ^ 0xfa_0010) % 3 {
                    0 if layout.payload_len > 0 => {
                        let off = layout.payload_off
                            + (splitmix64(self.seed ^ 0xfa_0011) as usize) % layout.payload_len;
                        b[off] ^= 0x20;
                    }
                    1 if layout.section_count > 0 => {
                        let i = (splitmix64(self.seed ^ 0xfa_0012) as usize) % layout.section_count;
                        // Byte 24 of an entry is its digest field.
                        b[layout.index_off + i * 32 + 24] ^= 0x01;
                    }
                    _ if layout.section_count > 0 => {
                        let i = (splitmix64(self.seed ^ 0xfa_0013) as usize) % layout.section_count;
                        let off_field = layout.index_off + i * 32 + 8;
                        let oob = (b.len() as u64) + 1 + splitmix64(self.seed ^ 0xfa_0015) % 1024;
                        b[off_field..off_field + 8].copy_from_slice(&oob.to_le_bytes());
                        maf2::reseal_index_digest(&mut b);
                    }
                    _ => {
                        if let Some(last) = b.last_mut() {
                            *last ^= 0x20;
                        }
                    }
                },
                None => {
                    if let Some(last) = b.last_mut() {
                        *last ^= 0x20;
                    }
                }
            }
        }
        if self.version_skew && b.len() >= 12 {
            let old = u32::from_le_bytes([b[8], b[9], b[10], b[11]]);
            let new = old
                .wrapping_add(1)
                .wrapping_add((splitmix64(self.seed ^ 0xfa_0004) % 3) as u32);
            b[8..12].copy_from_slice(&new.to_le_bytes());
            maf2::reseal_index_digest(&mut b);
        }
        if self.truncated_weights {
            let cut = match splitmix64(self.seed ^ 0xfa_0014) % 3 {
                // Header truncation: fewer bytes than the fixed header.
                0 => (splitmix64(self.seed ^ 0xfa_0016) as usize) % maf2::MAF2_HEADER_LEN,
                // Tear off the tail: the section index goes missing.
                1 => b
                    .len()
                    .saturating_sub(1 + (splitmix64(self.seed ^ 0xfa_0017) as usize) % 32),
                // Tear at a payload fraction.
                _ => {
                    let frac = (splitmix64(self.seed ^ 0xfa_0018) % 10_000) as f64 / 10_000.0;
                    maf2::MAF2_HEADER_LEN
                        + ((b.len().saturating_sub(maf2::MAF2_HEADER_LEN)) as f64 * frac) as usize
                }
            };
            b.truncate(cut.min(b.len()));
        }
        b
    }

    /// Applies the armed chunk-level faults to a chunk store in place — the
    /// content-addressed analogue of [`FaultPlan::apply_to_maf2`].
    ///
    /// * [`FaultKind::CorruptArtifact`] flips one byte inside a seed-chosen
    ///   non-empty chunk (caught by the per-chunk digest check);
    /// * [`FaultKind::TruncatedWeights`] tears a seed-chosen chunk short at
    ///   a seed-chosen length (caught by the per-chunk length check).
    ///
    /// Returns the tampered digests (empty when nothing was armed or the
    /// store holds no non-empty chunks). Assembly and validation over a
    /// tampered store fail with *typed* errors — they never panic.
    pub fn apply_to_store(&self, store: &mut ChunkStore) -> Vec<u64> {
        let digests: Vec<u64> = store
            .chunk_digests()
            .into_iter()
            .filter(|&d| store.get(d).is_some_and(|b| !b.is_empty()))
            .collect();
        let mut hit = Vec::new();
        if digests.is_empty() {
            return hit;
        }
        if self.corrupt_artifact {
            let d = digests[(splitmix64(self.seed ^ 0xfa_0020) as usize) % digests.len()];
            let mut b = store.get(d).expect("digest just listed").to_vec();
            let off = (splitmix64(self.seed ^ 0xfa_0021) as usize) % b.len();
            b[off] ^= 0x40;
            store.tamper_chunk(d, b);
            hit.push(d);
        }
        if self.truncated_weights {
            let d = digests[(splitmix64(self.seed ^ 0xfa_0022) as usize) % digests.len()];
            let len = store.get(d).expect("digest just listed").len();
            let keep = (splitmix64(self.seed ^ 0xfa_0023) as usize) % len;
            let mut b = store.get(d).expect("digest just listed").to_vec();
            b.truncate(keep);
            store.tamper_chunk(d, b);
            if !hit.contains(&d) {
                hit.push(d);
            }
        }
        hit
    }

    /// For an armed [`FaultKind::TruncatedWeights`]: the fraction of the
    /// weight payload delivered before the stream tears, in `[0.25, 0.90]`.
    pub fn weight_truncation(&self) -> Option<f64> {
        if !self.truncated_weights {
            return None;
        }
        let u = splitmix64(self.seed ^ 0xfa_0005) % 10_000;
        Some(0.25 + 0.65 * (u as f64 / 10_000.0))
    }

    /// For an armed [`FaultKind::MidStageAbort`]: where the abort fires.
    pub fn abort_point(&self) -> Option<AbortPoint> {
        if !self.mid_stage_abort {
            return None;
        }
        if splitmix64(self.seed ^ 0xfa_0006).is_multiple_of(2) {
            Some(AbortPoint::AfterStructureInit)
        } else {
            Some(AbortPoint::BeforeFirstToken)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::materialize_offline;
    use medusa_gpu::{CostModel, GpuSpec};
    use medusa_model::ModelSpec;

    fn artifact() -> MaterializedState {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        materialize_offline(&spec, GpuSpec::a100_40gb(), CostModel::default(), 41)
            .unwrap()
            .0
    }

    #[test]
    fn parse_accepts_names_aliases_and_all() {
        let p = FaultPlan::parse("corrupt, abort", 7).unwrap();
        assert!(p.corrupt_artifact && p.mid_stage_abort);
        assert!(!p.version_skew);
        let m = FaultPlan::parse("all", 7).unwrap();
        assert!(FaultKind::ALL.iter().all(|&k| m.enabled(k)));
        let d = FaultPlan::parse("missing-library,version-skew", 7).unwrap();
        assert!(d.missing_library && d.version_skew);
        assert_eq!(FaultPlan::parse("bogus", 7).unwrap_err(), "bogus");
        assert!(FaultPlan::parse("", 7).unwrap().is_empty());
    }

    #[test]
    fn tampering_is_deterministic_per_seed() {
        let a = artifact();
        let p = FaultPlan::matrix(99);
        let x = p.apply_to_artifact(&a);
        let y = p.apply_to_artifact(&a);
        assert_eq!(x, y, "same seed, same tampering");
        let z = FaultPlan::matrix(100).apply_to_artifact(&a);
        assert!(z == x || z.version != x.version || z != x);
        assert_eq!(p.weight_truncation(), p.weight_truncation());
        assert_eq!(p.abort_point(), p.abort_point());
    }

    #[test]
    fn corruption_breaks_the_checksum_but_skew_does_not() {
        let a = artifact();
        let c = FaultPlan::single(FaultKind::CorruptArtifact, 3).apply_to_artifact(&a);
        assert!(c.verify_checksum().is_err(), "bit flip must break the seal");
        let v = FaultPlan::single(FaultKind::VersionSkew, 3).apply_to_artifact(&a);
        assert!(v.verify_checksum().is_ok(), "skew is a version-only change");
        assert!(v.version > a.version);
        let m = FaultPlan::single(FaultKind::MissingLibrary, 3).apply_to_artifact(&a);
        assert!(
            m.verify_checksum().is_ok(),
            "missing-library artifact re-seals: consistent but unrestorable"
        );
        assert!(m
            .graphs
            .iter()
            .flat_map(|g| g.nodes.iter())
            .any(|n| n.library.starts_with("libghost-")));
    }

    #[test]
    fn binary_faults_always_yield_typed_errors() {
        let a = artifact();
        let bytes = a.to_maf2().unwrap();
        for kind in [
            FaultKind::CorruptArtifact,
            FaultKind::VersionSkew,
            FaultKind::TruncatedWeights,
        ] {
            for seed in 0..24 {
                let plan = FaultPlan::single(kind, seed);
                let bad = plan.apply_to_maf2(&bytes);
                assert_ne!(bad, bytes, "{kind:?} seed {seed} must alter the file");
                assert_eq!(bad, plan.apply_to_maf2(&bytes), "deterministic per seed");
                // Open + eager materialization must fail with a typed error
                // (never panic) on every seed of every binary fault class.
                let err = maf2::Maf2Reader::open(&bad)
                    .and_then(|r| r.materialize_all().map(|_| ()))
                    .expect_err(&format!("{kind:?} seed {seed} must be detected"));
                assert!(
                    matches!(err.kind(), "artifact_corrupt" | "checksum_mismatch"),
                    "{kind:?} seed {seed}: unexpected error kind {}",
                    err.kind()
                );
            }
        }
    }

    #[test]
    fn binary_version_skew_is_the_only_inconsistency() {
        let a = artifact();
        let bytes = a.to_maf2().unwrap();
        let bad = FaultPlan::single(FaultKind::VersionSkew, 11).apply_to_maf2(&bytes);
        // The header re-seals, so open succeeds and the skew is observable;
        // only materialization rejects it.
        let r = maf2::Maf2Reader::open(&bad).unwrap();
        assert!(r.version() > a.version);
        r.verify_content_checksum().unwrap();
        assert_eq!(r.shard(a.rank).unwrap_err().kind(), "artifact_corrupt");
    }

    #[test]
    fn runtime_fault_parameters_are_bounded() {
        for seed in 0..50 {
            let p = FaultPlan::matrix(seed);
            let frac = p.weight_truncation().unwrap();
            assert!((0.25..=0.90).contains(&frac), "{frac}");
            assert!(p.abort_point().is_some());
        }
        let none = FaultPlan::new(1);
        assert!(none.weight_truncation().is_none());
        assert!(none.abort_point().is_none());
        assert!(none.is_empty());
    }

    #[test]
    fn chunk_faults_yield_typed_errors_and_are_deterministic() {
        use crate::artifact::registry::ChunkStore;
        let bytes = artifact().to_maf2().unwrap();
        for kind in [FaultKind::CorruptArtifact, FaultKind::TruncatedWeights] {
            for seed in 0..20u64 {
                let plan = FaultPlan::single(kind, seed);
                let mut store = ChunkStore::default();
                let manifest = store.pack(&bytes).unwrap();
                let hit = plan.apply_to_store(&mut store);
                assert_eq!(hit.len(), 1, "{kind:?} seed {seed} must tamper one chunk");

                // Same plan, fresh store: identical victim.
                let mut again = ChunkStore::default();
                again.pack(&bytes).unwrap();
                assert_eq!(plan.apply_to_store(&mut again), hit);
                assert_eq!(store, again, "same seed, same tampering");

                // Assembly over a tampered store fails with a typed error —
                // never a panic, never silent success.
                let err = store
                    .assemble(&manifest)
                    .expect_err(&format!("{kind:?} seed {seed} must be detected"));
                assert!(
                    matches!(
                        err.kind(),
                        "checksum_mismatch" | "weight_stream_truncated" | "artifact_corrupt"
                    ),
                    "{kind:?} seed {seed}: unexpected error kind {}",
                    err.kind()
                );
            }
        }
    }

    #[test]
    fn chunk_faults_are_noops_when_unarmed_or_store_is_empty() {
        use crate::artifact::registry::ChunkStore;
        let bytes = artifact().to_maf2().unwrap();
        let mut store = ChunkStore::default();
        let manifest = store.pack(&bytes).unwrap();
        let before = store.clone();
        assert!(FaultPlan::new(3).apply_to_store(&mut store).is_empty());
        assert_eq!(store, before);
        assert_eq!(store.assemble(&manifest).unwrap(), bytes);

        let mut empty = ChunkStore::default();
        let plan = FaultPlan::single(FaultKind::CorruptArtifact, 3);
        assert!(plan.apply_to_store(&mut empty).is_empty());
    }
}
