//! Trace-based indirect index pointer analysis primitives (paper §4.1).
//!
//! The offline capturing stage intercepts every `cudaMalloc`, `cudaFree`
//! and `cudaLaunchKernel`. [`TraceWalker`] replays that interleaved event
//! stream while maintaining the *live allocation map*; resolving a kernel
//! parameter's pointer against the map at the launch's trace position is
//! exactly the paper's "match backwards from its `cudaLaunchKernel()` and
//! record the first match" — the most recent allocation containing the
//! address that is still live.
//!
//! The naive alternative the paper's Figure 6 warns about — matching a
//! pointer against the whole allocation history — is provided as
//! [`TraceWalker::naive_last_match`] for the ablation benchmarks and the
//! false-positive regression tests.

use std::collections::{BTreeMap, HashMap};

/// One allocation event in the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocEvent {
    /// Global allocation-sequence index.
    pub seq: u64,
    /// Base address returned.
    pub base: u64,
    /// Rounded size.
    pub size: u64,
}

/// Maintains the live allocation map while walking a trace.
#[derive(Debug, Default)]
pub struct TraceWalker {
    live: BTreeMap<u64, (u64, u64)>, // base -> (seq, size)
    history: Vec<AllocEvent>,
    base_counts: HashMap<u64, u32>,
}

impl TraceWalker {
    /// Creates an empty walker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation event.
    pub fn on_alloc(&mut self, seq: u64, base: u64, size: u64) {
        self.live.insert(base, (seq, size));
        self.history.push(AllocEvent { seq, base, size });
        *self.base_counts.entry(base).or_insert(0) += 1;
    }

    /// Records a free event, returning the sequence index of the freed
    /// allocation if it was live.
    pub fn on_free(&mut self, base: u64) -> Option<u64> {
        self.live.remove(&base).map(|(seq, _)| seq)
    }

    /// Trace-based resolution: the live allocation containing `addr` right
    /// now (i.e. at the current trace position). Returns
    /// `(alloc_seq, offset_within_buffer)`.
    pub fn resolve(&self, addr: u64) -> Option<(u64, u64)> {
        let (&base, &(seq, size)) = self.live.range(..=addr).next_back()?;
        (addr < base + size).then(|| (seq, addr - base))
    }

    /// How many times `addr` has been returned as an allocation base over
    /// the whole history — values above 1 are the Figure 6 reuse hazard.
    pub fn base_reuse_count(&self, addr: u64) -> u32 {
        self.base_counts.get(&addr).copied().unwrap_or(0)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The full allocation history (ablation support).
    pub fn history(&self) -> &[AllocEvent] {
        &self.history
    }

    /// **Naive** matching: the *last* allocation in the whole history whose
    /// range contains `addr`, ignoring liveness at launch time. This is the
    /// strategy that produces Figure 6's false positives; kept for ablation.
    pub fn naive_last_match(&self, addr: u64) -> Option<(u64, u64)> {
        self.history
            .iter()
            .rev()
            .find(|a| addr >= a.base && addr < a.base + a.size)
            .map(|a| (a.seq, addr - a.base))
    }

    /// **Naive** matching: the *first* historical allocation containing
    /// `addr` (the other strawman of §4.1).
    pub fn naive_first_match(&self, addr: u64) -> Option<(u64, u64)> {
        self.history
            .iter()
            .find(|a| addr >= a.base && addr < a.base + a.size)
            .map(|a| (a.seq, addr - a.base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_matches_live_containing_allocation() {
        let mut w = TraceWalker::new();
        w.on_alloc(0, 0x1000, 0x100);
        w.on_alloc(1, 0x2000, 0x100);
        assert_eq!(w.resolve(0x1000), Some((0, 0)));
        assert_eq!(w.resolve(0x10ff), Some((0, 0xff)));
        assert_eq!(w.resolve(0x1100), None);
        assert_eq!(w.resolve(0x2080), Some((1, 0x80)));
        w.on_free(0x1000);
        assert_eq!(w.resolve(0x1000), None, "freed buffers are not matched");
        assert_eq!(w.live_count(), 1);
    }

    /// The paper's Figure 6 scenario: the i-th and (i+1)-th allocations
    /// return the same address 'A'; a kernel launched after the second
    /// allocation uses 'A'. Trace-based matching must pick the *second*
    /// allocation; naive first-match picks the wrong one.
    #[test]
    fn figure6_reuse_disambiguation() {
        let mut w = TraceWalker::new();
        w.on_alloc(0, 0xa000, 0x100); // i-th: returns A
        assert_eq!(w.on_free(0xa000), Some(0));
        w.on_alloc(1, 0xa000, 0x100); // (i+1)-th: reuses A
                                      // some_kernel launches here with pointer A.
        assert_eq!(
            w.resolve(0xa000),
            Some((1, 0)),
            "must match the live (second) alloc"
        );
        assert_eq!(
            w.naive_first_match(0xa000),
            Some((0, 0)),
            "naive-first is the false positive"
        );
        assert_eq!(w.base_reuse_count(0xa000), 2);
    }

    /// Naive *last*-match fails the mirror case: the kernel used the buffer
    /// while it was live, the buffer was freed, and the address was reused
    /// by a later allocation before analysis ran.
    #[test]
    fn naive_last_match_fails_after_reuse() {
        let mut w = TraceWalker::new();
        w.on_alloc(0, 0xb000, 0x100);
        // Kernel launched here uses 0xb000 → correct index is 0.
        let at_launch = w.resolve(0xb000);
        assert_eq!(at_launch, Some((0, 0)));
        w.on_free(0xb000);
        w.on_alloc(1, 0xb000, 0x100);
        // Analysis running naively over the whole history picks index 1.
        assert_eq!(w.naive_last_match(0xb000), Some((1, 0)));
        assert_ne!(w.naive_last_match(0xb000), at_launch);
    }

    #[test]
    fn interior_pointers_resolve_with_offset() {
        let mut w = TraceWalker::new();
        w.on_alloc(0, 0x4000, 0x1000);
        assert_eq!(w.resolve(0x4abc), Some((0, 0xabc)));
    }

    #[test]
    fn free_of_unknown_base_is_none() {
        let mut w = TraceWalker::new();
        assert_eq!(w.on_free(0xdead), None);
    }

    #[test]
    fn history_is_preserved_across_frees() {
        let mut w = TraceWalker::new();
        w.on_alloc(0, 0x1000, 0x100);
        w.on_free(0x1000);
        w.on_alloc(1, 0x3000, 0x100);
        assert_eq!(w.history().len(), 2);
        assert_eq!(w.naive_first_match(0x1000), Some((0, 0)));
    }
}
