//! # medusa
//!
//! Reproduction of **Medusa: Accelerating Serverless LLM Inference with
//! Materialization** (ASPLOS'25). Medusa attacks the serverless LLM
//! cold-start problem by *state materialization*: instead of dynamically
//! profiling the KV cache and capturing CUDA graphs at every cold start, an
//! offline phase materializes them once per `<GPU type, model type>` and
//! the online phase restores them.
//!
//! The crate implements the paper's full mechanism stack:
//!
//! * **Offline capturing stage** ([`run_offline_capture`]) — an
//!   instrumented cold start intercepting every allocation and kernel
//!   launch while capturing all 35 decode graphs (§3).
//! * **Offline analysis stage** ([`analyze`]) — trace-based *indirect index
//!   pointer* construction (§4.1), constant/pointer classification, kernel
//!   name tables (§5), and copy-free buffer-content classification (§4.3).
//! * **Online restoration** — allocation-sequence replay + pointer
//!   restoration ([`replay_allocations`], [`restore_graph`]),
//!   triggering-kernel-enhanced kernel address restoration
//!   ([`KernelResolver`]), and validation with false-positive correction
//!   ([`validate_and_correct`]).
//! * **Cold-start pipelines** ([`ColdStart`]) — the paper's compared
//!   strategies: `vLLM`, `vLLM+Async`, `Medusa`, and `w/o CUDA graph` —
//!   with pre-restore artifact validation ([`ArtifactValidator`]),
//!   deterministic fault injection ([`FaultPlan`]), and graceful
//!   degradation to the vanilla path (§7).
//!
//! ## Example
//!
//! ```rust,no_run
//! use medusa::{ColdStart, Strategy};
//! use medusa_model::ModelSpec;
//!
//! # fn main() -> Result<(), medusa::MedusaError> {
//! let spec = ModelSpec::by_name("Qwen1.5-4B").expect("catalog model");
//! // Offline, once per <GPU type, model type>:
//! let (artifacts, _) = ColdStart::new(&spec).materialize(1)?;
//! // Online, on every cold start (falls back to vanilla if the artifact
//! // fails validation or restoration):
//! let outcome = ColdStart::new(&spec)
//!     .strategy(Strategy::Medusa)
//!     .artifacts(&artifacts)
//!     .run()?;
//! println!("loading phase: {}", outcome.report().loading);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod builder;
mod engine;
mod error;
mod faults;
mod offline {
    pub mod analysis;
    pub mod capture;
}
mod online {
    pub mod kernels;
    pub mod replay;
    pub mod validate;
}
mod pipeline;
mod tp;
mod trace;
mod validator;

pub use artifact::maf2::{
    encode_bundle as encode_maf2_bundle, is_maf2, Maf2Reader, SectionExtent, SectionKind,
    ShardMeta, MAF2_MAGIC,
};
pub use artifact::registry::{
    chunk_spans, ChunkManifest, ChunkRef, ChunkStore, DedupStats, SectionSpan, TemplateManifest,
    CHUNK_AVG_BITS, CHUNK_MAX, CHUNK_MIN, MANIFEST_VERSION,
};
pub use artifact::template::{ArtifactTemplate, ModelDelta};
pub use artifact::{
    AnalysisStats, GraphSpec, MaterializedState, NodeSpec, ParamSpec, PtrTableEntry, ReplayOp,
    ARTIFACT_VERSION,
};
pub use builder::{ColdStart, ColdStartOutcome, Fallback};
pub use engine::{host_pair, par_map, Lane, NodeId, Schedule, StageGraph};
pub use error::{ErrorContext, MedusaError, MedusaResult};
pub use faults::{AbortPoint, FaultKind, FaultPlan};
pub use offline::analysis::{analyze, count_naive_mismatches, AnalysisOutput};
pub use offline::capture::{
    run_offline_capture, run_offline_capture_sharded, CaptureOutput, GraphWindow, KernelInfo,
};
pub use online::kernels::{KernelResolver, ResolutionStats};
pub use online::replay::{replay_allocations, restore_graph, ReplayedLayout};
pub use online::validate::{
    reset_kv_state, validate_and_correct, validate_graph, ValidatedGraph, VALIDATION_STEP,
};
pub use pipeline::{
    materialize_offline, ColdStartOptions, ColdStartReport, OfflineReport, Parallelism,
    ReadyEngine, Stage, StageSpan, Strategy, TriggeringMode,
};
// Deprecated entry points stay re-exported for one release so downstream
// callers migrate on their own schedule; the builder replaces them.
#[allow(deprecated)]
pub use pipeline::{cold_start, cold_start_traced, materialize_offline_sharded};
#[allow(deprecated)]
pub use tp::{cold_start_tp, cold_start_tp_traced};
pub use tp::{materialize_offline_tp, materialize_offline_tp_with, TpArtifacts, TpColdStart};
pub use trace::{AllocEvent, TraceWalker};
pub use validator::{ArtifactValidator, ValidationCheck, ValidationReport};
