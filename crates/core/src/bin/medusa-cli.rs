//! `medusa-cli` — operate the Medusa reproduction from the command line.
//!
//! ```text
//! medusa-cli models
//! medusa-cli materialize --model <name> [--out artifact.json] [--seed N]
//! medusa-cli coldstart   --model <name> --strategy <vllm|async|medusa|nograph>
//!                        [--artifact artifact.json] [--validate] [--warm]
//!                        [--triggering <first-layer|handwritten>] [--seed N]
//! medusa-cli inspect     --artifact artifact.json
//! medusa-cli trace       [--model <name>] [--strategy <vllm|async|medusa|nograph>]
//!                        [--format <chrome|prom>] [--seed N] [--out FILE]
//! ```

use medusa::{
    cold_start, cold_start_traced, materialize_offline, ColdStartOptions, MaterializedState, Stage,
    Strategy, TriggeringMode,
};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use std::collections::HashMap;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "models" => models(),
        "materialize" => materialize(&flags),
        "coldstart" => coldstart(&flags),
        "inspect" => inspect(&flags),
        "trace" => trace(&flags),
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!("usage: medusa-cli <models|materialize|coldstart|inspect|trace> [flags]");
    eprintln!("  materialize --model <name> [--out FILE] [--seed N]");
    eprintln!("  coldstart   --model <name> --strategy <vllm|async|medusa|nograph>");
    eprintln!("              [--artifact FILE] [--validate] [--warm]");
    eprintln!("              [--triggering <first-layer|handwritten>] [--seed N]");
    eprintln!("  inspect     --artifact FILE");
    eprintln!("  trace       [--model <name>] [--strategy <vllm|async|medusa|nograph>]");
    eprintln!("              [--format <chrome|prom>] [--artifact FILE] [--seed N] [--out FILE]");
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument `{a}`");
            exit(2);
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
            _ => "true".to_string(),
        };
        out.insert(key.to_string(), value);
    }
    out
}

fn require_model(flags: &HashMap<String, String>) -> Result<ModelSpec, String> {
    let name = flags.get("model").ok_or("--model is required")?;
    ModelSpec::by_name(name)
        .ok_or_else(|| format!("unknown model `{name}` (see `medusa-cli models`)"))
}

fn seed(flags: &HashMap<String, String>) -> u64 {
    flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(1)
}

fn models() -> Result<(), String> {
    println!(
        "{:<14} {:>7} {:>8} {:>7} {:>9} {:>10} {:>13}",
        "model", "layers", "hidden", "heads", "vocab", "params", "table1 nodes"
    );
    for m in ModelSpec::catalog() {
        println!(
            "{:<14} {:>7} {:>8} {:>7} {:>9} {:>8.1}GB {:>13}",
            m.name(),
            m.layers(),
            m.hidden(),
            m.heads(),
            m.vocab(),
            m.param_bytes() as f64 / (1u64 << 30) as f64,
            m.table1_nodes()
        );
    }
    Ok(())
}

fn materialize(flags: &HashMap<String, String>) -> Result<(), String> {
    let spec = require_model(flags)?;
    let (artifact, report) = materialize_offline(
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        seed(flags),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "offline phase: capturing {:.1}s + analysis {:.1}s = {:.1}s (simulated)",
        report.capture.as_secs_f64(),
        report.analysis.as_secs_f64(),
        report.total().as_secs_f64()
    );
    println!(
        "materialized {} graphs / {} nodes / {} replay ops",
        artifact.graphs.len(),
        artifact.total_nodes(),
        artifact.replay_ops.len()
    );
    if let Some(path) = flags.get("out") {
        let json = artifact.to_json().map_err(|e| e.to_string())?;
        std::fs::write(path, &json).map_err(|e| e.to_string())?;
        println!("wrote {} ({:.1} KiB)", path, json.len() as f64 / 1024.0);
    }
    Ok(())
}

fn load_artifact(flags: &HashMap<String, String>) -> Result<Option<MaterializedState>, String> {
    match flags.get("artifact") {
        None => Ok(None),
        Some(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            Ok(Some(
                MaterializedState::from_json(&json).map_err(|e| e.to_string())?,
            ))
        }
    }
}

fn parse_strategy(flags: &HashMap<String, String>) -> Result<Strategy, String> {
    match flags.get("strategy").map(String::as_str) {
        Some("vllm") | None => Ok(Strategy::Vanilla),
        Some("async") => Ok(Strategy::VanillaAsync),
        Some("medusa") => Ok(Strategy::Medusa),
        Some("nograph") => Ok(Strategy::NoCudaGraph),
        Some(other) => Err(format!("unknown strategy `{other}`")),
    }
}

fn coldstart(flags: &HashMap<String, String>) -> Result<(), String> {
    let spec = require_model(flags)?;
    let strategy = parse_strategy(flags)?;
    let triggering = match flags.get("triggering").map(String::as_str) {
        Some("handwritten") => TriggeringMode::Handwritten,
        Some("first-layer") | None => TriggeringMode::FirstLayer,
        Some(other) => return Err(format!("unknown triggering mode `{other}`")),
    };
    let artifact = load_artifact(flags)?;
    let opts = ColdStartOptions {
        seed: seed(flags),
        warm_container: flags.contains_key("warm"),
        validate: flags.contains_key("validate"),
        triggering,
        ..Default::default()
    };
    let (_engine, report) = cold_start(
        strategy,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        artifact.as_ref(),
        opts,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{} cold start of {} (simulated):",
        report.strategy, report.model
    );
    for span in &report.spans {
        println!(
            "  {:<16} [{:>8.3} .. {:>8.3}]  {:>8.3}s",
            span.stage.to_string(),
            span.start.as_secs_f64(),
            span.end.as_secs_f64(),
            span.duration().as_secs_f64()
        );
    }
    println!(
        "loading {:.3}s, total {:.3}s",
        report.loading.as_secs_f64(),
        report.total.as_secs_f64()
    );
    let _ = Stage::Capture;
    Ok(())
}

fn trace(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags
        .get("model")
        .map(String::as_str)
        .unwrap_or("Qwen1.5-0.5B");
    let spec = ModelSpec::by_name(name)
        .ok_or_else(|| format!("unknown model `{name}` (see `medusa-cli models`)"))?;
    let strategy = parse_strategy(flags)?;
    let format = flags.get("format").map(String::as_str).unwrap_or("chrome");
    let mut artifact = load_artifact(flags)?;
    if strategy == Strategy::Medusa && artifact.is_none() {
        // Medusa needs a materialized artifact; build one inline so the
        // command works standalone on any catalog model.
        let (art, _) = materialize_offline(
            &spec,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            seed(flags),
        )
        .map_err(|e| e.to_string())?;
        artifact = Some(art);
    }
    let opts = ColdStartOptions {
        seed: seed(flags),
        ..Default::default()
    };
    let tele = medusa_telemetry::Registry::new();
    let (_engine, report) = cold_start_traced(
        strategy,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        artifact.as_ref(),
        opts,
        Some(&tele),
    )
    .map_err(|e| e.to_string())?;
    let snap = tele.snapshot();
    let rendered = match format {
        "chrome" => medusa_telemetry::export::chrome::render(&snap),
        "prom" => medusa_telemetry::export::prometheus::render(&snap),
        other => return Err(format!("unknown format `{other}` (chrome|prom)")),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {path}: {} spans from a {} cold start of {} ({:.3}s simulated)",
                snap.spans.len(),
                report.strategy,
                report.model,
                report.total.as_secs_f64()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let artifact = load_artifact(flags)?.ok_or("--artifact is required")?;
    println!(
        "artifact <{}, {}> rank {}/{} v{}",
        artifact.model, artifact.gpu, artifact.rank, artifact.tp, artifact.version
    );
    println!("  kv free bytes: {}", artifact.kv_free_bytes);
    println!(
        "  replay: {} prefix allocs + {} ops; labels {}; permanent contents {}; ptr tables {}",
        artifact.replay_prefix_allocs,
        artifact.replay_ops.len(),
        artifact.labels.len(),
        artifact.permanent_contents.len(),
        artifact.permanent_ptr_tables.len()
    );
    let st = &artifact.stats;
    println!(
        "  {} graphs / {} nodes; {} ptr params, {} consts, {} multi-match; dlsym {} / hidden {}",
        artifact.graphs.len(),
        st.nodes,
        st.pointer_params,
        st.const_params,
        st.multi_match_pointers,
        st.dlsym_restorable_nodes,
        st.hidden_kernel_nodes
    );
    Ok(())
}
